//! Golden-corpus snapshot tests.
//!
//! Every report in `redeval_bench::reports::REGISTRY` is replayed
//! in-process and its canonical JSON byte-compared against the committed
//! snapshot `tests/golden/<name>.json` — the same files the CI
//! `golden-reports` job regenerates through the `redeval` CLI and diffs.
//! A failure means a paper-reproduction number (or the report schema)
//! changed; if the change is intentional, regenerate the corpus with
//! either
//!
//! ```console
//! $ REDEVAL_BLESS=1 cargo test --test golden
//! $ cargo run --release -p redeval-bench --bin redeval -- report --all --bless
//! ```
//!
//! and commit the diff. Both paths produce identical bytes (debug and
//! release builds share IEEE-754 semantics; DESIGN.md §6).

use std::fs;
use std::path::PathBuf;

use redeval_bench::reports::{self, REGISTRY};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn blessing() -> bool {
    std::env::var_os("REDEVAL_BLESS").is_some()
}

/// First line where two renderings diverge, for a readable failure.
fn first_diff(want: &str, got: &str) -> String {
    for (i, (w, g)) in want.lines().zip(got.lines()).enumerate() {
        if w != g {
            return format!(
                "first difference at line {}:\n  golden: {w}\n  got:    {g}",
                i + 1
            );
        }
    }
    format!(
        "one output is a prefix of the other (golden {} lines, got {} lines)",
        want.lines().count(),
        got.lines().count()
    )
}

#[test]
fn every_report_matches_its_golden() {
    let dir = golden_dir();
    let mut failures = Vec::new();
    for spec in REGISTRY {
        let report = (spec.build)();
        assert_eq!(
            report.name, spec.name,
            "report name must match registry key"
        );
        let json = report.to_json();
        let path = dir.join(format!("{}.json", spec.name));
        if blessing() {
            fs::create_dir_all(&dir).expect("golden dir");
            fs::write(&path, &json).expect("write golden");
            continue;
        }
        match fs::read_to_string(&path) {
            Ok(want) if want == json => {}
            Ok(want) => failures.push(format!(
                "{}: output changed; {}",
                spec.name,
                first_diff(&want, &json)
            )),
            Err(_) => failures.push(format!(
                "{}: missing golden {} — bless with REDEVAL_BLESS=1 cargo test --test golden",
                spec.name,
                path.display()
            )),
        }
    }
    assert!(
        failures.is_empty(),
        "golden mismatches:\n{}\n\nIf intentional, regenerate with \
         `REDEVAL_BLESS=1 cargo test --test golden` (or `redeval report --all --bless`) \
         and commit the diff.",
        failures.join("\n")
    );
}

#[test]
fn no_orphan_goldens() {
    // Every committed golden must correspond to a registered report, so
    // a renamed/removed report cannot leave a stale-but-green snapshot.
    for entry in fs::read_dir(golden_dir()).expect("golden dir exists") {
        let path = entry.expect("dir entry").path();
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default()
            .to_string();
        if path.is_dir() {
            // The scenario corpus (checked below), the serve corpus
            // (orphan-checked by tests/serve.rs::no_orphan_serve_goldens)
            // and the generated corpus (orphan-checked by
            // tests/gen_corpus.rs) live in their own subdirectories.
            assert!(
                stem == "scenarios" || stem == "serve" || stem == "gen",
                "unexpected directory in tests/golden: {}",
                path.display()
            );
            continue;
        }
        assert_eq!(
            path.extension().and_then(|e| e.to_str()),
            Some("json"),
            "unexpected non-JSON file in tests/golden: {}",
            path.display()
        );
        assert!(
            reports::find(&stem).is_some(),
            "orphan golden {} has no registered report",
            path.display()
        );
    }
}

/// The scenario corpus: every bundled scenario's canonical JSON export is
/// byte-pinned under `tests/golden/scenarios/`, one file per gallery
/// entry, no strays. `REDEVAL_BLESS=1` regenerates it like the report
/// corpus.
#[test]
fn every_bundled_scenario_export_matches_its_golden() {
    let dir = golden_dir().join("scenarios");
    let mut failures = Vec::new();
    for s in redeval::scenario::builtin::BUILTINS {
        let json = (s.build)().to_json();
        let path = dir.join(format!("{}.json", s.name));
        if blessing() {
            fs::create_dir_all(&dir).expect("scenario golden dir");
            fs::write(&path, &json).expect("write scenario golden");
            continue;
        }
        match fs::read_to_string(&path) {
            Ok(want) if want == json => {}
            Ok(want) => failures.push(format!(
                "{}: export changed; {}",
                s.name,
                first_diff(&want, &json)
            )),
            Err(_) => failures.push(format!(
                "{}: missing scenario golden {}",
                s.name,
                path.display()
            )),
        }
    }
    if !blessing() {
        for entry in fs::read_dir(&dir).expect("scenario golden dir exists") {
            let path = entry.expect("dir entry").path();
            let stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or_default()
                .to_string();
            assert!(
                redeval::scenario::builtin::find(&stem).is_some(),
                "orphan scenario golden {} has no bundled scenario",
                path.display()
            );
        }
    }
    assert!(
        failures.is_empty(),
        "scenario corpus mismatches:\n{}\n\nIf intentional, regenerate with \
         `REDEVAL_BLESS=1 cargo test --test golden` and commit the diff.",
        failures.join("\n")
    );
}

/// The headline acceptance check of the scenario API: an [`Evaluator`]
/// built from the **pinned** `paper_case_study` file — through the JSON
/// parser, schema decoding and spec resolution — reproduces the
/// committed Table II and Table VI golden reports **byte for byte**.
#[test]
fn paper_scenario_file_reproduces_table2_and_table6_byte_for_byte() {
    use redeval::scenario::ScenarioDoc;
    use redeval_bench::reports::tables;

    let path = golden_dir().join("scenarios/paper_case_study.json");
    let text = fs::read_to_string(&path).expect("pinned paper scenario exists");
    let doc = ScenarioDoc::from_json(&text).expect("pinned paper scenario parses");
    let evaluator = redeval::Evaluator::from_scenario(&doc).expect("evaluator builds");

    let table2 = tables::table2_for(evaluator.base()).to_json();
    let want2 = fs::read_to_string(golden_dir().join("table2.json")).expect("table2 golden");
    assert_eq!(
        table2, want2,
        "table2 from the scenario file differs from the golden"
    );

    let table6 = tables::table6_for(evaluator.base(), evaluator.tier_analyses()).to_json();
    let want6 = fs::read_to_string(golden_dir().join("table6.json")).expect("table6 golden");
    assert_eq!(
        table6, want6,
        "table6 from the scenario file differs from the golden"
    );
}

#[test]
fn golden_reports_all_pass_their_consistency_checks() {
    // The corpus must never pin a failing state: `ok` is serialized, so
    // this is equivalent to checking the committed files, but the
    // in-process check gives a direct message when a region regresses.
    for spec in REGISTRY {
        assert!(
            (spec.build)().ok,
            "report {} fails its embedded consistency checks",
            spec.name
        );
    }
}

#[test]
fn json_is_byte_identical_across_runs() {
    // Serialization is a pure function of the computed numbers, and the
    // computed numbers are run-to-run deterministic (fixed seeds, no
    // wall-clock, no hash-order dependence).
    for name in ["regions", "table2", "heterogeneous"] {
        let spec = reports::find(name).unwrap();
        assert_eq!(
            (spec.build)().to_json(),
            (spec.build)().to_json(),
            "report {name} differs between two in-process runs"
        );
    }
}

#[test]
fn json_is_byte_identical_across_thread_counts() {
    // The batch engine guarantees bitwise-identical numbers for any
    // worker count (DESIGN.md §5); the serialized reports inherit that.
    let sweep_1 = reports::studies::sweep_with_threads(1).to_json();
    for threads in [2, 4, 8] {
        assert_eq!(
            sweep_1,
            reports::studies::sweep_with_threads(threads).to_json(),
            "sweep report differs between 1 and {threads} threads"
        );
    }
    let sens_1 = reports::studies::sensitivity_with_threads(1).to_json();
    for threads in [3, 7] {
        assert_eq!(
            sens_1,
            reports::studies::sensitivity_with_threads(threads).to_json(),
            "sensitivity report differs between 1 and {threads} threads"
        );
    }
}
