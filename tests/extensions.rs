//! Integration tests for the extensions beyond the paper (Section V
//! future work implemented in this workspace).

use redeval::case_study;
use redeval::MetricsConfig;
use redeval_avail::{CompositeNetwork, PatchScenario, ServerAnalysis};
use redeval_cvss::v2::BaseVector;
use redeval_cvss::v2_temporal::TemporalVector;
use redeval_harm::topology::TopologyBuilder;
use redeval_suite::prelude::*;

/// The zone/firewall builder reproduces the case-study attack graph.
#[test]
fn topology_builder_matches_case_study_graph() {
    let mut b = TopologyBuilder::new();
    let dmz_dns = b.zone("dmz-dns");
    let dmz_web = b.zone("dmz-web");
    let intranet = b.zone("intranet");
    let db_zone = b.zone("db");
    b.host("dns1", dmz_dns);
    b.host("web1", dmz_web);
    b.host("web2", dmz_web);
    b.host("app1", intranet);
    b.host("app2", intranet);
    let db = b.host("db1", db_zone);
    b.expose_to_internet(dmz_dns);
    b.expose_to_internet(dmz_web);
    b.allow(dmz_dns, dmz_web);
    b.allow(dmz_web, intranet);
    b.allow(intranet, db_zone);
    let g = b.build();

    // Same tree assignment as the case study, same metrics as Table II.
    let trees = vec![
        Some(case_study::dns_tree()),
        Some(case_study::web_tree()),
        Some(case_study::web_tree()),
        Some(case_study::app_tree()),
        Some(case_study::app_tree()),
        Some(case_study::db_tree()),
    ];
    let harm = Harm::new(g, trees, vec![db]);
    let m = harm.metrics(&MetricsConfig::default());
    assert_eq!(m.attack_paths, 8);
    assert_eq!(m.entry_points, 3);
    assert!((m.attack_impact - 52.2).abs() < 1e-9);

    let reference = case_study::network().build_harm();
    let mr = reference.metrics(&MetricsConfig::default());
    assert_eq!(m, mr);
}

/// Partial patch scenarios: COA improves as the patch round gets lighter.
#[test]
fn patch_scenarios_order_coa() {
    let spec = case_study::network();
    let coa_for = |scenario: PatchScenario| {
        let tiers: Vec<Tier> = spec
            .tiers()
            .iter()
            .map(|t| {
                let a = ServerAnalysis::of_scenario(&t.params, scenario).unwrap();
                Tier::new(t.name.clone(), t.count, a.rates())
            })
            .collect();
        NetworkModel::new(tiers).coa().unwrap()
    };
    let full = coa_for(PatchScenario::Full);
    let os_only = coa_for(PatchScenario::OsOnly);
    let no_reboot = coa_for(PatchScenario::NoReboot);
    let svc_only = coa_for(PatchScenario::ServiceOnly);
    assert!(full < os_only);
    assert!(os_only < no_reboot);
    assert!(no_reboot < svc_only);
    assert!((full - 0.99707).abs() < 5e-5);
}

/// The exact composite model quantifies the hierarchy's optimism.
#[test]
fn composite_exposes_aggregation_error() {
    let dns = case_study::dns_params();
    let composite = CompositeNetwork::build(std::slice::from_ref(&dns), &[1]);
    let exact = composite.coa_exact().unwrap();
    let a = ServerAnalysis::of(&dns).unwrap();
    let aggregated = NetworkModel::new(vec![Tier::new("dns", 1, a.rates())])
        .coa()
        .unwrap();
    // The aggregation ignores failure downtime: optimistic by p_failed.
    assert!(aggregated > exact);
    assert!((aggregated - exact - a.p_failed()).abs() < 1e-4);
}

/// Interval COA sits between 1 and the steady state and reaches it.
#[test]
fn interval_coa_brackets() {
    let spec = case_study::network();
    let analyses = spec.tier_analyses().unwrap();
    let model = spec.network_model(&analyses);
    let steady = model.coa().unwrap();
    let one_day = model.interval_coa(24.0).unwrap();
    assert!(one_day > steady && one_day <= 1.0);
}

/// Temporal CVSS: the paper's patched state corresponds to RL:OF, which
/// demotes every critical vulnerability below the 8.0 threshold.
#[test]
fn temporal_scoring_models_patch_release() {
    let after_patch: TemporalVector = "E:H/RL:OF/RC:C".parse().unwrap();
    for r in &case_study::VULNERABILITIES {
        let base: BaseVector = r.vector.parse().unwrap();
        if base.is_critical(8.0) {
            let t = after_patch.temporal_score(&base);
            assert!(t < base.base_score());
            assert!(t <= 8.7); // 10.0 * 0.87
        }
    }
}

/// Reliability function of the aggregated server: no patch within t.
#[test]
fn server_reliability_function() {
    let a = case_study::dns_params().analyze().unwrap();
    let rates = a.rates();
    let mut c = Ctmc::new(2);
    c.add_transition(0, 1, rates.lambda_eq);
    c.add_transition(1, 0, rates.mu_eq);
    // R(720h) = exp(-λ·720) ≈ 1/e for a monthly clock.
    let r = c.reliability(0, 720.0, |s| s == 0).unwrap();
    assert!((r - (-1.0f64).exp()).abs() < 1e-6);
}

/// Quorum COA composes with the case-study model.
#[test]
fn quorum_coa_on_case_study() {
    let spec = case_study::network();
    let analyses = spec.tier_analyses().unwrap();
    let model = spec.network_model(&analyses);
    let plain = model.coa().unwrap();
    let quorum = model.coa_with_quorum(&[1, 2, 1, 1]).unwrap();
    assert!(quorum < plain);
}

/// Greedy prioritization beats the blanket policy patch-for-patch.
#[test]
fn greedy_patching_efficiency() {
    let harm = case_study::network().build_harm();
    let cfg = MetricsConfig::default();
    let schedule = harm.greedy_patch_order(&cfg, 32);
    // Greedy zeroes the ASP with at most as many patches as the blanket
    // critical set (nine), and the final state is fully closed.
    assert!(schedule.len() <= 9);
    assert_eq!(schedule.last().map(|(_, a)| *a), Some(0.0));
}
