//! Cross-crate integration tests of the public pipeline on non-case-study
//! networks.

use redeval::charts::{radar_data, scatter_ascii, scatter_data};
use redeval::cost::CostModel;
use redeval::decision::ScatterBounds;
use redeval_suite::prelude::*;

/// A three-tier network distinct from the paper's.
fn spec() -> NetworkSpec {
    let tree =
        |cve: &str, imp: f64, p: f64| Some(AttackTree::leaf(Vulnerability::new(cve, imp, p)));
    NetworkSpec::new(
        vec![
            TierSpec {
                name: "edge".into(),
                count: 2,
                params: ServerParams::builder("edge").build(),
                tree: tree("CVE-E", 10.0, 1.0),
                entry: true,
                target: false,
            },
            TierSpec {
                name: "mid".into(),
                count: 1,
                params: ServerParams::builder("mid")
                    .service_patch(Durations::minutes(20.0), Durations::minutes(10.0))
                    .build(),
                tree: tree("CVE-M", 6.4, 0.86),
                entry: false,
                target: false,
            },
            TierSpec {
                name: "store".into(),
                count: 1,
                params: ServerParams::builder("store")
                    .os_patch(Durations::minutes(45.0), Durations::minutes(15.0))
                    .build(),
                tree: tree("CVE-S", 10.0, 0.39),
                entry: false,
                target: true,
            },
        ],
        vec![(0, 1), (1, 2)],
    )
}

#[test]
fn full_pipeline_round_trip() {
    let evaluator = Evaluator::new(spec()).unwrap();
    let designs = evaluator.base().enumerate_designs(2);
    assert_eq!(designs.len(), 8);
    let evals = evaluator.evaluate_all(&designs).unwrap();

    // Every design: sane measure ranges and patch improves security.
    for e in &evals {
        assert!(e.coa > 0.95 && e.coa < 1.0, "{}: {}", e.name, e.coa);
        assert!(e.availability >= e.coa);
        assert!(e.expected_up <= e.total_servers() as f64);
        assert!(e.after.attack_success_probability <= e.before.attack_success_probability);
        assert!(e.after.exploitable_vulnerabilities <= e.before.exploitable_vulnerabilities);
    }

    // Chart data aligns with evaluations.
    let sc = scatter_data(&evals, true);
    assert_eq!(sc.len(), evals.len());
    let plot = scatter_ascii(&sc, 50, 12);
    assert!(plot.contains("[8]"));
    let radar = radar_data(&evals, false);
    assert_eq!(radar.len(), evals.len());

    // Decision + cost compose.
    let bounds = ScatterBounds {
        max_asp: 0.9,
        min_coa: 0.995,
    };
    let region = bounds.region(&evals);
    assert!(!region.is_empty());
    let (cheapest, _) = CostModel::default().cheapest(&evals).unwrap();
    assert!(cheapest.total_servers() <= 8);
}

#[test]
fn harm_and_dot_outputs() {
    let spec = spec();
    let harm = spec.build_harm();
    assert_eq!(harm.graph().host_count(), 4);
    let dot = harm.to_dot();
    assert!(dot.contains("edge1") && dot.contains("edge2") && dot.contains("store1"));

    // SRN DOT of a server model.
    let model = ServerModel::build(&spec.tiers()[0].params);
    let dot = model.net().to_dot();
    assert!(dot.contains("Pclock") && dot.contains("Tsvcprb"));
}

#[test]
fn patch_policies_bracket_each_other() {
    let base = spec();
    let strictest =
        Evaluator::with_options(base.clone(), MetricsConfig::default(), PatchPolicy::All)
            .unwrap()
            .evaluate("x", &[2, 1, 1])
            .unwrap();
    let none = Evaluator::with_options(base, MetricsConfig::default(), PatchPolicy::None)
        .unwrap()
        .evaluate("x", &[2, 1, 1])
        .unwrap();
    assert_eq!(strictest.after.exploitable_vulnerabilities, 0);
    assert_eq!(
        none.after.exploitable_vulnerabilities,
        none.before.exploitable_vulnerabilities
    );
}

#[test]
fn queueing_extension_composes_with_availability() {
    let spec = spec();
    let analyses = spec.tier_analyses().unwrap();
    let model = spec.network_model(&analyses);
    // Edge tier: 2 servers, service rate 30/s, arrivals 20/s.
    let down = model.tier_down_distribution(0).unwrap();
    let dist: Vec<(u32, f64)> = down
        .iter()
        .enumerate()
        .map(|(k, &p)| (2 - k as u32, p))
        .collect();
    let w = redeval_avail::mmc::availability_weighted_response_time(20.0, 30.0, &dist, Some(10.0))
        .unwrap();
    let all_up = redeval_avail::mmc::Mmc::new(20.0, 30.0, 2)
        .unwrap()
        .mean_response_time();
    // Patching windows make the weighted response time slightly worse.
    assert!(w > all_up);
    assert!(w < all_up + 0.1);
}

#[test]
fn core_types_are_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Srn>();
    assert_send_sync::<Harm>();
    assert_send_sync::<NetworkModel>();
    assert_send_sync::<NetworkSpec>();
    assert_send_sync::<Evaluator>();
    assert_send_sync::<DesignEvaluation>();
    assert_send_sync::<ServerModel>();
    assert_send_sync::<Ctmc>();
}

#[test]
fn evaluations_parallelize_across_threads() {
    // The evaluator is shareable; designs can be evaluated concurrently.
    let evaluator = std::sync::Arc::new(Evaluator::new(spec()).unwrap());
    let handles: Vec<_> = (1..=3u32)
        .map(|edge| {
            let ev = evaluator.clone();
            std::thread::spawn(move || ev.evaluate("d", &[edge, 1, 1]).unwrap().coa)
        })
        .collect();
    let coas: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(coas[1] > coas[0]); // 1 -> 2 duplication helps
}

#[test]
fn facade_reexports_are_usable() {
    // Touch every re-exported module through the facade.
    let _ = redeval_suite::redeval_cvss::Severity::from_score(9.0);
    let mut c = Ctmc::new(2);
    c.add_transition(0, 1, 1.0);
    c.add_transition(1, 0, 1.0);
    assert!((c.steady_state().unwrap()[0] - 0.5).abs() < 1e-12);
    let bd = BirthDeath::homogeneous(3, 0.5, 1.5);
    assert_eq!(bd.steady_state().unwrap().len(), 4);
    let mut d = Dtmc::new(2);
    d.add_probability(0, 1, 1.0);
    d.add_probability(1, 0, 1.0);
    assert!((d.steady_state().unwrap()[0] - 0.5).abs() < 1e-12);
}
