//! Integration tests of the declarative scenario API: the JSON form is
//! the contract, so everything here goes through serialized documents
//! rather than in-memory constructors.

use redeval::scenario::{builtin, ScenarioDoc, ScenarioError};
use redeval::{case_study, EvalError, Evaluator, PatchPolicy, SpecIssue, Sweep};

/// The paper document evaluated through `from_scenario` must be
/// indistinguishable — bit for bit — from the hand-built case-study
/// evaluator, for all five Section-IV designs.
#[test]
fn from_scenario_matches_the_case_study_evaluator_bitwise() {
    let json = builtin::paper_case_study().to_json();
    let doc = ScenarioDoc::from_json(&json).unwrap();
    let from_doc = Evaluator::from_scenario(&doc).unwrap();
    let hand = case_study::evaluator().unwrap();
    assert_eq!(from_doc.patch_policy(), hand.patch_policy());
    for d in case_study::five_designs() {
        let a = from_doc.evaluate(&d.name, &d.counts).unwrap();
        let b = hand.evaluate(&d.name, &d.counts).unwrap();
        assert_eq!(a, b, "{} diverges through the scenario path", d.name);
        assert_eq!(a.coa.to_bits(), b.coa.to_bits());
        assert_eq!(
            a.after.attack_success_probability.to_bits(),
            b.after.attack_success_probability.to_bits()
        );
    }
}

/// Editing the serialized document changes the evaluated network — the
/// "bring your own network without recompiling" loop.
#[test]
fn edited_json_changes_the_evaluation() {
    let json = builtin::paper_case_study().to_json();
    // An administrator doubles the DNS tier in the file.
    let edited = json.replace(
        "{\"name\": \"dns\", \"count\": 1,",
        "{\"name\": \"dns\", \"count\": 2,",
    );
    assert_ne!(json, edited, "the edit must hit the document");
    let doc = ScenarioDoc::from_json(&edited).unwrap();
    let spec = doc.to_spec().unwrap();
    assert_eq!(spec.total_servers(), 7);
    let ev = Evaluator::from_scenario(&doc).unwrap();
    let base = ev.evaluate("edited", &[2, 2, 2, 1]).unwrap();
    let orig = case_study::evaluator()
        .unwrap()
        .evaluate("orig", &[1, 2, 2, 1])
        .unwrap();
    assert!(base.coa > orig.coa, "extra DNS redundancy must raise COA");
    assert!(base.before.entry_points > orig.before.entry_points);
}

/// `Sweep::from_scenario` materializes the document's full design ×
/// policy grid, labelled like any other sweep.
#[test]
fn sweep_from_scenario_covers_the_declared_grid() {
    let doc = builtin::iot_fleet();
    let sweep = Sweep::from_scenario(&doc).unwrap();
    assert_eq!(sweep.len(), doc.designs.len() * doc.policies.len());
    let evals = sweep.run().unwrap();
    assert_eq!(evals.len(), 6); // 2 designs × 3 policies
    assert!(evals[0].name.ends_with("no patch"));
    assert!(evals[1].name.ends_with("critical>8"));
    assert!(evals[2].name.ends_with("patch all"));
    // Patch-everything kills the whole attack surface.
    assert_eq!(evals[2].after.exploitable_vulnerabilities, 0);
    // The policy axis never changes availability (same spec, same counts).
    assert_eq!(evals[0].coa.to_bits(), evals[2].coa.to_bits());
}

/// Scenario errors carry enough context to fix the file: syntax errors
/// point at line/column, schema errors at the offending field.
#[test]
fn error_reporting_points_at_the_problem() {
    let e = ScenarioDoc::from_json("{\n  \"schema\": oops\n}").unwrap_err();
    match e {
        EvalError::Scenario(ScenarioError::Json { line, col, .. }) => {
            assert_eq!(line, 2);
            assert!(col > 1);
        }
        other => panic!("expected a JSON error, got {other:?}"),
    }

    let json = builtin::ecommerce()
        .to_json()
        .replace("\"tree\": \"db\"", "\"tree\": \"dbb\"");
    let e = ScenarioDoc::from_json(&json).unwrap_err();
    assert!(e.to_string().contains("unknown tree `dbb`"), "{e}");

    // Structural spec defects surface as typed SpecIssue values even when
    // they arrive via a file.
    let json = builtin::paper_case_study()
        .to_json()
        .replace("\"entry\": true", "\"entry\": false");
    let e = ScenarioDoc::from_json(&json).unwrap_err();
    assert!(matches!(e, EvalError::InvalidSpec(SpecIssue::NoEntryTier)));

    // A self edge in a file is a validation error, not a later panic
    // inside HARM construction.
    let json = builtin::paper_case_study()
        .to_json()
        .replace("[\"app\", \"db\"]", "[\"db\", \"db\"]");
    let e = ScenarioDoc::from_json(&json).unwrap_err();
    assert!(matches!(
        e,
        EvalError::InvalidSpec(SpecIssue::SelfEdge { tier: 3 })
    ));

    // Hostile nesting depth fails with a pointed JSON error instead of
    // exhausting the stack.
    let bomb = format!("{}1{}", "[".repeat(100_000), "]".repeat(100_000));
    let e = ScenarioDoc::from_json(&bomb).unwrap_err();
    assert!(e.to_string().contains("nested deeper"), "{e}");
}

/// The canonical JSON form is a fixed point of parse ∘ serialize for
/// every bundled scenario.
#[test]
fn canonical_form_is_a_fixed_point_for_all_builtins() {
    for s in builtin::BUILTINS {
        let doc = (s.build)();
        let json = doc.to_json();
        let reparsed = ScenarioDoc::from_json(&json).unwrap();
        assert_eq!(reparsed, doc, "{}", s.name);
        assert_eq!(reparsed.to_json(), json, "{}", s.name);
    }
}

/// A document with a policy list drives the evaluator's primary policy;
/// overriding policies (what `eval --policy` does) changes the outcome.
#[test]
fn policy_list_controls_the_evaluator() {
    let mut doc = builtin::paper_case_study();
    doc.policies = vec![PatchPolicy::None];
    let ev = Evaluator::from_scenario(&doc).unwrap();
    assert_eq!(ev.patch_policy(), PatchPolicy::None);
    let e = ev.evaluate("base", &[1, 2, 2, 1]).unwrap();
    assert_eq!(e.before, e.after);

    doc.policies = vec![PatchPolicy::All, PatchPolicy::None];
    let ev = Evaluator::from_scenario(&doc).unwrap();
    assert_eq!(ev.patch_policy(), PatchPolicy::All);
    let e = ev.evaluate("base", &[1, 2, 2, 1]).unwrap();
    assert_eq!(e.after.exploitable_vulnerabilities, 0);
}
