//! Property suite for the serving contract: **a cache hit is
//! byte-identical to a recompute**, across randomized mutations of the
//! bundled paper scenario.
//!
//! Each case derives a document from `builtin::paper_case_study()` —
//! random redundancy designs, a random patch policy, a mutated
//! description — and POSTs it to one long-lived in-process service
//! twice. The first response is a recompute (and must equal the report
//! builder's own bytes); the second must be a cache hit with exactly the
//! same bytes. The service is shared across cases, so the suite also
//! exercises eviction-free steady state with many distinct keys.

use std::sync::OnceLock;

use proptest::prelude::*;
use redeval::scenario::{builtin, ScenarioDoc};
use redeval::{Design, PatchPolicy};
use redeval_bench::{reports, serve};
use redeval_server::{Request, Service, CACHE_HEADER};

/// One service for the whole suite — pool, solve cache and result cache
/// all warm across cases, like a long-running server.
fn service() -> &'static Service {
    static SERVICE: OnceLock<Service> = OnceLock::new();
    SERVICE.get_or_init(|| serve::service(2, 8 << 20))
}

/// A mutated paper document: `n_designs` random per-tier counts in
/// 1..=2 (kept small — every case runs real SRN evaluations) and one of
/// four policies.
fn mutated_doc(counts: &[Vec<u32>], policy_pick: usize, description_pick: u8) -> ScenarioDoc {
    let mut doc = builtin::paper_case_study();
    doc.designs = counts
        .iter()
        .enumerate()
        .map(|(i, c)| Design::new(format!("mutant {i} {c:?}"), c.clone()))
        .collect();
    doc.policies = vec![match policy_pick {
        0 => PatchPolicy::None,
        1 => PatchPolicy::All,
        2 => PatchPolicy::CriticalOnly(8.0),
        _ => PatchPolicy::CriticalOnly(5.5),
    }];
    doc.description = format!("prop_serve mutation #{description_pick}");
    doc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn cache_hit_bytes_equal_recompute_bytes(
        counts in proptest::collection::vec(
            proptest::collection::vec(1u32..=2, 4..5),
            1..3,
        ),
        policy_pick in 0usize..4,
        description_pick in 0u8..=255,
    ) {
        let doc = mutated_doc(&counts, policy_pick, description_pick);
        let body = doc.to_json();
        let svc = service();

        let first = svc.handle(&Request::synthetic("POST", "/v1/eval", body.as_bytes()));
        prop_assert_eq!(first.status, 200);

        // The recompute reference: the CLI's own report builder.
        let reference = reports::scenario::eval_report(&doc)
            .expect("mutated paper scenario evaluates")
            .to_json();
        prop_assert_eq!(std::str::from_utf8(&first.body).unwrap(), reference.as_str());

        // The repeat must hit and be byte-identical.
        let second = svc.handle(&Request::synthetic("POST", "/v1/eval", body.as_bytes()));
        prop_assert_eq!(second.status, 200);
        prop_assert!(
            second.extra_headers.contains(&(CACHE_HEADER, "hit".to_string())),
            "expected a cache hit, got {:?}",
            second.extra_headers
        );
        prop_assert_eq!(first.body, second.body);
    }
}
