//! Incremental re-evaluation, pinned differentially (ISSUE 8).
//!
//! A session-scoped [`AnalysisCache`] keys per-tier SRN solves by
//! parameter *content*, so editing one field of a scenario document and
//! re-evaluating through the same cache re-solves only what the edit
//! invalidated:
//!
//! * a rate edit on one tier invalidates exactly **one** content entry;
//! * a vulnerability edit (HARM layer) costs **zero** solves;
//! * renaming a tier costs zero solves — the cached solve is relabeled.
//!
//! Each incremental response must be byte-identical to a cold
//! evaluation of the mutated document on a fresh cache: the cache may
//! only save work, never change bytes. This is the serving-path
//! guarantee (`redeval serve` keeps one `AnalysisCache` across
//! requests), exercised here directly against the report builder.

use std::sync::Arc;

use redeval::exec::{AnalysisCache, Pool};
use redeval::scenario::{builtin, ScenarioDoc, VulnSource};
use redeval::Durations;
use redeval_bench::reports::scenario::{eval_report, eval_report_on};

/// Evaluates `doc` on the shared session cache and pins the bytes
/// against a cold run.
///
/// Solve *counts* are only bounded, not exact: `Pool::run_batch` has
/// the caller take a share of the work, so even `Pool::new(1)` runs
/// cells on two threads (caller + one worker), and concurrent first
/// requests for one new key may each solve it (the solve runs outside
/// the cache lock; first insert wins). [`AnalysisCache::len`] — the
/// number of distinct parameter contents — is the deterministic
/// measure of what an edit invalidated.
fn incremental_eval(doc: &ScenarioDoc, pool: &Pool, cache: &Arc<AnalysisCache>) -> String {
    let warm = eval_report_on(doc, pool, cache)
        .expect("incremental eval")
        .to_json();
    let cold = eval_report(doc).expect("cold eval").to_json();
    assert_eq!(
        warm, cold,
        "incremental re-evaluation diverged from a cold evaluation"
    );
    warm
}

#[test]
fn single_field_edits_resolve_only_the_affected_tier() {
    let pool = Pool::new(1);
    let cache = Arc::new(AnalysisCache::new());
    let base = builtin::paper_case_study();

    // Session start: the cold evaluation populates one cache entry per
    // distinct tier parameterization.
    incremental_eval(&base, &pool, &cache);
    let cold_solves = cache.solves();
    let cold_entries = cache.len();
    assert!(cold_solves >= 1, "cold run must solve");

    // Re-submitting the unchanged document costs zero solves — every
    // key is present, so no request can miss (this one IS exact).
    incremental_eval(&base, &pool, &cache);
    assert_eq!(cache.solves(), cold_solves, "unchanged doc re-solved");

    // One rate edit on the db tier invalidates exactly one content
    // entry; the new key is solved at least once and at most once per
    // executing thread (caller + one worker — see the helper's doc).
    let mut rate_edit = base.clone();
    rate_edit.tiers[3].params.patch_interval = Durations::days(31.0);
    incremental_eval(&rate_edit, &pool, &cache);
    let rate_solves = cache.solves();
    assert_eq!(
        cache.len(),
        cold_entries + 1,
        "a one-tier rate edit must invalidate exactly that tier"
    );
    assert!(
        (1..=2).contains(&(rate_solves - cold_solves)),
        "the edited tier solves once per racing thread at most \
         (got {} new solves)",
        rate_solves - cold_solves
    );

    // A vulnerability edit changes the HARM layer only: the tier CTMCs
    // are untouched, so no key is new — zero solves, exactly.
    let mut vuln_edit = base.clone();
    vuln_edit.vulnerabilities[0].source = VulnSource::Explicit {
        impact: 9.0,
        probability: 0.7,
        base_score: None,
    };
    incremental_eval(&vuln_edit, &pool, &cache);
    assert_eq!(
        cache.solves(),
        rate_solves,
        "a vulnerability edit must not re-solve any tier"
    );
    assert_eq!(cache.len(), cold_entries + 1);

    // Renaming a tier (name, its parameter label, and the edges that
    // reference it) is a relabel of the cached solve, not a re-solve.
    let relabels_before = cache.relabels();
    let mut rename = base.clone();
    rename.tiers[1].name = "web_front".into();
    rename.tiers[1].params.name = "web_front".into();
    for edge in &mut rename.edges {
        if edge.0 == "web" {
            edge.0 = "web_front".into();
        }
        if edge.1 == "web" {
            edge.1 = "web_front".into();
        }
    }
    incremental_eval(&rename, &pool, &cache);
    assert_eq!(
        cache.solves(),
        rate_solves,
        "a rename must not re-solve the renamed tier"
    );
    assert!(
        cache.relabels() > relabels_before,
        "the rename must be served as a relabel of the cached solve"
    );
    assert_eq!(cache.len(), cold_entries + 1, "relabels share the entry");

    // The edited documents are distinct contents, not overwrites: the
    // original still answers without solving.
    incremental_eval(&base, &pool, &cache);
    assert_eq!(cache.solves(), rate_solves);
}

#[test]
fn mutation_corpus_stays_byte_identical_to_cold_evaluation() {
    // A broader differential sweep: every mutation in the corpus is
    // evaluated incrementally on one long-lived cache and compared
    // byte-for-byte against a cold evaluation of the same document.
    let pool = Pool::new(1);
    let cache = Arc::new(AnalysisCache::new());
    let base = builtin::paper_case_study();
    incremental_eval(&base, &pool, &cache);

    type Mutation = Box<dyn Fn(&mut ScenarioDoc)>;
    let mutations: Vec<(&str, Mutation)> = vec![
        (
            "dns hardware mtbf",
            Box::new(|d| d.tiers[0].params.hw_mtbf = Durations::hours(900.0)),
        ),
        (
            "web service repair",
            Box::new(|d| d.tiers[1].params.svc_repair = Durations::minutes(45.0)),
        ),
        (
            "app os patch window",
            Box::new(|d| d.tiers[2].params.os_patch = Durations::minutes(70.0)),
        ),
        (
            "db patch interval",
            Box::new(|d| d.tiers[3].params.patch_interval = Durations::days(14.0)),
        ),
        ("description", Box::new(|d| d.description = "edited".into())),
        (
            "design counts",
            Box::new(|d| d.designs[0].counts = vec![1, 3, 2, 1]),
        ),
    ];
    for (label, mutate) in &mutations {
        let mut doc = base.clone();
        mutate(&mut doc);
        let entries_before = cache.len();
        let solves_before = cache.solves();
        incremental_eval(&doc, &pool, &cache);
        assert!(
            cache.len() <= entries_before + 1,
            "{label}: a single-field edit invalidated more than one tier"
        );
        // At most one new key, solved at most once per executing
        // thread (caller + one pool worker — see the helper's doc).
        assert!(
            cache.solves() <= solves_before + 2,
            "{label}: more solves than one racing key permits"
        );
    }
}
