//! Counter-determinism differential suite (ISSUE 10 acceptance).
//!
//! The telemetry contract (DESIGN.md §14) splits signals into
//! deterministic counters and wall-clock spans. This suite pins the
//! deterministic half: for the paper case-study evaluation, the pruned
//! optimize search and the attacker–defender equilibrium, the full
//! counter snapshot — serialized to its canonical JSON — is
//! **byte-identical** at 1, 2 and 4 worker threads. That holds because
//! every instrumented site counts *work done* (cells, solves, boxes,
//! masks), never scheduling artifacts, and because the analysis cache
//! single-flights concurrent solves so a hit/solve split cannot depend
//! on thread interleaving.

use std::sync::Arc;

use redeval::exec::{AnalysisCache, Pool};
use redeval::scenario::builtin;
use redeval::telemetry::{Counter, Telemetry};
use redeval_bench::reports;
use redeval_server::{EquilibriumRequest, OptimizeRequest};

/// Runs `work` on a fresh pool + instrumented cache and returns the
/// canonical counter-snapshot JSON.
fn counters_at(threads: usize, work: impl Fn(&Pool, &Arc<AnalysisCache>)) -> String {
    let tel = Telemetry::counters();
    let pool = Pool::new(threads);
    let cache = Arc::new(AnalysisCache::with_telemetry(tel.clone()));
    work(&pool, &cache);
    tel.snapshot().to_json()
}

#[test]
fn eval_counters_are_byte_identical_across_thread_counts() {
    let doc = builtin::paper_case_study();
    let run = |pool: &Pool, cache: &Arc<AnalysisCache>| {
        reports::scenario::eval_report_on(&doc, pool, cache).expect("paper scenario evaluates");
    };
    let base = counters_at(1, run);
    assert!(base.contains("\"cells_evaluated\":"));
    for threads in [2, 4] {
        assert_eq!(
            base,
            counters_at(threads, run),
            "eval counters differ between 1 and {threads} threads"
        );
    }
}

#[test]
fn optimize_counters_are_byte_identical_across_thread_counts() {
    let req = OptimizeRequest {
        doc: builtin::paper_case_study(),
        policies: None,
        max_redundancy: Some(3),
        bounds: None,
    };
    let run = |pool: &Pool, cache: &Arc<AnalysisCache>| {
        reports::optimize::optimize_report_on(&req, pool, cache).expect("paper scenario optimizes");
    };
    let base = counters_at(1, run);
    let one = counters_at(1, run);
    assert_eq!(base, one, "optimize counters differ between two runs");
    for threads in [2, 4] {
        assert_eq!(
            base,
            counters_at(threads, run),
            "optimize counters differ between 1 and {threads} threads"
        );
    }
}

#[test]
fn equilibrium_counters_are_byte_identical_across_thread_counts() {
    let req = EquilibriumRequest {
        doc: builtin::paper_case_study(),
        policies: None,
        max_redundancy: Some(2),
        max_iters: None,
    };
    let run = |pool: &Pool, cache: &Arc<AnalysisCache>| {
        reports::equilibrium::equilibrium_report_on(&req, pool, cache)
            .expect("paper scenario reaches equilibrium");
    };
    let base = counters_at(1, run);
    assert!(base.contains("\"equilibrium_rounds\":"));
    for threads in [2, 4] {
        assert_eq!(
            base,
            counters_at(threads, run),
            "equilibrium counters differ between 1 and {threads} threads"
        );
    }
}

/// The `--profile` acceptance shape: the Chrome-trace file's trailing
/// `"counters"` object — the only part of the trace the determinism
/// contract covers — is byte-identical across 1/2/4 threads even in
/// profiler mode, where spans *are* being recorded concurrently.
#[test]
fn profiler_trace_counter_object_is_thread_invariant() {
    let doc = builtin::paper_case_study();
    let trace_counters = |threads: usize| -> String {
        let tel = Telemetry::profiler();
        let pool = Pool::new(threads);
        let cache = Arc::new(AnalysisCache::with_telemetry(tel.clone()));
        reports::scenario::eval_report_on(&doc, &pool, &cache).expect("paper scenario evaluates");
        let trace = tel.chrome_trace_json();
        let at = trace.find("\"counters\":").expect("trace carries counters");
        trace[at..].to_string()
    };
    let base = trace_counters(1);
    for threads in [2, 4] {
        assert_eq!(
            base,
            trace_counters(threads),
            "trace counters differ between 1 and {threads} threads"
        );
    }
}

/// The solver-facing counters carry real totals, and the worst residual
/// survives aggregation: after an instrumented evaluation the snapshot
/// reports at least one solve, states ≥ solves, and a residual in the
/// solver's tolerance band.
#[test]
fn solver_counters_reflect_the_work_done() {
    let tel = Telemetry::counters();
    let pool = Pool::new(2);
    let cache = Arc::new(AnalysisCache::with_telemetry(tel.clone()));
    let doc = builtin::paper_case_study();
    reports::scenario::eval_report_on(&doc, &pool, &cache).expect("paper scenario evaluates");
    let snap = tel.snapshot();
    let solves = snap.get(Counter::SolverSolves);
    assert!(solves > 0, "evaluation performed no solves");
    assert_eq!(
        solves,
        snap.get(Counter::CacheSolves),
        "every solve goes through the analysis cache"
    );
    assert!(
        snap.get(Counter::CacheHits) > 0,
        "case-study tiers share solves"
    );
    assert!(
        snap.get(Counter::SolverStates) >= solves,
        "states accumulate per solve"
    );
    assert!(
        snap.solver_residual_max.is_finite() && snap.solver_residual_max < 1e-9,
        "residual max {} outside the tolerance band",
        snap.solver_residual_max
    );
}
