//! Concurrency suite for the warm serving path: many client threads
//! hammering one fully wired [`Service`] must each see responses
//! byte-identical to the CLI report builder's output, and the cache
//! counters must stay coherent (no lost or double-counted requests).
//!
//! The service is driven in-process through [`Request::synthetic`] — the
//! socket layer has its own loopback suite (`tests/serve.rs` and the
//! server crate's `graceful.rs`); this one isolates the shared-state
//! question: the result cache, the analysis cache and the atomic
//! counters under simultaneous readers and writers.

use std::sync::{Arc, Barrier};

use redeval::scenario::builtin;
use redeval_bench::{reports, serve};
use redeval_server::{Request, Service, CACHE_HEADER};

/// Distinct canonical documents (the description participates in the
/// canonical bytes, hence in the cache key).
fn distinct_docs(n: usize) -> Vec<(String, Vec<u8>)> {
    let base = builtin::paper_case_study();
    (0..n)
        .map(|i| {
            let mut doc = base.clone();
            doc.description = format!("{} [concurrency {i}]", doc.description);
            let expected = reports::scenario::eval_report(&doc)
                .expect("reference eval")
                .to_json()
                .into_bytes();
            (doc.to_json(), expected)
        })
        .collect()
}

/// Pulls an integer stats field out of the `/v1/stats` report text.
fn stats_field(svc: &Service, name: &str) -> i64 {
    let resp = svc.handle(&Request::synthetic("GET", "/v1/stats", b""));
    assert_eq!(resp.status, 200);
    let text = String::from_utf8(resp.body).expect("stats is UTF-8");
    let needle = format!("\"{name}\": ");
    let rest = &text[text
        .find(&needle)
        .unwrap_or_else(|| panic!("{name} in {text}"))
        + needle.len()..];
    rest.split(|c: char| !c.is_ascii_digit() && c != '-')
        .next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("numeric {name} in {text}"))
}

#[test]
fn concurrent_clients_get_byte_identical_responses_and_coherent_counters() {
    const THREADS: usize = 8;
    const REPS: usize = 5;
    let docs = Arc::new(distinct_docs(4));
    let svc = Arc::new(serve::service(2, 1 << 20));

    // Warm sequentially: every key computes exactly once.
    for (body, expected) in docs.iter() {
        let resp = svc.handle(&Request::synthetic("POST", "/v1/eval", body.as_bytes()));
        assert_eq!(resp.status, 200);
        assert!(resp.extra_headers.contains(&(CACHE_HEADER, "miss".into())));
        assert_eq!(&resp.body, expected, "cold bytes diverge from the CLI's");
    }

    // Hammer: every thread walks the document set in its own rotation,
    // so at any instant different threads read different keys and the
    // same key concurrently.
    let barrier = Arc::new(Barrier::new(THREADS));
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let docs = Arc::clone(&docs);
            let svc = Arc::clone(&svc);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for rep in 0..REPS {
                    for k in 0..docs.len() {
                        let (body, expected) = &docs[(t + rep + k) % docs.len()];
                        let resp =
                            svc.handle(&Request::synthetic("POST", "/v1/eval", body.as_bytes()));
                        assert_eq!(resp.status, 200, "thread {t} rep {rep}");
                        assert!(
                            resp.extra_headers.contains(&(CACHE_HEADER, "hit".into())),
                            "warm request missed (thread {t} rep {rep})"
                        );
                        assert_eq!(
                            &resp.body, expected,
                            "concurrent response bytes diverged (thread {t})"
                        );
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }

    // Counter coherence: the warm pass misses once per document, the
    // hammer only hits, and every request is accounted for.
    let distinct = docs.len() as i64;
    let hammered = (THREADS * REPS * docs.len()) as i64;
    assert_eq!(stats_field(&svc, "cache_misses"), distinct);
    assert_eq!(stats_field(&svc, "cache_hits"), hammered);
    assert_eq!(stats_field(&svc, "cache_entries"), distinct);
    // 1 stats probe per field read so far + warm + hammer requests.
    assert_eq!(
        stats_field(&svc, "requests"),
        distinct + hammered + 4,
        "requests counter lost updates"
    );
}

#[test]
fn concurrent_cold_requests_on_one_key_converge_to_one_entry() {
    // The cold race: several threads post the same never-seen document
    // at once. Duplicate computation is permitted (each racer may
    // evaluate), but every response must carry the same bytes and the
    // cache must converge to exactly one entry, with every request
    // counted as either a hit or a miss.
    const THREADS: usize = 6;
    let (body, expected) = distinct_docs(1).pop().expect("one document");
    let body = Arc::new(body);
    let expected = Arc::new(expected);
    let svc = Arc::new(serve::service(2, 1 << 20));
    let barrier = Arc::new(Barrier::new(THREADS));
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let body = Arc::clone(&body);
            let expected = Arc::clone(&expected);
            let svc = Arc::clone(&svc);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let resp = svc.handle(&Request::synthetic("POST", "/v1/eval", body.as_bytes()));
                assert_eq!(resp.status, 200, "racer {t}");
                assert_eq!(*resp.body, **expected, "racer {t} got divergent bytes");
            })
        })
        .collect();
    for w in workers {
        w.join().expect("racer thread");
    }
    assert_eq!(stats_field(&svc, "cache_entries"), 1);
    let hits = stats_field(&svc, "cache_hits");
    let misses = stats_field(&svc, "cache_misses");
    assert_eq!(hits + misses, THREADS as i64, "a request went uncounted");
    assert!(misses >= 1, "somebody must have computed");
}
