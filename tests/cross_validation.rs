//! Simulation-vs-analytic cross-validation (kept at moderate horizons so
//! `cargo test` stays fast; the `validate_sim` bench binary runs longer).

use redeval::case_study;
use redeval::{AspStrategy, MetricsConfig};
use redeval_suite::prelude::*;

#[test]
fn server_availability_sim_matches_srn() {
    let params = case_study::dns_params();
    let analysis = params.analyze().unwrap();
    let model = ServerModel::build(&params);
    let places = *model.places();
    let mut sim = Simulation::new(model.net(), 424_242);
    sim.add_reward(
        "avail",
        move |m| {
            if places.service_up(m) {
                1.0
            } else {
                0.0
            }
        },
    );
    sim.add_reward("patching", move |m| {
        if places.down_due_to_patch(m) {
            1.0
        } else {
            0.0
        }
    });
    let out = sim.run(1_000.0, 400_000.0, 20).unwrap();
    let avail = &out.rewards[0];
    assert!(
        (avail.mean - analysis.availability()).abs() < (3.0 * avail.ci95).max(1e-3),
        "sim {} ± {} vs analytic {}",
        avail.mean,
        avail.ci95,
        analysis.availability()
    );
    let patching = &out.rewards[1];
    assert!(
        (patching.mean - analysis.p_patch_down()).abs() < (4.0 * patching.ci95).max(2e-4),
        "sim {} ± {} vs analytic {}",
        patching.mean,
        patching.ci95,
        analysis.p_patch_down()
    );
}

#[test]
fn network_coa_sim_matches_product_form() {
    let spec = case_study::network();
    let analyses = spec.tier_analyses().unwrap();
    let model = spec.network_model(&analyses);
    let analytic = model.coa().unwrap();
    let est = simulate_coa(&model, 800_000.0, 90_210).unwrap();
    assert!(
        (est.mean - analytic).abs() < (3.0 * est.ci95).max(5e-4),
        "sim {} ± {} vs analytic {analytic}",
        est.mean,
        est.ci95
    );
}

#[test]
fn attack_mc_matches_reliability_before_and_after() {
    let harm = case_study::network().build_harm();
    for (label, h) in [
        ("before", harm.clone()),
        ("after", harm.patched_critical(8.0)),
    ] {
        let exact = h
            .metrics(&MetricsConfig {
                asp: AspStrategy::Reliability,
                ..Default::default()
            })
            .attack_success_probability;
        let mc = estimate_asp(&h, 150_000, 1_618);
        assert!(
            (mc.mean - exact).abs() < (4.0 * mc.ci95).max(1e-3),
            "{label}: sim {} ± {} vs exact {exact}",
            mc.mean,
            mc.ci95
        );
    }
}

#[test]
fn transient_probability_consistent_with_simulation_intuition() {
    // At t = 0 everything is up; the transient P(all up) must start at 1
    // and decrease towards the steady state.
    let spec = case_study::network();
    let analyses = spec.tier_analyses().unwrap();
    let model = spec.network_model(&analyses);
    let (net, ups) = model.to_srn();
    let counts: Vec<u32> = model.tiers().iter().map(|t| t.count).collect();
    let solved = net.solve().unwrap();
    let all_up =
        |m: &redeval_srn::Marking| ups.iter().zip(&counts).all(|(&p, &c)| m.tokens(p) == c);
    let p0 = solved.transient_probability(0.0, all_up).unwrap();
    assert!((p0 - 1.0).abs() < 1e-12);
    let p1 = solved.transient_probability(1.0, all_up).unwrap();
    let p_steady = solved.probability(all_up);
    assert!(p1 <= 1.0 && p1 >= p_steady - 1e-9);
    let p_inf = solved.transient_probability(100_000.0, all_up).unwrap();
    assert!((p_inf - p_steady).abs() < 1e-6);
}
