//! Differential tests for the equilibrium front doors (ISSUE 9
//! satellite): the in-process report builder
//! (`reports::equilibrium::equilibrium_report`), the CLI
//! (`redeval equilibrium`) and the served endpoint
//! (`POST /v1/equilibrium`) must emit **byte-identical** reports for
//! the same request, over generated scenarios from every family — and
//! the iteration itself must be bitwise invariant across runs and
//! thread counts (1, 2 and 4), whether it converges or the cycle
//! detector fires.

use std::fs;
use std::path::PathBuf;

use redeval::equilibrium::EquilibriumAnalyzer;
use redeval::scenario::generate::{self, Family, GenParams};
use redeval::scenario::ScenarioDoc;
use redeval::PatchPolicy;
use redeval_bench::{cli, reports, serve};
use redeval_server::{EquilibriumRequest, Request, CACHE_HEADER};

/// The differential corpus: one document per generator family, small
/// enough that every Gauss-Seidel round stays cheap. Single-policy
/// documents converge; the multi-policy mesh case exercises whichever
/// stop reason the iteration deterministically reaches.
fn corpus() -> Vec<(ScenarioDoc, u32)> {
    vec![
        (
            generate::generate(
                Family::EcommerceFleet,
                &GenParams {
                    tiers: 4,
                    redundancy: 2,
                    designs: 1,
                    policies: 1,
                },
                0,
            ),
            2,
        ),
        (
            generate::generate(
                Family::IotSwarm,
                &GenParams {
                    tiers: 6,
                    redundancy: 2,
                    designs: 1,
                    policies: 1,
                },
                1,
            ),
            2,
        ),
        (
            generate::generate(
                Family::MicroserviceMesh,
                &GenParams {
                    tiers: 5,
                    redundancy: 2,
                    designs: 1,
                    policies: 2,
                },
                2,
            ),
            3,
        ),
    ]
}

/// The headline determinism contract: the outcome is bitwise identical
/// across repeated runs and across thread counts, for every corpus
/// document and stop reason.
#[test]
fn equilibrium_outcome_is_bitwise_invariant_across_threads() {
    for (doc, max_redundancy) in corpus() {
        let reference = EquilibriumAnalyzer::from_scenario(&doc)
            .unwrap_or_else(|e| panic!("{}: {e}", doc.name))
            .max_redundancy(max_redundancy)
            .threads(1)
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", doc.name));
        assert!(
            reference.converged || reference.cycle_detected,
            "{}: the corpus iteration must stop for a stated reason",
            doc.name
        );
        for threads in [1usize, 2, 4] {
            let outcome = EquilibriumAnalyzer::from_scenario(&doc)
                .unwrap()
                .max_redundancy(max_redundancy)
                .threads(threads)
                .run()
                .unwrap_or_else(|e| panic!("{} @ {threads} threads: {e}", doc.name));
            assert_eq!(
                outcome, reference,
                "{} @ {threads} threads: outcome diverges",
                doc.name
            );
            assert_eq!(
                outcome.attacker_asp.to_bits(),
                reference.attacker_asp.to_bits(),
                "{} @ {threads} threads: attacker ASP bits diverge",
                doc.name
            );
            assert_eq!(
                outcome.defender.after.attack_success_probability.to_bits(),
                reference
                    .defender
                    .after
                    .attack_success_probability
                    .to_bits(),
                "{} @ {threads} threads: defender ASP bits diverge",
                doc.name
            );
        }
    }
}

/// The three front doors — in-process builder, CLI, served endpoint —
/// emit identical report bytes for the same equilibrium request, and
/// services at different worker counts serve the same bytes.
#[test]
fn equilibrium_front_doors_emit_identical_bytes() {
    let dir: PathBuf = std::env::temp_dir().join(format!("redeval-eq-diff-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    for (i, (doc, max_redundancy)) in corpus().into_iter().enumerate() {
        // One case also overrides the policy list and the round cap, so
        // the override plumbing of every door is exercised.
        let with_overrides = i == 2;
        let max_iters = with_overrides.then_some(8u32);

        // Door 1: the in-process report builder.
        let req = EquilibriumRequest {
            doc: doc.clone(),
            policies: with_overrides.then(|| vec![PatchPolicy::All]),
            max_redundancy: Some(max_redundancy),
            max_iters,
        };
        let in_process = reports::equilibrium::equilibrium_report(&req)
            .unwrap_or_else(|e| panic!("{}: {e}", doc.name))
            .to_json();

        // Door 2: the CLI, end to end through a real file.
        let scenario_file = dir.join(format!("{}.json", doc.name));
        fs::write(&scenario_file, doc.to_json()).expect("write scenario");
        let mut args = vec![
            "equilibrium".to_string(),
            "--scenario".to_string(),
            scenario_file.to_str().unwrap().to_string(),
            "--max-redundancy".to_string(),
            max_redundancy.to_string(),
            "--format".to_string(),
            "json".to_string(),
            "--out".to_string(),
            dir.to_str().unwrap().to_string(),
        ];
        if with_overrides {
            args.extend([
                "--policy".to_string(),
                "all".to_string(),
                "--max-iters".to_string(),
                "8".to_string(),
            ]);
        }
        assert_eq!(cli::run(&args), 0, "CLI equilibrium of {} failed", doc.name);
        let cli_bytes = fs::read_to_string(dir.join(format!("equilibrium_{}.json", doc.name)))
            .expect("CLI wrote the report");

        // Door 3: the served endpoint at 1, 2 and 4 workers — wired
        // exactly as `redeval serve`, byte-identical at every width.
        let overrides_field = if with_overrides {
            ", \"policies\": [\"all\"], \"max_iters\": 8"
        } else {
            ""
        };
        let body = format!(
            "{{\"scenario\": {}, \"max_redundancy\": {max_redundancy}{overrides_field}}}",
            doc.to_json().trim_end()
        );
        for threads in [1usize, 2, 4] {
            let svc = serve::service(threads, 8 * 1024 * 1024);
            let resp = svc.handle(&Request::synthetic(
                "POST",
                "/v1/equilibrium",
                body.as_bytes(),
            ));
            assert_eq!(
                resp.status,
                200,
                "{} fails via /v1/equilibrium @ {threads} workers: {}",
                doc.name,
                String::from_utf8_lossy(&resp.body)
            );
            let served = String::from_utf8(resp.body).expect("UTF-8 report");
            assert_eq!(
                in_process, served,
                "{}: serve @ {threads} workers diverges",
                doc.name
            );
            // Replay: the served path answers from its cache, same bytes.
            let replay = svc.handle(&Request::synthetic(
                "POST",
                "/v1/equilibrium",
                body.as_bytes(),
            ));
            assert!(replay
                .extra_headers
                .contains(&(CACHE_HEADER, "hit".to_string())));
            assert_eq!(String::from_utf8(replay.body).unwrap(), in_process);
        }

        assert_eq!(in_process, cli_bytes, "{}: CLI diverges", doc.name);
    }
    let _ = fs::remove_dir_all(&dir);
}
