//! Solver cross-validation over the generated corpus: on every tier
//! CTMC of a generated scenario (real server SRNs with seed-jittered,
//! stiff rate constants — hardware MTBFs in years against patch
//! reboots in minutes), the three steady-state methods must agree:
//!
//! * **GTH** is the reference (direct, subtraction-free);
//! * **Gauss–Seidel** — the method `Auto` uses above the dense
//!   threshold — must match GTH tightly at its default tolerance;
//! * **Power** iteration is the independent cross-check: slower on
//!   stiff chains (its step size is bounded by the fastest rate), so it
//!   runs with a raised iteration budget and is held to a looser but
//!   still decisive tolerance.
//!
//! Agreement is checked on the full distribution (max-norm) and on the
//! probability-weighted quantity the evaluator actually consumes
//! (service availability).

use redeval::scenario::generate::{self, GenParams};
use redeval_avail::ServerModel;
use redeval_markov::{SteadyStateMethod, SteadyStateOptions};

fn solve(
    ctmc: &redeval_markov::Ctmc,
    method: SteadyStateMethod,
    tolerance: f64,
    max_iterations: usize,
) -> Vec<f64> {
    ctmc.steady_state_with(&SteadyStateOptions {
        method,
        tolerance,
        max_iterations,
        ..Default::default()
    })
    .unwrap_or_else(|e| panic!("{method:?} fails: {e:?}"))
}

#[test]
fn steady_state_methods_agree_on_generated_tier_ctmcs() {
    let mut chains = 0usize;
    for family in generate::FAMILIES {
        for seed in [5u64, 23] {
            let params = GenParams {
                tiers: 6,
                redundancy: 2,
                designs: 1,
                policies: 1,
            };
            let doc = generate::generate(family, &params, seed);
            for tier in &doc.tiers {
                let model = ServerModel::build(&tier.params);
                let ss = model.net().state_space().expect("server SRN is finite");
                let ctmc = ss.ctmc();
                let gth = solve(ctmc, SteadyStateMethod::Gth, 1e-13, 200_000);
                let gs = solve(ctmc, SteadyStateMethod::GaussSeidel, 1e-13, 200_000);
                let power = solve(ctmc, SteadyStateMethod::Power, 1e-9, 5_000_000);

                let sum: f64 = gth.iter().sum();
                assert!((sum - 1.0).abs() < 1e-12, "{}/{}", doc.name, tier.name);
                let max_gs = gth
                    .iter()
                    .zip(&gs)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                let max_power = gth
                    .iter()
                    .zip(&power)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                assert!(
                    max_gs < 1e-9,
                    "{}/{}: GTH vs Gauss–Seidel diverge by {max_gs:e}",
                    doc.name,
                    tier.name
                );
                assert!(
                    max_power < 1e-6,
                    "{}/{}: GTH vs Power diverge by {max_power:e}",
                    doc.name,
                    tier.name
                );

                // The quantity the evaluator consumes: P(service up).
                let places = *model.places();
                let up = |pi: &[f64]| -> f64 {
                    ss.tangible_markings()
                        .iter()
                        .zip(pi)
                        .filter(|(m, _)| places.service_up(m))
                        .map(|(_, p)| p)
                        .sum()
                };
                let a_gth = up(&gth);
                let a_gs = up(&gs);
                let a_power = up(&power);
                assert!(
                    (a_gth - a_gs).abs() < 1e-10 && (a_gth - a_power).abs() < 1e-7,
                    "{}/{}: availability {a_gth} vs GS {a_gs} vs Power {a_power}",
                    doc.name,
                    tier.name
                );
                chains += 1;
            }
        }
    }
    // Six tiers per document, two seeds, three families.
    assert_eq!(chains, 36, "the corpus shrank; the property lost coverage");
}

/// Convergence budgets on the success path (ISSUE 10): the
/// [`SolveStats`](redeval_markov::SolveStats) every solve now reports —
/// the numbers the telemetry layer aggregates into `solver_iterations`
/// and `solver_residual_max` — must be sane on real tier chains: GTH is
/// direct (0 iterations, residual within float noise), Gauss–Seidel
/// converges inside a small fraction of its iteration budget with a
/// residual at or under the requested tolerance, and both report the
/// same solved-class size.
#[test]
fn solve_stats_respect_convergence_budgets_on_generated_tiers() {
    let params = GenParams {
        tiers: 6,
        redundancy: 2,
        designs: 1,
        policies: 1,
    };
    for family in generate::FAMILIES {
        let doc = generate::generate(family, &params, 5);
        for tier in &doc.tiers {
            let model = ServerModel::build(&tier.params);
            let ss = model.net().state_space().expect("server SRN is finite");
            let ctmc = ss.ctmc();
            let with_stats = |method, tolerance, max_iterations| {
                ctmc.steady_state_with_stats(&SteadyStateOptions {
                    method,
                    tolerance,
                    max_iterations,
                    ..Default::default()
                })
                .unwrap_or_else(|e| panic!("{method:?} fails: {e:?}"))
            };
            let (_, gth) = with_stats(SteadyStateMethod::Gth, 1e-13, 200_000);
            let (_, gs) = with_stats(SteadyStateMethod::GaussSeidel, 1e-13, 200_000);
            let label = format!("{}/{}", doc.name, tier.name);
            assert_eq!(gth.method, SteadyStateMethod::Gth, "{label}");
            assert_eq!(gth.iterations, 0, "{label}: GTH is direct");
            assert!(
                gth.residual < 1e-10,
                "{label}: GTH a-posteriori residual {:e}",
                gth.residual
            );
            assert_eq!(gs.method, SteadyStateMethod::GaussSeidel, "{label}");
            assert!(gs.iterations > 0, "{label}: an iterative solve iterates");
            assert!(
                gs.iterations < 20_000,
                "{label}: Gauss–Seidel needed {} sweeps — the chain got \
                 pathologically stiff or the solver regressed",
                gs.iterations
            );
            // The reported residual is a-posteriori (balance-equation
            // defect), not the iterate delta the tolerance bounds, so
            // hold it to the same float-noise band as GTH.
            assert!(
                gs.residual < 1e-10,
                "{label}: converged residual {:e} above the noise band",
                gs.residual
            );
            assert_eq!(
                gth.states, gs.states,
                "{label}: methods solved different closed classes"
            );
            assert!(
                gth.states > 0 && gth.states <= ss.tangible_markings().len(),
                "{label}: solved class size {} outside the tangible space",
                gth.states
            );
        }
    }
}
