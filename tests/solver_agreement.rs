//! Solver cross-validation over the generated corpus: on every tier
//! CTMC of a generated scenario (real server SRNs with seed-jittered,
//! stiff rate constants — hardware MTBFs in years against patch
//! reboots in minutes), the three steady-state methods must agree:
//!
//! * **GTH** is the reference (direct, subtraction-free);
//! * **Gauss–Seidel** — the method `Auto` uses above the dense
//!   threshold — must match GTH tightly at its default tolerance;
//! * **Power** iteration is the independent cross-check: slower on
//!   stiff chains (its step size is bounded by the fastest rate), so it
//!   runs with a raised iteration budget and is held to a looser but
//!   still decisive tolerance.
//!
//! Agreement is checked on the full distribution (max-norm) and on the
//! probability-weighted quantity the evaluator actually consumes
//! (service availability).

use redeval::scenario::generate::{self, GenParams};
use redeval_avail::ServerModel;
use redeval_markov::{SteadyStateMethod, SteadyStateOptions};

fn solve(
    ctmc: &redeval_markov::Ctmc,
    method: SteadyStateMethod,
    tolerance: f64,
    max_iterations: usize,
) -> Vec<f64> {
    ctmc.steady_state_with(&SteadyStateOptions {
        method,
        tolerance,
        max_iterations,
        ..Default::default()
    })
    .unwrap_or_else(|e| panic!("{method:?} fails: {e:?}"))
}

#[test]
fn steady_state_methods_agree_on_generated_tier_ctmcs() {
    let mut chains = 0usize;
    for family in generate::FAMILIES {
        for seed in [5u64, 23] {
            let params = GenParams {
                tiers: 6,
                redundancy: 2,
                designs: 1,
                policies: 1,
            };
            let doc = generate::generate(family, &params, seed);
            for tier in &doc.tiers {
                let model = ServerModel::build(&tier.params);
                let ss = model.net().state_space().expect("server SRN is finite");
                let ctmc = ss.ctmc();
                let gth = solve(ctmc, SteadyStateMethod::Gth, 1e-13, 200_000);
                let gs = solve(ctmc, SteadyStateMethod::GaussSeidel, 1e-13, 200_000);
                let power = solve(ctmc, SteadyStateMethod::Power, 1e-9, 5_000_000);

                let sum: f64 = gth.iter().sum();
                assert!((sum - 1.0).abs() < 1e-12, "{}/{}", doc.name, tier.name);
                let max_gs = gth
                    .iter()
                    .zip(&gs)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                let max_power = gth
                    .iter()
                    .zip(&power)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                assert!(
                    max_gs < 1e-9,
                    "{}/{}: GTH vs Gauss–Seidel diverge by {max_gs:e}",
                    doc.name,
                    tier.name
                );
                assert!(
                    max_power < 1e-6,
                    "{}/{}: GTH vs Power diverge by {max_power:e}",
                    doc.name,
                    tier.name
                );

                // The quantity the evaluator consumes: P(service up).
                let places = *model.places();
                let up = |pi: &[f64]| -> f64 {
                    ss.tangible_markings()
                        .iter()
                        .zip(pi)
                        .filter(|(m, _)| places.service_up(m))
                        .map(|(_, p)| p)
                        .sum()
                };
                let a_gth = up(&gth);
                let a_gs = up(&gs);
                let a_power = up(&power);
                assert!(
                    (a_gth - a_gs).abs() < 1e-10 && (a_gth - a_power).abs() < 1e-7,
                    "{}/{}: availability {a_gth} vs GS {a_gs} vs Power {a_power}",
                    doc.name,
                    tier.name
                );
                chains += 1;
            }
        }
    }
    // Six tiers per document, two seeds, three families.
    assert_eq!(chains, 36, "the corpus shrank; the property lost coverage");
}
