//! Boundary coverage of the 10 000-cell sweep/eval grid cap
//! ([`redeval_bench::reports::MAX_SWEEP_GRID`]) on *generated*
//! scenarios:
//!
//! * a grid of exactly 10 000 cells is accepted — by the in-process
//!   sweep builder and by `POST /v1/sweep`;
//! * one more design tips it over: a structured 400 `Report` (dotted
//!   path, projected cell count in the message), never an allocation —
//!   and the message points at `redeval optimize` / `POST /v1/optimize`,
//!   the front door that searches such spaces without a grid;
//! * the rejection is arithmetic, not material: `max_redundancy = 8` on
//!   a 120-tier generated fleet projects 8^120 cells and must come back
//!   instantly rather than attempt to enumerate the design space;
//! * `POST /v1/eval` enforces the same cap on a document's own
//!   designs × policies grid.

use redeval::scenario::generate::{self, Family, GenParams};
use redeval::scenario::ScenarioDoc;
use redeval::Design;
use redeval_bench::reports::{self, scenario::MAX_SWEEP_GRID};
use redeval_bench::serve;
use redeval_server::{Request, SweepRequest};

/// A tiny generated document widened to `designs` copies of its base
/// design — cheap cells, controllable grid width.
fn widened_doc(designs: usize) -> ScenarioDoc {
    let mut doc = generate::generate(
        Family::EcommerceFleet,
        &GenParams {
            tiers: 3,
            redundancy: 1,
            designs: 1,
            policies: 1,
        },
        1,
    );
    let base = doc.designs[0].counts.clone();
    doc.designs = (0..designs)
        .map(|i| Design::new(format!("d{i}"), base.clone()))
        .collect();
    doc.validate().expect("widened doc stays valid");
    doc
}

fn sweep_body(doc: &ScenarioDoc, policies: usize, windows: usize) -> String {
    let policy_list = (0..policies)
        .map(|_| "\"patch all\"".to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let window_list = (0..windows)
        .map(|i| format!("{}", 7 + i))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"scenario\": {}, \"policies\": [{policy_list}], \"patch_windows_days\": [{window_list}]}}",
        doc.to_json().trim_end()
    )
}

#[test]
fn sweep_grid_at_exactly_the_cap_is_accepted() {
    // 25 designs × 25 policies × 16 windows = 10 000 — exactly the cap.
    let doc = widened_doc(25);
    let req = SweepRequest {
        doc: doc.clone(),
        patch_windows_days: Some((0..16).map(|i| 7.0 + i as f64).collect()),
        policies: Some(vec![redeval::PatchPolicy::All; 25]),
        max_redundancy: None,
    };
    let report = reports::scenario::sweep_report(&req).expect("at-cap grid evaluates");
    assert!(report.ok, "at-cap sweep fails its checks");
    let json = report.to_json();
    assert!(
        json.contains("10000"),
        "the report must show the full grid size"
    );

    let svc = serve::service(2, 64 * 1024 * 1024);
    let body = sweep_body(&doc, 25, 16);
    let resp = svc.handle(&Request::synthetic("POST", "/v1/sweep", body.as_bytes()));
    assert_eq!(resp.status, 200, "at-cap sweep rejected by /v1/sweep");
    assert_eq!(String::from_utf8(resp.body).unwrap(), json);
}

#[test]
fn sweep_grid_one_design_over_the_cap_is_rejected_structurally() {
    // 26 designs × 25 policies × 16 windows = 10 400 — over the cap.
    let doc = widened_doc(26);
    let req = SweepRequest {
        doc: doc.clone(),
        patch_windows_days: Some((0..16).map(|i| 7.0 + i as f64).collect()),
        policies: Some(vec![redeval::PatchPolicy::All; 25]),
        max_redundancy: None,
    };
    let e = reports::scenario::sweep_report(&req).expect_err("over-cap grid must be rejected");
    let msg = e.to_string();
    assert!(
        msg.contains("10400") && msg.contains(&MAX_SWEEP_GRID.to_string()),
        "rejection must name the projected grid and the cap: {msg}"
    );
    assert!(
        msg.contains("redeval optimize"),
        "rejection must point at the pruned search: {msg}"
    );

    let svc = serve::service(2, 64 * 1024 * 1024);
    let body = sweep_body(&doc, 25, 16);
    let resp = svc.handle(&Request::synthetic("POST", "/v1/sweep", body.as_bytes()));
    assert_eq!(resp.status, 400);
    let text = String::from_utf8(resp.body).unwrap();
    assert!(
        text.contains("\"ok\": false") && text.contains("10400"),
        "expected a structured over-cap report: {text}"
    );
    assert!(
        text.contains("/v1/optimize"),
        "the served rejection must point at the optimize endpoint: {text}"
    );
}

#[test]
fn astronomic_design_spaces_are_rejected_arithmetically() {
    // max_redundancy = 8 over 120 tiers projects 8^120 designs; the
    // rejection must come from the saturating pre-check, instantly,
    // without materializing a single design.
    let (family, params, seed) = generate::PINNED
        .iter()
        .max_by_key(|(_, p, _)| p.tiers)
        .expect("pinned corpus is non-empty");
    let doc = generate::generate(*family, params, *seed);
    assert!(doc.tiers.len() >= 100, "need a fleet-scale document");
    let req = SweepRequest {
        doc: doc.clone(),
        patch_windows_days: None,
        policies: None,
        max_redundancy: Some(8),
    };
    let start = std::time::Instant::now();
    let e = reports::scenario::sweep_report(&req).expect_err("8^120 designs must be rejected");
    assert!(
        start.elapsed() < std::time::Duration::from_secs(5),
        "rejection took {:?} — the design space was materialized",
        start.elapsed()
    );
    assert!(
        e.to_string().contains("exceeds the limit") && e.to_string().contains("redeval optimize"),
        "unexpected rejection: {e}"
    );

    let svc = serve::service(1, 1 << 20);
    let body = format!(
        "{{\"scenario\": {}, \"max_redundancy\": 8}}",
        doc.to_json().trim_end()
    );
    let resp = svc.handle(&Request::synthetic("POST", "/v1/sweep", body.as_bytes()));
    assert_eq!(resp.status, 400);
    let text = String::from_utf8(resp.body).unwrap();
    assert!(text.contains("exceeds the limit") && text.contains("/v1/optimize"));
}

#[test]
fn eval_enforces_the_same_cap_on_the_document_grid() {
    // 101 designs × 100 policies = 10 100 > 10 000.
    let mut doc = widened_doc(101);
    doc.policies = vec![redeval::PatchPolicy::All; 100];
    doc.validate().expect("the wide doc itself is schema-valid");
    let e = reports::scenario::eval_report(&doc).expect_err("over-cap eval grid");
    assert!(
        e.to_string().contains("10100") && e.to_string().contains("redeval optimize"),
        "{e}"
    );

    let svc = serve::service(1, 1 << 20);
    let resp = svc.handle(&Request::synthetic(
        "POST",
        "/v1/eval",
        doc.to_json().as_bytes(),
    ));
    assert_eq!(resp.status, 400);
    let text = String::from_utf8(resp.body).unwrap();
    assert!(text.contains("\"ok\": false") && text.contains("10100"));

    // At the cap exactly, eval accepts: 100 × 100 = 10 000.
    let mut doc = widened_doc(100);
    doc.policies = vec![redeval::PatchPolicy::All; 100];
    let report = reports::scenario::eval_report(&doc).expect("at-cap eval grid");
    assert!(report.ok);
}
