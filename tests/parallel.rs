//! Integration tests of the batch execution layer: the parallel sweep
//! must be **bitwise-identical** to the sequential reference over
//! randomized grids, and the shared analysis cache must dedupe every
//! repeated per-tier SRN solve.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use redeval::case_study;
use redeval::decision::{pareto_frontier, pareto_frontier_batch};
use redeval_suite::prelude::*;

/// A randomized design grid over the case-study network (counts 1..=4).
fn random_designs(rng: &mut StdRng, n: usize) -> Vec<Design> {
    (0..n)
        .map(|i| {
            let counts: Vec<u32> = (0..4).map(|_| rng.gen::<u32>() % 4 + 1).collect();
            Design::new(format!("rnd{i} {counts:?}"), counts)
        })
        .collect()
}

#[test]
fn randomized_grid_parallel_is_bitwise_identical_to_sequential() {
    let mut rng = StdRng::seed_from_u64(0xD5417);
    let designs = random_designs(&mut rng, 24);
    let policies = vec![
        PatchPolicy::None,
        PatchPolicy::CriticalOnly(4.0 + 6.0 * rng.gen::<f64>()),
        PatchPolicy::All,
    ];
    let sweep = Sweep::new(case_study::network())
        .designs(designs)
        .policies(policies);

    // Sequential reference: one scenario at a time, fresh cache.
    let cache = AnalysisCache::new();
    let reference: Vec<DesignEvaluation> = sweep
        .scenarios()
        .iter()
        .map(|sc| sc.evaluate(&cache).expect("scenario evaluates"))
        .collect();

    // The engine must reproduce it exactly for any thread count.
    for threads in [1, 2, 4, 16] {
        let parallel = sweep
            .clone()
            .threads(threads)
            .run()
            .expect("grid evaluates");
        assert_eq!(parallel.len(), reference.len());
        for (p, r) in parallel.iter().zip(&reference) {
            assert_eq!(p, r, "thread count {threads} changed a result");
            // PartialEq on f64 admits 0.0 == -0.0; pin the actual bits.
            assert_eq!(p.coa.to_bits(), r.coa.to_bits());
            assert_eq!(p.availability.to_bits(), r.availability.to_bits());
            assert_eq!(p.expected_up.to_bits(), r.expected_up.to_bits());
            assert_eq!(
                p.after.attack_success_probability.to_bits(),
                r.after.attack_success_probability.to_bits()
            );
        }
    }
}

#[test]
fn randomized_grid_evaluator_batch_matches_evaluate_all() {
    let mut rng = StdRng::seed_from_u64(0xBA7C4);
    let designs = random_designs(&mut rng, 31);
    let evaluator = case_study::evaluator().expect("evaluator builds");
    let sequential = evaluator.evaluate_all(&designs).expect("designs evaluate");
    for threads in [2, 8] {
        let batch = evaluator
            .evaluate_batch(&designs, threads)
            .expect("designs evaluate");
        assert_eq!(batch, sequential);
    }
}

#[test]
fn shared_cache_dedupes_per_tier_solves_across_the_batch() {
    let cache = Arc::new(AnalysisCache::new());
    // Warm the cache sequentially first: concurrent cold misses on one
    // key are *allowed* to solve twice (exec.rs documents the race), so
    // exact solve counts are only deterministic from a warm start.
    cache
        .analyses_for(&case_study::network())
        .expect("tiers solve");
    assert_eq!(cache.solves(), 4);
    assert_eq!(cache.len(), 4);

    let evals = Sweep::new(case_study::network())
        .share_cache(&cache)
        .designs(case_study::five_designs())
        .policies(vec![PatchPolicy::CriticalOnly(8.0), PatchPolicy::All])
        .threads(4)
        .run()
        .expect("grid evaluates");
    assert_eq!(evals.len(), 10);
    // Four distinct tiers → the four warm-up solves serve the whole
    // batch; every per-cell lookup hits.
    assert_eq!(cache.solves(), 4);
    assert_eq!(cache.len(), 4);
    assert!(cache.hits() >= 4 * case_study::five_designs().len());

    // A second batch over the same parameters re-solves nothing.
    Sweep::new(case_study::network())
        .share_cache(&cache)
        .run()
        .expect("grid evaluates");
    assert_eq!(cache.solves(), 4);
}

#[test]
fn sweep_grid_agrees_with_legacy_evaluator_numbers() {
    // The engine's numbers must match what a per-policy Evaluator loop
    // (the pre-engine code shape) produces, label excepted.
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let designs = random_designs(&mut rng, 12);
    let policy = PatchPolicy::CriticalOnly(8.0);
    let legacy = Evaluator::with_options(case_study::network(), MetricsConfig::default(), policy)
        .expect("evaluator builds")
        .evaluate_all(&designs)
        .expect("designs evaluate");
    let engine = Sweep::new(case_study::network())
        .designs(designs)
        .policies(vec![policy])
        .threads(4)
        .run()
        .expect("grid evaluates");
    for (e, l) in engine.iter().zip(&legacy) {
        assert_eq!(e.counts, l.counts);
        assert_eq!(e.before, l.before);
        assert_eq!(e.after, l.after);
        assert_eq!(e.coa.to_bits(), l.coa.to_bits());
    }
}

#[test]
fn pareto_frontier_is_thread_count_independent() {
    let mut rng = StdRng::seed_from_u64(0xF007);
    let designs = random_designs(&mut rng, 20);
    let evaluator = case_study::evaluator().expect("evaluator builds");
    let evals = evaluator.evaluate_all(&designs).expect("designs evaluate");
    let sequential = pareto_frontier(&evals);
    assert!(!sequential.is_empty());
    for threads in [2, 8] {
        assert_eq!(sequential, pareto_frontier_batch(&evals, threads));
    }
}

#[test]
fn experiment_mixes_topologies_in_one_batch() {
    // Scenarios need not share a spec: a heterogeneous batch evaluates
    // like the individual scenarios do.
    let case = Arc::new(case_study::network());
    let custom = Arc::new({
        let tree = |cve: &str| Some(AttackTree::leaf(Vulnerability::new(cve, 10.0, 0.9)));
        NetworkSpec::new(
            vec![
                TierSpec {
                    name: "edge".into(),
                    count: 2,
                    params: ServerParams::builder("edge").build(),
                    tree: tree("CVE-E"),
                    entry: true,
                    target: false,
                },
                TierSpec {
                    name: "core".into(),
                    count: 1,
                    params: ServerParams::builder("core").build(),
                    tree: tree("CVE-C"),
                    entry: false,
                    target: true,
                },
            ],
            vec![(0, 1)],
        )
    });
    let scenarios = vec![
        Scenario::new(
            "case 1+2+2+1",
            Arc::clone(&case),
            Design::new("case", vec![1, 2, 2, 1]),
            PatchPolicy::CriticalOnly(8.0),
        ),
        Scenario::new(
            "custom 2+1",
            Arc::clone(&custom),
            Design::new("custom", vec![2, 1]),
            PatchPolicy::All,
        ),
        Scenario::new(
            "custom 3+2",
            Arc::clone(&custom),
            Design::new("custom", vec![3, 2]),
            PatchPolicy::None,
        ),
    ];
    let experiment = Experiment::new(scenarios.clone()).threads(3);
    let batch = experiment.run().expect("batch evaluates");
    let cache = AnalysisCache::new();
    for (b, sc) in batch.iter().zip(&scenarios) {
        let single = sc.evaluate(&cache).expect("scenario evaluates");
        assert_eq!(b, &single);
    }
    assert_eq!(batch[0].name, "case 1+2+2+1");
    assert!(batch[2].before == batch[2].after); // PatchPolicy::None
}
