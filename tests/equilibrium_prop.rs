//! Property suite for the equilibrium best-response oracles (ISSUE 9
//! satellite): on every design space small enough to enumerate
//! (≤ 10 000 cells), each player's *pruned* best response must be
//! **byte-identical** to the exhaustive argmax under the fixed
//! tie-break order —
//!
//! * the attacker's union-bound prune
//!   ([`EquilibriumAnalyzer::attacker_response`]) vs the full mask
//!   enumeration
//!   ([`EquilibriumAnalyzer::attacker_response_exhaustive`]), and
//! * the defender's branch-and-bound head
//!   ([`EquilibriumAnalyzer::defender_response`]) vs the materialized
//!   grid argmin ([`exhaustive_defender_response`]).
//!
//! Cases are generated scenarios from every family with randomized
//! knobs, defender counts and attacker masks, so the suite covers
//! profiles the Gauss-Seidel trajectory itself never visits.

use proptest::prelude::*;
use redeval::equilibrium::{exhaustive_defender_response, EquilibriumAnalyzer};
use redeval::scenario::generate::{self, GenParams};
use redeval::scenario::ScenarioDoc;

/// A generated document plus a cell-count guard: the knobs keep every
/// grid at most `3^6 × 2 = 1458` cells, well under the exhaustive cap.
fn small_doc(family_idx: usize, seed: u64, tiers: u32, policies: u32) -> ScenarioDoc {
    let family = generate::FAMILIES[family_idx % generate::FAMILIES.len()];
    let doc = generate::generate(
        family,
        &GenParams {
            tiers,
            redundancy: 2,
            designs: 1,
            policies,
        },
        seed,
    );
    assert!(!doc.tiers.is_empty());
    doc
}

fn analyzer(doc: &ScenarioDoc, max_redundancy: u32) -> EquilibriumAnalyzer {
    let cells = u64::from(max_redundancy).pow(doc.tiers.len() as u32) * doc.policies.len() as u64;
    assert!(cells <= 10_000, "property corpus must stay enumerable");
    EquilibriumAnalyzer::from_scenario(doc)
        .expect("generated documents convert")
        .max_redundancy(max_redundancy)
        .threads(2)
}

/// Defender counts derived from a seed: one count in 1..=max per tier.
fn derived_counts(doc: &ScenarioDoc, max: u32, seed: u64) -> Vec<u32> {
    (0..doc.tiers.len())
        .map(|i| 1 + ((seed >> (i % 60)) as u32 + i as u32) % max)
        .collect()
}

/// A non-empty entry-tier mask derived from seed bits.
fn derived_mask(entry_tiers: usize, seed: u64) -> Vec<bool> {
    let mut mask: Vec<bool> = (0..entry_tiers)
        .map(|i| (seed >> (i % 60)) & 1 == 1)
        .collect();
    if !mask.iter().any(|&b| b) {
        mask[0] = true;
    }
    mask
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The attacker's pruned best response equals the exhaustive one,
    /// bit for bit, and the prune accounts for every skipped mask.
    #[test]
    fn pruned_attacker_response_equals_exhaustive_argmax(
        family_idx in 0usize..3,
        seed in 0u64..1000,
        tiers in 5u32..=6,
        policies in 1u32..=2,
        max_redundancy in 2u32..=3,
        counts_seed in 0u64..(1 << 60),
        policy_pick in 0usize..64,
    ) {
        let doc = small_doc(family_idx, seed, tiers, policies);
        let analyzer = analyzer(&doc, max_redundancy);
        let counts = derived_counts(&doc, max_redundancy, counts_seed);
        let policy_idx = policy_pick % doc.policies.len();

        let pruned = analyzer.attacker_response(&counts, policy_idx)
            .expect("pruned attacker response");
        let full = analyzer.attacker_response_exhaustive(&counts, policy_idx)
            .expect("exhaustive attacker response");

        prop_assert_eq!(&pruned.mask, &full.mask);
        prop_assert_eq!(pruned.asp.to_bits(), full.asp.to_bits());
        prop_assert_eq!(pruned.aim.to_bits(), full.aim.to_bits());
        // The prune only skips — evaluated + pruned covers exactly the
        // masks the exhaustive pass evaluated.
        prop_assert_eq!(pruned.evaluated + pruned.pruned, full.evaluated);
        prop_assert_eq!(full.pruned, 0);
    }

    /// The defender's branch-and-bound best response equals the
    /// materialized-grid argmin under the fixed tie-break order.
    #[test]
    fn defender_response_equals_exhaustive_argmin(
        family_idx in 0usize..3,
        seed in 0u64..1000,
        tiers in 5u32..=6,
        policies in 1u32..=2,
        max_redundancy in 2u32..=3,
        mask_seed in 0u64..(1 << 60),
    ) {
        let doc = small_doc(family_idx, seed, tiers, policies);
        let analyzer = analyzer(&doc, max_redundancy);
        // attacker_space_masks = 2^k - 1; recover the entry-tier count k.
        let k = (analyzer.attacker_space_masks() + 1).trailing_zeros() as usize;
        prop_assert!(k >= 1, "generated scenarios have at least one entry tier");
        let mask = derived_mask(k, mask_seed);

        let pruned = analyzer.defender_response(&mask).expect("pruned defender response");
        let (exhaustive_eval, exhaustive_policy) =
            exhaustive_defender_response(&analyzer, &mask).expect("exhaustive defender response");

        prop_assert_eq!(pruned.policy_idx, exhaustive_policy);
        prop_assert_eq!(&pruned.eval.counts, &exhaustive_eval.counts);
        prop_assert_eq!(
            pruned.eval.after.attack_success_probability.to_bits(),
            exhaustive_eval.after.attack_success_probability.to_bits()
        );
        prop_assert_eq!(pruned.eval.coa.to_bits(), exhaustive_eval.coa.to_bits());
        prop_assert_eq!(&pruned.eval, &exhaustive_eval);
    }
}
