//! End-to-end reproduction assertions for every table and figure of the
//! paper (the machine-checked version of EXPERIMENTS.md).

use redeval::case_study::{self, VULNERABILITIES};
use redeval::decision::{MultiBounds, ScatterBounds};
use redeval::{AspStrategy, MetricsConfig, OrCombine};
use redeval_suite::prelude::*;

/// Table I: every reconstructed CVSS vector reproduces the paper's
/// impact/probability pair.
#[test]
fn table1_vectors() {
    assert_eq!(VULNERABILITIES.len(), 16);
    for r in &VULNERABILITIES {
        assert!(case_study::vector_consistent(r), "{}", r.id);
    }
}

/// Table II: before/after security metrics of the Figure-2 network.
#[test]
fn table2_metrics() {
    let harm = case_study::network().build_harm();
    let cfg = MetricsConfig::default();
    let before = harm.metrics(&cfg);
    assert!((before.attack_impact - 52.2).abs() < 1e-9);
    assert_eq!(before.attack_success_probability, 1.0);
    assert_eq!(before.attack_paths, 8);
    assert_eq!(before.entry_points, 3);
    assert_eq!(before.exploitable_vulnerabilities, 26); // paper prints 25

    let after = harm.patched_critical(8.0).metrics(&cfg);
    assert!((after.attack_impact - 42.2).abs() < 1e-9);
    assert_eq!(after.attack_paths, 4);
    assert_eq!(after.entry_points, 2);
    assert_eq!(after.exploitable_vulnerabilities, 11);
}

/// Table II ASP-after under each strategy brackets the paper's 0.265.
#[test]
fn table2_asp_family_brackets_paper() {
    let harm = case_study::network().build_harm().patched_critical(8.0);
    let asp = |s, oc| {
        harm.metrics(&MetricsConfig {
            asp: s,
            or_combine: oc,
            ..Default::default()
        })
        .attack_success_probability
    };
    let lo = asp(AspStrategy::MaxPath, OrCombine::Max);
    let hi = asp(AspStrategy::NoisyOrPaths, OrCombine::NoisyOr);
    assert!(lo < 0.265 && 0.265 < hi, "family [{lo}, {hi}]");
}

/// Table III: the generated server net carries every guard-bearing
/// transition of the paper.
#[test]
fn table3_guards_present() {
    let model = ServerModel::build(&case_study::dns_params());
    for name in [
        "Tosd",
        "Tosdrb",
        "Tosfup",
        "Tosptrig",
        "Tosp",
        "Tosrpd",
        "Tospd",
        "Tosprb",
        "Tsvcd",
        "Tsvcdrb",
        "Tsvcfup",
        "Tsvcptrig",
        "Tsvcp",
        "Tsvcrpd",
        "Tsvcrrb",
        "Tsvcrrbd",
        "Tsvcprb",
        "Tinterval",
        "Tpolicy",
        "Treset",
    ] {
        assert!(model.net().find_transition(name).is_some(), "{name}");
    }
    assert_eq!(model.net().place_count(), 16);
}

/// Table IV: the DNS parameter set is the paper's, to the digit.
#[test]
fn table4_dns_parameters() {
    let p = case_study::dns_params();
    assert_eq!(p.hw_mtbf.as_hours(), 87_600.0);
    assert_eq!(p.hw_repair.as_hours(), 1.0);
    assert_eq!(p.os_mtbf.as_hours(), 1440.0);
    assert_eq!(p.os_repair.as_hours(), 1.0);
    assert!((p.os_patch.as_hours() - 20.0 / 60.0).abs() < 1e-12);
    assert!((p.os_reboot_patch.as_hours() - 10.0 / 60.0).abs() < 1e-12);
    assert_eq!(p.svc_mtbf.as_hours(), 336.0);
    assert!((p.svc_repair.as_hours() - 0.5).abs() < 1e-12);
    assert!((p.svc_patch.as_hours() - 5.0 / 60.0).abs() < 1e-12);
    assert_eq!(p.patch_interval.as_hours(), 720.0);
}

/// Table V: λ_eq/µ_eq/MTTP/MTTR for all four tiers.
#[test]
fn table5_aggregated_rates() {
    let analyses = case_study::network().tier_analyses().unwrap();
    let expect = [
        ("dns", 1.49992, 0.6667),
        ("web", 1.71420, 0.5834),
        ("app", 0.99995, 1.0001),
        ("db", 1.09085, 0.9167),
    ];
    for (a, (name, mu, mttr)) in analyses.iter().zip(expect) {
        assert_eq!(a.name(), name);
        assert!((a.rates().mttp() - 720.0).abs() < 1e-6);
        assert!((a.rates().mu_eq - mu).abs() / mu < 1e-3, "{name}");
        assert!((a.rates().mttr() - mttr).abs() / mttr < 1e-3, "{name}");
    }
}

/// Section III-D2 worked example: the DNS probabilities.
#[test]
fn section3d2_dns_probabilities() {
    let a = case_study::dns_params().analyze().unwrap();
    assert!((a.p_ready_reboot() - 0.00011563).abs() < 2e-6);
    assert!((a.p_patch_down() - 0.00092506).abs() < 2e-5);
}

/// Table VI: COA ≈ 0.99707, by product form and by the explicit SRN.
#[test]
fn table6_coa() {
    let spec = case_study::network();
    let analyses = spec.tier_analyses().unwrap();
    let model = spec.network_model(&analyses);
    let coa = model.coa().unwrap();
    assert!((coa - 0.99707).abs() < 5e-5, "{coa}");
    let via_srn = model.coa_via_srn().unwrap();
    assert!((coa - via_srn).abs() < 1e-10);
}

/// Figure 6(b)+7(b): the five designs' after-patch metrics and COA
/// ordering.
#[test]
fn figures_6_7_design_table() {
    let evaluator = case_study::evaluator().unwrap();
    let evals = evaluator.evaluate_all(&case_study::five_designs()).unwrap();

    // Structural after-patch metrics per design (D1..D5).
    let noev: Vec<usize> = evals
        .iter()
        .map(|e| e.after.exploitable_vulnerabilities)
        .collect();
    let noap: Vec<usize> = evals.iter().map(|e| e.after.attack_paths).collect();
    let noep: Vec<usize> = evals.iter().map(|e| e.after.entry_points).collect();
    assert_eq!(noev, [7, 7, 9, 9, 10]);
    assert_eq!(noap, [1, 1, 2, 2, 2]);
    assert_eq!(noep, [1, 1, 2, 1, 1]);

    // AIM identical across designs, before and after (paper's remark).
    for e in &evals {
        assert!((e.before.attack_impact - 52.2).abs() < 1e-9);
        assert!((e.after.attack_impact - 42.2).abs() < 1e-9);
        assert_eq!(e.before.attack_success_probability, 1.0);
    }

    // COA ordering D4 > D5 > D2 > D3 > D1 (Figure 6/7 geometry).
    let coa: Vec<f64> = evals.iter().map(|e| e.coa).collect();
    assert!(coa[3] > coa[4]);
    assert!(coa[4] > coa[1]);
    assert!(coa[1] > coa[2]);
    assert!(coa[2] > coa[0]);
    // All within the paper's radar axis range [0.9955, 0.9964].
    for &c in &coa {
        assert!((0.9955..0.99645).contains(&c), "{c}");
    }

    // Designs 1 and 2 share the same after-patch ASP (dns drops out).
    assert!(
        (evals[0].after.attack_success_probability - evals[1].after.attack_success_probability)
            .abs()
            < 1e-12
    );
    // Redundant designs have strictly higher ASP than design 1.
    for e in &evals[2..] {
        assert!(e.after.attack_success_probability > evals[0].after.attack_success_probability);
    }
}

/// Equations (3) and (4): all four region memberships.
#[test]
fn equations_3_4_regions() {
    let evaluator = case_study::evaluator().unwrap();
    let evals = evaluator.evaluate_all(&case_study::five_designs()).unwrap();
    let names = |v: Vec<&redeval::DesignEvaluation>| -> Vec<String> {
        v.into_iter().map(|e| e.name.clone()).collect()
    };

    let r1 = ScatterBounds {
        max_asp: 0.2,
        min_coa: 0.9962,
    };
    assert_eq!(
        names(r1.region(&evals)),
        [
            "1 DNS + 1 WEB + 2 APP + 1 DB",
            "1 DNS + 1 WEB + 1 APP + 2 DB"
        ]
    );
    let r2 = ScatterBounds {
        max_asp: 0.1,
        min_coa: 0.9961,
    };
    assert_eq!(names(r2.region(&evals)), ["2 DNS + 1 WEB + 1 APP + 1 DB"]);

    let m1 = MultiBounds {
        max_asp: 0.2,
        max_noev: 9,
        max_noap: 2,
        max_noep: 1,
        min_coa: 0.9962,
    };
    assert_eq!(names(m1.region(&evals)), ["1 DNS + 1 WEB + 2 APP + 1 DB"]);
    let m2 = MultiBounds {
        max_asp: 0.1,
        max_noev: 7,
        max_noap: 1,
        max_noep: 1,
        min_coa: 0.9961,
    };
    assert_eq!(names(m2.region(&evals)), ["2 DNS + 1 WEB + 1 APP + 1 DB"]);
}

/// The paper's two summary observations (Section IV-C).
#[test]
fn section4c_observations() {
    let evaluator = case_study::evaluator().unwrap();
    let evals = evaluator.evaluate_all(&case_study::five_designs()).unwrap();
    // 1. Duplicating the slowest-recovering tier (app) gives the best COA.
    let best = evals
        .iter()
        .max_by(|a, b| a.coa.partial_cmp(&b.coa).unwrap())
        .unwrap();
    assert_eq!(best.name, "1 DNS + 1 WEB + 2 APP + 1 DB");
    // 2. A redundant server with no exploitable vulnerabilities after
    //    patch (the DNS) does not decrease security while improving COA.
    let d1 = &evals[0];
    let d2 = &evals[1]; // 2 DNS
    assert_eq!(
        d1.after.attack_success_probability,
        d2.after.attack_success_probability
    );
    assert_eq!(
        d1.after.exploitable_vulnerabilities,
        d2.after.exploitable_vulnerabilities
    );
    assert_eq!(d1.after.attack_paths, d2.after.attack_paths);
    assert!(d2.coa > d1.coa);
}
