//! Differential test harness over the generated corpus (ISSUE 6
//! acceptance): a seeded sweep of scenarios from every generator family
//! is pushed through all three execution paths —
//!
//! 1. the in-process report builder (`reports::scenario::eval_report`),
//! 2. the CLI (`redeval eval --scenario FILE --format json`), and
//! 3. the embedded server (`POST /v1/eval` on the wired service) —
//!
//! asserting **byte-identical** reports, and through the sweep engine
//! at several thread counts asserting **bitwise-identical** numbers.
//! The generator itself is also cross-checked: the `gen` subcommand,
//! the in-process `generate` call and `POST /v1/generate` must emit the
//! same canonical document bytes for the same inputs.
//!
//! Corpus shape: 50 seeds per family with seed-derived small knobs, so
//! every document is cheap to evaluate but no two are alike.

use std::fs;
use std::path::{Path, PathBuf};

use redeval::scenario::generate::{self, Family, GenParams};
use redeval::scenario::ScenarioDoc;
use redeval::Sweep;
use redeval_bench::{cli, reports, serve};
use redeval_server::{Request, Service, CACHE_HEADER};

/// Seeds per family — the ISSUE 6 floor.
const SEEDS_PER_FAMILY: u64 = 50;

/// Small seed-derived knobs: documents stay cheap (few tiers, low
/// redundancy) while still exercising every family's shape logic.
fn corpus_params(family: Family, seed: u64) -> GenParams {
    let base = match family {
        Family::EcommerceFleet => 3,
        Family::IotSwarm => 4,
        Family::MicroserviceMesh => 5,
    };
    GenParams {
        tiers: base + (seed % 4) as u32,
        redundancy: 1 + (seed % 2) as u32,
        designs: 1 + (seed % 2) as u32,
        policies: 1 + (seed % 2) as u32,
    }
}

fn corpus(family: Family) -> Vec<ScenarioDoc> {
    (0..SEEDS_PER_FAMILY)
        .map(|seed| generate::generate(family, &corpus_params(family, seed), seed))
        .collect()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("redeval-diff-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// One document through all three eval paths; returns the agreed bytes.
fn assert_three_paths_agree(svc: &Service, dir: &Path, doc: &ScenarioDoc) -> String {
    // Path 1: in-process builder.
    let in_process = reports::scenario::eval_report(doc)
        .unwrap_or_else(|e| panic!("{} fails in-process: {e}", doc.name))
        .to_json();

    // Path 2: the CLI, end to end through a real file.
    let scenario_file = dir.join(format!("{}.json", doc.name));
    fs::write(&scenario_file, doc.to_json()).expect("write scenario");
    let code = cli::run(&[
        "eval".to_string(),
        "--scenario".to_string(),
        scenario_file.to_str().unwrap().to_string(),
        "--format".to_string(),
        "json".to_string(),
        "--out".to_string(),
        dir.to_str().unwrap().to_string(),
    ]);
    assert_eq!(code, 0, "CLI eval of {} failed", doc.name);
    let cli_bytes = fs::read_to_string(dir.join(format!("eval_{}.json", doc.name)))
        .expect("CLI wrote the report");

    // Path 3: the served endpoint, wired exactly as `redeval serve`.
    let resp = svc.handle(&Request::synthetic(
        "POST",
        "/v1/eval",
        doc.to_json().as_bytes(),
    ));
    assert_eq!(resp.status, 200, "{} fails via /v1/eval", doc.name);
    let served = String::from_utf8(resp.body).expect("UTF-8 report");

    assert_eq!(in_process, cli_bytes, "{}: CLI diverges", doc.name);
    assert_eq!(in_process, served, "{}: serve diverges", doc.name);
    in_process
}

fn differential_family(family: Family) {
    let svc = serve::service(2, 64 * 1024 * 1024);
    let dir = scratch_dir(family.key());
    let docs = corpus(family);
    assert_eq!(docs.len() as u64, SEEDS_PER_FAMILY);
    let mut reports_seen = std::collections::HashSet::new();
    for doc in &docs {
        let bytes = assert_three_paths_agree(&svc, &dir, doc);
        reports_seen.insert(bytes);
    }
    // The corpus is genuinely diverse: distinct seeds, distinct reports.
    assert_eq!(
        reports_seen.len() as u64,
        SEEDS_PER_FAMILY,
        "{family}: seeds collapsed to identical reports"
    );
    // Replay one request: the served path must hit its cache with the
    // exact agreed bytes.
    let replay = svc.handle(&Request::synthetic(
        "POST",
        "/v1/eval",
        docs[0].to_json().as_bytes(),
    ));
    assert!(replay
        .extra_headers
        .contains(&(CACHE_HEADER, "hit".to_string())));
    assert!(reports_seen.contains(&String::from_utf8(replay.body).unwrap()));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn ecommerce_corpus_agrees_across_all_execution_paths() {
    differential_family(Family::EcommerceFleet);
}

#[test]
fn iot_corpus_agrees_across_all_execution_paths() {
    differential_family(Family::IotSwarm);
}

#[test]
fn mesh_corpus_agrees_across_all_execution_paths() {
    differential_family(Family::MicroserviceMesh);
}

/// The sweep engine over generated documents is thread-count invariant:
/// identical bits at 1, 2 and 4 workers.
#[test]
fn generated_sweeps_are_thread_count_invariant() {
    for family in generate::FAMILIES {
        for seed in [0, 13, 49] {
            let doc = generate::generate(family, &corpus_params(family, seed), seed);
            let reference = Sweep::from_scenario(&doc)
                .unwrap_or_else(|e| panic!("{}: {e}", doc.name))
                .threads(1)
                .run()
                .unwrap_or_else(|e| panic!("{}: {e}", doc.name));
            for threads in [2, 4] {
                let parallel = Sweep::from_scenario(&doc)
                    .unwrap()
                    .threads(threads)
                    .run()
                    .unwrap();
                assert_eq!(parallel.len(), reference.len());
                for (p, r) in parallel.iter().zip(&reference) {
                    assert_eq!(p, r, "{}: {threads} threads diverge", doc.name);
                    assert_eq!(p.coa.to_bits(), r.coa.to_bits());
                    assert_eq!(p.availability.to_bits(), r.availability.to_bits());
                    assert_eq!(p.expected_up.to_bits(), r.expected_up.to_bits());
                    assert_eq!(
                        p.after.attack_success_probability.to_bits(),
                        r.after.attack_success_probability.to_bits()
                    );
                }
            }
        }
    }
}

/// The generator's three front doors — the in-process call, the `gen`
/// subcommand and `POST /v1/generate` — emit identical canonical bytes.
#[test]
fn generator_front_doors_emit_identical_bytes() {
    let svc = serve::service(1, 1 << 20);
    let dir = scratch_dir("gen");
    for family in generate::FAMILIES {
        for seed in [0u64, 7, 41] {
            let params = corpus_params(family, seed);
            let doc = generate::generate(family, &params, seed);
            let api_bytes = doc.to_json();

            let code = cli::run(&[
                "gen".to_string(),
                family.key().to_string(),
                "--seed".to_string(),
                seed.to_string(),
                "--tiers".to_string(),
                params.tiers.to_string(),
                "--redundancy".to_string(),
                params.redundancy.to_string(),
                "--designs".to_string(),
                params.designs.to_string(),
                "--policies".to_string(),
                params.policies.to_string(),
                "--out".to_string(),
                dir.to_str().unwrap().to_string(),
            ]);
            assert_eq!(code, 0);
            let cli_bytes = fs::read_to_string(dir.join(format!("{}.json", doc.name)))
                .expect("CLI wrote the document");
            assert_eq!(api_bytes, cli_bytes, "{}: CLI diverges", doc.name);

            let body = format!(
                "{{\"family\": \"{}\", \"seed\": {seed}, \"tiers\": {}, \
                 \"redundancy\": {}, \"designs\": {}, \"policies\": {}}}",
                family.key(),
                params.tiers,
                params.redundancy,
                params.designs,
                params.policies
            );
            let resp = svc.handle(&Request::synthetic("POST", "/v1/generate", body.as_bytes()));
            assert_eq!(resp.status, 200);
            let served = String::from_utf8(resp.body).unwrap();
            assert_eq!(api_bytes, served, "{}: /v1/generate diverges", doc.name);
        }
    }
    let _ = fs::remove_dir_all(&dir);
}
