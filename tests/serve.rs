//! Loopback integration suite for `redeval serve` (ISSUE 5 acceptance).
//!
//! A real `TcpListener` server wired exactly as the CLI wires it
//! (`redeval_bench::serve::service`), driven through a socket:
//!
//! * the `/v1/eval` response for the **pinned** paper case-study
//!   scenario file is byte-identical to what
//!   `redeval eval --scenario … --format json` prints (the CLI and the
//!   server share one report builder) and to the committed golden under
//!   `tests/golden/serve/`;
//! * the repeat request is served from the cache with identical bytes,
//!   observable through `/v1/stats`;
//! * `/v1/optimize` answers with the same bytes as the in-process
//!   pruned-search report builder, pinned as its own golden;
//! * malformed bodies — broken JSON, schema violations, oversized
//!   payloads — come back as structured 4xx `Report`s that never echo
//!   request bytes, and the server keeps serving afterwards.
//!
//! The golden HTTP transcripts (`*.http`) are full serialized responses
//! (status line + headers + body); they stay byte-stable because the
//! response serializer emits no `Date` and a fixed header order.
//! Regenerate the corpus with `REDEVAL_BLESS=1 cargo test --test serve`.

use std::fs;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;

use redeval::scenario::ScenarioDoc;
use redeval_bench::{reports, serve};
use redeval_server::{EquilibriumRequest, OptimizeRequest, Request, Server, ServerHandle};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn blessing() -> bool {
    std::env::var_os("REDEVAL_BLESS").is_some()
}

/// Byte-compares `got` against the pinned file (or rewrites it under
/// `REDEVAL_BLESS=1`).
fn assert_matches_golden(got: &[u8], name: &str) {
    let dir = golden_dir().join("serve");
    let path = dir.join(name);
    if blessing() {
        fs::create_dir_all(&dir).expect("serve golden dir");
        fs::write(&path, got).expect("write serve golden");
        return;
    }
    let want = fs::read(&path).unwrap_or_else(|_| {
        panic!(
            "missing serve golden {} — bless with REDEVAL_BLESS=1 cargo test --test serve",
            path.display()
        )
    });
    assert_eq!(
        want, got,
        "{name} diverged from its golden; if intentional, re-bless and commit the diff"
    );
}

fn start_server() -> ServerHandle {
    let service = serve::service(2, 1 << 20);
    Server::bind("127.0.0.1:0", service, 2)
        .expect("loopback bind")
        .spawn()
        .expect("acceptors start")
}

/// A parsed loopback response.
struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    fn body_text(&self) -> &str {
        std::str::from_utf8(&self.body).expect("response body is UTF-8")
    }
}

/// Sends one request over `stream` and reads the reply.
fn roundtrip(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    raw_head: &str,
    body: &[u8],
) -> Reply {
    stream.write_all(raw_head.as_bytes()).expect("head sent");
    stream.write_all(body).expect("body sent");
    stream.flush().expect("flushed");
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line {line:?}"));
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut header_line = String::new();
        reader.read_line(&mut header_line).expect("header line");
        let header_line = header_line.trim_end();
        if header_line.is_empty() {
            break;
        }
        if let Some((name, value)) = header_line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("numeric length");
            }
            headers.push((name.to_string(), value.trim().to_string()));
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body read");
    Reply {
        status,
        headers,
        body,
    }
}

/// POSTs `body` to `path` on a persistent connection.
fn post(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    path: &str,
    body: &[u8],
) -> Reply {
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    roundtrip(stream, reader, &head, body)
}

fn get(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, path: &str) -> Reply {
    roundtrip(
        stream,
        reader,
        &format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n"),
        b"",
    )
}

fn connect(handle: &ServerHandle) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(handle.addr()).expect("loopback connect");
    stream.set_nodelay(true).expect("nodelay");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

/// The pinned paper scenario file — the same bytes CI POSTs with curl.
fn paper_scenario_text() -> String {
    fs::read_to_string(golden_dir().join("scenarios/paper_case_study.json"))
        .expect("pinned paper scenario exists")
}

/// The ISSUE-5 headline acceptance test: served bytes ≡ CLI bytes ≡
/// golden, repeat is a byte-identical cache hit, observable in stats.
#[test]
fn eval_is_byte_identical_to_the_cli_and_cached_on_repeat() {
    let handle = start_server();
    let (mut stream, mut reader) = connect(&handle);
    let scenario = paper_scenario_text();

    let first = post(&mut stream, &mut reader, "/v1/eval", scenario.as_bytes());
    assert_eq!(first.status, 200);
    assert_eq!(first.header("X-Redeval-Cache"), Some("miss"));

    // Byte-identical to the CLI's `eval --scenario … --format json`
    // output (both run reports::scenario::eval_report on the parsed
    // file).
    let doc = ScenarioDoc::from_json(&scenario).expect("pinned scenario parses");
    let cli_bytes = reports::scenario::eval_report(&doc)
        .expect("paper scenario evaluates")
        .to_json();
    assert_eq!(first.body_text(), cli_bytes);

    // And byte-identical to the committed golden response body.
    assert_matches_golden(&first.body, "eval_paper_case_study.json");

    // The repeat request is a cache hit with identical bytes …
    let second = post(&mut stream, &mut reader, "/v1/eval", scenario.as_bytes());
    assert_eq!(second.status, 200);
    assert_eq!(second.header("X-Redeval-Cache"), Some("hit"));
    assert_eq!(first.body, second.body);

    // … observable through /v1/stats.
    let stats = get(&mut stream, &mut reader, "/v1/stats");
    assert_eq!(stats.status, 200);
    let text = stats.body_text();
    assert!(text.contains("\"cache_hits\": 1"), "{text}");
    assert!(text.contains("\"cache_misses\": 1"), "{text}");
    assert!(text.contains("\"cache_entries\": 1"), "{text}");
    handle.stop();
}

#[test]
fn sweep_endpoint_layers_axes_and_caches() {
    let handle = start_server();
    let (mut stream, mut reader) = connect(&handle);
    let scenario = paper_scenario_text();
    let body = format!(
        "{{\"scenario\": {}, \"policies\": [\"none\", \"all\"]}}",
        scenario.trim_end()
    );
    let first = post(&mut stream, &mut reader, "/v1/sweep", body.as_bytes());
    assert_eq!(first.status, 200);
    assert_eq!(first.header("X-Redeval-Cache"), Some("miss"));
    let text = first.body_text();
    assert!(
        text.contains("\"report\": \"sweep_paper_case_study\""),
        "{text}"
    );
    assert!(
        text.contains("\"grid\": 10"),
        "5 designs × 2 policies: {text}"
    );
    let second = post(&mut stream, &mut reader, "/v1/sweep", body.as_bytes());
    assert_eq!(second.header("X-Redeval-Cache"), Some("hit"));
    assert_eq!(first.body, second.body);
    handle.stop();
}

/// `/v1/optimize` front-door parity: the served pruned-search report is
/// byte-identical to the in-process builder (and thus to
/// `redeval optimize --scenario … --format json`), pinned as a golden,
/// and the repeat request is a cache hit.
#[test]
fn optimize_endpoint_matches_the_in_process_builder_and_caches() {
    let handle = start_server();
    let (mut stream, mut reader) = connect(&handle);
    let scenario = paper_scenario_text();
    let body = format!("{{\"scenario\": {}}}", scenario.trim_end());

    let first = post(&mut stream, &mut reader, "/v1/optimize", body.as_bytes());
    assert_eq!(first.status, 200);
    assert_eq!(first.header("X-Redeval-Cache"), Some("miss"));

    let doc = ScenarioDoc::from_json(&scenario).expect("pinned scenario parses");
    let in_process = reports::optimize::optimize_report(&OptimizeRequest {
        doc,
        policies: None,
        max_redundancy: None,
        bounds: None,
    })
    .expect("paper scenario optimizes")
    .to_json();
    assert_eq!(first.body_text(), in_process);
    assert_matches_golden(&first.body, "optimize_paper_case_study.json");

    let second = post(&mut stream, &mut reader, "/v1/optimize", body.as_bytes());
    assert_eq!(second.status, 200);
    assert_eq!(second.header("X-Redeval-Cache"), Some("hit"));
    assert_eq!(first.body, second.body);
    handle.stop();
}

/// `/v1/equilibrium` front-door parity: the served Gauss-Seidel report
/// is byte-identical to the in-process builder (and thus to
/// `redeval equilibrium --scenario … --format json`), pinned as a
/// golden, and the repeat request is a cache hit.
#[test]
fn equilibrium_endpoint_matches_the_in_process_builder_and_caches() {
    let handle = start_server();
    let (mut stream, mut reader) = connect(&handle);
    let scenario = paper_scenario_text();
    let body = format!("{{\"scenario\": {}}}", scenario.trim_end());

    let first = post(&mut stream, &mut reader, "/v1/equilibrium", body.as_bytes());
    assert_eq!(first.status, 200);
    assert_eq!(first.header("X-Redeval-Cache"), Some("miss"));

    let doc = ScenarioDoc::from_json(&scenario).expect("pinned scenario parses");
    let in_process = reports::equilibrium::equilibrium_report(&EquilibriumRequest {
        doc,
        policies: None,
        max_redundancy: None,
        max_iters: None,
    })
    .expect("paper scenario reaches equilibrium")
    .to_json();
    assert_eq!(first.body_text(), in_process);
    assert_matches_golden(&first.body, "equilibrium_paper_case_study.json");

    let second = post(&mut stream, &mut reader, "/v1/equilibrium", body.as_bytes());
    assert_eq!(second.status, 200);
    assert_eq!(second.header("X-Redeval-Cache"), Some("hit"));
    assert_eq!(first.body, second.body);
    handle.stop();
}

#[test]
fn malformed_bodies_are_structured_4xx_without_leaking_or_killing_the_server() {
    let handle = start_server();
    let (mut stream, mut reader) = connect(&handle);

    // 1. Broken JSON carrying a marker: structured 400, marker absent.
    let junk = format!("{{ \"nope\" {}", "LEAKMARKER".repeat(400));
    let reply = post(&mut stream, &mut reader, "/v1/eval", junk.as_bytes());
    assert_eq!(reply.status, 400);
    let text = reply.body_text();
    assert!(text.contains("\"ok\": false") && text.contains("\"error\": \"json\""));
    assert!(text.contains("\"line\": 1"), "{text}");
    assert!(!text.contains("LEAKMARKER"), "request bytes echoed: {text}");

    // 2. Well-formed JSON violating the schema: dotted-path 400.
    let scenario = paper_scenario_text();
    let bad_schema = scenario.replace("\"count\": 2", "\"count\": 0");
    let reply = post(&mut stream, &mut reader, "/v1/eval", bad_schema.as_bytes());
    assert_eq!(reply.status, 400);
    let text = reply.body_text();
    assert!(
        text.contains("\"error\": \"schema\"") && text.contains(".count"),
        "{text}"
    );

    // 3. Oversized payload: 413 before the body is even consumed; the
    //    connection closes (the server cannot resync mid-body).
    let huge_len = 64 * 1024 * 1024;
    let head =
        format!("POST /v1/eval HTTP/1.1\r\nHost: test\r\nContent-Length: {huge_len}\r\n\r\n");
    let reply = roundtrip(&mut stream, &mut reader, &head, b"");
    assert_eq!(reply.status, 413);
    assert!(reply.body_text().contains("\"ok\": false"));

    // 4. The server survived all of it: a fresh connection still serves.
    let (mut stream, mut reader) = connect(&handle);
    let ok = post(&mut stream, &mut reader, "/v1/eval", scenario.as_bytes());
    assert_eq!(ok.status, 200);
    handle.stop();
}

#[test]
fn unknown_paths_and_wrong_methods_are_4xx() {
    let handle = start_server();
    let (mut stream, mut reader) = connect(&handle);
    let health = get(&mut stream, &mut reader, "/healthz");
    assert_eq!(health.status, 200);
    assert!(health.body_text().contains("\"ok\": true"));
    let missing = get(&mut stream, &mut reader, "/v2/everything");
    assert_eq!(missing.status, 404);
    let wrong = get(&mut stream, &mut reader, "/v1/eval");
    assert_eq!(wrong.status, 405);
    assert_eq!(wrong.header("Allow"), Some("POST"));
    let listings = get(&mut stream, &mut reader, "/v1/scenarios");
    assert!(listings.body_text().contains("paper_case_study"));
    let registry = get(&mut stream, &mut reader, "/v1/reports");
    assert!(registry.body_text().contains("table2"));
    handle.stop();
}

/// `GET /metrics` (ISSUE 10): the scrape is valid Prometheus text
/// exposition cold *and* warm, carries per-endpoint histogram series
/// for every endpoint that served a request, and — once evaluations
/// ran — live `redeval_core_*` counters from the shared analysis cache.
#[test]
fn metrics_exposition_is_valid_cold_and_warm() {
    let handle = start_server();
    let (mut stream, mut reader) = connect(&handle);

    // Cold scrape: a valid exposition before any evaluation ran, core
    // counters all zero.
    let cold = get(&mut stream, &mut reader, "/metrics");
    assert_eq!(cold.status, 200);
    assert!(
        cold.header("Content-Type")
            .is_some_and(|t| t.starts_with("text/plain")),
        "exposition content type"
    );
    redeval_server::validate_exposition(cold.body_text()).expect("cold scrape validates");
    assert!(
        cold.body_text().contains("redeval_core_cache_hits_total 0"),
        "cold core counters are zero"
    );

    // Warm it: one eval (tier solves populate and re-hit the analysis
    // cache) plus the repeat (a result-cache hit).
    let scenario = paper_scenario_text();
    for _ in 0..2 {
        let reply = post(&mut stream, &mut reader, "/v1/eval", scenario.as_bytes());
        assert_eq!(reply.status, 200);
    }

    let warm = get(&mut stream, &mut reader, "/metrics");
    assert_eq!(warm.status, 200);
    let text = warm.body_text();
    redeval_server::validate_exposition(text).expect("warm scrape validates");
    // Per-endpoint request counters and cumulative histogram series.
    assert!(
        text.contains("redeval_endpoint_requests_total{endpoint=\"eval\"} 2"),
        "{text}"
    );
    assert!(
        text.contains(
            "redeval_request_duration_microseconds_bucket{endpoint=\"eval\",le=\"+Inf\"} 2"
        ),
        "{text}"
    );
    assert!(text.contains("redeval_cache_hits_total 1"), "{text}");
    // The warm scrape must show analysis-cache hits: the case-study
    // tiers share solve parameters, so one eval alone re-hits the
    // shared cache (the CI smoke job greps for exactly this).
    let hits: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("redeval_core_cache_hits_total "))
        .expect("core cache hits series present")
        .trim()
        .parse()
        .expect("counter value parses");
    assert!(hits > 0, "warm scrape shows no core cache hits: {text}");
    handle.stop();
}

/// The cache observability contract, pinned byte-for-byte: a fixed
/// request sequence against a fresh service yields a deterministic
/// `X-Redeval-Cache` header trace and deterministic cache/core counter
/// lines in `/v1/stats` (every extracted value is schedule-independent;
/// wall-clock stats keys are deliberately excluded).
#[test]
fn cache_contract_transcript_matches_its_golden() {
    let service = serve::service(2, 1 << 20);
    let scenario = paper_scenario_text();
    let optimize_body = format!(
        "{{\"scenario\": {}, \"max_redundancy\": 2}}",
        scenario.trim_end()
    );
    let sequence: [(&str, &[u8]); 4] = [
        ("/v1/eval", scenario.as_bytes()),
        ("/v1/eval", scenario.as_bytes()),
        ("/v1/optimize", optimize_body.as_bytes()),
        ("/v1/eval", scenario.as_bytes()),
    ];
    let mut transcript = String::new();
    for (path, body) in sequence {
        let resp = service.handle(&Request::synthetic("POST", path, body));
        let cache_state = resp
            .extra_headers
            .iter()
            .find(|(n, _)| *n == redeval_server::CACHE_HEADER)
            .map(|(_, v)| v.as_str())
            .expect("cache header present");
        transcript.push_str(&format!("POST {path} -> {} {cache_state}\n", resp.status));
    }
    let stats = service.handle(&Request::synthetic("GET", "/v1/stats", b""));
    assert_eq!(stats.status, 200);
    transcript.push_str("stats:\n");
    // The `keys` items serialize their whole entry map on one line, so
    // pick the pinned pairs out by key prefix rather than by line.
    let body = std::str::from_utf8(&stats.body).expect("stats utf8");
    let mut rest = body;
    while let Some(pos) = ["\"cache_", "\"core_"]
        .iter()
        .filter_map(|p| rest.find(p))
        .min()
    {
        let tail = &rest[pos..];
        let end = tail.find([',', '}']).expect("stats JSON is well formed");
        transcript.push_str(&format!("  {}\n", &tail[..end]));
        rest = &tail[end..];
    }
    assert_matches_golden(transcript.as_bytes(), "cache_contract.txt");
}

/// Every file under `tests/golden/serve/` must be one this suite pins —
/// a renamed golden must fail here, not linger as a dead byte pile
/// (`tests/golden.rs` excludes the directory from its own orphan check
/// and delegates to this one).
#[test]
fn no_orphan_serve_goldens() {
    const PINNED: [&str; 7] = [
        "eval_paper_case_study.json",
        "optimize_paper_case_study.json",
        "equilibrium_paper_case_study.json",
        "healthz.http",
        "bad_json.http",
        "not_found.http",
        "cache_contract.txt",
    ];
    for entry in fs::read_dir(golden_dir().join("serve")).expect("serve golden dir exists") {
        let path = entry.expect("dir entry").path();
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        assert!(
            PINNED.contains(&name.as_str()),
            "orphan serve golden {} — no test pins it",
            path.display()
        );
    }
}

/// Golden HTTP transcripts: full serialized responses, pinned byte for
/// byte. Built straight from the service (no socket) so the pin covers
/// the response serializer too.
#[test]
fn http_transcripts_match_their_goldens() {
    let service = serve::service(1, 1 << 20);
    let health = service
        .handle(&Request::synthetic("GET", "/healthz", b""))
        .to_bytes(true);
    assert_matches_golden(&health, "healthz.http");
    let bad_json = service
        .handle(&Request::synthetic("POST", "/v1/eval", b"{ nope"))
        .to_bytes(true);
    assert_matches_golden(&bad_json, "bad_json.http");
    let not_found = service
        .handle(&Request::synthetic("GET", "/v2/everything", b""))
        .to_bytes(false);
    assert_matches_golden(&not_found, "not_found.http");
}
