//! Differential tests for the pruned design-space search (ISSUE 7
//! acceptance): on every grid small enough for the exhaustive sweep
//! path (≤ 10 000 cells), `redeval optimize` must be **byte-identical**
//! to enumerating the full design × policy grid and keeping the
//! Pareto-optimal (after-patch ASP ↓, COA ↑) points — at 1, 2 and 4
//! threads, across seeded scenarios from every generator family, and
//! through all three front doors (the in-process report builder, the
//! CLI and `POST /v1/optimize`).
//!
//! A proptest-style sweep additionally pins the soundness of pruning
//! itself: no box the search discarded may contain a frontier member.

use std::fs;
use std::path::PathBuf;

use redeval::optimize::exhaustive_frontier;
use redeval::scenario::generate::{self, Family, GenParams};
use redeval::scenario::ScenarioDoc;
use redeval::{DesignEvaluation, Optimizer, PatchPolicy};
use redeval_bench::{cli, reports, serve};
use redeval_server::{OptimizeRequest, Request, CACHE_HEADER};

/// Seed-derived knobs keeping every grid under the sweep cap: at most
/// 3^5 × 2 = 486 cells, so the exhaustive reference stays cheap.
fn corpus_params(seed: u64) -> (GenParams, u32) {
    let params = GenParams {
        tiers: 3 + (seed % 3) as u32,
        redundancy: 2,
        designs: 1,
        policies: 1 + (seed % 2) as u32,
    };
    let max_redundancy = 2 + (seed % 2) as u32;
    (params, max_redundancy)
}

fn grid_doc(family: Family, seed: u64) -> (ScenarioDoc, u32) {
    let (params, max_redundancy) = corpus_params(seed);
    let doc = generate::generate(family, &params, seed);
    let cells = u64::from(max_redundancy).pow(doc.tiers.len() as u32) * doc.policies.len() as u64;
    assert!(cells <= 10_000, "corpus grid must stay under the sweep cap");
    (doc, max_redundancy)
}

fn assert_bitwise_equal(a: &[DesignEvaluation], b: &[DesignEvaluation], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: frontier sizes differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.name, y.name, "{ctx}: member order diverges");
        assert_eq!(x.counts, y.counts, "{ctx}: counts diverge");
        assert_eq!(
            x.after.attack_success_probability.to_bits(),
            y.after.attack_success_probability.to_bits(),
            "{ctx}: ASP bits diverge on {}",
            x.name
        );
        assert_eq!(
            x.coa.to_bits(),
            y.coa.to_bits(),
            "{ctx}: COA bits diverge on {}",
            x.name
        );
        assert_eq!(x, y, "{ctx}: evaluations diverge on {}", x.name);
    }
}

/// The headline acceptance check: the pruned search equals exhaustive
/// enumeration, bit for bit, on every corpus grid at every thread count.
#[test]
fn pruned_search_matches_exhaustive_enumeration_on_small_grids() {
    for family in generate::FAMILIES {
        for seed in [0u64, 1, 2] {
            let (doc, max_redundancy) = grid_doc(family, seed);
            let optimizer = Optimizer::from_scenario(&doc)
                .unwrap_or_else(|e| panic!("{}: {e}", doc.name))
                .max_redundancy(max_redundancy);
            let reference = exhaustive_frontier(&optimizer)
                .unwrap_or_else(|e| panic!("{}: exhaustive sweep: {e}", doc.name));
            assert!(!reference.is_empty(), "{}: empty frontier", doc.name);
            for threads in [1usize, 2, 4] {
                let outcome = optimizer
                    .clone()
                    .threads(threads)
                    .run()
                    .unwrap_or_else(|e| panic!("{}: optimize: {e}", doc.name));
                assert_bitwise_equal(
                    &reference,
                    &outcome.frontier,
                    &format!("{} @ {threads} threads", doc.name),
                );
            }
        }
    }
}

/// The three front doors — in-process builder, CLI, served endpoint —
/// emit identical report bytes for the same optimize request.
#[test]
fn optimize_front_doors_emit_identical_bytes() {
    let svc = serve::service(2, 8 * 1024 * 1024);
    let dir: PathBuf =
        std::env::temp_dir().join(format!("redeval-opt-diff-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    for (i, family) in generate::FAMILIES.iter().enumerate() {
        let seed = i as u64;
        let (doc, max_redundancy) = grid_doc(*family, seed);
        // One config per family also overrides the policy list, so the
        // override plumbing of every door is exercised.
        let with_policy = i == 1;

        // Door 1: the in-process report builder.
        let req = OptimizeRequest {
            doc: doc.clone(),
            policies: with_policy.then(|| vec![PatchPolicy::All]),
            max_redundancy: Some(max_redundancy),
            bounds: None,
        };
        let in_process = reports::optimize::optimize_report(&req)
            .unwrap_or_else(|e| panic!("{}: {e}", doc.name))
            .to_json();

        // Door 2: the CLI, end to end through a real file.
        let scenario_file = dir.join(format!("{}.json", doc.name));
        fs::write(&scenario_file, doc.to_json()).expect("write scenario");
        let mut args = vec![
            "optimize".to_string(),
            "--scenario".to_string(),
            scenario_file.to_str().unwrap().to_string(),
            "--max-redundancy".to_string(),
            max_redundancy.to_string(),
            "--format".to_string(),
            "json".to_string(),
            "--out".to_string(),
            dir.to_str().unwrap().to_string(),
        ];
        if with_policy {
            args.extend(["--policy".to_string(), "all".to_string()]);
        }
        assert_eq!(cli::run(&args), 0, "CLI optimize of {} failed", doc.name);
        let cli_bytes = fs::read_to_string(dir.join(format!("optimize_{}.json", doc.name)))
            .expect("CLI wrote the report");

        // Door 3: the served endpoint, wired exactly as `redeval serve`.
        let policies_field = if with_policy {
            ", \"policies\": [\"all\"]"
        } else {
            ""
        };
        let body = format!(
            "{{\"scenario\": {}, \"max_redundancy\": {max_redundancy}{policies_field}}}",
            doc.to_json().trim_end()
        );
        let resp = svc.handle(&Request::synthetic("POST", "/v1/optimize", body.as_bytes()));
        assert_eq!(resp.status, 200, "{} fails via /v1/optimize", doc.name);
        let served = String::from_utf8(resp.body).expect("UTF-8 report");

        assert_eq!(in_process, cli_bytes, "{}: CLI diverges", doc.name);
        assert_eq!(in_process, served, "{}: serve diverges", doc.name);

        // Replay: the served path must answer from its cache, same bytes.
        let replay = svc.handle(&Request::synthetic("POST", "/v1/optimize", body.as_bytes()));
        assert!(replay
            .extra_headers
            .contains(&(CACHE_HEADER, "hit".to_string())));
        assert_eq!(String::from_utf8(replay.body).unwrap(), in_process);
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Proptest-style soundness sweep: across seed-derived configurations,
/// no pruned box may contain a frontier member. (Together with the
/// exhaustive-equality test this pins both directions: nothing optimal
/// is discarded, and what is kept is exactly the frontier.)
#[test]
fn pruned_boxes_never_contain_frontier_members() {
    // Deterministic LCG over configuration space (no RNG in tests).
    let mut state = 0x2545F491_4F6CDD1Du64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for case in 0..10u32 {
        let family = generate::FAMILIES[(next() % 3) as usize];
        let seed = next() % 1000;
        let (params, _) = corpus_params(next());
        let max_redundancy = 2 + (next() % 3) as u32; // 2..=4
        let doc = generate::generate(family, &params, seed);
        let optimizer = Optimizer::from_scenario(&doc)
            .unwrap_or_else(|e| panic!("case {case} ({}): {e}", doc.name))
            .max_redundancy(max_redundancy)
            .threads(2);
        let outcome = optimizer
            .run()
            .unwrap_or_else(|e| panic!("case {case} ({}): {e}", doc.name));
        assert!(!outcome.frontier.is_empty(), "case {case}: empty frontier");
        for member in &outcome.frontier {
            for (lo, hi) in &outcome.pruned_boxes {
                let inside = member
                    .counts
                    .iter()
                    .zip(lo.iter().zip(hi))
                    .all(|(c, (l, h))| l <= c && c <= h);
                assert!(
                    !inside,
                    "case {case} ({}): frontier member {} (counts {:?}) lies in \
                     pruned box {lo:?}..={hi:?}",
                    doc.name, member.name, member.counts
                );
            }
        }
    }
}
