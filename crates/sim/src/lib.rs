//! Discrete-event Monte-Carlo simulation for the `redeval` workspace.
//!
//! The reproduced paper validates nothing against a real deployment — it is
//! an analytic modeling study. This crate provides the next best thing: an
//! **independent implementation of the same stochastic semantics** used to
//! cross-check every analytic result.
//!
//! * [`Simulation`] — simulates any [`redeval_srn::Srn`] directly
//!   (exponential timed transitions, weighted immediate transitions,
//!   guards, marking-dependent rates) and estimates steady-state rewards
//!   with batch-means confidence intervals;
//! * [`simulate_coa`] — convenience wrapper simulating an upper-layer
//!   [`redeval_avail::NetworkModel`];
//! * [`estimate_asp`] — Monte-Carlo attack simulation on a
//!   [`redeval_harm::Harm`]: samples each vulnerability exploit as an
//!   independent Bernoulli trial, evaluates the AND/OR trees logically and
//!   checks graph reachability — the ground truth that the analytic ASP
//!   aggregation strategies approximate.
//!
//! Against the paper, this validates the COA of Table VI, the ASP of
//! Table II and the Equation (1),(2) aggregation error (`validate_sim` and
//! `aggregation_error` in `redeval-bench`).
//!
//! # Examples
//!
//! ```
//! use redeval_srn::Srn;
//! use redeval_sim::Simulation;
//!
//! # fn main() -> Result<(), redeval_srn::SrnError> {
//! let mut net = Srn::new("c");
//! let up = net.add_place("up", 1);
//! let down = net.add_place("down", 0);
//! let fail = net.add_timed("fail", 0.1);
//! net.add_move(fail, up, down)?;
//! let fix = net.add_timed("fix", 0.9);
//! net.add_move(fix, down, up)?;
//!
//! let mut sim = Simulation::new(&net, 42);
//! sim.add_reward("avail", move |m| if m.tokens(up) == 1 { 1.0 } else { 0.0 });
//! let out = sim.run(100.0, 10_000.0, 20).unwrap();
//! let est = &out.rewards[0];
//! assert!((est.mean - 0.9).abs() < 0.02);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attack;
mod coa;
mod engine;

pub use attack::{estimate_asp, AspEstimate};
pub use coa::simulate_coa;
pub use engine::{RewardEstimate, SimError, SimOutcome, Simulation};

#[cfg(test)]
mod send_sync_audit {
    //! Whole simulations move to batch worker threads (replication
    //! fan-out); reward closures are boxed `Send + Sync` to keep it so.
    use super::*;

    #[test]
    fn simulation_types_are_send_sync() {
        fn ok<T: Send + Sync>() {}
        ok::<Simulation<'_>>();
        ok::<SimOutcome>();
        ok::<RewardEstimate>();
        ok::<AspEstimate>();
        ok::<SimError>();
    }
}
