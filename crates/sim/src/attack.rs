//! Monte-Carlo attack simulation over a HARM.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use redeval_harm::{AttackTree, Harm, HostId};

/// Result of [`estimate_asp`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AspEstimate {
    /// Fraction of trials in which the attacker reached a target.
    pub mean: f64,
    /// Normal-approximation 95% confidence half-width.
    pub ci95: f64,
    /// Number of trials.
    pub trials: u64,
}

/// Estimates the network attack success probability by direct simulation:
/// each trial samples every vulnerability exploit as an independent
/// Bernoulli(p) event, evaluates each host's AND/OR tree logically, and
/// checks whether some attack path of compromised hosts connects an entry
/// point to a target.
///
/// This is the **ground truth** that the analytic ASP aggregation
/// strategies approximate (it matches
/// [`AspStrategy::Reliability`](redeval_harm::AspStrategy::Reliability)
/// when every tree is a single leaf, and refines it when trees share
/// AND/OR structure).
///
/// # Examples
///
/// ```
/// use redeval_harm::{AttackGraph, AttackTree, Harm, Vulnerability};
/// use redeval_sim::estimate_asp;
///
/// let mut g = AttackGraph::new();
/// let h = g.add_host("h");
/// g.add_entry(h);
/// let tree = AttackTree::leaf(Vulnerability::new("v", 10.0, 0.3));
/// let harm = Harm::new(g, vec![Some(tree)], vec![h]);
/// let est = estimate_asp(&harm, 20_000, 1);
/// assert!((est.mean - 0.3).abs() < 0.02);
/// ```
pub fn estimate_asp(harm: &Harm, trials: u64, seed: u64) -> AspEstimate {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = harm.graph();
    let hosts: Vec<HostId> = graph.hosts().collect();
    let mut successes = 0u64;
    let mut compromised = vec![false; hosts.len()];

    for _ in 0..trials {
        for &h in &hosts {
            compromised[h.index()] = match harm.tree(h) {
                Some(tree) => sample_tree(tree, &mut rng),
                None => false,
            };
        }
        if reachable(harm, &compromised) {
            successes += 1;
        }
    }
    let mean = successes as f64 / trials as f64;
    let ci95 = 1.96 * (mean * (1.0 - mean) / trials as f64).sqrt();
    AspEstimate { mean, ci95, trials }
}

/// Samples the logical outcome of an attack tree with independent
/// per-vulnerability exploits.
fn sample_tree(tree: &AttackTree, rng: &mut StdRng) -> bool {
    match tree {
        AttackTree::Leaf(v) => rng.gen::<f64>() < v.probability,
        AttackTree::And(cs) => cs.iter().all(|c| sample_tree(c, rng)),
        AttackTree::Or(cs) => {
            // Evaluate all children so the RNG stream is independent of
            // short-circuiting (keeps trials exchangeable).
            let mut any = false;
            for c in cs {
                if sample_tree(c, rng) {
                    any = true;
                }
            }
            any
        }
    }
}

/// BFS over compromised hosts from the entries to any target.
fn reachable(harm: &Harm, compromised: &[bool]) -> bool {
    let graph = harm.graph();
    let mut visited = vec![false; graph.host_count()];
    let mut queue: Vec<HostId> = graph
        .entries()
        .iter()
        .copied()
        .filter(|h| compromised[h.index()])
        .collect();
    for h in &queue {
        visited[h.index()] = true;
    }
    while let Some(h) = queue.pop() {
        if harm.targets().contains(&h) {
            return true;
        }
        for &s in graph.successors(h) {
            if !visited[s.index()] && compromised[s.index()] {
                visited[s.index()] = true;
                queue.push(s);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use redeval_harm::{AspStrategy, AttackGraph, MetricsConfig, Vulnerability};

    fn v(id: &str, p: f64) -> AttackTree {
        AttackTree::leaf(Vulnerability::new(id, 5.0, p))
    }

    /// Two entry hosts -> one target (the diamond used in harm tests).
    fn diamond() -> Harm {
        let mut g = AttackGraph::new();
        let m1 = g.add_host("m1");
        let m2 = g.add_host("m2");
        let t = g.add_host("t");
        g.add_entry(m1);
        g.add_entry(m2);
        g.add_edge(m1, t);
        g.add_edge(m2, t);
        Harm::new(
            g,
            vec![Some(v("a", 0.5)), Some(v("b", 0.5)), Some(v("c", 0.5))],
            vec![t],
        )
    }

    #[test]
    fn matches_exact_reliability() {
        let harm = diamond();
        let exact = harm
            .metrics(&MetricsConfig {
                asp: AspStrategy::Reliability,
                ..Default::default()
            })
            .attack_success_probability;
        let est = estimate_asp(&harm, 200_000, 9);
        assert!(
            (est.mean - exact).abs() < 3.0 * est.ci95,
            "sim {} ± {} vs exact {exact}",
            est.mean,
            est.ci95
        );
    }

    #[test]
    fn sim_lies_between_max_and_noisy_or() {
        let harm = diamond();
        let max = harm
            .metrics(&MetricsConfig {
                asp: AspStrategy::MaxPath,
                ..Default::default()
            })
            .attack_success_probability;
        let nor = harm
            .metrics(&MetricsConfig {
                asp: AspStrategy::NoisyOrPaths,
                ..Default::default()
            })
            .attack_success_probability;
        let est = estimate_asp(&harm, 100_000, 5);
        assert!(est.mean >= max - 0.01 && est.mean <= nor + 0.01);
    }

    #[test]
    fn unexploitable_network_never_succeeds() {
        let mut g = AttackGraph::new();
        let h = g.add_host("h");
        g.add_entry(h);
        let harm = Harm::new(g, vec![None], vec![h]);
        let est = estimate_asp(&harm, 1000, 3);
        assert_eq!(est.mean, 0.0);
    }

    #[test]
    fn certain_vulnerabilities_always_succeed() {
        let mut g = AttackGraph::new();
        let h = g.add_host("h");
        g.add_entry(h);
        let harm = Harm::new(g, vec![Some(v("sure", 1.0))], vec![h]);
        let est = estimate_asp(&harm, 1000, 3);
        assert_eq!(est.mean, 1.0);
        assert_eq!(est.ci95, 0.0);
    }

    #[test]
    fn and_tree_multiplies() {
        let mut g = AttackGraph::new();
        let h = g.add_host("h");
        g.add_entry(h);
        let tree = AttackTree::and(vec![v("x", 0.5), v("y", 0.5)]);
        let harm = Harm::new(g, vec![Some(tree)], vec![h]);
        let est = estimate_asp(&harm, 100_000, 17);
        assert!((est.mean - 0.25).abs() < 3.0 * est.ci95);
    }

    #[test]
    fn deterministic_for_seed() {
        let harm = diamond();
        assert_eq!(estimate_asp(&harm, 5000, 1), estimate_asp(&harm, 5000, 1));
        assert_ne!(
            estimate_asp(&harm, 5000, 1).mean,
            estimate_asp(&harm, 5000, 2).mean
        );
    }
}
