//! Simulation of the upper-layer network model.

use redeval_avail::NetworkModel;

use crate::engine::{RewardEstimate, SimError, Simulation};

/// Simulates the capacity-oriented availability of a network model by
/// executing its Figure-4 SRN and time-averaging the Table-VI reward —
/// an independent check of the analytic
/// [`NetworkModel::coa`].
///
/// Returns the COA estimate with its batch-means confidence interval.
///
/// # Errors
///
/// Propagates simulation errors.
///
/// # Examples
///
/// ```
/// use redeval_avail::{AggregatedRates, NetworkModel, Tier};
/// use redeval_sim::simulate_coa;
///
/// # fn main() -> Result<(), redeval_sim::SimError> {
/// let r = AggregatedRates { lambda_eq: 1.0 / 720.0, mu_eq: 1.5 };
/// let net = NetworkModel::new(vec![Tier::new("dns", 1, r)]);
/// let est = simulate_coa(&net, 200_000.0, 42)?;
/// let analytic = net.coa().expect("solvable");
/// assert!((est.mean - analytic).abs() < 5.0 * est.ci95.max(1e-4));
/// # Ok(())
/// # }
/// ```
pub fn simulate_coa(
    model: &NetworkModel,
    horizon_hours: f64,
    seed: u64,
) -> Result<RewardEstimate, SimError> {
    let (net, ups) = model.to_srn();
    let counts: Vec<u32> = model.tiers().iter().map(|t| t.count).collect();
    let total: u32 = counts.iter().sum();
    let mut sim = Simulation::new(&net, seed);
    let ups_cl = ups.clone();
    sim.add_reward("coa", move |m| {
        let mut sum = 0u32;
        for &p in &ups_cl {
            let u = m.tokens(p);
            if u == 0 {
                return 0.0;
            }
            sum += u;
        }
        f64::from(sum) / f64::from(total)
    });
    let warmup = horizon_hours * 0.02;
    let out = sim.run(warmup, horizon_hours, 20)?;
    Ok(out.rewards.into_iter().next().expect("one reward"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use redeval_avail::{AggregatedRates, Tier};

    fn case_study() -> NetworkModel {
        NetworkModel::new(vec![
            Tier::new(
                "dns",
                1,
                AggregatedRates {
                    lambda_eq: 1.0 / 720.0,
                    mu_eq: 1.49992,
                },
            ),
            Tier::new(
                "web",
                2,
                AggregatedRates {
                    lambda_eq: 1.0 / 720.0,
                    mu_eq: 1.71420,
                },
            ),
            Tier::new(
                "app",
                2,
                AggregatedRates {
                    lambda_eq: 1.0 / 720.0,
                    mu_eq: 0.99995,
                },
            ),
            Tier::new(
                "db",
                1,
                AggregatedRates {
                    lambda_eq: 1.0 / 720.0,
                    mu_eq: 1.09085,
                },
            ),
        ])
    }

    #[test]
    fn simulated_coa_matches_analytic() {
        let model = case_study();
        let analytic = model.coa().unwrap();
        // Long horizon: patching is rare (once per 720 h per server), so
        // many cycles are needed for a tight estimate.
        let est = simulate_coa(&model, 3_000_000.0, 2024).unwrap();
        let tolerance = (3.0 * est.ci95).max(3e-4);
        assert!(
            (est.mean - analytic).abs() < tolerance,
            "sim {} ± {} vs analytic {analytic}",
            est.mean,
            est.ci95
        );
    }

    #[test]
    fn estimate_is_below_one_and_positive() {
        let est = simulate_coa(&case_study(), 500_000.0, 7).unwrap();
        assert!(est.mean > 0.99 && est.mean < 1.0);
    }
}
