//! A discrete-event simulator executing SRN semantics directly.

use std::error::Error;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use redeval_srn::{Marking, Srn, TransitionKind};

/// Errors raised during simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A rate function returned a negative/NaN value during the run.
    InvalidRate {
        /// Transition name.
        transition: String,
        /// Offending value.
        value: f64,
    },
    /// An immediate-transition conflict had non-positive total weight.
    InvalidWeight {
        /// Transition name of a participant.
        transition: String,
    },
    /// More than `limit` immediate firings occurred without time advancing
    /// (a vanishing loop).
    ImmediateLoop {
        /// The firing limit that was hit.
        limit: usize,
    },
    /// The marking reached a deadlock (no transition enabled) before the
    /// horizon; steady-state estimation is meaningless.
    Deadlock {
        /// Simulated time at which the deadlock occurred.
        at: f64,
    },
    /// Horizon/warmup/batch parameters were inconsistent.
    BadParameters,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidRate { transition, value } => {
                write!(f, "transition `{transition}` produced invalid rate {value}")
            }
            SimError::InvalidWeight { transition } => {
                write!(f, "invalid immediate weight near `{transition}`")
            }
            SimError::ImmediateLoop { limit } => {
                write!(
                    f,
                    "more than {limit} immediate firings without time advancing"
                )
            }
            SimError::Deadlock { at } => write!(f, "deadlock at simulated time {at:.3}"),
            SimError::BadParameters => write!(f, "inconsistent simulation parameters"),
        }
    }
}

impl Error for SimError {}

/// Point estimate with a batch-means 95% confidence interval.
#[derive(Debug, Clone, PartialEq)]
pub struct RewardEstimate {
    /// Reward name.
    pub name: String,
    /// Time-average over the measurement horizon.
    pub mean: f64,
    /// Half-width of the 95% confidence interval over batches.
    pub ci95: f64,
}

/// All reward estimates of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// One estimate per registered reward, in registration order.
    pub rewards: Vec<RewardEstimate>,
    /// Number of transition firings executed (timed + immediate).
    pub firings: u64,
}

// `Send + Sync` so whole simulations can move to (and be shared by) batch
// worker threads — replication fan-out runs one `Simulation` per worker.
type RewardFn<'a> = Box<dyn Fn(&Marking) -> f64 + Send + Sync + 'a>;

/// A reusable simulator for one net.
///
/// Register named reward functions with [`add_reward`](Self::add_reward),
/// then call [`run`](Self::run). See the [crate docs](crate) for an
/// example.
pub struct Simulation<'a> {
    net: &'a Srn,
    rng: StdRng,
    rewards: Vec<(String, RewardFn<'a>)>,
    /// Immediate firings allowed without time advancing.
    immediate_limit: usize,
}

impl fmt::Debug for Simulation<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("net", &self.net.name())
            .field("rewards", &self.rewards.len())
            .finish()
    }
}

impl<'a> Simulation<'a> {
    /// Creates a simulator with a deterministic seed.
    pub fn new(net: &'a Srn, seed: u64) -> Self {
        Simulation {
            net,
            rng: StdRng::seed_from_u64(seed),
            rewards: Vec::new(),
            immediate_limit: 10_000,
        }
    }

    /// Registers a named reward function; estimates are returned in
    /// registration order.
    pub fn add_reward<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: Fn(&Marking) -> f64 + Send + Sync + 'a,
    {
        self.rewards.push((name.into(), Box::new(f)));
    }

    /// Runs one replication: discards `warmup` time units, then measures
    /// time-averaged rewards over `horizon`, split into `batches` batches
    /// for the confidence interval.
    ///
    /// # Errors
    ///
    /// * [`SimError::BadParameters`] for a non-positive horizon or zero
    ///   batches;
    /// * [`SimError::Deadlock`] / [`SimError::ImmediateLoop`] for nets that
    ///   stop or livelock;
    /// * rate/weight errors as encountered.
    pub fn run(
        &mut self,
        warmup: f64,
        horizon: f64,
        batches: usize,
    ) -> Result<SimOutcome, SimError> {
        // `!(horizon > 0.0)` rather than `horizon <= 0.0` so NaN is rejected.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(horizon > 0.0) || batches == 0 || warmup < 0.0 {
            return Err(SimError::BadParameters);
        }
        let mut marking = self.net.initial_marking();
        let mut now = 0.0f64;
        let end = warmup + horizon;
        let batch_len = horizon / batches as f64;
        // Per-reward, per-batch accumulated reward·time.
        let mut acc = vec![vec![0.0f64; batches]; self.rewards.len()];
        let mut firings = 0u64;

        // Settle immediates at the initial marking.
        self.settle_immediates(&mut marking, &mut firings)?;

        while now < end {
            // Total timed rate at the (tangible) marking.
            let mut total = 0.0;
            let mut enabled: Vec<(usize, f64)> = Vec::new();
            for t in self.net.transition_ids() {
                if let TransitionKind::Timed { rate } = self.net.transition_kind(t) {
                    if self.net.is_enabled(t, &marking) {
                        let r = rate(&marking);
                        if !r.is_finite() || r < 0.0 {
                            return Err(SimError::InvalidRate {
                                transition: self.net.transition_name(t).to_string(),
                                value: r,
                            });
                        }
                        if r > 0.0 {
                            enabled.push((t.index(), r));
                            total += r;
                        }
                    }
                }
            }
            if enabled.is_empty() {
                return Err(SimError::Deadlock { at: now });
            }
            let dwell = -(1.0 - self.rng.gen::<f64>()).ln() / total;
            let next_time = (now + dwell).min(end);
            // Accumulate rewards over [now, next_time).
            if next_time > warmup {
                let seg_start = now.max(warmup);
                self.accumulate(&marking, seg_start, next_time, warmup, batch_len, &mut acc);
            }
            now += dwell;
            if now >= end {
                break;
            }
            // Pick which transition fired.
            let mut x = self.rng.gen::<f64>() * total;
            let mut chosen = enabled[enabled.len() - 1].0;
            for &(ti, r) in &enabled {
                if x < r {
                    chosen = ti;
                    break;
                }
                x -= r;
            }
            marking = self
                .net
                .fire(redeval_srn::TransId::from_index(chosen), &marking);
            firings += 1;
            self.settle_immediates(&mut marking, &mut firings)?;
        }

        // Summarize batches.
        let mut rewards = Vec::with_capacity(self.rewards.len());
        for (ri, (name, _)) in self.rewards.iter().enumerate() {
            let means: Vec<f64> = acc[ri].iter().map(|a| a / batch_len).collect();
            let mean = means.iter().sum::<f64>() / batches as f64;
            let var = if batches > 1 {
                means.iter().map(|m| (m - mean) * (m - mean)).sum::<f64>() / (batches - 1) as f64
            } else {
                0.0
            };
            let ci95 = 1.96 * (var / batches as f64).sqrt();
            rewards.push(RewardEstimate {
                name: name.clone(),
                mean,
                ci95,
            });
        }
        Ok(SimOutcome { rewards, firings })
    }

    /// Adds `reward(m) · dt` into the right batches for the segment
    /// `[from, to)` (already clipped to the measurement window).
    fn accumulate(
        &self,
        marking: &Marking,
        from: f64,
        to: f64,
        warmup: f64,
        batch_len: f64,
        acc: &mut [Vec<f64>],
    ) {
        for (ri, (_, f)) in self.rewards.iter().enumerate() {
            let value = f(marking);
            if value == 0.0 {
                continue;
            }
            // Spread across batches.
            let mut seg_start = from;
            while seg_start < to {
                let batch = (((seg_start - warmup) / batch_len) as usize).min(acc[ri].len() - 1);
                let batch_end = warmup + (batch + 1) as f64 * batch_len;
                let seg_end = to.min(batch_end);
                acc[ri][batch] += value * (seg_end - seg_start);
                seg_start = seg_end;
            }
        }
    }

    /// Fires immediate transitions (respecting priorities and weights)
    /// until the marking is tangible.
    fn settle_immediates(
        &mut self,
        marking: &mut Marking,
        firings: &mut u64,
    ) -> Result<(), SimError> {
        for _ in 0..self.immediate_limit {
            let mut best_priority: Option<u32> = None;
            for t in self.net.transition_ids() {
                if let TransitionKind::Immediate { priority, .. } = self.net.transition_kind(t) {
                    if self.net.is_enabled(t, marking) {
                        best_priority = Some(match best_priority {
                            Some(p) => p.max(*priority),
                            None => *priority,
                        });
                    }
                }
            }
            let Some(priority) = best_priority else {
                return Ok(());
            };
            let mut candidates: Vec<(usize, f64)> = Vec::new();
            let mut total = 0.0;
            for t in self.net.transition_ids() {
                if let TransitionKind::Immediate {
                    weight,
                    priority: p,
                } = self.net.transition_kind(t)
                {
                    if *p == priority && self.net.is_enabled(t, marking) {
                        candidates.push((t.index(), *weight));
                        total += *weight;
                    }
                }
            }
            // `!(total > 0.0)` rather than `total <= 0.0` so NaN is rejected.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(total > 0.0) {
                return Err(SimError::InvalidWeight {
                    transition: self
                        .net
                        .transition_name(redeval_srn::TransId::from_index(candidates[0].0))
                        .to_string(),
                });
            }
            let mut x = self.rng.gen::<f64>() * total;
            let mut chosen = candidates[candidates.len() - 1].0;
            for &(ti, w) in &candidates {
                if x < w {
                    chosen = ti;
                    break;
                }
                x -= w;
            }
            *marking = self
                .net
                .fire(redeval_srn::TransId::from_index(chosen), marking);
            *firings += 1;
        }
        Err(SimError::ImmediateLoop {
            limit: self.immediate_limit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state(lambda: f64, mu: f64) -> Srn {
        let mut net = Srn::new("c");
        let up = net.add_place("up", 1);
        let down = net.add_place("down", 0);
        let fail = net.add_timed("fail", lambda);
        net.add_move(fail, up, down).unwrap();
        let fix = net.add_timed("fix", mu);
        net.add_move(fix, down, up).unwrap();
        net
    }

    #[test]
    fn availability_matches_analytic() {
        let net = two_state(0.2, 1.8);
        let mut sim = Simulation::new(&net, 7);
        let up = net.find_place("up").unwrap();
        sim.add_reward("a", move |m| f64::from(m.tokens(up)));
        let out = sim.run(50.0, 20_000.0, 20).unwrap();
        let est = &out.rewards[0];
        let exact = 1.8 / 2.0;
        assert!(
            (est.mean - exact).abs() < 3.0 * est.ci95.max(0.005),
            "mean {} ± {} vs {exact}",
            est.mean,
            est.ci95
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let net = two_state(0.5, 0.5);
        let up = net.find_place("up").unwrap();
        let run = |seed| {
            let mut sim = Simulation::new(&net, seed);
            sim.add_reward("a", move |m| f64::from(m.tokens(up)));
            sim.run(10.0, 1000.0, 10).unwrap().rewards[0].mean
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn immediate_weights_respected() {
        // Vanishing choice 3:1 between two repair places.
        let mut net = Srn::new("w");
        let up = net.add_place("up", 1);
        let det = net.add_place("det", 0);
        let a = net.add_place("a", 0);
        let b = net.add_place("b", 0);
        let fail = net.add_timed("fail", 1.0);
        net.add_move(fail, up, det).unwrap();
        let ta = net.add_immediate_weighted("ta", 3.0, 0);
        net.add_move(ta, det, a).unwrap();
        let tb = net.add_immediate_weighted("tb", 1.0, 0);
        net.add_move(tb, det, b).unwrap();
        let fa = net.add_timed("fa", 1.0);
        net.add_move(fa, a, up).unwrap();
        let fb = net.add_timed("fb", 1.0);
        net.add_move(fb, b, up).unwrap();

        let mut sim = Simulation::new(&net, 11);
        sim.add_reward("pa", move |m| f64::from(m.tokens(a)));
        sim.add_reward("pb", move |m| f64::from(m.tokens(b)));
        let out = sim.run(100.0, 30_000.0, 10).unwrap();
        let ratio = out.rewards[0].mean / out.rewards[1].mean;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn deadlock_is_reported() {
        let mut net = Srn::new("dead");
        let p = net.add_place("p", 1);
        let q = net.add_place("q", 0);
        let t = net.add_timed("t", 1.0);
        net.add_move(t, p, q).unwrap();
        let mut sim = Simulation::new(&net, 1);
        sim.add_reward("x", |_| 1.0);
        assert!(matches!(
            sim.run(0.0, 100.0, 4),
            Err(SimError::Deadlock { .. })
        ));
    }

    #[test]
    fn immediate_loop_is_reported() {
        let mut net = Srn::new("il");
        let a = net.add_place("a", 1);
        let b = net.add_place("b", 0);
        let ab = net.add_immediate("ab");
        net.add_move(ab, a, b).unwrap();
        let ba = net.add_immediate("ba");
        net.add_move(ba, b, a).unwrap();
        let mut sim = Simulation::new(&net, 1);
        assert!(matches!(
            sim.run(0.0, 10.0, 2),
            Err(SimError::ImmediateLoop { .. })
        ));
    }

    #[test]
    fn bad_parameters_rejected() {
        let net = two_state(1.0, 1.0);
        let mut sim = Simulation::new(&net, 1);
        assert_eq!(sim.run(0.0, 0.0, 4), Err(SimError::BadParameters));
        assert_eq!(sim.run(0.0, 10.0, 0), Err(SimError::BadParameters));
        assert_eq!(sim.run(-1.0, 10.0, 2), Err(SimError::BadParameters));
    }

    #[test]
    fn ci_shrinks_with_horizon() {
        let net = two_state(0.3, 0.7);
        let up = net.find_place("up").unwrap();
        let ci = |horizon: f64| {
            let mut sim = Simulation::new(&net, 99);
            sim.add_reward("a", move |m| f64::from(m.tokens(up)));
            sim.run(10.0, horizon, 20).unwrap().rewards[0].ci95
        };
        assert!(ci(40_000.0) < ci(1_000.0));
    }
}
