//! Structural analysis: place invariants (P-semiflows).
//!
//! A *P-semiflow* is a non-negative, non-zero integer weighting `y` of the
//! places with `yᵀC = 0` for the incidence matrix `C`: the weighted token
//! count `y·m` is then constant over **all** reachable markings, whatever
//! the timing. P-semiflows prove boundedness and conservation properties
//! structurally — e.g. each of the four sub-models of the paper's server
//! net carries exactly one token, which shows up here as four unit-weight
//! invariants.

use crate::net::{Srn, TransitionKind};
use crate::Marking;

impl Srn {
    /// The incidence matrix `C[p][t] = W(t→p) − W(p→t)` over all
    /// transitions (timed and immediate).
    pub fn incidence_matrix(&self) -> Vec<Vec<i64>> {
        let np = self.place_count();
        let nt = self.transition_count();
        let mut c = vec![vec![0i64; nt]; np];
        for t in self.transition_ids() {
            let tr = &self.transitions[t.index()];
            debug_assert!(matches!(
                tr.kind,
                TransitionKind::Timed { .. } | TransitionKind::Immediate { .. }
            ));
            for &(p, mult) in &tr.inputs {
                c[p.index()][t.index()] -= i64::from(mult);
            }
            for &(p, mult) in &tr.outputs {
                c[p.index()][t.index()] += i64::from(mult);
            }
        }
        c
    }

    /// Computes the minimal-support P-semiflows by the Farkas algorithm.
    ///
    /// Each returned vector has one non-negative weight per place
    /// (normalized by their GCD); for every reachable marking `m`,
    /// `Σ_p y[p]·m[p]` equals its value at the initial marking.
    ///
    /// The Farkas construction can blow up exponentially on adversarial
    /// nets; generation is capped at `max_rows` intermediate rows and
    /// returns `None` when exceeded (callers treat that as "too costly to
    /// enumerate").
    pub fn place_invariants(&self, max_rows: usize) -> Option<Vec<Vec<u64>>> {
        let c = self.incidence_matrix();
        farkas(&c, max_rows)
    }

    /// Computes the minimal-support **T-semiflows** (transition
    /// invariants): non-negative firing-count vectors `x` with `Cx = 0`.
    /// Firing every transition `x[t]` times returns the net to its
    /// starting marking — T-semiflows are the net's structural cycles
    /// (e.g. the patch cycle and each failure/repair loop of the server
    /// model).
    ///
    /// Same `max_rows` cap semantics as
    /// [`place_invariants`](Self::place_invariants).
    pub fn transition_invariants(&self, max_rows: usize) -> Option<Vec<Vec<u64>>> {
        let c = self.incidence_matrix();
        let np = self.place_count();
        let nt = self.transition_count();
        // Transpose: rows become transitions, columns places.
        let mut ct = vec![vec![0i64; np]; nt];
        for (pi, row) in c.iter().enumerate() {
            for (ti, &v) in row.iter().enumerate() {
                ct[ti][pi] = v;
            }
        }
        farkas(&ct, max_rows)
    }
}

/// Farkas enumeration of minimal-support non-negative solutions of
/// `yᵀM = 0`, where `M` has one row per unknown.
fn farkas(m: &[Vec<i64>], max_rows: usize) -> Option<Vec<Vec<u64>>> {
    {
        let c = m;
        let np = m.len();
        let nt = m.first().map_or(0, Vec::len);

        // Rows of [C | I], progressively annulling each transition column.
        #[derive(Clone, PartialEq)]
        struct Row {
            c: Vec<i64>,
            y: Vec<i64>,
        }
        let mut rows: Vec<Row> = (0..np)
            .map(|p| {
                let mut y = vec![0i64; np];
                y[p] = 1;
                Row { c: c[p].clone(), y }
            })
            .collect();

        for j in 0..nt {
            let (mut plus, mut minus, mut zero): (Vec<Row>, Vec<Row>, Vec<Row>) =
                (Vec::new(), Vec::new(), Vec::new());
            for r in rows.drain(..) {
                match r.c[j].cmp(&0) {
                    std::cmp::Ordering::Greater => plus.push(r),
                    std::cmp::Ordering::Less => minus.push(r),
                    std::cmp::Ordering::Equal => zero.push(r),
                }
            }
            let mut next = zero;
            for rp in &plus {
                for rm in &minus {
                    if next.len() > max_rows {
                        return None;
                    }
                    let a = rm.c[j].unsigned_abs() as i64;
                    let b = rp.c[j];
                    let mut combined = Row {
                        c: rp.c.iter().zip(&rm.c).map(|(x, y)| a * x + b * y).collect(),
                        y: rp.y.iter().zip(&rm.y).map(|(x, y)| a * x + b * y).collect(),
                    };
                    let g = combined
                        .c
                        .iter()
                        .chain(&combined.y)
                        .fold(0u64, |g, &v| gcd(g, v.unsigned_abs()));
                    if g > 1 {
                        for v in combined.c.iter_mut().chain(combined.y.iter_mut()) {
                            *v /= g as i64;
                        }
                    }
                    if !next.contains(&combined) {
                        next.push(combined);
                    }
                }
            }
            rows = next;
        }

        // All C-parts are zero now; extract, normalize, minimize support.
        let mut flows: Vec<Vec<u64>> = rows
            .into_iter()
            .filter(|r| r.y.iter().any(|&v| v != 0))
            .map(|r| r.y.iter().map(|&v| v.unsigned_abs()).collect::<Vec<u64>>())
            .collect();
        flows.sort();
        flows.dedup();
        // Minimal support: drop any flow whose support strictly contains
        // another flow's support.
        let support = |f: &Vec<u64>| f.iter().map(|&v| v != 0).collect::<Vec<bool>>();
        let supports: Vec<Vec<bool>> = flows.iter().map(support).collect();
        let minimal: Vec<Vec<u64>> = flows
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                !supports.iter().enumerate().any(|(j, s)| {
                    j != *i
                        && s.iter().zip(&supports[*i]).all(|(a, b)| !a || *b)
                        && s != &supports[*i]
                })
            })
            .map(|(_, f)| f.clone())
            .collect();
        Some(minimal)
    }
}

impl Srn {
    /// Whether every place is covered by some P-semiflow (a structural
    /// boundedness proof).
    pub fn covered_by_invariants(&self, max_rows: usize) -> Option<bool> {
        let flows = self.place_invariants(max_rows)?;
        Some((0..self.place_count()).all(|p| flows.iter().any(|f| f[p] != 0)))
    }

    /// The weighted token sum `y·m` of an invariant over a marking.
    pub fn invariant_value(invariant: &[u64], m: &Marking) -> u64 {
        invariant
            .iter()
            .zip(m.as_slice())
            .map(|(&w, &t)| w * u64::from(t))
            .sum()
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use crate::Srn;

    /// up ⇄ down with multiplicity 1: invariant up + down.
    #[test]
    fn two_place_cycle_invariant() {
        let mut net = Srn::new("c");
        let up = net.add_place("up", 1);
        let down = net.add_place("down", 0);
        let f = net.add_timed("f", 1.0);
        net.add_move(f, up, down).unwrap();
        let r = net.add_timed("r", 1.0);
        net.add_move(r, down, up).unwrap();
        let inv = net.place_invariants(10_000).unwrap();
        assert_eq!(inv, vec![vec![1, 1]]);
        assert_eq!(net.covered_by_invariants(10_000), Some(true));
    }

    /// Weighted conservation: t consumes 2×A and produces 1×B,
    /// u consumes 1×B and produces 2×A ⇒ invariant A + 2B.
    #[test]
    fn weighted_invariant() {
        let mut net = Srn::new("w");
        let a = net.add_place("A", 2);
        let b = net.add_place("B", 0);
        let t = net.add_timed("t", 1.0);
        net.add_input(t, a, 2).unwrap();
        net.add_output(t, b, 1).unwrap();
        let u = net.add_timed("u", 1.0);
        net.add_input(u, b, 1).unwrap();
        net.add_output(u, a, 2).unwrap();
        let inv = net.place_invariants(10_000).unwrap();
        assert_eq!(inv, vec![vec![1, 2]]);
    }

    /// An unbounded generator has no covering invariant.
    #[test]
    fn generator_not_covered() {
        let mut net = Srn::new("g");
        let p = net.add_place("p", 0);
        let t = net.add_timed("t", 1.0);
        net.add_output(t, p, 1).unwrap();
        let inv = net.place_invariants(10_000).unwrap();
        assert!(inv.is_empty());
        assert_eq!(net.covered_by_invariants(10_000), Some(false));
    }

    /// T-semiflows of a simple cycle: firing both transitions once
    /// returns to the start.
    #[test]
    fn cycle_t_invariant() {
        let mut net = Srn::new("c");
        let up = net.add_place("up", 1);
        let down = net.add_place("down", 0);
        let f = net.add_timed("f", 1.0);
        net.add_move(f, up, down).unwrap();
        let r = net.add_timed("r", 1.0);
        net.add_move(r, down, up).unwrap();
        let t_invs = net.transition_invariants(10_000).unwrap();
        assert_eq!(t_invs, vec![vec![1, 1]]);
    }

    /// T-semiflows respect multiplicities: t consumes 2A→B, u does B→A,
    /// so one t firing balances two u firings... (u produces 2A per B).
    #[test]
    fn weighted_t_invariant() {
        let mut net = Srn::new("w");
        let a = net.add_place("A", 2);
        let b = net.add_place("B", 0);
        let t = net.add_timed("t", 1.0);
        net.add_input(t, a, 2).unwrap();
        net.add_output(t, b, 1).unwrap();
        let u = net.add_timed("u", 1.0);
        net.add_input(u, b, 1).unwrap();
        net.add_output(u, a, 2).unwrap();
        // Balanced: each t firing is undone by one u firing.
        assert_eq!(net.transition_invariants(10_000).unwrap(), vec![vec![1, 1]]);

        // Now make u return only 1 A: no non-trivial T-invariant exists.
        let mut net2 = Srn::new("w2");
        let a2 = net2.add_place("A", 2);
        let b2 = net2.add_place("B", 0);
        let t2 = net2.add_timed("t", 1.0);
        net2.add_input(t2, a2, 2).unwrap();
        net2.add_output(t2, b2, 1).unwrap();
        let u2 = net2.add_timed("u", 1.0);
        net2.add_input(u2, b2, 1).unwrap();
        net2.add_output(u2, a2, 1).unwrap();
        assert!(net2.transition_invariants(10_000).unwrap().is_empty());
    }

    /// A T-invariant's firing vector, applied to the incidence matrix,
    /// produces zero marking change.
    #[test]
    fn t_invariants_annul_incidence() {
        let mut net = Srn::new("multi");
        let p1 = net.add_place("p1", 1);
        let p2 = net.add_place("p2", 0);
        let p3 = net.add_place("p3", 0);
        let t12 = net.add_timed("t12", 1.0);
        net.add_move(t12, p1, p2).unwrap();
        let t23 = net.add_timed("t23", 1.0);
        net.add_move(t23, p2, p3).unwrap();
        let t31 = net.add_timed("t31", 1.0);
        net.add_move(t31, p3, p1).unwrap();
        let t21 = net.add_timed("t21", 1.0);
        net.add_move(t21, p2, p1).unwrap();
        let invs = net.transition_invariants(10_000).unwrap();
        assert_eq!(invs.len(), 2); // {t12,t21} and {t12,t23,t31}
        let c = net.incidence_matrix();
        for x in &invs {
            for row in &c {
                let change: i64 = row.iter().zip(x).map(|(&cij, &xj)| cij * xj as i64).sum();
                assert_eq!(change, 0);
            }
        }
    }

    /// Invariant values are constant across the reachable markings.
    #[test]
    fn invariants_hold_on_reachable_markings() {
        // Two independent 1-token cycles sharing the net.
        let mut net = Srn::new("two");
        let a1 = net.add_place("a1", 1);
        let a2 = net.add_place("a2", 0);
        let b1 = net.add_place("b1", 3);
        let b2 = net.add_place("b2", 0);
        for (x, y, n1, n2) in [(a1, a2, "ta", "tb"), (b1, b2, "tc", "td")] {
            let t = net.add_timed(n1, 1.0);
            net.add_move(t, x, y).unwrap();
            let u = net.add_timed(n2, 2.0);
            net.add_move(u, y, x).unwrap();
        }
        let invs = net.place_invariants(10_000).unwrap();
        assert_eq!(invs.len(), 2);
        let ss = net.state_space().unwrap();
        let m0 = net.initial_marking();
        for inv in &invs {
            let v0 = Srn::invariant_value(inv, &m0);
            for m in ss.tangible_markings() {
                assert_eq!(Srn::invariant_value(inv, m), v0);
            }
        }
    }
}
