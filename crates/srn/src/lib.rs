//! A stochastic reward net (SRN) engine.
//!
//! This crate is the workspace's substitute for **SPNP** (the Stochastic
//! Petri Net Package the reproduced paper uses): it lets you describe a
//! stochastic reward net — places, timed transitions with (possibly
//! marking-dependent) exponential rates, immediate transitions with weights
//! and priorities, input/output/inhibitor arcs and guard functions — and
//! then
//!
//! 1. generates the reachability graph,
//! 2. eliminates *vanishing* markings (those enabling an immediate
//!    transition),
//! 3. exports the underlying CTMC, and
//! 4. evaluates steady-state / transient reward measures.
//!
//! The paper's server sub-models (Figure 5, with the guard functions of
//! Table III and the parameters of Table IV) are expressed in this engine;
//! their solutions feed the Equation (1),(2) aggregation in
//! `redeval_avail`.
//!
//! # Examples
//!
//! A repairable component as a two-place net:
//!
//! ```
//! use redeval_srn::Srn;
//!
//! # fn main() -> Result<(), redeval_srn::SrnError> {
//! let mut net = Srn::new("component");
//! let up = net.add_place("Pup", 1);
//! let down = net.add_place("Pdown", 0);
//! let fail = net.add_timed("Tfail", 0.001);
//! let repair = net.add_timed("Trepair", 0.5);
//! net.add_input(fail, up, 1)?;
//! net.add_output(fail, down, 1)?;
//! net.add_input(repair, down, 1)?;
//! net.add_output(repair, up, 1)?;
//!
//! let solved = net.solve()?;
//! let avail = solved.probability(|m| m.tokens(up) == 1);
//! assert!((avail - 0.5 / 0.501).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dot;
mod error;
mod invariants;
mod marking;
mod net;
mod reach;
mod solved;

pub use error::SrnError;
pub use marking::Marking;
pub use net::{PlaceId, Srn, TransId, TransitionKind};
pub use reach::{ReachOptions, StateSpace};
pub use solved::SolvedSrn;

#[cfg(test)]
mod send_sync_audit {
    //! The batch execution layer shares solver values across scoped
    //! worker threads; every public type must stay `Send + Sync`.
    use super::*;

    #[test]
    fn solver_types_are_send_sync() {
        fn ok<T: Send + Sync>() {}
        ok::<Srn>();
        ok::<Marking>();
        ok::<StateSpace>();
        ok::<SolvedSrn>();
        ok::<SrnError>();
    }
}
