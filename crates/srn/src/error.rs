use std::error::Error;
use std::fmt;

use redeval_markov::SolveError;

/// Errors produced while building or analysing a stochastic reward net.
#[derive(Debug, Clone, PartialEq)]
pub enum SrnError {
    /// A place id referenced a different net or was out of range.
    UnknownPlace {
        /// The raw index.
        index: usize,
    },
    /// A transition id referenced a different net or was out of range.
    UnknownTransition {
        /// The raw index.
        index: usize,
    },
    /// An arc multiplicity of zero was requested.
    ZeroMultiplicity,
    /// A timed transition's rate function returned a negative, NaN or
    /// infinite value for a reachable marking.
    InvalidRate {
        /// Transition name.
        transition: String,
        /// The offending value.
        value: f64,
    },
    /// An immediate transition has a non-positive or non-finite weight.
    InvalidWeight {
        /// Transition name.
        transition: String,
        /// The offending value.
        value: f64,
    },
    /// Reachability exploration exceeded the configured marking budget.
    StateSpaceExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// A cycle of vanishing markings was found (immediate transitions that
    /// can fire forever without time passing).
    VanishingLoop,
    /// Every reachable marking is vanishing — the net has no tangible
    /// states, so no CTMC exists.
    NoTangibleMarkings,
    /// An error from the underlying CTMC solver.
    Solve(SolveError),
}

impl fmt::Display for SrnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SrnError::UnknownPlace { index } => write!(f, "unknown place id {index}"),
            SrnError::UnknownTransition { index } => {
                write!(f, "unknown transition id {index}")
            }
            SrnError::ZeroMultiplicity => write!(f, "arc multiplicity must be at least 1"),
            SrnError::InvalidRate { transition, value } => {
                write!(f, "transition `{transition}` produced invalid rate {value}")
            }
            SrnError::InvalidWeight { transition, value } => {
                write!(f, "transition `{transition}` has invalid weight {value}")
            }
            SrnError::StateSpaceExceeded { limit } => {
                write!(
                    f,
                    "state space exceeds the configured limit of {limit} markings"
                )
            }
            SrnError::VanishingLoop => {
                write!(f, "vanishing markings form a loop of immediate transitions")
            }
            SrnError::NoTangibleMarkings => {
                write!(f, "no tangible markings are reachable")
            }
            SrnError::Solve(e) => write!(f, "ctmc solve failed: {e}"),
        }
    }
}

impl Error for SrnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SrnError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for SrnError {
    fn from(e: SolveError) -> Self {
        SrnError::Solve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<SrnError>();
    }

    #[test]
    fn solve_error_wraps_with_source() {
        let e = SrnError::from(SolveError::Reducible);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("reducible"));
    }
}
