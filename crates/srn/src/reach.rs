//! Reachability-graph generation, vanishing-marking elimination and CTMC
//! export.

use std::collections::HashMap;

use redeval_markov::Ctmc;

use crate::net::{Srn, TransId, TransitionKind};
use crate::{Marking, SrnError};

/// Options for [`Srn::state_space`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReachOptions {
    /// Abort exploration when more than this many markings (tangible plus
    /// vanishing) have been discovered.
    pub max_markings: usize,
}

impl Default for ReachOptions {
    fn default() -> Self {
        ReachOptions {
            max_markings: 1_000_000,
        }
    }
}

/// Outgoing behaviour of one explored marking.
enum Outgoing {
    /// Tangible: `(successor raw id, rate, transition)`.
    Tangible(Vec<(usize, f64, TransId)>),
    /// Vanishing: `(successor raw id, probability, transition)`.
    Vanishing(Vec<(usize, f64, TransId)>),
}

/// The tangible state space of a net: the underlying CTMC plus the marking
/// associated with every CTMC state.
///
/// Produced by [`Srn::state_space`]; usually consumed through
/// [`solve`](StateSpace::solve).
#[derive(Debug)]
pub struct StateSpace {
    tangible: Vec<Marking>,
    /// Initial probability distribution over tangible states (non-trivial
    /// when the net's initial marking is vanishing).
    initial: Vec<(usize, f64)>,
    ctmc: Ctmc,
    vanishing_count: usize,
}

impl StateSpace {
    /// The tangible markings, indexed like the CTMC states.
    pub fn tangible_markings(&self) -> &[Marking] {
        &self.tangible
    }

    /// Number of tangible states.
    pub fn len(&self) -> usize {
        self.tangible.len()
    }

    /// Whether there are no tangible states (never true for a successfully
    /// built state space).
    pub fn is_empty(&self) -> bool {
        self.tangible.is_empty()
    }

    /// How many vanishing markings were eliminated during generation.
    pub fn vanishing_count(&self) -> usize {
        self.vanishing_count
    }

    /// The underlying CTMC over tangible states.
    pub fn ctmc(&self) -> &Ctmc {
        &self.ctmc
    }

    /// The initial distribution over tangible states.
    pub fn initial_distribution(&self) -> &[(usize, f64)] {
        &self.initial
    }

    /// Index of a tangible marking, if reachable.
    pub fn index_of(&self, m: &Marking) -> Option<usize> {
        self.tangible.iter().position(|x| x == m)
    }

    /// Solves the CTMC for its steady state and returns a measure-ready
    /// [`crate::SolvedSrn`].
    ///
    /// # Errors
    ///
    /// Propagates CTMC solver errors (e.g. a reducible chain).
    pub fn solve(self) -> Result<crate::SolvedSrn, SrnError> {
        let (pi, stats) = self
            .ctmc
            .steady_state_with_stats(&redeval_markov::SteadyStateOptions::default())?;
        Ok(crate::SolvedSrn::new(self, pi, stats))
    }
}

impl Srn {
    /// Generates the tangible state space with default options.
    ///
    /// # Errors
    ///
    /// See [`state_space_with`](Srn::state_space_with).
    pub fn state_space(&self) -> Result<StateSpace, SrnError> {
        self.state_space_with(&ReachOptions::default())
    }

    /// Generates the tangible state space of the net: explores all
    /// reachable markings, classifies them as *tangible* (no immediate
    /// transition enabled) or *vanishing*, eliminates the vanishing ones
    /// and assembles the CTMC.
    ///
    /// # Errors
    ///
    /// * [`SrnError::StateSpaceExceeded`] past `options.max_markings`;
    /// * [`SrnError::VanishingLoop`] if immediate transitions can cycle;
    /// * [`SrnError::NoTangibleMarkings`] when every marking is vanishing;
    /// * [`SrnError::InvalidRate`]/[`SrnError::InvalidWeight`] for bad
    ///   rate/weight values discovered during exploration.
    pub fn state_space_with(&self, options: &ReachOptions) -> Result<StateSpace, SrnError> {
        let mut index: HashMap<Marking, usize> = HashMap::new();
        let mut markings: Vec<Marking> = Vec::new();
        let mut outgoing: Vec<Outgoing> = Vec::new();

        let m0 = self.initial_marking();
        index.insert(m0.clone(), 0);
        markings.push(m0);
        // Work list; outgoing is filled in step order.
        let mut cursor = 0usize;
        while cursor < markings.len() {
            let m = markings[cursor].clone();
            let out = self.explore_marking(&m, &mut index, &mut markings, options)?;
            outgoing.push(out);
            cursor += 1;
        }

        // Partition into tangible / vanishing.
        let mut tangible_of = vec![usize::MAX; markings.len()];
        let mut tangible: Vec<Marking> = Vec::new();
        for (i, out) in outgoing.iter().enumerate() {
            if matches!(out, Outgoing::Tangible(_)) {
                tangible_of[i] = tangible.len();
                tangible.push(markings[i].clone());
            }
        }
        if tangible.is_empty() {
            return Err(SrnError::NoTangibleMarkings);
        }
        let vanishing_count = markings.len() - tangible.len();

        // Resolve every vanishing marking to a distribution over tangible
        // markings (memoized DFS; cycles are an error).
        let mut cache: Vec<Option<Vec<(usize, f64)>>> = vec![None; markings.len()];
        let mut visiting = vec![false; markings.len()];
        for i in 0..markings.len() {
            if tangible_of[i] == usize::MAX {
                resolve_vanishing(i, &outgoing, &tangible_of, &mut cache, &mut visiting)?;
            }
        }

        // Assemble the CTMC.
        let mut ctmc = Ctmc::new(tangible.len());
        for (i, out) in outgoing.iter().enumerate() {
            let Outgoing::Tangible(edges) = out else {
                continue;
            };
            let from = tangible_of[i];
            for &(succ, rate, _t) in edges {
                if tangible_of[succ] != usize::MAX {
                    ctmc.add_transition(from, tangible_of[succ], rate);
                } else {
                    let dist = cache[succ].as_ref().expect("resolved above");
                    for &(tj, p) in dist {
                        ctmc.add_transition(from, tj, rate * p);
                    }
                }
            }
        }

        // Initial distribution.
        let initial = if tangible_of[0] != usize::MAX {
            vec![(tangible_of[0], 1.0)]
        } else {
            cache[0].clone().expect("resolved above")
        };

        Ok(StateSpace {
            tangible,
            initial,
            ctmc,
            vanishing_count,
        })
    }

    /// Explores one marking: classifies it and returns its outgoing edges,
    /// discovering successors.
    fn explore_marking(
        &self,
        m: &Marking,
        index: &mut HashMap<Marking, usize>,
        markings: &mut Vec<Marking>,
        options: &ReachOptions,
    ) -> Result<Outgoing, SrnError> {
        // Find enabled immediates and their maximal priority.
        let mut best_priority: Option<u32> = None;
        for t in self.transition_ids() {
            if let TransitionKind::Immediate { priority, .. } = self.transition_kind(t) {
                if self.is_enabled(t, m) {
                    best_priority = Some(match best_priority {
                        Some(p) => p.max(*priority),
                        None => *priority,
                    });
                }
            }
        }

        let mut intern =
            |marking: Marking, markings: &mut Vec<Marking>| -> Result<usize, SrnError> {
                if let Some(&id) = index.get(&marking) {
                    return Ok(id);
                }
                if markings.len() >= options.max_markings {
                    return Err(SrnError::StateSpaceExceeded {
                        limit: options.max_markings,
                    });
                }
                let id = markings.len();
                index.insert(marking.clone(), id);
                markings.push(marking);
                Ok(id)
            };

        if let Some(priority) = best_priority {
            // Vanishing: competing immediates at max priority.
            let mut firing: Vec<(TransId, f64)> = Vec::new();
            let mut total = 0.0;
            for t in self.transition_ids() {
                if let TransitionKind::Immediate {
                    weight,
                    priority: p,
                } = self.transition_kind(t)
                {
                    if *p == priority && self.is_enabled(t, m) {
                        if !weight.is_finite() || *weight <= 0.0 {
                            return Err(SrnError::InvalidWeight {
                                transition: self.transition_name(t).to_string(),
                                value: *weight,
                            });
                        }
                        firing.push((t, *weight));
                        total += *weight;
                    }
                }
            }
            let mut edges = Vec::with_capacity(firing.len());
            for (t, w) in firing {
                let next = self.fire(t, m);
                let id = intern(next, markings)?;
                edges.push((id, w / total, t));
            }
            Ok(Outgoing::Vanishing(edges))
        } else {
            // Tangible: all enabled timed transitions.
            let mut edges = Vec::new();
            for t in self.transition_ids() {
                if let TransitionKind::Timed { rate } = self.transition_kind(t) {
                    if self.is_enabled(t, m) {
                        let r = rate(m);
                        if !r.is_finite() || r < 0.0 {
                            return Err(SrnError::InvalidRate {
                                transition: self.transition_name(t).to_string(),
                                value: r,
                            });
                        }
                        if r == 0.0 {
                            continue;
                        }
                        let next = self.fire(t, m);
                        let id = intern(next, markings)?;
                        edges.push((id, r, t));
                    }
                }
            }
            Ok(Outgoing::Tangible(edges))
        }
    }
}

/// Memoized resolution of a vanishing marking into a tangible distribution.
fn resolve_vanishing(
    id: usize,
    outgoing: &[Outgoing],
    tangible_of: &[usize],
    cache: &mut Vec<Option<Vec<(usize, f64)>>>,
    visiting: &mut Vec<bool>,
) -> Result<(), SrnError> {
    if cache[id].is_some() {
        return Ok(());
    }
    if visiting[id] {
        return Err(SrnError::VanishingLoop);
    }
    visiting[id] = true;
    let edges: Vec<(usize, f64)> = match &outgoing[id] {
        Outgoing::Vanishing(edges) => edges.iter().map(|&(s, p, _)| (s, p)).collect(),
        Outgoing::Tangible(_) => unreachable!("resolve called on tangible marking"),
    };
    let mut dist: HashMap<usize, f64> = HashMap::new();
    for (succ, p) in edges {
        if tangible_of[succ] != usize::MAX {
            *dist.entry(tangible_of[succ]).or_insert(0.0) += p;
        } else {
            resolve_vanishing(succ, outgoing, tangible_of, cache, visiting)?;
            for &(tj, q) in cache[succ].as_ref().expect("just resolved") {
                *dist.entry(tj).or_insert(0.0) += p * q;
            }
        }
    }
    visiting[id] = false;
    let mut v: Vec<(usize, f64)> = dist.into_iter().collect();
    v.sort_by_key(|&(i, _)| i);
    cache[id] = Some(v);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// up --fail--> detect(vanishing) --route--> {repairA w=3, repairB w=1}
    fn net_with_vanishing() -> (Srn, crate::PlaceId, crate::PlaceId, crate::PlaceId) {
        let mut net = Srn::new("v");
        let up = net.add_place("up", 1);
        let det = net.add_place("detect", 0);
        let ra = net.add_place("repair_a", 0);
        let rb = net.add_place("repair_b", 0);
        let fail = net.add_timed("fail", 1.0);
        net.add_move(fail, up, det).unwrap();
        let to_a = net.add_immediate_weighted("to_a", 3.0, 0);
        net.add_move(to_a, det, ra).unwrap();
        let to_b = net.add_immediate_weighted("to_b", 1.0, 0);
        net.add_move(to_b, det, rb).unwrap();
        let fix_a = net.add_timed("fix_a", 2.0);
        net.add_move(fix_a, ra, up).unwrap();
        let fix_b = net.add_timed("fix_b", 2.0);
        net.add_move(fix_b, rb, up).unwrap();
        (net, up, ra, rb)
    }

    #[test]
    fn vanishing_markings_are_eliminated() {
        let (net, _up, _ra, _rb) = net_with_vanishing();
        let ss = net.state_space().unwrap();
        assert_eq!(ss.len(), 3); // up, repair_a, repair_b
        assert_eq!(ss.vanishing_count(), 1);
    }

    #[test]
    fn weights_split_rates_proportionally() {
        let (net, up, ra, rb) = net_with_vanishing();
        let solved = net.state_space().unwrap().solve().unwrap();
        // Flow into repair_a is 3x flow into repair_b, repair rates equal,
        // so P(repair_a) = 3 P(repair_b).
        let pa = solved.probability(|m| m.tokens(ra) == 1);
        let pb = solved.probability(|m| m.tokens(rb) == 1);
        assert!((pa / pb - 3.0).abs() < 1e-9, "pa={pa} pb={pb}");
        // Availability check: mean cycle = 1 (up) + 0.5 (repair).
        let pup = solved.probability(|m| m.tokens(up) == 1);
        assert!((pup - 1.0 / 1.5).abs() < 1e-12);
    }

    #[test]
    fn priorities_preempt_lower_immediates() {
        let mut net = Srn::new("prio");
        let src = net.add_place("src", 1);
        let hi = net.add_place("hi", 0);
        let lo = net.add_place("lo", 0);
        let t_hi = net.add_immediate_weighted("t_hi", 1.0, 5);
        net.add_move(t_hi, src, hi).unwrap();
        let t_lo = net.add_immediate_weighted("t_lo", 100.0, 1);
        net.add_move(t_lo, src, lo).unwrap();
        // Drain places so the net has tangible states.
        let sink_hi = net.add_timed("sink_hi", 1.0);
        net.add_input(sink_hi, hi, 1).unwrap();
        let sink_lo = net.add_timed("sink_lo", 1.0);
        net.add_input(sink_lo, lo, 1).unwrap();

        let ss = net.state_space().unwrap();
        // Initial marking is vanishing and must route 100% to `hi`.
        let hi_state = ss
            .tangible_markings()
            .iter()
            .position(|m| m.tokens(hi) == 1)
            .unwrap();
        assert_eq!(ss.initial_distribution(), &[(hi_state, 1.0)]);
        assert!(ss.tangible_markings().iter().all(|m| m.tokens(lo) == 0));
    }

    #[test]
    fn vanishing_initial_marking_resolves() {
        let mut net = Srn::new("vi");
        let a = net.add_place("a", 1);
        let b = net.add_place("b", 0);
        let t = net.add_immediate("go");
        net.add_move(t, a, b).unwrap();
        let back = net.add_timed("back", 1.0);
        net.add_input(back, b, 1).unwrap();
        let ss = net.state_space().unwrap();
        assert_eq!(ss.len(), 2); // (0,1) and (0,0)
        assert_eq!(ss.initial_distribution().len(), 1);
    }

    #[test]
    fn vanishing_loop_detected() {
        // A tangible start state feeds a cycle of immediate transitions.
        let mut net = Srn::new("loop");
        let start = net.add_place("start", 1);
        let a = net.add_place("a", 0);
        let b = net.add_place("b", 0);
        let go = net.add_timed("go", 1.0);
        net.add_move(go, start, a).unwrap();
        let ab = net.add_immediate("ab");
        net.add_move(ab, a, b).unwrap();
        let ba = net.add_immediate("ba");
        net.add_move(ba, b, a).unwrap();
        assert_eq!(net.state_space().unwrap_err(), SrnError::VanishingLoop);
    }

    #[test]
    fn pure_immediate_net_has_no_tangible_markings() {
        let mut net = Srn::new("loop2");
        let a = net.add_place("a", 1);
        let b = net.add_place("b", 0);
        let ab = net.add_immediate("ab");
        net.add_move(ab, a, b).unwrap();
        let ba = net.add_immediate("ba");
        net.add_move(ba, b, a).unwrap();
        assert_eq!(net.state_space().unwrap_err(), SrnError::NoTangibleMarkings);
    }

    #[test]
    fn all_vanishing_rejected() {
        // One immediate that can always re-fire (self-loop via two places),
        // but even simpler: immediate with no input arcs is always enabled.
        let mut net = Srn::new("nt");
        let _a = net.add_place("a", 0);
        let _t = net.add_immediate("always");
        // `always` has no inputs: enabled forever -> initial marking is
        // vanishing with a self-successor -> vanishing loop.
        let err = net.state_space().unwrap_err();
        assert!(matches!(
            err,
            SrnError::VanishingLoop | SrnError::NoTangibleMarkings
        ));
    }

    #[test]
    fn state_space_limit_enforced() {
        // Unbounded net: source transition keeps adding tokens.
        let mut net = Srn::new("unbounded");
        let p = net.add_place("p", 0);
        let t = net.add_timed("gen", 1.0);
        net.add_output(t, p, 1).unwrap();
        let err = net
            .state_space_with(&ReachOptions { max_markings: 50 })
            .unwrap_err();
        assert_eq!(err, SrnError::StateSpaceExceeded { limit: 50 });
    }

    #[test]
    fn marking_dependent_rates_build_birth_death() {
        // N tokens drain at rate k*mu (k = tokens) and refill at lambda.
        let n = 3u32;
        let mut net = Srn::new("md");
        let up = net.add_place("up", n);
        let down = net.add_place("down", 0);
        let fail = net.add_timed_fn("fail", move |m| 0.5 * m.as_slice()[0] as f64);
        net.add_move(fail, up, down).unwrap();
        let rep = net.add_timed_fn("rep", move |m| 2.0 * m.as_slice()[1] as f64);
        net.add_move(rep, down, up).unwrap();

        let solved = net.state_space().unwrap().solve().unwrap();
        // Independent machines: P(k up) binomial with q_down = 0.5/2.5.
        let q: f64 = 0.5 / 2.5;
        let p_all_up = solved.probability(|m| m.tokens(up) == n);
        assert!((p_all_up - (1.0 - q).powi(3)).abs() < 1e-12);
        let mean_up = solved.mean_tokens(up);
        assert!((mean_up - 3.0 * (1.0 - q)).abs() < 1e-12);
        let _ = down;
    }

    #[test]
    fn invalid_rate_reported_with_name() {
        let mut net = Srn::new("bad");
        let a = net.add_place("a", 1);
        let t = net.add_timed("nan_rate", f64::NAN);
        net.add_input(t, a, 1).unwrap();
        match net.state_space().unwrap_err() {
            SrnError::InvalidRate { transition, .. } => assert_eq!(transition, "nan_rate"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn invalid_weight_reported_with_name() {
        let mut net = Srn::new("badw");
        let a = net.add_place("a", 1);
        let b = net.add_place("b", 0);
        let t = net.add_immediate_weighted("zero_w", 0.0, 0);
        net.add_move(t, a, b).unwrap();
        match net.state_space().unwrap_err() {
            SrnError::InvalidWeight { transition, .. } => assert_eq!(transition, "zero_w"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn zero_rate_transitions_prune_edges() {
        let mut net = Srn::new("zr");
        let a = net.add_place("a", 1);
        let b = net.add_place("b", 0);
        let t = net.add_timed("never", 0.0);
        net.add_move(t, a, b).unwrap();
        let back = net.add_timed("loop", 1.0);
        net.add_move(back, a, a).unwrap();
        let ss = net.state_space().unwrap();
        assert_eq!(ss.len(), 1); // b never reached
    }
}
