//! Net structure: places, transitions, arcs, guards.

use std::fmt;
use std::sync::Arc;

use crate::{Marking, SrnError};

/// Identifier of a place within its net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlaceId(pub(crate) usize);

impl PlaceId {
    /// The raw index of the place.
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs an id from a raw index (e.g. one obtained from
    /// [`index`](Self::index)). Using an index from a different net is a
    /// logic error that later methods will catch.
    pub fn from_index(index: usize) -> Self {
        PlaceId(index)
    }
}

/// Identifier of a transition within its net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransId(pub(crate) usize);

impl TransId {
    /// The raw index of the transition.
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs an id from a raw index (e.g. one obtained from
    /// [`index`](Self::index)). Using an index from a different net is a
    /// logic error that later methods will catch.
    pub fn from_index(index: usize) -> Self {
        TransId(index)
    }
}

/// Marking-dependent rate function of a timed transition.
pub(crate) type RateFn = Arc<dyn Fn(&Marking) -> f64 + Send + Sync>;
/// Guard predicate; a transition is enabled only when its guard is true.
pub(crate) type GuardFn = Arc<dyn Fn(&Marking) -> bool + Send + Sync>;

/// Whether a transition is timed (exponential) or immediate.
#[derive(Clone)]
pub enum TransitionKind {
    /// Fires after an exponentially distributed delay whose rate may depend
    /// on the current marking.
    Timed {
        /// Rate function, evaluated per tangible marking.
        rate: RateFn,
    },
    /// Fires in zero time; conflicts among enabled immediates of the same
    /// (maximal) priority are resolved probabilistically by weight.
    Immediate {
        /// Relative firing weight (> 0).
        weight: f64,
        /// Priority; only the highest-priority enabled immediates compete.
        priority: u32,
    },
}

impl fmt::Debug for TransitionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransitionKind::Timed { .. } => f.write_str("Timed"),
            TransitionKind::Immediate { weight, priority } => f
                .debug_struct("Immediate")
                .field("weight", weight)
                .field("priority", priority)
                .finish(),
        }
    }
}

pub(crate) struct Place {
    pub name: String,
    pub initial: u32,
}

pub(crate) struct Transition {
    pub name: String,
    pub kind: TransitionKind,
    pub guard: Option<GuardFn>,
    /// `(place, multiplicity)` input arcs.
    pub inputs: Vec<(PlaceId, u32)>,
    /// `(place, multiplicity)` output arcs.
    pub outputs: Vec<(PlaceId, u32)>,
    /// `(place, threshold)` inhibitor arcs: disabled when tokens ≥ threshold.
    pub inhibitors: Vec<(PlaceId, u32)>,
}

/// A stochastic reward net.
///
/// Build the structure with the `add_*` methods, then call
/// [`solve`](Srn::solve) (or [`state_space`](Srn::state_space) for manual
/// control) to generate and solve the underlying CTMC.
///
/// See the [crate-level documentation](crate) for a complete example.
pub struct Srn {
    name: String,
    pub(crate) places: Vec<Place>,
    pub(crate) transitions: Vec<Transition>,
}

impl fmt::Debug for Srn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Srn")
            .field("name", &self.name)
            .field("places", &self.places.len())
            .field("transitions", &self.transitions.len())
            .finish()
    }
}

impl Srn {
    /// Creates an empty net with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        Srn {
            name: name.into(),
            places: Vec::new(),
            transitions: Vec::new(),
        }
    }

    /// The net's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of places.
    pub fn place_count(&self) -> usize {
        self.places.len()
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Adds a place holding `initial` tokens in the initial marking.
    pub fn add_place(&mut self, name: impl Into<String>, initial: u32) -> PlaceId {
        self.places.push(Place {
            name: name.into(),
            initial,
        });
        PlaceId(self.places.len() - 1)
    }

    /// Adds a timed transition with a constant rate.
    pub fn add_timed(&mut self, name: impl Into<String>, rate: f64) -> TransId {
        self.add_timed_fn(name, move |_| rate)
    }

    /// Adds a timed transition with a marking-dependent rate.
    ///
    /// SPNP calls these *marking dependent firing rates*; the paper uses
    /// them for the `#Psvcup · λ` rates of its upper-layer model.
    pub fn add_timed_fn<F>(&mut self, name: impl Into<String>, rate: F) -> TransId
    where
        F: Fn(&Marking) -> f64 + Send + Sync + 'static,
    {
        self.transitions.push(Transition {
            name: name.into(),
            kind: TransitionKind::Timed {
                rate: Arc::new(rate),
            },
            guard: None,
            inputs: Vec::new(),
            outputs: Vec::new(),
            inhibitors: Vec::new(),
        });
        TransId(self.transitions.len() - 1)
    }

    /// Adds an immediate transition with weight 1 and priority 0.
    pub fn add_immediate(&mut self, name: impl Into<String>) -> TransId {
        self.add_immediate_weighted(name, 1.0, 0)
    }

    /// Adds an immediate transition with an explicit weight and priority.
    pub fn add_immediate_weighted(
        &mut self,
        name: impl Into<String>,
        weight: f64,
        priority: u32,
    ) -> TransId {
        self.transitions.push(Transition {
            name: name.into(),
            kind: TransitionKind::Immediate { weight, priority },
            guard: None,
            inputs: Vec::new(),
            outputs: Vec::new(),
            inhibitors: Vec::new(),
        });
        TransId(self.transitions.len() - 1)
    }

    fn check_place(&self, p: PlaceId) -> Result<(), SrnError> {
        if p.0 >= self.places.len() {
            Err(SrnError::UnknownPlace { index: p.0 })
        } else {
            Ok(())
        }
    }

    fn check_trans(&self, t: TransId) -> Result<(), SrnError> {
        if t.0 >= self.transitions.len() {
            Err(SrnError::UnknownTransition { index: t.0 })
        } else {
            Ok(())
        }
    }

    /// Adds an input arc `place → transition` with the given multiplicity.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ids or zero multiplicity.
    pub fn add_input(&mut self, t: TransId, p: PlaceId, multiplicity: u32) -> Result<(), SrnError> {
        self.check_place(p)?;
        self.check_trans(t)?;
        if multiplicity == 0 {
            return Err(SrnError::ZeroMultiplicity);
        }
        self.transitions[t.0].inputs.push((p, multiplicity));
        Ok(())
    }

    /// Adds an output arc `transition → place` with the given multiplicity.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ids or zero multiplicity.
    pub fn add_output(
        &mut self,
        t: TransId,
        p: PlaceId,
        multiplicity: u32,
    ) -> Result<(), SrnError> {
        self.check_place(p)?;
        self.check_trans(t)?;
        if multiplicity == 0 {
            return Err(SrnError::ZeroMultiplicity);
        }
        self.transitions[t.0].outputs.push((p, multiplicity));
        Ok(())
    }

    /// Adds an inhibitor arc: the transition is disabled while `place`
    /// holds at least `threshold` tokens.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ids or zero threshold.
    pub fn add_inhibitor(
        &mut self,
        t: TransId,
        p: PlaceId,
        threshold: u32,
    ) -> Result<(), SrnError> {
        self.check_place(p)?;
        self.check_trans(t)?;
        if threshold == 0 {
            return Err(SrnError::ZeroMultiplicity);
        }
        self.transitions[t.0].inhibitors.push((p, threshold));
        Ok(())
    }

    /// Convenience: input + output pair moving one token `from → to`
    /// through the transition.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ids.
    pub fn add_move(&mut self, t: TransId, from: PlaceId, to: PlaceId) -> Result<(), SrnError> {
        self.add_input(t, from, 1)?;
        self.add_output(t, to, 1)
    }

    /// Attaches a guard predicate to a transition (SPNP guard function).
    ///
    /// The transition can fire only in markings where the guard is true.
    /// Attaching a second guard replaces the first.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown transition id.
    pub fn set_guard<F>(&mut self, t: TransId, guard: F) -> Result<(), SrnError>
    where
        F: Fn(&Marking) -> bool + Send + Sync + 'static,
    {
        self.check_trans(t)?;
        self.transitions[t.0].guard = Some(Arc::new(guard));
        Ok(())
    }

    /// The initial marking derived from the places' initial token counts.
    pub fn initial_marking(&self) -> Marking {
        Marking::from_tokens(self.places.iter().map(|p| p.initial).collect())
    }

    /// Name of a place.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this net.
    pub fn place_name(&self, p: PlaceId) -> &str {
        &self.places[p.0].name
    }

    /// Name of a transition.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this net.
    pub fn transition_name(&self, t: TransId) -> &str {
        &self.transitions[t.0].name
    }

    /// Kind of a transition.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this net.
    pub fn transition_kind(&self, t: TransId) -> &TransitionKind {
        &self.transitions[t.0].kind
    }

    /// All place ids in definition order.
    pub fn place_ids(&self) -> impl Iterator<Item = PlaceId> {
        (0..self.places.len()).map(PlaceId)
    }

    /// All transition ids in definition order.
    pub fn transition_ids(&self) -> impl Iterator<Item = TransId> {
        (0..self.transitions.len()).map(TransId)
    }

    /// Looks up a place by name.
    pub fn find_place(&self, name: &str) -> Option<PlaceId> {
        self.places.iter().position(|p| p.name == name).map(PlaceId)
    }

    /// Looks up a transition by name.
    pub fn find_transition(&self, name: &str) -> Option<TransId> {
        self.transitions
            .iter()
            .position(|t| t.name == name)
            .map(TransId)
    }

    /// Whether transition `t` is enabled in marking `m` (tokens, inhibitors
    /// and guard; immediate-priority competition is resolved by the
    /// reachability generator, not here).
    ///
    /// # Panics
    ///
    /// Panics if `t` does not belong to this net or `m` has the wrong
    /// number of places.
    pub fn is_enabled(&self, t: TransId, m: &Marking) -> bool {
        assert_eq!(m.len(), self.places.len(), "marking has wrong arity");
        let tr = &self.transitions[t.0];
        for &(p, mult) in &tr.inputs {
            if m.tokens(p) < mult {
                return false;
            }
        }
        for &(p, thresh) in &tr.inhibitors {
            if m.tokens(p) >= thresh {
                return false;
            }
        }
        if let Some(g) = &tr.guard {
            if !g(m) {
                return false;
            }
        }
        true
    }

    /// The marking after firing `t` in `m`.
    ///
    /// # Panics
    ///
    /// Panics if the transition is not enabled (callers must check first)
    /// or the ids are foreign.
    pub fn fire(&self, t: TransId, m: &Marking) -> Marking {
        assert!(self.is_enabled(t, m), "fired a disabled transition");
        let tr = &self.transitions[t.0];
        let mut next = m.clone();
        for &(p, mult) in &tr.inputs {
            next.tokens_mut()[p.index()] -= mult;
        }
        for &(p, mult) in &tr.outputs {
            next.tokens_mut()[p.index()] += mult;
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_net() -> (Srn, PlaceId, PlaceId, TransId) {
        let mut net = Srn::new("t");
        let a = net.add_place("A", 1);
        let b = net.add_place("B", 0);
        let t = net.add_timed("T", 1.0);
        net.add_move(t, a, b).unwrap();
        (net, a, b, t)
    }

    #[test]
    fn enablement_requires_tokens() {
        let (net, a, b, t) = simple_net();
        let m0 = net.initial_marking();
        assert!(net.is_enabled(t, &m0));
        let m1 = net.fire(t, &m0);
        assert_eq!(m1.tokens(a), 0);
        assert_eq!(m1.tokens(b), 1);
        assert!(!net.is_enabled(t, &m1));
    }

    #[test]
    fn inhibitor_disables() {
        let (mut net, _a, b, t) = simple_net();
        net.add_inhibitor(t, b, 1).unwrap();
        let m0 = net.initial_marking();
        assert!(net.is_enabled(t, &m0));
        // Put a token in B by hand.
        let m = Marking::from_tokens(vec![1, 1]);
        assert!(!net.is_enabled(t, &m));
    }

    #[test]
    fn guard_disables() {
        let (mut net, _a, b, t) = simple_net();
        net.set_guard(t, move |m| m.tokens(b) == 0).unwrap();
        assert!(net.is_enabled(t, &net.initial_marking()));
        let m = Marking::from_tokens(vec![1, 1]);
        assert!(!net.is_enabled(t, &m));
    }

    #[test]
    fn multiplicity_is_respected() {
        let mut net = Srn::new("m");
        let a = net.add_place("A", 3);
        let b = net.add_place("B", 0);
        let t = net.add_timed("T", 1.0);
        net.add_input(t, a, 2).unwrap();
        net.add_output(t, b, 5).unwrap();
        let m0 = net.initial_marking();
        assert!(net.is_enabled(t, &m0));
        let m1 = net.fire(t, &m0);
        assert_eq!(m1.tokens(a), 1);
        assert_eq!(m1.tokens(b), 5);
        assert!(!net.is_enabled(t, &m1));
    }

    #[test]
    fn zero_multiplicity_rejected() {
        let (mut net, a, _b, t) = simple_net();
        assert_eq!(net.add_input(t, a, 0), Err(SrnError::ZeroMultiplicity));
        assert_eq!(net.add_inhibitor(t, a, 0), Err(SrnError::ZeroMultiplicity));
    }

    #[test]
    fn foreign_ids_rejected() {
        let (mut net, a, _b, _t) = simple_net();
        let bad_t = TransId(99);
        let bad_p = PlaceId(99);
        assert!(matches!(
            net.add_input(bad_t, a, 1),
            Err(SrnError::UnknownTransition { .. })
        ));
        let t0 = TransId(0);
        assert!(matches!(
            net.add_input(t0, bad_p, 1),
            Err(SrnError::UnknownPlace { .. })
        ));
    }

    #[test]
    fn lookup_by_name() {
        let (net, a, _b, t) = simple_net();
        assert_eq!(net.find_place("A"), Some(a));
        assert_eq!(net.find_transition("T"), Some(t));
        assert_eq!(net.find_place("missing"), None);
        assert_eq!(net.place_name(a), "A");
        assert_eq!(net.transition_name(t), "T");
    }

    #[test]
    #[should_panic(expected = "disabled transition")]
    fn firing_disabled_transition_panics() {
        let (net, _a, _b, t) = simple_net();
        let empty = Marking::from_tokens(vec![0, 0]);
        let _ = net.fire(t, &empty);
    }
}
