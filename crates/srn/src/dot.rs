//! Graphviz DOT export of nets and state spaces.

use std::fmt::Write as _;

use crate::net::{Srn, TransitionKind};
use crate::reach::StateSpace;

impl Srn {
    /// Renders the net structure as Graphviz DOT (places as circles,
    /// timed transitions as open boxes, immediate transitions as filled
    /// bars, inhibitor arcs with `odot` arrowheads).
    ///
    /// # Examples
    ///
    /// ```
    /// use redeval_srn::Srn;
    ///
    /// let mut net = Srn::new("demo");
    /// let p = net.add_place("P", 1);
    /// let t = net.add_timed("T", 1.0);
    /// net.add_input(t, p, 1).unwrap();
    /// let dot = net.to_dot();
    /// assert!(dot.contains("digraph"));
    /// assert!(dot.contains("\"P\""));
    /// ```
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name());
        let _ = writeln!(out, "  rankdir=LR;");
        for p in self.place_ids() {
            let tokens = self.initial_marking().tokens(p);
            let label = if tokens > 0 {
                format!("{}\\n({})", self.place_name(p), tokens)
            } else {
                self.place_name(p).to_string()
            };
            let _ = writeln!(
                out,
                "  \"{}\" [shape=circle, label=\"{}\"];",
                self.place_name(p),
                label
            );
        }
        for t in self.transition_ids() {
            let name = self.transition_name(t);
            match self.transition_kind(t) {
                TransitionKind::Timed { .. } => {
                    let _ = writeln!(out, "  \"{name}\" [shape=box, height=0.3];");
                }
                TransitionKind::Immediate { .. } => {
                    let _ = writeln!(
                        out,
                        "  \"{name}\" [shape=box, style=filled, fillcolor=black, height=0.08, label=\"\", xlabel=\"{name}\"];"
                    );
                }
            }
            let tr = &self.transitions[t.index()];
            for &(p, mult) in &tr.inputs {
                let lbl = if mult > 1 {
                    format!(" [label=\"{mult}\"]")
                } else {
                    String::new()
                };
                let _ = writeln!(out, "  \"{}\" -> \"{}\"{};", self.place_name(p), name, lbl);
            }
            for &(p, mult) in &tr.outputs {
                let lbl = if mult > 1 {
                    format!(" [label=\"{mult}\"]")
                } else {
                    String::new()
                };
                let _ = writeln!(out, "  \"{}\" -> \"{}\"{};", name, self.place_name(p), lbl);
            }
            for &(p, thresh) in &tr.inhibitors {
                let _ = writeln!(
                    out,
                    "  \"{}\" -> \"{}\" [arrowhead=odot, label=\"{}\"];",
                    self.place_name(p),
                    name,
                    thresh
                );
            }
        }
        out.push_str("}\n");
        out
    }
}

impl StateSpace {
    /// Renders the tangible reachability graph (the CTMC) as DOT, with
    /// markings as node labels and rates on the edges.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph state_space {{");
        for (i, m) in self.tangible_markings().iter().enumerate() {
            let _ = writeln!(out, "  s{i} [label=\"{m}\"];");
        }
        for t in self.ctmc().transitions() {
            let _ = writeln!(out, "  s{} -> s{} [label=\"{:.4}\"];", t.from, t.to, t.rate);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_elements() {
        let mut net = Srn::new("d");
        let a = net.add_place("Pa", 1);
        let b = net.add_place("Pb", 0);
        let t = net.add_timed("Tt", 1.0);
        net.add_input(t, a, 2).unwrap();
        net.add_output(t, b, 1).unwrap();
        let i = net.add_immediate("Ti");
        net.add_move(i, b, a).unwrap();
        net.add_inhibitor(t, b, 3).unwrap();
        let dot = net.to_dot();
        for needle in ["digraph", "Pa", "Pb", "Tt", "Ti", "odot", "label=\"2\""] {
            assert!(dot.contains(needle), "missing {needle} in:\n{dot}");
        }
    }

    #[test]
    fn state_space_dot_lists_states() {
        let mut net = Srn::new("d2");
        let a = net.add_place("A", 1);
        let b = net.add_place("B", 0);
        let t = net.add_timed("go", 2.0);
        net.add_move(t, a, b).unwrap();
        let back = net.add_timed("back", 3.0);
        net.add_move(back, b, a).unwrap();
        let ss = net.state_space().unwrap();
        let dot = ss.to_dot();
        assert!(dot.contains("s0"));
        assert!(dot.contains("s1"));
        assert!(dot.contains("(1,0)"));
        assert!(dot.contains("(0,1)"));
    }
}
