//! Steady-state measures over a solved net.

use crate::net::{PlaceId, TransId, TransitionKind};
use crate::reach::StateSpace;
use crate::{Marking, SrnError};

/// A state space together with its steady-state distribution; the object on
/// which SPNP-style *reward measures* are evaluated.
///
/// Obtained from [`Srn::solve`](crate::Srn::solve) or
/// [`StateSpace::solve`].
#[derive(Debug)]
pub struct SolvedSrn {
    space: StateSpace,
    pi: Vec<f64>,
    stats: redeval_markov::SolveStats,
}

impl SolvedSrn {
    pub(crate) fn new(space: StateSpace, pi: Vec<f64>, stats: redeval_markov::SolveStats) -> Self {
        SolvedSrn { space, pi, stats }
    }

    /// The underlying state space.
    pub fn state_space(&self) -> &StateSpace {
        &self.space
    }

    /// Convergence statistics of the steady-state solve that produced
    /// [`steady_state`](SolvedSrn::steady_state): method, iterations and
    /// final residual — deterministic for a given net.
    pub fn solve_stats(&self) -> redeval_markov::SolveStats {
        self.stats
    }

    /// Steady-state probabilities, indexed like
    /// [`StateSpace::tangible_markings`].
    pub fn steady_state(&self) -> &[f64] {
        &self.pi
    }

    /// Expected steady-state reward `Σ_m π(m)·reward(m)`.
    ///
    /// This is the SRN reward-function mechanism: the paper's
    /// capacity-oriented availability (Table VI) is exactly such a measure.
    pub fn expected<F>(&self, reward: F) -> f64
    where
        F: Fn(&Marking) -> f64,
    {
        self.space
            .tangible_markings()
            .iter()
            .zip(&self.pi)
            .map(|(m, p)| reward(m) * p)
            .sum()
    }

    /// Steady-state probability of a marking predicate.
    pub fn probability<F>(&self, pred: F) -> f64
    where
        F: Fn(&Marking) -> bool,
    {
        self.expected(|m| if pred(m) { 1.0 } else { 0.0 })
    }

    /// Expected number of tokens in `place`.
    pub fn mean_tokens(&self, place: PlaceId) -> f64 {
        self.expected(|m| m.tokens(place) as f64)
    }

    /// Steady-state throughput of a **timed** transition: the expected
    /// firing rate `Σ_m π(m)·rate(m)` over markings where it is enabled.
    ///
    /// Immediate transitions have no throughput in this sense and yield
    /// an error.
    ///
    /// # Errors
    ///
    /// Returns [`SrnError::UnknownTransition`] when `t` is immediate or
    /// foreign.
    pub fn throughput(&self, net: &crate::Srn, t: TransId) -> Result<f64, SrnError> {
        if t.index() >= net.transition_count() {
            return Err(SrnError::UnknownTransition { index: t.index() });
        }
        match net.transition_kind(t) {
            TransitionKind::Immediate { .. } => {
                Err(SrnError::UnknownTransition { index: t.index() })
            }
            TransitionKind::Timed { rate } => Ok(self
                .space
                .tangible_markings()
                .iter()
                .zip(&self.pi)
                .filter(|(m, _)| net.is_enabled(t, m))
                .map(|(m, p)| rate(m) * p)
                .sum()),
        }
    }

    /// Transient probability distribution over the tangible markings at
    /// time `t`, starting from the net's initial marking (uniformization).
    ///
    /// This is the primitive behind
    /// [`transient_probability`](SolvedSrn::transient_probability) and
    /// [`transient_expected`](SolvedSrn::transient_expected): callers
    /// evaluating several measures at one time point should solve once
    /// with this and reduce against the markings of
    /// [`state_space`](SolvedSrn::state_space) — each call performs one
    /// full CTMC transient solve.
    ///
    /// # Errors
    ///
    /// Propagates CTMC transient-solver errors.
    pub fn transient_distribution(&self, t: f64) -> Result<Vec<f64>, SrnError> {
        let n = self.space.len();
        let mut p0 = vec![0.0; n];
        for &(i, p) in self.space.initial_distribution() {
            p0[i] = p;
        }
        Ok(self.space.ctmc().transient_from(
            &p0,
            t,
            &redeval_markov::TransientOptions::default(),
        )?)
    }

    /// Expected reward at time `t` — the transient analogue of
    /// [`expected`](SolvedSrn::expected).
    ///
    /// # Errors
    ///
    /// Propagates CTMC transient-solver errors.
    pub fn transient_expected<F>(&self, t: f64, reward: F) -> Result<f64, SrnError>
    where
        F: Fn(&Marking) -> f64,
    {
        let pt = self.transient_distribution(t)?;
        Ok(self
            .space
            .tangible_markings()
            .iter()
            .zip(&pt)
            .map(|(m, p)| reward(m) * p)
            .sum())
    }

    /// Probability of the predicate at time `t`, starting from the net's
    /// initial marking (transient analysis by uniformization).
    ///
    /// # Errors
    ///
    /// Propagates CTMC transient-solver errors.
    pub fn transient_probability<F>(&self, t: f64, pred: F) -> Result<f64, SrnError>
    where
        F: Fn(&Marking) -> bool,
    {
        self.transient_expected(t, |m| if pred(m) { 1.0 } else { 0.0 })
    }
}

impl crate::Srn {
    /// Generates the state space and solves for the steady state in one
    /// step (default options).
    ///
    /// # Errors
    ///
    /// Propagates reachability and solver errors.
    pub fn solve(&self) -> Result<SolvedSrn, SrnError> {
        self.state_space()?.solve()
    }
}

#[cfg(test)]
mod tests {
    use crate::Srn;

    /// Two independent repairable components sharing one net.
    fn two_components() -> (Srn, crate::PlaceId, crate::PlaceId, crate::TransId) {
        let mut net = Srn::new("two");
        let up = net.add_place("up", 2);
        let down = net.add_place("down", 0);
        let fail = net.add_timed_fn("fail", move |m| 0.1 * m.as_slice()[0] as f64);
        net.add_move(fail, up, down).unwrap();
        let repair = net.add_timed_fn("repair", move |m| 1.0 * m.as_slice()[1] as f64);
        net.add_move(repair, down, up).unwrap();
        (net, up, down, fail)
    }

    #[test]
    fn mean_tokens_matches_expectation() {
        let (net, up, _down, _fail) = two_components();
        let s = net.solve().unwrap();
        let q = 0.1 / 1.1; // per-component down probability
        assert!((s.mean_tokens(up) - 2.0 * (1.0 - q)).abs() < 1e-12);
    }

    #[test]
    fn throughput_balances_in_cycle() {
        let (net, _up, _down, fail) = two_components();
        let s = net.solve().unwrap();
        let repair = net.find_transition("repair").unwrap();
        let tf = s.throughput(&net, fail).unwrap();
        let tr = s.throughput(&net, repair).unwrap();
        // Flow balance: failures per hour == repairs per hour.
        assert!((tf - tr).abs() < 1e-12);
        // Expected failure throughput = 0.1 * E[up tokens].
        let up = net.find_place("up").unwrap();
        assert!((tf - 0.1 * s.mean_tokens(up)).abs() < 1e-12);
    }

    #[test]
    fn throughput_of_immediate_is_error() {
        let mut net = Srn::new("imm");
        let a = net.add_place("a", 1);
        let b = net.add_place("b", 0);
        let t = net.add_immediate("imm");
        net.add_move(t, a, b).unwrap();
        let back = net.add_timed("back", 1.0);
        net.add_move(back, b, a).unwrap();
        let s = net.solve().unwrap();
        assert!(s.throughput(&net, t).is_err());
    }

    #[test]
    fn steady_state_sums_to_one() {
        let (net, _, _, _) = two_components();
        let s = net.solve().unwrap();
        let sum: f64 = s.steady_state().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_stats_cover_the_tangible_space() {
        let (net, _, _, _) = two_components();
        let s = net.solve().unwrap();
        let stats = s.solve_stats();
        assert_eq!(stats.states, s.state_space().len());
        assert!(stats.residual.is_finite() && stats.residual >= 0.0);
        // Solving the same net again reports identical stats.
        let again = net.solve().unwrap().solve_stats();
        assert_eq!(stats, again);
    }

    #[test]
    fn transient_probability_approaches_steady() {
        let (net, up, _down, _fail) = two_components();
        let s = net.solve().unwrap();
        let at_steady = s.probability(|m| m.tokens(up) == 2);
        let transient = s
            .transient_probability(200.0, |m| m.tokens(up) == 2)
            .unwrap();
        assert!((at_steady - transient).abs() < 1e-8);
        let at_zero = s.transient_probability(0.0, |m| m.tokens(up) == 2).unwrap();
        assert!((at_zero - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transient_distribution_is_a_distribution_and_drives_expected() {
        let (net, up, _down, _fail) = two_components();
        let s = net.solve().unwrap();
        for t in [0.0, 1.0, 50.0] {
            let dist = s.transient_distribution(t).unwrap();
            assert_eq!(dist.len(), s.state_space().len());
            let sum: f64 = dist.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "t={t}: sums to {sum}");
            // Reducing the distribution by hand matches transient_expected.
            let by_hand: f64 = s
                .state_space()
                .tangible_markings()
                .iter()
                .zip(&dist)
                .map(|(m, p)| m.tokens(up) as f64 * p)
                .sum();
            let expected = s.transient_expected(t, |m| m.tokens(up) as f64).unwrap();
            assert!((by_hand - expected).abs() < 1e-12);
        }
        // At large t the transient expectation reaches the steady reward.
        let steady = s.mean_tokens(up);
        let late = s
            .transient_expected(500.0, |m| m.tokens(up) as f64)
            .unwrap();
        assert!((steady - late).abs() < 1e-8);
    }
}
