//! Token markings.

use std::fmt;

use crate::net::PlaceId;

/// A marking: the number of tokens in every place of a net.
///
/// Markings are value types — cheap to clone for the small nets this
/// workspace builds — and hashable so the reachability generator can
/// deduplicate them.
///
/// # Examples
///
/// ```
/// use redeval_srn::Srn;
///
/// let mut net = Srn::new("n");
/// let a = net.add_place("A", 2);
/// let m = net.initial_marking();
/// assert_eq!(m.tokens(a), 2);
/// assert_eq!(m.total_tokens(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Marking(Vec<u32>);

impl Marking {
    /// Creates a marking from raw token counts.
    pub fn from_tokens(tokens: Vec<u32>) -> Self {
        Marking(tokens)
    }

    /// Number of places.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the net has zero places.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Tokens currently in `place`.
    ///
    /// # Panics
    ///
    /// Panics if the place does not belong to a net with this many places.
    pub fn tokens(&self, place: PlaceId) -> u32 {
        self.0[place.index()]
    }

    /// Raw token slice, indexed by place id.
    pub fn as_slice(&self) -> &[u32] {
        &self.0
    }

    /// Sum of tokens over all places.
    pub fn total_tokens(&self) -> u32 {
        self.0.iter().sum()
    }

    pub(crate) fn tokens_mut(&mut self) -> &mut [u32] {
        &mut self.0
    }
}

impl fmt::Display for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, t) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_tuple_like() {
        let m = Marking::from_tokens(vec![1, 0, 2]);
        assert_eq!(m.to_string(), "(1,0,2)");
        assert_eq!(m.total_tokens(), 3);
    }

    #[test]
    fn equality_and_hashing() {
        use std::collections::HashSet;
        let a = Marking::from_tokens(vec![1, 2]);
        let b = Marking::from_tokens(vec![1, 2]);
        let c = Marking::from_tokens(vec![2, 1]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
        assert!(!set.contains(&c));
    }
}
