//! Property-based tests of the SRN engine against closed-form chains.

use proptest::prelude::*;
use redeval_srn::{ReachOptions, Srn};

/// Builds the machine-repair SRN: n tokens, per-token failure/repair.
fn machine_repair(n: u32, lambda: f64, mu: f64) -> Srn {
    let mut net = Srn::new("mr");
    let up = net.add_place("up", n);
    let down = net.add_place("down", 0);
    let fail = net.add_timed_fn("fail", move |m| lambda * m.tokens(up) as f64);
    net.add_move(fail, up, down).unwrap();
    let fix = net.add_timed_fn("fix", move |m| mu * m.tokens(down) as f64);
    net.add_move(fix, down, up).unwrap();
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Machine-repair SRN steady state matches the binomial closed form.
    #[test]
    fn machine_repair_binomial(
        n in 1u32..6,
        lambda in 0.01f64..10.0,
        mu in 0.01f64..10.0,
    ) {
        let net = machine_repair(n, lambda, mu);
        let up = net.find_place("up").unwrap();
        let solved = net.solve().unwrap();
        let q = lambda / (lambda + mu);
        // E[#up] = n(1-q).
        let mean_up = solved.mean_tokens(up);
        prop_assert!((mean_up - n as f64 * (1.0 - q)).abs() < 1e-8);
        // P(all up) = (1-q)^n.
        let p_all = solved.probability(|m| m.tokens(up) == n);
        prop_assert!((p_all - (1.0 - q).powi(n as i32)).abs() < 1e-8);
    }

    /// State space size of machine repair is n+1 tangible markings.
    #[test]
    fn machine_repair_state_count(n in 1u32..20) {
        let net = machine_repair(n, 1.0, 1.0);
        let ss = net.state_space().unwrap();
        prop_assert_eq!(ss.len(), n as usize + 1);
        prop_assert_eq!(ss.vanishing_count(), 0);
    }

    /// Token conservation: every reachable marking preserves total tokens
    /// in a conservative net.
    #[test]
    fn conservation(n in 1u32..8, lambda in 0.1f64..5.0, mu in 0.1f64..5.0) {
        let net = machine_repair(n, lambda, mu);
        let ss = net.state_space().unwrap();
        for m in ss.tangible_markings() {
            prop_assert_eq!(m.total_tokens(), n);
        }
    }

    /// Immediate routing with random weights splits flow proportionally.
    #[test]
    fn weighted_split(wa in 0.1f64..10.0, wb in 0.1f64..10.0) {
        let mut net = Srn::new("split");
        let src = net.add_place("src", 1);
        let mid = net.add_place("mid", 0);
        let a = net.add_place("a", 0);
        let b = net.add_place("b", 0);
        let go = net.add_timed("go", 1.0);
        net.add_move(go, src, mid).unwrap();
        let ta = net.add_immediate_weighted("ta", wa, 0);
        net.add_move(ta, mid, a).unwrap();
        let tb = net.add_immediate_weighted("tb", wb, 0);
        net.add_move(tb, mid, b).unwrap();
        let ra = net.add_timed("ra", 1.0);
        net.add_move(ra, a, src).unwrap();
        let rb = net.add_timed("rb", 1.0);
        net.add_move(rb, b, src).unwrap();

        let solved = net.solve().unwrap();
        let pa = solved.probability(|m| m.tokens(a) == 1);
        let pb = solved.probability(|m| m.tokens(b) == 1);
        // Same sojourn rates, so probabilities split like the weights.
        prop_assert!((pa / pb - wa / wb).abs() < 1e-6 * (wa / wb).max(1.0));
    }

    /// The state-space budget is respected exactly.
    #[test]
    fn budget_respected(limit in 1usize..30) {
        // Unbounded generator net.
        let mut net = Srn::new("gen");
        let p = net.add_place("p", 0);
        let t = net.add_timed("t", 1.0);
        net.add_output(t, p, 1).unwrap();
        let res = net.state_space_with(&ReachOptions { max_markings: limit });
        prop_assert!(res.is_err());
    }

    /// Inhibitor arcs cap the reachable token count.
    #[test]
    fn inhibitor_caps_tokens(cap in 1u32..10) {
        let mut net = Srn::new("cap");
        let p = net.add_place("p", 0);
        let gen = net.add_timed("gen", 1.0);
        net.add_output(gen, p, 1).unwrap();
        net.add_inhibitor(gen, p, cap).unwrap();
        let drain = net.add_timed("drain", 1.0);
        net.add_input(drain, p, 1).unwrap();
        let ss = net.state_space().unwrap();
        prop_assert_eq!(ss.len(), cap as usize + 1);
        for m in ss.tangible_markings() {
            prop_assert!(m.tokens(p) <= cap);
        }
    }
}
