//! CVSS v2.0 environmental metrics.
//!
//! The environmental score tailors a (temporally adjusted) score to one
//! deployment: collateral damage potential (CDP), target distribution
//! (TD) and per-requirement C/I/A weightings (CR/IR/AR). In this
//! workspace's context it lets an administrator score the *same* CVE
//! differently for, say, the database tier (high confidentiality
//! requirement) and a stateless web tier.

use std::fmt;
use std::str::FromStr;

use crate::v2::BaseVector;
use crate::v2_temporal::TemporalVector;
use crate::{ParseVectorError, Severity};

/// Collateral damage potential (CDP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollateralDamagePotential {
    /// `CDP:N` — none.
    None,
    /// `CDP:L` — low (light loss).
    Low,
    /// `CDP:LM` — low-medium.
    LowMedium,
    /// `CDP:MH` — medium-high.
    MediumHigh,
    /// `CDP:H` — high (catastrophic loss).
    High,
    /// `CDP:ND` — not defined.
    NotDefined,
}

impl CollateralDamagePotential {
    /// Numerical weight from the v2 specification.
    pub fn weight(self) -> f64 {
        match self {
            CollateralDamagePotential::None => 0.0,
            CollateralDamagePotential::Low => 0.1,
            CollateralDamagePotential::LowMedium => 0.3,
            CollateralDamagePotential::MediumHigh => 0.4,
            CollateralDamagePotential::High => 0.5,
            CollateralDamagePotential::NotDefined => 0.0,
        }
    }

    /// Canonical token.
    pub fn token(self) -> &'static str {
        match self {
            CollateralDamagePotential::None => "N",
            CollateralDamagePotential::Low => "L",
            CollateralDamagePotential::LowMedium => "LM",
            CollateralDamagePotential::MediumHigh => "MH",
            CollateralDamagePotential::High => "H",
            CollateralDamagePotential::NotDefined => "ND",
        }
    }
}

/// Target distribution (TD): the fraction of systems that are vulnerable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetDistribution {
    /// `TD:N` — none (0 %).
    None,
    /// `TD:L` — low (1–25 %).
    Low,
    /// `TD:M` — medium (26–75 %).
    Medium,
    /// `TD:H` — high (76–100 %).
    High,
    /// `TD:ND` — not defined.
    NotDefined,
}

impl TargetDistribution {
    /// Numerical weight from the v2 specification.
    pub fn weight(self) -> f64 {
        match self {
            TargetDistribution::None => 0.0,
            TargetDistribution::Low => 0.25,
            TargetDistribution::Medium => 0.75,
            TargetDistribution::High => 1.0,
            TargetDistribution::NotDefined => 1.0,
        }
    }

    /// Canonical token.
    pub fn token(self) -> &'static str {
        match self {
            TargetDistribution::None => "N",
            TargetDistribution::Low => "L",
            TargetDistribution::Medium => "M",
            TargetDistribution::High => "H",
            TargetDistribution::NotDefined => "ND",
        }
    }
}

/// A security requirement weighting (CR, IR or AR).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Requirement {
    /// `:L` — low importance for this deployment.
    Low,
    /// `:M` — medium.
    Medium,
    /// `:H` — high.
    High,
    /// `:ND` — not defined.
    NotDefined,
}

impl Requirement {
    /// Numerical weight from the v2 specification.
    pub fn weight(self) -> f64 {
        match self {
            Requirement::Low => 0.5,
            Requirement::Medium => 1.0,
            Requirement::High => 1.51,
            Requirement::NotDefined => 1.0,
        }
    }

    /// Canonical token.
    pub fn token(self) -> &'static str {
        match self {
            Requirement::Low => "L",
            Requirement::Medium => "M",
            Requirement::High => "H",
            Requirement::NotDefined => "ND",
        }
    }
}

/// The CVSS v2 environmental metric group.
///
/// # Examples
///
/// ```
/// use redeval_cvss::v2::BaseVector;
/// use redeval_cvss::v2_environmental::EnvironmentalVector;
/// use redeval_cvss::v2_temporal::TemporalVector;
///
/// # fn main() -> Result<(), redeval_cvss::ParseVectorError> {
/// let base: BaseVector = "AV:N/AC:L/Au:N/C:C/I:C/A:C".parse()?;
/// let temporal = TemporalVector::not_defined();
/// // A database tier: catastrophic collateral damage, every host runs it,
/// // confidentiality paramount.
/// let env: EnvironmentalVector = "CDP:H/TD:H/CR:H/IR:M/AR:M".parse()?;
/// assert_eq!(env.environmental_score(&base, &temporal), 10.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EnvironmentalVector {
    /// Collateral damage potential (CDP).
    pub collateral_damage: CollateralDamagePotential,
    /// Target distribution (TD).
    pub target_distribution: TargetDistribution,
    /// Confidentiality requirement (CR).
    pub confidentiality_req: Requirement,
    /// Integrity requirement (IR).
    pub integrity_req: Requirement,
    /// Availability requirement (AR).
    pub availability_req: Requirement,
}

fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}

impl EnvironmentalVector {
    /// The all-`ND` vector.
    pub fn not_defined() -> Self {
        EnvironmentalVector {
            collateral_damage: CollateralDamagePotential::NotDefined,
            target_distribution: TargetDistribution::NotDefined,
            confidentiality_req: Requirement::NotDefined,
            integrity_req: Requirement::NotDefined,
            availability_req: Requirement::NotDefined,
        }
    }

    /// The *adjusted impact*: the base impact equation with each C/I/A
    /// weight scaled by its requirement, capped at 10.
    pub fn adjusted_impact(&self, base: &BaseVector) -> f64 {
        let c = base.confidentiality.weight() * self.confidentiality_req.weight();
        let i = base.integrity.weight() * self.integrity_req.weight();
        let a = base.availability.weight() * self.availability_req.weight();
        (10.41 * (1.0 - (1.0 - c) * (1.0 - i) * (1.0 - a))).min(10.0)
    }

    /// The environmental score:
    /// `(AdjustedTemporal + (10 − AdjustedTemporal)·CDP)·TD`, rounded to
    /// one decimal.
    ///
    /// `AdjustedTemporal` is the temporal equation recomputed over the
    /// adjusted-impact base score.
    pub fn environmental_score(&self, base: &BaseVector, temporal: &TemporalVector) -> f64 {
        // Recompute the base equation with adjusted impact.
        let impact = self.adjusted_impact(base);
        let expl = base.exploitability_subscore_raw().min(10.0);
        let f = if impact == 0.0 { 0.0 } else { 1.176 };
        let adjusted_base = (((0.6 * impact) + (0.4 * expl) - 1.5) * f).clamp(0.0, 10.0);
        let adjusted_temporal = round1(adjusted_base * temporal.multiplier());
        let score = (adjusted_temporal
            + (10.0 - adjusted_temporal) * self.collateral_damage.weight())
            * self.target_distribution.weight();
        round1(score)
    }

    /// Severity band of the environmental score.
    pub fn environmental_severity(&self, base: &BaseVector, temporal: &TemporalVector) -> Severity {
        Severity::from_score(self.environmental_score(base, temporal))
    }

    /// Canonical vector string `CDP:_/TD:_/CR:_/IR:_/AR:_`.
    pub fn to_vector_string(&self) -> String {
        format!(
            "CDP:{}/TD:{}/CR:{}/IR:{}/AR:{}",
            self.collateral_damage.token(),
            self.target_distribution.token(),
            self.confidentiality_req.token(),
            self.integrity_req.token(),
            self.availability_req.token()
        )
    }
}

impl fmt::Display for EnvironmentalVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_vector_string())
    }
}

impl FromStr for EnvironmentalVector {
    type Err = ParseVectorError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut out = EnvironmentalVector::not_defined();
        let mut seen: Vec<&str> = Vec::new();
        for comp in s.trim().split('/') {
            let (key, value) =
                comp.split_once(':')
                    .ok_or_else(|| ParseVectorError::MalformedComponent {
                        component: comp.to_string(),
                    })?;
            if seen.contains(&key) {
                return Err(ParseVectorError::DuplicateMetric {
                    key: key.to_string(),
                });
            }
            let invalid = || ParseVectorError::InvalidValue {
                key: key.to_string(),
                value: value.to_string(),
            };
            match key {
                "CDP" => {
                    out.collateral_damage = match value {
                        "N" => CollateralDamagePotential::None,
                        "L" => CollateralDamagePotential::Low,
                        "LM" => CollateralDamagePotential::LowMedium,
                        "MH" => CollateralDamagePotential::MediumHigh,
                        "H" => CollateralDamagePotential::High,
                        "ND" => CollateralDamagePotential::NotDefined,
                        _ => return Err(invalid()),
                    }
                }
                "TD" => {
                    out.target_distribution = match value {
                        "N" => TargetDistribution::None,
                        "L" => TargetDistribution::Low,
                        "M" => TargetDistribution::Medium,
                        "H" => TargetDistribution::High,
                        "ND" => TargetDistribution::NotDefined,
                        _ => return Err(invalid()),
                    }
                }
                "CR" | "IR" | "AR" => {
                    let r = match value {
                        "L" => Requirement::Low,
                        "M" => Requirement::Medium,
                        "H" => Requirement::High,
                        "ND" => Requirement::NotDefined,
                        _ => return Err(invalid()),
                    };
                    match key {
                        "CR" => out.confidentiality_req = r,
                        "IR" => out.integrity_req = r,
                        _ => out.availability_req = r,
                    }
                }
                _ => {
                    return Err(ParseVectorError::UnknownMetric {
                        key: key.to_string(),
                    })
                }
            }
            seen.push(key);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base10() -> BaseVector {
        "AV:N/AC:L/Au:N/C:C/I:C/A:C".parse().unwrap()
    }

    fn nd_temporal() -> TemporalVector {
        TemporalVector::not_defined()
    }

    #[test]
    fn not_defined_recovers_base_score() {
        let env = EnvironmentalVector::not_defined();
        assert_eq!(env.environmental_score(&base10(), &nd_temporal()), 10.0);
        let base78: BaseVector = "AV:N/AC:L/Au:N/C:N/I:N/A:C".parse().unwrap();
        assert_eq!(env.environmental_score(&base78, &nd_temporal()), 7.8);
    }

    #[test]
    fn zero_target_distribution_zeroes_score() {
        let env: EnvironmentalVector = "TD:N".parse().unwrap();
        assert_eq!(env.environmental_score(&base10(), &nd_temporal()), 0.0);
    }

    #[test]
    fn collateral_damage_raises_score() {
        let base: BaseVector = "AV:N/AC:L/Au:N/C:P/I:N/A:N".parse().unwrap(); // 5.0
        let none: EnvironmentalVector = "CDP:N/TD:H".parse().unwrap();
        let high: EnvironmentalVector = "CDP:H/TD:H".parse().unwrap();
        let s_none = none.environmental_score(&base, &nd_temporal());
        let s_high = high.environmental_score(&base, &nd_temporal());
        assert!(s_high > s_none);
        assert_eq!(s_none, 5.0);
        assert_eq!(s_high, 7.5); // 5.0 + 5.0*0.5
    }

    #[test]
    fn low_requirements_lower_the_score() {
        // All requirements low on a C:C/I:C/A:C base.
        let env: EnvironmentalVector = "CR:L/IR:L/AR:L/TD:H".parse().unwrap();
        let s = env.environmental_score(&base10(), &nd_temporal());
        assert!(s < 10.0);
        // Adjusted impact: weights 0.66*0.5 = 0.33 each.
        let expect_impact = 10.41 * (1.0 - (1.0 - 0.33f64).powi(3));
        assert!((env.adjusted_impact(&base10()) - expect_impact).abs() < 1e-9);
    }

    #[test]
    fn requirement_only_matters_when_impacted() {
        // Base has no availability impact: AR cannot change the score.
        let base: BaseVector = "AV:N/AC:L/Au:N/C:C/I:C/A:N".parse().unwrap();
        let ar_low: EnvironmentalVector = "AR:L".parse().unwrap();
        let ar_high: EnvironmentalVector = "AR:H".parse().unwrap();
        assert_eq!(
            ar_low.environmental_score(&base, &nd_temporal()),
            ar_high.environmental_score(&base, &nd_temporal())
        );
    }

    #[test]
    fn composes_with_temporal() {
        let temporal: TemporalVector = "E:F/RL:OF/RC:C".parse().unwrap();
        let env: EnvironmentalVector = "CDP:N/TD:H".parse().unwrap();
        // Environmental over adjusted-temporal: equals the temporal score
        // when CDP:N/TD:H and requirements are ND.
        let t = temporal.temporal_score(&base10());
        let e = env.environmental_score(&base10(), &temporal);
        assert_eq!(t, e);
    }

    #[test]
    fn roundtrip_and_errors() {
        let env: EnvironmentalVector = "CDP:LM/TD:M/CR:H/IR:L/AR:M".parse().unwrap();
        assert_eq!(env.to_string(), "CDP:LM/TD:M/CR:H/IR:L/AR:M");
        let back: EnvironmentalVector = env.to_string().parse().unwrap();
        assert_eq!(back, env);
        assert!("CDP:X".parse::<EnvironmentalVector>().is_err());
        assert!("ZZ:L".parse::<EnvironmentalVector>().is_err());
        assert!("CR:L/CR:H".parse::<EnvironmentalVector>().is_err());
    }
}
