//! CVSS v3.0/v3.1 base metrics and scoring equations.
//!
//! Provided for completeness next to [`crate::v2`]; the reproduced paper
//! uses v2, but modern NVD entries for the same CVEs carry v3 vectors and
//! downstream users will want to score those too.

use std::fmt;
use std::str::FromStr;

use crate::{ParseVectorError, Severity};

/// Attack vector (AV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackVector {
    /// `AV:N` — network.
    Network,
    /// `AV:A` — adjacent.
    Adjacent,
    /// `AV:L` — local.
    Local,
    /// `AV:P` — physical.
    Physical,
}

impl AttackVector {
    /// Numerical weight from the v3 specification.
    pub fn weight(self) -> f64 {
        match self {
            AttackVector::Network => 0.85,
            AttackVector::Adjacent => 0.62,
            AttackVector::Local => 0.55,
            AttackVector::Physical => 0.2,
        }
    }

    /// Canonical vector token.
    pub fn token(self) -> &'static str {
        match self {
            AttackVector::Network => "N",
            AttackVector::Adjacent => "A",
            AttackVector::Local => "L",
            AttackVector::Physical => "P",
        }
    }
}

/// Attack complexity (AC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackComplexity {
    /// `AC:L` — low.
    Low,
    /// `AC:H` — high.
    High,
}

impl AttackComplexity {
    /// Numerical weight from the v3 specification.
    pub fn weight(self) -> f64 {
        match self {
            AttackComplexity::Low => 0.77,
            AttackComplexity::High => 0.44,
        }
    }

    /// Canonical vector token.
    pub fn token(self) -> &'static str {
        match self {
            AttackComplexity::Low => "L",
            AttackComplexity::High => "H",
        }
    }
}

/// Privileges required (PR). The weight depends on [`Scope`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrivilegesRequired {
    /// `PR:N` — none.
    None,
    /// `PR:L` — low.
    Low,
    /// `PR:H` — high.
    High,
}

impl PrivilegesRequired {
    /// Numerical weight; larger when the scope is changed.
    pub fn weight(self, scope: Scope) -> f64 {
        match (self, scope) {
            (PrivilegesRequired::None, _) => 0.85,
            (PrivilegesRequired::Low, Scope::Unchanged) => 0.62,
            (PrivilegesRequired::Low, Scope::Changed) => 0.68,
            (PrivilegesRequired::High, Scope::Unchanged) => 0.27,
            (PrivilegesRequired::High, Scope::Changed) => 0.5,
        }
    }

    /// Canonical vector token.
    pub fn token(self) -> &'static str {
        match self {
            PrivilegesRequired::None => "N",
            PrivilegesRequired::Low => "L",
            PrivilegesRequired::High => "H",
        }
    }
}

/// User interaction (UI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UserInteraction {
    /// `UI:N` — none.
    None,
    /// `UI:R` — required.
    Required,
}

impl UserInteraction {
    /// Numerical weight from the v3 specification.
    pub fn weight(self) -> f64 {
        match self {
            UserInteraction::None => 0.85,
            UserInteraction::Required => 0.62,
        }
    }

    /// Canonical vector token.
    pub fn token(self) -> &'static str {
        match self {
            UserInteraction::None => "N",
            UserInteraction::Required => "R",
        }
    }
}

/// Scope (S).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scope {
    /// `S:U` — exploitation stays within the vulnerable component.
    Unchanged,
    /// `S:C` — exploitation affects resources beyond the component.
    Changed,
}

impl Scope {
    /// Canonical vector token.
    pub fn token(self) -> &'static str {
        match self {
            Scope::Unchanged => "U",
            Scope::Changed => "C",
        }
    }
}

/// Degree of loss for the C/I/A impact metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImpactMetric {
    /// `:N` — none.
    None,
    /// `:L` — low.
    Low,
    /// `:H` — high.
    High,
}

impl ImpactMetric {
    /// Numerical weight from the v3 specification.
    pub fn weight(self) -> f64 {
        match self {
            ImpactMetric::None => 0.0,
            ImpactMetric::Low => 0.22,
            ImpactMetric::High => 0.56,
        }
    }

    /// Canonical vector token.
    pub fn token(self) -> &'static str {
        match self {
            ImpactMetric::None => "N",
            ImpactMetric::Low => "L",
            ImpactMetric::High => "H",
        }
    }
}

/// A complete CVSS v3.0 base vector.
///
/// # Examples
///
/// ```
/// use redeval_cvss::v3::BaseVector;
///
/// # fn main() -> Result<(), redeval_cvss::ParseVectorError> {
/// let v: BaseVector = "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H".parse()?;
/// assert_eq!(v.base_score(), 9.8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BaseVector {
    /// Attack vector (AV).
    pub attack_vector: AttackVector,
    /// Attack complexity (AC).
    pub attack_complexity: AttackComplexity,
    /// Privileges required (PR).
    pub privileges_required: PrivilegesRequired,
    /// User interaction (UI).
    pub user_interaction: UserInteraction,
    /// Scope (S).
    pub scope: Scope,
    /// Confidentiality impact (C).
    pub confidentiality: ImpactMetric,
    /// Integrity impact (I).
    pub integrity: ImpactMetric,
    /// Availability impact (A).
    pub availability: ImpactMetric,
}

/// CVSS v3 "round up" to one decimal, using the exact-integer algorithm
/// from the CVSS v3.1 specification (appendix A) to avoid floating-point
/// artifacts.
fn roundup(x: f64) -> f64 {
    let i = (x * 100_000.0).round();
    if (i as i64) % 10_000 == 0 {
        i / 100_000.0
    } else {
        ((i / 10_000.0).floor() + 1.0) / 10.0
    }
}

impl BaseVector {
    /// The impact sub-score base `ISC_Base = 1-(1-C)(1-I)(1-A)`.
    pub fn isc_base(&self) -> f64 {
        1.0 - (1.0 - self.confidentiality.weight())
            * (1.0 - self.integrity.weight())
            * (1.0 - self.availability.weight())
    }

    /// The (unrounded) impact sub-score, scope dependent.
    pub fn impact_subscore(&self) -> f64 {
        let isc = self.isc_base();
        match self.scope {
            Scope::Unchanged => 6.42 * isc,
            Scope::Changed => 7.52 * (isc - 0.029) - 3.25 * (isc - 0.02).powi(15),
        }
    }

    /// The (unrounded) exploitability sub-score
    /// `8.22 * AV * AC * PR * UI`.
    pub fn exploitability_subscore(&self) -> f64 {
        8.22 * self.attack_vector.weight()
            * self.attack_complexity.weight()
            * self.privileges_required.weight(self.scope)
            * self.user_interaction.weight()
    }

    /// The CVSS v3 base score, rounded up to one decimal.
    pub fn base_score(&self) -> f64 {
        let impact = self.impact_subscore();
        if impact <= 0.0 {
            return 0.0;
        }
        let expl = self.exploitability_subscore();
        match self.scope {
            Scope::Unchanged => roundup((impact + expl).min(10.0)),
            Scope::Changed => roundup((1.08 * (impact + expl)).min(10.0)),
        }
    }

    /// Qualitative severity of [`base_score`](Self::base_score).
    pub fn severity(&self) -> Severity {
        Severity::from_score(self.base_score())
    }

    /// The canonical vector string including the `CVSS:3.0/` prefix.
    pub fn to_vector_string(&self) -> String {
        format!(
            "CVSS:3.0/AV:{}/AC:{}/PR:{}/UI:{}/S:{}/C:{}/I:{}/A:{}",
            self.attack_vector.token(),
            self.attack_complexity.token(),
            self.privileges_required.token(),
            self.user_interaction.token(),
            self.scope.token(),
            self.confidentiality.token(),
            self.integrity.token(),
            self.availability.token()
        )
    }
}

impl fmt::Display for BaseVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_vector_string())
    }
}

impl FromStr for BaseVector {
    type Err = ParseVectorError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let s = s
            .strip_prefix("CVSS:3.1/")
            .or_else(|| s.strip_prefix("CVSS:3.0/"))
            .unwrap_or(s);

        let mut av = None;
        let mut ac = None;
        let mut pr = None;
        let mut ui = None;
        let mut sc = None;
        let mut c = None;
        let mut i = None;
        let mut a = None;

        for comp in s.split('/') {
            let (key, value) =
                comp.split_once(':')
                    .ok_or_else(|| ParseVectorError::MalformedComponent {
                        component: comp.to_string(),
                    })?;
            let invalid = || ParseVectorError::InvalidValue {
                key: key.to_string(),
                value: value.to_string(),
            };
            let dup = || ParseVectorError::DuplicateMetric {
                key: key.to_string(),
            };
            match key {
                "AV" => {
                    let v = match value {
                        "N" => AttackVector::Network,
                        "A" => AttackVector::Adjacent,
                        "L" => AttackVector::Local,
                        "P" => AttackVector::Physical,
                        _ => return Err(invalid()),
                    };
                    if av.replace(v).is_some() {
                        return Err(dup());
                    }
                }
                "AC" => {
                    let v = match value {
                        "L" => AttackComplexity::Low,
                        "H" => AttackComplexity::High,
                        _ => return Err(invalid()),
                    };
                    if ac.replace(v).is_some() {
                        return Err(dup());
                    }
                }
                "PR" => {
                    let v = match value {
                        "N" => PrivilegesRequired::None,
                        "L" => PrivilegesRequired::Low,
                        "H" => PrivilegesRequired::High,
                        _ => return Err(invalid()),
                    };
                    if pr.replace(v).is_some() {
                        return Err(dup());
                    }
                }
                "UI" => {
                    let v = match value {
                        "N" => UserInteraction::None,
                        "R" => UserInteraction::Required,
                        _ => return Err(invalid()),
                    };
                    if ui.replace(v).is_some() {
                        return Err(dup());
                    }
                }
                "S" => {
                    let v = match value {
                        "U" => Scope::Unchanged,
                        "C" => Scope::Changed,
                        _ => return Err(invalid()),
                    };
                    if sc.replace(v).is_some() {
                        return Err(dup());
                    }
                }
                "C" | "I" | "A" => {
                    let v = match value {
                        "N" => ImpactMetric::None,
                        "L" => ImpactMetric::Low,
                        "H" => ImpactMetric::High,
                        _ => return Err(invalid()),
                    };
                    let slot = match key {
                        "C" => &mut c,
                        "I" => &mut i,
                        _ => &mut a,
                    };
                    if slot.replace(v).is_some() {
                        return Err(dup());
                    }
                }
                _ => {
                    return Err(ParseVectorError::UnknownMetric {
                        key: key.to_string(),
                    })
                }
            }
        }

        Ok(BaseVector {
            attack_vector: av.ok_or(ParseVectorError::MissingMetric { key: "AV" })?,
            attack_complexity: ac.ok_or(ParseVectorError::MissingMetric { key: "AC" })?,
            privileges_required: pr.ok_or(ParseVectorError::MissingMetric { key: "PR" })?,
            user_interaction: ui.ok_or(ParseVectorError::MissingMetric { key: "UI" })?,
            scope: sc.ok_or(ParseVectorError::MissingMetric { key: "S" })?,
            confidentiality: c.ok_or(ParseVectorError::MissingMetric { key: "C" })?,
            integrity: i.ok_or(ParseVectorError::MissingMetric { key: "I" })?,
            availability: a.ok_or(ParseVectorError::MissingMetric { key: "A" })?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> BaseVector {
        s.parse().expect("valid vector")
    }

    #[test]
    fn canonical_9_8() {
        let v = parse("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H");
        assert_eq!(v.base_score(), 9.8);
        assert_eq!(v.severity(), Severity::Critical);
    }

    #[test]
    fn scope_changed_10() {
        let v = parse("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H");
        assert_eq!(v.base_score(), 10.0);
    }

    #[test]
    fn local_kernel_7_8() {
        // CVE-2016-4997 v3 vector.
        let v = parse("CVSS:3.0/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H");
        assert_eq!(v.base_score(), 7.8);
        assert_eq!(v.severity(), Severity::High);
    }

    #[test]
    fn zero_impact_is_zero_score() {
        let v = parse("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:N");
        assert_eq!(v.base_score(), 0.0);
    }

    #[test]
    fn medium_example() {
        // CVE-2015-8126-style: AV:N/AC:L/PR:N/UI:R/S:U/C:L/I:L/A:L -> 6.3? compute.
        let v = parse("CVSS:3.0/AV:N/AC:L/PR:N/UI:R/S:U/C:L/I:L/A:L");
        assert_eq!(v.base_score(), 6.3);
    }

    #[test]
    fn roundtrip_display_parse() {
        let v = parse("CVSS:3.0/AV:A/AC:H/PR:L/UI:R/S:C/C:L/I:H/A:N");
        assert_eq!(parse(&v.to_string()), v);
    }

    #[test]
    fn accepts_31_prefix() {
        let v = parse("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H");
        assert_eq!(v.base_score(), 9.8);
    }

    #[test]
    fn rejects_missing_scope() {
        let err = "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/C:H/I:H/A:H"
            .parse::<BaseVector>()
            .unwrap_err();
        assert_eq!(err, ParseVectorError::MissingMetric { key: "S" });
    }

    #[test]
    fn roundup_behaviour() {
        assert_eq!(roundup(4.02), 4.1);
        assert_eq!(roundup(4.0), 4.0);
        assert_eq!(roundup(4.000001), 4.0); // within epsilon guard
    }
}
