use std::error::Error;
use std::fmt;

/// Error returned when a CVSS vector string cannot be parsed.
///
/// Produced by the `FromStr` implementations of
/// [`v2::BaseVector`](crate::v2::BaseVector) and
/// [`v3::BaseVector`](crate::v3::BaseVector).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseVectorError {
    /// A `KEY:VALUE` component was malformed (no colon, empty key, …).
    MalformedComponent {
        /// The offending component text.
        component: String,
    },
    /// A metric key was not recognized for this CVSS version.
    UnknownMetric {
        /// The unrecognized key.
        key: String,
    },
    /// A metric value was not valid for the given metric.
    InvalidValue {
        /// The metric key.
        key: String,
        /// The invalid value text.
        value: String,
    },
    /// The same metric appeared more than once.
    DuplicateMetric {
        /// The duplicated key.
        key: String,
    },
    /// One or more mandatory base metrics were absent.
    MissingMetric {
        /// The name of the first missing metric.
        key: &'static str,
    },
    /// The version prefix (e.g. `CVSS:3.0/`) did not match the parser used.
    VersionMismatch {
        /// The prefix found.
        found: String,
    },
}

impl fmt::Display for ParseVectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseVectorError::MalformedComponent { component } => {
                write!(f, "malformed vector component `{component}`")
            }
            ParseVectorError::UnknownMetric { key } => {
                write!(f, "unknown metric key `{key}`")
            }
            ParseVectorError::InvalidValue { key, value } => {
                write!(f, "invalid value `{value}` for metric `{key}`")
            }
            ParseVectorError::DuplicateMetric { key } => {
                write!(f, "metric `{key}` appears more than once")
            }
            ParseVectorError::MissingMetric { key } => {
                write!(f, "mandatory metric `{key}` is missing")
            }
            ParseVectorError::VersionMismatch { found } => {
                write!(f, "vector version prefix `{found}` does not match parser")
            }
        }
    }
}

impl Error for ParseVectorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = ParseVectorError::UnknownMetric { key: "XX".into() };
        let s = e.to_string();
        assert!(s.starts_with("unknown metric"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ParseVectorError>();
    }
}
