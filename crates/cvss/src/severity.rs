//! Qualitative severity ratings for CVSS scores.

use std::fmt;

/// Qualitative severity rating of a CVSS base score.
///
/// The bands follow the CVSS v3.0 specification (which the v2 ecosystem also
/// adopted informally): `None` 0.0, `Low` 0.1–3.9, `Medium` 4.0–6.9,
/// `High` 7.0–8.9, `Critical` 9.0–10.0.
///
/// # Examples
///
/// ```
/// use redeval_cvss::Severity;
///
/// assert_eq!(Severity::from_score(9.3), Severity::Critical);
/// assert_eq!(Severity::from_score(5.0), Severity::Medium);
/// assert!(Severity::High > Severity::Low);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Score 0.0.
    None,
    /// Score 0.1–3.9.
    Low,
    /// Score 4.0–6.9.
    Medium,
    /// Score 7.0–8.9.
    High,
    /// Score 9.0–10.0.
    Critical,
}

impl Severity {
    /// Classifies a base score into a severity band.
    ///
    /// Scores are clamped to the `0.0..=10.0` range first, so out-of-range
    /// inputs never panic.
    pub fn from_score(score: f64) -> Self {
        let s = if score.is_nan() {
            0.0
        } else {
            score.clamp(0.0, 10.0)
        };
        if s < 0.05 {
            Severity::None
        } else if s < 3.95 {
            Severity::Low
        } else if s < 6.95 {
            Severity::Medium
        } else if s < 8.95 {
            Severity::High
        } else {
            Severity::Critical
        }
    }

    /// Returns the canonical (uppercase-first) name, e.g. `"Critical"`.
    pub fn name(self) -> &'static str {
        match self {
            Severity::None => "None",
            Severity::Low => "Low",
            Severity::Medium => "Medium",
            Severity::High => "High",
            Severity::Critical => "Critical",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banding_matches_spec() {
        assert_eq!(Severity::from_score(0.0), Severity::None);
        assert_eq!(Severity::from_score(0.1), Severity::Low);
        assert_eq!(Severity::from_score(3.9), Severity::Low);
        assert_eq!(Severity::from_score(4.0), Severity::Medium);
        assert_eq!(Severity::from_score(6.9), Severity::Medium);
        assert_eq!(Severity::from_score(7.0), Severity::High);
        assert_eq!(Severity::from_score(8.9), Severity::High);
        assert_eq!(Severity::from_score(9.0), Severity::Critical);
        assert_eq!(Severity::from_score(10.0), Severity::Critical);
    }

    #[test]
    fn out_of_range_scores_are_clamped() {
        assert_eq!(Severity::from_score(-3.0), Severity::None);
        assert_eq!(Severity::from_score(42.0), Severity::Critical);
        assert_eq!(Severity::from_score(f64::NAN), Severity::None);
    }

    #[test]
    fn ordering_is_ascending() {
        assert!(Severity::None < Severity::Low);
        assert!(Severity::Low < Severity::Medium);
        assert!(Severity::Medium < Severity::High);
        assert!(Severity::High < Severity::Critical);
    }

    #[test]
    fn display_matches_name() {
        for s in [
            Severity::None,
            Severity::Low,
            Severity::Medium,
            Severity::High,
            Severity::Critical,
        ] {
            assert_eq!(s.to_string(), s.name());
        }
    }
}
