//! CVSS v2.0 temporal metrics.
//!
//! The temporal score adjusts a base score for real-world exploit
//! maturity (E), remediation availability (RL) and report confidence
//! (RC). In the patch-scheduling context of this workspace, a
//! vulnerability typically moves from `RL:U` (no fix) towards `RL:OF`
//! (official fix) — lowering its temporal score — while its exploit code
//! matures in the opposite direction.

use std::fmt;
use std::str::FromStr;

use crate::v2::BaseVector;
use crate::{ParseVectorError, Severity};

/// Exploitability maturity (E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Exploitability {
    /// `E:U` — unproven that an exploit exists.
    Unproven,
    /// `E:POC` — proof-of-concept code.
    ProofOfConcept,
    /// `E:F` — functional exploit exists.
    Functional,
    /// `E:H` — exploitation is widespread ("high").
    High,
    /// `E:ND` — not defined (no effect on the score).
    NotDefined,
}

impl Exploitability {
    /// Numerical weight from the v2 specification.
    pub fn weight(self) -> f64 {
        match self {
            Exploitability::Unproven => 0.85,
            Exploitability::ProofOfConcept => 0.9,
            Exploitability::Functional => 0.95,
            Exploitability::High => 1.0,
            Exploitability::NotDefined => 1.0,
        }
    }

    /// Canonical vector token.
    pub fn token(self) -> &'static str {
        match self {
            Exploitability::Unproven => "U",
            Exploitability::ProofOfConcept => "POC",
            Exploitability::Functional => "F",
            Exploitability::High => "H",
            Exploitability::NotDefined => "ND",
        }
    }
}

/// Remediation level (RL).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RemediationLevel {
    /// `RL:OF` — official fix available (the patched state).
    OfficialFix,
    /// `RL:TF` — temporary fix.
    TemporaryFix,
    /// `RL:W` — workaround.
    Workaround,
    /// `RL:U` — no remediation available.
    Unavailable,
    /// `RL:ND` — not defined.
    NotDefined,
}

impl RemediationLevel {
    /// Numerical weight from the v2 specification.
    pub fn weight(self) -> f64 {
        match self {
            RemediationLevel::OfficialFix => 0.87,
            RemediationLevel::TemporaryFix => 0.9,
            RemediationLevel::Workaround => 0.95,
            RemediationLevel::Unavailable => 1.0,
            RemediationLevel::NotDefined => 1.0,
        }
    }

    /// Canonical vector token.
    pub fn token(self) -> &'static str {
        match self {
            RemediationLevel::OfficialFix => "OF",
            RemediationLevel::TemporaryFix => "TF",
            RemediationLevel::Workaround => "W",
            RemediationLevel::Unavailable => "U",
            RemediationLevel::NotDefined => "ND",
        }
    }
}

/// Report confidence (RC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReportConfidence {
    /// `RC:UC` — unconfirmed.
    Unconfirmed,
    /// `RC:UR` — uncorroborated.
    Uncorroborated,
    /// `RC:C` — confirmed.
    Confirmed,
    /// `RC:ND` — not defined.
    NotDefined,
}

impl ReportConfidence {
    /// Numerical weight from the v2 specification.
    pub fn weight(self) -> f64 {
        match self {
            ReportConfidence::Unconfirmed => 0.9,
            ReportConfidence::Uncorroborated => 0.95,
            ReportConfidence::Confirmed => 1.0,
            ReportConfidence::NotDefined => 1.0,
        }
    }

    /// Canonical vector token.
    pub fn token(self) -> &'static str {
        match self {
            ReportConfidence::Unconfirmed => "UC",
            ReportConfidence::Uncorroborated => "UR",
            ReportConfidence::Confirmed => "C",
            ReportConfidence::NotDefined => "ND",
        }
    }
}

/// The CVSS v2 temporal metric group.
///
/// # Examples
///
/// ```
/// use redeval_cvss::v2::BaseVector;
/// use redeval_cvss::v2_temporal::TemporalVector;
///
/// # fn main() -> Result<(), redeval_cvss::ParseVectorError> {
/// let base: BaseVector = "AV:N/AC:L/Au:N/C:C/I:C/A:C".parse()?;
/// let temporal: TemporalVector = "E:F/RL:OF/RC:C".parse()?;
/// // Functional exploit, official fix: 10.0 -> 8.3.
/// assert_eq!(temporal.temporal_score(&base), 8.3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TemporalVector {
    /// Exploitability maturity (E).
    pub exploitability: Exploitability,
    /// Remediation level (RL).
    pub remediation_level: RemediationLevel,
    /// Report confidence (RC).
    pub report_confidence: ReportConfidence,
}

impl TemporalVector {
    /// The all-`ND` vector (temporal score == base score).
    pub fn not_defined() -> Self {
        TemporalVector {
            exploitability: Exploitability::NotDefined,
            remediation_level: RemediationLevel::NotDefined,
            report_confidence: ReportConfidence::NotDefined,
        }
    }

    /// The combined temporal multiplier `E·RL·RC` (0.66…1.0).
    pub fn multiplier(&self) -> f64 {
        self.exploitability.weight()
            * self.remediation_level.weight()
            * self.report_confidence.weight()
    }

    /// The temporal score: `round(base · E · RL · RC)` to one decimal.
    pub fn temporal_score(&self, base: &BaseVector) -> f64 {
        ((base.base_score() * self.multiplier()) * 10.0).round() / 10.0
    }

    /// Severity band of the temporal score.
    pub fn temporal_severity(&self, base: &BaseVector) -> Severity {
        Severity::from_score(self.temporal_score(base))
    }

    /// Canonical vector string `E:_/RL:_/RC:_`.
    pub fn to_vector_string(&self) -> String {
        format!(
            "E:{}/RL:{}/RC:{}",
            self.exploitability.token(),
            self.remediation_level.token(),
            self.report_confidence.token()
        )
    }
}

impl fmt::Display for TemporalVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_vector_string())
    }
}

impl FromStr for TemporalVector {
    type Err = ParseVectorError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut e = None;
        let mut rl = None;
        let mut rc = None;
        for comp in s.trim().split('/') {
            let (key, value) =
                comp.split_once(':')
                    .ok_or_else(|| ParseVectorError::MalformedComponent {
                        component: comp.to_string(),
                    })?;
            let invalid = || ParseVectorError::InvalidValue {
                key: key.to_string(),
                value: value.to_string(),
            };
            let dup = || ParseVectorError::DuplicateMetric {
                key: key.to_string(),
            };
            match key {
                "E" => {
                    let v = match value {
                        "U" => Exploitability::Unproven,
                        "POC" => Exploitability::ProofOfConcept,
                        "F" => Exploitability::Functional,
                        "H" => Exploitability::High,
                        "ND" => Exploitability::NotDefined,
                        _ => return Err(invalid()),
                    };
                    if e.replace(v).is_some() {
                        return Err(dup());
                    }
                }
                "RL" => {
                    let v = match value {
                        "OF" => RemediationLevel::OfficialFix,
                        "TF" => RemediationLevel::TemporaryFix,
                        "W" => RemediationLevel::Workaround,
                        "U" => RemediationLevel::Unavailable,
                        "ND" => RemediationLevel::NotDefined,
                        _ => return Err(invalid()),
                    };
                    if rl.replace(v).is_some() {
                        return Err(dup());
                    }
                }
                "RC" => {
                    let v = match value {
                        "UC" => ReportConfidence::Unconfirmed,
                        "UR" => ReportConfidence::Uncorroborated,
                        "C" => ReportConfidence::Confirmed,
                        "ND" => ReportConfidence::NotDefined,
                        _ => return Err(invalid()),
                    };
                    if rc.replace(v).is_some() {
                        return Err(dup());
                    }
                }
                _ => {
                    return Err(ParseVectorError::UnknownMetric {
                        key: key.to_string(),
                    })
                }
            }
        }
        Ok(TemporalVector {
            exploitability: e.unwrap_or(Exploitability::NotDefined),
            remediation_level: rl.unwrap_or(RemediationLevel::NotDefined),
            report_confidence: rc.unwrap_or(ReportConfidence::NotDefined),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base10() -> BaseVector {
        "AV:N/AC:L/Au:N/C:C/I:C/A:C".parse().unwrap()
    }

    #[test]
    fn not_defined_is_identity() {
        let t = TemporalVector::not_defined();
        assert_eq!(t.multiplier(), 1.0);
        assert_eq!(t.temporal_score(&base10()), 10.0);
    }

    #[test]
    fn spec_example_values() {
        // CVSS v2 guide example (CVE-2002-0392 profile): E:F/RL:OF/RC:C
        // over base 7.8 -> 6.4.
        let base: BaseVector = "AV:N/AC:L/Au:N/C:N/I:N/A:C".parse().unwrap();
        let t: TemporalVector = "E:F/RL:OF/RC:C".parse().unwrap();
        assert_eq!(t.temporal_score(&base), 6.4);
    }

    #[test]
    fn patch_release_lowers_score() {
        let before: TemporalVector = "E:H/RL:U/RC:C".parse().unwrap();
        let after: TemporalVector = "E:H/RL:OF/RC:C".parse().unwrap();
        assert!(after.temporal_score(&base10()) < before.temporal_score(&base10()));
        assert_eq!(before.temporal_score(&base10()), 10.0);
        assert_eq!(after.temporal_score(&base10()), 8.7);
    }

    #[test]
    fn exploit_maturation_raises_score() {
        let young: TemporalVector = "E:U/RL:OF/RC:UC".parse().unwrap();
        let mature: TemporalVector = "E:H/RL:OF/RC:C".parse().unwrap();
        assert!(mature.temporal_score(&base10()) > young.temporal_score(&base10()));
    }

    #[test]
    fn multiplier_bounds() {
        let min: TemporalVector = "E:U/RL:OF/RC:UC".parse().unwrap();
        assert!((min.multiplier() - 0.85 * 0.87 * 0.9).abs() < 1e-12);
        let max: TemporalVector = "E:H/RL:U/RC:C".parse().unwrap();
        assert_eq!(max.multiplier(), 1.0);
    }

    #[test]
    fn roundtrip_and_partial_vectors() {
        let t: TemporalVector = "E:POC/RL:W/RC:UR".parse().unwrap();
        assert_eq!(t.to_string(), "E:POC/RL:W/RC:UR");
        let partial: TemporalVector = "RL:OF".parse().unwrap();
        assert_eq!(partial.exploitability, Exploitability::NotDefined);
        assert_eq!(partial.remediation_level, RemediationLevel::OfficialFix);
    }

    #[test]
    fn rejects_bad_input() {
        assert!("E:X".parse::<TemporalVector>().is_err());
        assert!("Q:U".parse::<TemporalVector>().is_err());
        assert!("E:U/E:H".parse::<TemporalVector>().is_err());
        assert!("EU".parse::<TemporalVector>().is_err());
    }

    #[test]
    fn temporal_severity_band() {
        let base = base10();
        let t: TemporalVector = "E:U/RL:OF/RC:UC".parse().unwrap();
        // 10.0 * 0.66555 = 6.7 -> Medium.
        assert_eq!(t.temporal_score(&base), 6.7);
        assert_eq!(t.temporal_severity(&base), Severity::Medium);
    }
}
