//! CVSS (Common Vulnerability Scoring System) vector parsing and scoring.
//!
//! This crate implements the CVSS **v2.0** base-metric equations (the scoring
//! system used by the DSN 2017 paper this workspace reproduces) and, for
//! completeness, the CVSS **v3.0/3.1** base equations. It has no
//! dependencies and performs no I/O.
//!
//! The paper derives two per-vulnerability quantities from CVSS v2:
//!
//! * **attack impact** = the v2 *impact subscore* (0.0–10.0), and
//! * **attack success probability** = the v2 *exploitability subscore*
//!   divided by 10 (0.0–1.0),
//!
//! and classifies a vulnerability as *critical* when its base score exceeds
//! 8.0 — these are exactly the AIM/ASP columns of the paper's Table I and
//! the criterion selecting the Table II patch round. Those helpers live on
//! [`v2::BaseVector`]
//! ([`attack_impact`](v2::BaseVector::attack_impact),
//! [`attack_success_probability`](v2::BaseVector::attack_success_probability),
//! [`is_critical`](v2::BaseVector::is_critical)).
//!
//! # Examples
//!
//! ```
//! use redeval_cvss::v2::BaseVector;
//!
//! # fn main() -> Result<(), redeval_cvss::ParseVectorError> {
//! // CVE-2016-6662-style: network, low complexity, no auth, complete C/I/A.
//! let v: BaseVector = "AV:N/AC:L/Au:N/C:C/I:C/A:C".parse()?;
//! assert_eq!(v.base_score(), 10.0);
//! assert_eq!(v.attack_impact(), 10.0);
//! assert_eq!(v.attack_success_probability(), 1.0);
//! assert!(v.is_critical(8.0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod severity;
pub mod v2;
pub mod v2_environmental;
pub mod v2_temporal;
pub mod v3;

pub use error::ParseVectorError;
pub use severity::Severity;
