//! CVSS v2.0 base metrics and scoring equations.
//!
//! Implements the base-metric group of the CVSS v2.0 specification:
//! access vector (AV), access complexity (AC), authentication (Au) and the
//! three impact metrics C/I/A, together with the impact, exploitability and
//! base-score equations.

use std::fmt;
use std::str::FromStr;

use crate::{ParseVectorError, Severity};

/// How the vulnerability is accessed (AV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessVector {
    /// `AV:L` — local access required.
    Local,
    /// `AV:A` — adjacent network.
    AdjacentNetwork,
    /// `AV:N` — remotely exploitable.
    Network,
}

impl AccessVector {
    /// Numerical weight from the v2 specification.
    pub fn weight(self) -> f64 {
        match self {
            AccessVector::Local => 0.395,
            AccessVector::AdjacentNetwork => 0.646,
            AccessVector::Network => 1.0,
        }
    }

    /// Canonical vector token, e.g. `"N"`.
    pub fn token(self) -> &'static str {
        match self {
            AccessVector::Local => "L",
            AccessVector::AdjacentNetwork => "A",
            AccessVector::Network => "N",
        }
    }
}

/// Complexity of the attack required once access is obtained (AC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessComplexity {
    /// `AC:H` — specialized conditions exist.
    High,
    /// `AC:M` — somewhat specialized conditions.
    Medium,
    /// `AC:L` — no specialized conditions.
    Low,
}

impl AccessComplexity {
    /// Numerical weight from the v2 specification.
    pub fn weight(self) -> f64 {
        match self {
            AccessComplexity::High => 0.35,
            AccessComplexity::Medium => 0.61,
            AccessComplexity::Low => 0.71,
        }
    }

    /// Canonical vector token, e.g. `"L"`.
    pub fn token(self) -> &'static str {
        match self {
            AccessComplexity::High => "H",
            AccessComplexity::Medium => "M",
            AccessComplexity::Low => "L",
        }
    }
}

/// Number of times an attacker must authenticate (Au).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Authentication {
    /// `Au:M` — two or more instances of authentication.
    Multiple,
    /// `Au:S` — one instance of authentication.
    Single,
    /// `Au:N` — no authentication required.
    None,
}

impl Authentication {
    /// Numerical weight from the v2 specification.
    pub fn weight(self) -> f64 {
        match self {
            Authentication::Multiple => 0.45,
            Authentication::Single => 0.56,
            Authentication::None => 0.704,
        }
    }

    /// Canonical vector token, e.g. `"N"`.
    pub fn token(self) -> &'static str {
        match self {
            Authentication::Multiple => "M",
            Authentication::Single => "S",
            Authentication::None => "N",
        }
    }
}

/// Degree of loss for one of the C/I/A impact metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Impact {
    /// `:N` — no impact.
    None,
    /// `:P` — partial impact.
    Partial,
    /// `:C` — complete impact.
    Complete,
}

impl Impact {
    /// Numerical weight from the v2 specification.
    pub fn weight(self) -> f64 {
        match self {
            Impact::None => 0.0,
            Impact::Partial => 0.275,
            Impact::Complete => 0.660,
        }
    }

    /// Canonical vector token, e.g. `"C"`.
    pub fn token(self) -> &'static str {
        match self {
            Impact::None => "N",
            Impact::Partial => "P",
            Impact::Complete => "C",
        }
    }
}

/// A complete CVSS v2.0 base vector.
///
/// Construct directly, with [`BaseVector::new`], or by parsing the canonical
/// `AV:_/AC:_/Au:_/C:_/I:_/A:_` form (an optional `CVSS2#` or `(`/`)`
/// NVD-style wrapping is tolerated).
///
/// # Examples
///
/// ```
/// use redeval_cvss::v2::BaseVector;
///
/// # fn main() -> Result<(), redeval_cvss::ParseVectorError> {
/// let v: BaseVector = "AV:N/AC:M/Au:N/C:C/I:C/A:C".parse()?;
/// assert_eq!(v.base_score(), 9.3);
/// assert_eq!(v.exploitability_subscore(), 8.6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BaseVector {
    /// Access vector (AV).
    pub access_vector: AccessVector,
    /// Access complexity (AC).
    pub access_complexity: AccessComplexity,
    /// Authentication (Au).
    pub authentication: Authentication,
    /// Confidentiality impact (C).
    pub confidentiality: Impact,
    /// Integrity impact (I).
    pub integrity: Impact,
    /// Availability impact (A).
    pub availability: Impact,
}

/// Rounds to one decimal, as all CVSS v2 scores are reported.
fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}

impl BaseVector {
    /// Creates a base vector from its six metrics.
    pub fn new(
        access_vector: AccessVector,
        access_complexity: AccessComplexity,
        authentication: Authentication,
        confidentiality: Impact,
        integrity: Impact,
        availability: Impact,
    ) -> Self {
        BaseVector {
            access_vector,
            access_complexity,
            authentication,
            confidentiality,
            integrity,
            availability,
        }
    }

    /// The raw (unrounded) impact subscore:
    /// `10.41 * (1 - (1-C)(1-I)(1-A))`.
    pub fn impact_subscore_raw(&self) -> f64 {
        10.41
            * (1.0
                - (1.0 - self.confidentiality.weight())
                    * (1.0 - self.integrity.weight())
                    * (1.0 - self.availability.weight()))
    }

    /// The impact subscore rounded to one decimal (0.0–10.0).
    ///
    /// This is the paper's **attack impact** value (Table I).
    pub fn impact_subscore(&self) -> f64 {
        round1(self.impact_subscore_raw().min(10.0))
    }

    /// The raw (unrounded) exploitability subscore:
    /// `20 * AV * AC * Au`.
    pub fn exploitability_subscore_raw(&self) -> f64 {
        20.0 * self.access_vector.weight()
            * self.access_complexity.weight()
            * self.authentication.weight()
    }

    /// The exploitability subscore rounded to one decimal (0.0–10.0).
    pub fn exploitability_subscore(&self) -> f64 {
        round1(self.exploitability_subscore_raw().min(10.0))
    }

    /// The `f(impact)` factor of the base equation: 0 when the impact
    /// subscore is 0, otherwise 1.176.
    pub fn f_impact(&self) -> f64 {
        if self.impact_subscore_raw() == 0.0 {
            0.0
        } else {
            1.176
        }
    }

    /// The CVSS v2 base score, rounded to one decimal.
    ///
    /// `((0.6*Impact) + (0.4*Exploitability) - 1.5) * f(Impact)`.
    pub fn base_score(&self) -> f64 {
        let impact = self.impact_subscore_raw().min(10.0);
        let expl = self.exploitability_subscore_raw().min(10.0);
        round1(((0.6 * impact) + (0.4 * expl) - 1.5) * self.f_impact()).clamp(0.0, 10.0)
    }

    /// Qualitative severity of [`base_score`](Self::base_score).
    pub fn severity(&self) -> Severity {
        Severity::from_score(self.base_score())
    }

    /// The paper's *attack impact* value: the impact subscore.
    pub fn attack_impact(&self) -> f64 {
        self.impact_subscore()
    }

    /// The paper's *attack success probability*: exploitability / 10.
    ///
    /// Always within `0.0..=1.0`.
    pub fn attack_success_probability(&self) -> f64 {
        self.exploitability_subscore() / 10.0
    }

    /// Whether the paper would classify this vulnerability as *critical*,
    /// i.e. whether the base score strictly exceeds `threshold`
    /// (the paper uses 8.0).
    pub fn is_critical(&self, threshold: f64) -> bool {
        self.base_score() > threshold
    }

    /// The canonical vector string, e.g. `"AV:N/AC:L/Au:N/C:C/I:C/A:C"`.
    pub fn to_vector_string(&self) -> String {
        format!(
            "AV:{}/AC:{}/Au:{}/C:{}/I:{}/A:{}",
            self.access_vector.token(),
            self.access_complexity.token(),
            self.authentication.token(),
            self.confidentiality.token(),
            self.integrity.token(),
            self.availability.token()
        )
    }
}

impl fmt::Display for BaseVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_vector_string())
    }
}

impl FromStr for BaseVector {
    type Err = ParseVectorError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let s = s.strip_prefix("CVSS2#").unwrap_or(s);
        let s = s.strip_prefix('(').unwrap_or(s);
        let s = s.strip_suffix(')').unwrap_or(s);
        if let Some(rest) = s.strip_prefix("CVSS:") {
            return Err(ParseVectorError::VersionMismatch {
                found: format!("CVSS:{}", rest.split('/').next().unwrap_or("")),
            });
        }

        let mut av = None;
        let mut ac = None;
        let mut au = None;
        let mut c = None;
        let mut i = None;
        let mut a = None;

        for comp in s.split('/') {
            let (key, value) =
                comp.split_once(':')
                    .ok_or_else(|| ParseVectorError::MalformedComponent {
                        component: comp.to_string(),
                    })?;
            let invalid = || ParseVectorError::InvalidValue {
                key: key.to_string(),
                value: value.to_string(),
            };
            let dup = || ParseVectorError::DuplicateMetric {
                key: key.to_string(),
            };
            match key {
                "AV" => {
                    let v = match value {
                        "L" => AccessVector::Local,
                        "A" => AccessVector::AdjacentNetwork,
                        "N" => AccessVector::Network,
                        _ => return Err(invalid()),
                    };
                    if av.replace(v).is_some() {
                        return Err(dup());
                    }
                }
                "AC" => {
                    let v = match value {
                        "H" => AccessComplexity::High,
                        "M" => AccessComplexity::Medium,
                        "L" => AccessComplexity::Low,
                        _ => return Err(invalid()),
                    };
                    if ac.replace(v).is_some() {
                        return Err(dup());
                    }
                }
                "Au" => {
                    let v = match value {
                        "M" => Authentication::Multiple,
                        "S" => Authentication::Single,
                        "N" => Authentication::None,
                        _ => return Err(invalid()),
                    };
                    if au.replace(v).is_some() {
                        return Err(dup());
                    }
                }
                "C" | "I" | "A" => {
                    let v = match value {
                        "N" => Impact::None,
                        "P" => Impact::Partial,
                        "C" => Impact::Complete,
                        _ => return Err(invalid()),
                    };
                    let slot = match key {
                        "C" => &mut c,
                        "I" => &mut i,
                        _ => &mut a,
                    };
                    if slot.replace(v).is_some() {
                        return Err(dup());
                    }
                }
                _ => {
                    return Err(ParseVectorError::UnknownMetric {
                        key: key.to_string(),
                    })
                }
            }
        }

        Ok(BaseVector {
            access_vector: av.ok_or(ParseVectorError::MissingMetric { key: "AV" })?,
            access_complexity: ac.ok_or(ParseVectorError::MissingMetric { key: "AC" })?,
            authentication: au.ok_or(ParseVectorError::MissingMetric { key: "Au" })?,
            confidentiality: c.ok_or(ParseVectorError::MissingMetric { key: "C" })?,
            integrity: i.ok_or(ParseVectorError::MissingMetric { key: "I" })?,
            availability: a.ok_or(ParseVectorError::MissingMetric { key: "A" })?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> BaseVector {
        s.parse().expect("valid vector")
    }

    #[test]
    fn spec_example_cve_2002_0392() {
        // The canonical v2 spec example: AV:N/AC:L/Au:N/C:N/I:N/A:C -> 7.8.
        let v = parse("AV:N/AC:L/Au:N/C:N/I:N/A:C");
        assert_eq!(v.base_score(), 7.8);
        assert_eq!(v.impact_subscore(), 6.9);
        assert_eq!(v.exploitability_subscore(), 10.0);
    }

    #[test]
    fn spec_example_cve_2003_0818() {
        // AV:N/AC:L/Au:N/C:C/I:C/A:C -> 10.0.
        let v = parse("AV:N/AC:L/Au:N/C:C/I:C/A:C");
        assert_eq!(v.base_score(), 10.0);
        assert_eq!(v.impact_subscore(), 10.0);
        assert_eq!(v.exploitability_subscore(), 10.0);
        assert_eq!(v.severity(), Severity::Critical);
    }

    #[test]
    fn spec_example_cve_2003_0062() {
        // AV:L/AC:H/Au:N/C:C/I:C/A:C -> 6.2.
        let v = parse("AV:L/AC:H/Au:N/C:C/I:C/A:C");
        assert_eq!(v.base_score(), 6.2);
        assert_eq!(v.exploitability_subscore(), 1.9);
    }

    #[test]
    fn zero_impact_scores_zero() {
        let v = parse("AV:N/AC:L/Au:N/C:N/I:N/A:N");
        assert_eq!(v.impact_subscore(), 0.0);
        assert_eq!(v.base_score(), 0.0);
        assert_eq!(v.severity(), Severity::None);
        assert_eq!(v.f_impact(), 0.0);
    }

    #[test]
    fn paper_probability_values() {
        // Table I probability 1.0 = AV:N/AC:L/Au:N.
        let remote = parse("AV:N/AC:L/Au:N/C:C/I:C/A:C");
        assert_eq!(remote.attack_success_probability(), 1.0);
        // Table I probability 0.39 = AV:L/AC:L/Au:N (local kernel vulns).
        let local = parse("AV:L/AC:L/Au:N/C:C/I:C/A:C");
        assert_eq!(local.attack_success_probability(), 0.39);
        // Table I probability 0.86 = AV:N/AC:M/Au:N (CVE-2015-3152).
        let medium = parse("AV:N/AC:M/Au:N/C:P/I:N/A:N");
        assert_eq!(medium.attack_success_probability(), 0.86);
    }

    #[test]
    fn paper_impact_values() {
        assert_eq!(parse("AV:N/AC:L/Au:N/C:C/I:C/A:C").attack_impact(), 10.0);
        assert_eq!(parse("AV:N/AC:L/Au:N/C:P/I:P/A:P").attack_impact(), 6.4);
        assert_eq!(parse("AV:N/AC:L/Au:N/C:P/I:N/A:N").attack_impact(), 2.9);
    }

    #[test]
    fn criticality_threshold_is_strict() {
        let v = parse("AV:N/AC:L/Au:N/C:C/I:C/A:C"); // 10.0
        assert!(v.is_critical(8.0));
        let w = parse("AV:L/AC:L/Au:N/C:C/I:C/A:C"); // 7.2
        assert!(!w.is_critical(8.0));
        assert!(!v.is_critical(10.0)); // strict comparison
    }

    #[test]
    fn roundtrip_display_parse() {
        let v = parse("AV:A/AC:M/Au:S/C:P/I:C/A:N");
        let s = v.to_string();
        assert_eq!(s, "AV:A/AC:M/Au:S/C:P/I:C/A:N");
        assert_eq!(parse(&s), v);
    }

    #[test]
    fn tolerates_nvd_wrapping() {
        assert_eq!(
            parse("(AV:N/AC:L/Au:N/C:C/I:C/A:C)"),
            parse("AV:N/AC:L/Au:N/C:C/I:C/A:C")
        );
        assert_eq!(
            parse("CVSS2#AV:N/AC:L/Au:N/C:C/I:C/A:C"),
            parse("AV:N/AC:L/Au:N/C:C/I:C/A:C")
        );
    }

    #[test]
    fn rejects_missing_metric() {
        let err = "AV:N/AC:L/Au:N/C:C/I:C".parse::<BaseVector>().unwrap_err();
        assert_eq!(err, ParseVectorError::MissingMetric { key: "A" });
    }

    #[test]
    fn rejects_duplicate_metric() {
        let err = "AV:N/AV:L/AC:L/Au:N/C:C/I:C/A:C"
            .parse::<BaseVector>()
            .unwrap_err();
        assert_eq!(err, ParseVectorError::DuplicateMetric { key: "AV".into() });
    }

    #[test]
    fn rejects_unknown_metric() {
        let err = "AV:N/AC:L/Au:N/C:C/I:C/A:C/XX:Y"
            .parse::<BaseVector>()
            .unwrap_err();
        assert_eq!(err, ParseVectorError::UnknownMetric { key: "XX".into() });
    }

    #[test]
    fn rejects_invalid_value() {
        let err = "AV:Q/AC:L/Au:N/C:C/I:C/A:C"
            .parse::<BaseVector>()
            .unwrap_err();
        assert_eq!(
            err,
            ParseVectorError::InvalidValue {
                key: "AV".into(),
                value: "Q".into()
            }
        );
    }

    #[test]
    fn rejects_v3_prefix() {
        let err = "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"
            .parse::<BaseVector>()
            .unwrap_err();
        assert!(matches!(err, ParseVectorError::VersionMismatch { .. }));
    }

    #[test]
    fn rejects_component_without_colon() {
        let err = "AVN/AC:L/Au:N/C:C/I:C/A:C"
            .parse::<BaseVector>()
            .unwrap_err();
        assert!(matches!(err, ParseVectorError::MalformedComponent { .. }));
    }
}
