//! Property-based tests for the CVSS scoring equations.

use proptest::prelude::*;
use redeval_cvss::v2::{AccessComplexity, AccessVector, Authentication, BaseVector, Impact};
use redeval_cvss::{v3, Severity};

fn any_v2() -> impl Strategy<Value = BaseVector> {
    (
        prop_oneof![
            Just(AccessVector::Local),
            Just(AccessVector::AdjacentNetwork),
            Just(AccessVector::Network)
        ],
        prop_oneof![
            Just(AccessComplexity::High),
            Just(AccessComplexity::Medium),
            Just(AccessComplexity::Low)
        ],
        prop_oneof![
            Just(Authentication::Multiple),
            Just(Authentication::Single),
            Just(Authentication::None)
        ],
        any_impact(),
        any_impact(),
        any_impact(),
    )
        .prop_map(|(av, ac, au, c, i, a)| BaseVector::new(av, ac, au, c, i, a))
}

fn any_impact() -> impl Strategy<Value = Impact> {
    prop_oneof![
        Just(Impact::None),
        Just(Impact::Partial),
        Just(Impact::Complete)
    ]
}

fn any_v3() -> impl Strategy<Value = v3::BaseVector> {
    (
        prop_oneof![
            Just(v3::AttackVector::Network),
            Just(v3::AttackVector::Adjacent),
            Just(v3::AttackVector::Local),
            Just(v3::AttackVector::Physical)
        ],
        prop_oneof![
            Just(v3::AttackComplexity::Low),
            Just(v3::AttackComplexity::High)
        ],
        prop_oneof![
            Just(v3::PrivilegesRequired::None),
            Just(v3::PrivilegesRequired::Low),
            Just(v3::PrivilegesRequired::High)
        ],
        prop_oneof![
            Just(v3::UserInteraction::None),
            Just(v3::UserInteraction::Required)
        ],
        prop_oneof![Just(v3::Scope::Unchanged), Just(v3::Scope::Changed)],
        any_v3_impact(),
        any_v3_impact(),
        any_v3_impact(),
    )
        .prop_map(|(av, ac, pr, ui, s, c, i, a)| v3::BaseVector {
            attack_vector: av,
            attack_complexity: ac,
            privileges_required: pr,
            user_interaction: ui,
            scope: s,
            confidentiality: c,
            integrity: i,
            availability: a,
        })
}

fn any_v3_impact() -> impl Strategy<Value = v3::ImpactMetric> {
    prop_oneof![
        Just(v3::ImpactMetric::None),
        Just(v3::ImpactMetric::Low),
        Just(v3::ImpactMetric::High)
    ]
}

proptest! {
    #[test]
    fn v2_roundtrip(v in any_v2()) {
        let s = v.to_vector_string();
        let parsed: BaseVector = s.parse().unwrap();
        prop_assert_eq!(parsed, v);
    }

    #[test]
    fn v2_scores_in_range(v in any_v2()) {
        prop_assert!((0.0..=10.0).contains(&v.base_score()));
        prop_assert!((0.0..=10.0).contains(&v.impact_subscore()));
        prop_assert!((0.0..=10.0).contains(&v.exploitability_subscore()));
        prop_assert!((0.0..=1.0).contains(&v.attack_success_probability()));
    }

    #[test]
    fn v2_zero_impact_means_zero_base(v in any_v2()) {
        if v.confidentiality == Impact::None
            && v.integrity == Impact::None
            && v.availability == Impact::None
        {
            prop_assert_eq!(v.base_score(), 0.0);
            prop_assert_eq!(v.severity(), Severity::None);
        } else {
            prop_assert!(v.impact_subscore() > 0.0);
        }
    }

    #[test]
    fn v2_monotone_in_access_vector(v in any_v2()) {
        // Widening the access vector never lowers the score.
        let mut wider = v;
        wider.access_vector = AccessVector::Network;
        prop_assert!(wider.base_score() >= v.base_score() - 1e-9);
    }

    #[test]
    fn v3_roundtrip(v in any_v3()) {
        let parsed: v3::BaseVector = v.to_vector_string().parse().unwrap();
        prop_assert_eq!(parsed, v);
    }

    #[test]
    fn v3_scores_in_range(v in any_v3()) {
        prop_assert!((0.0..=10.0).contains(&v.base_score()));
    }

    #[test]
    fn severity_band_monotone(a in 0.0f64..10.0, b in 0.0f64..10.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Severity::from_score(lo) <= Severity::from_score(hi));
    }
}
