//! Regenerates the paper's **Equation (3) and (4) region analyses** and
//! exits non-zero if any region membership deviates from the paper — the
//! workspace's headline-result check. Thin shim over
//! `redeval_bench::reports::studies::regions` (equivalently:
//! `redeval regions`).

fn main() {
    redeval_bench::cli::shim("regions");
}
