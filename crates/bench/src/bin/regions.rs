//! Regenerates the paper's **Equation (3) and (4) region analyses** in one
//! report and exits non-zero if any region membership deviates from the
//! paper — the workspace's headline-result check.

use redeval::case_study;
use redeval::decision::{MultiBounds, ScatterBounds};
use redeval::exec::Sweep;
use redeval_bench::{design_row, header};

fn main() {
    // The five designs share one spec and patch policy: the sweep engine
    // solves each tier once and evaluates the designs on the worker pool.
    let evals = Sweep::new(case_study::network())
        .designs(case_study::five_designs())
        .run()
        .expect("designs evaluate");

    header("five designs after patch");
    for e in &evals {
        println!("{}", design_row(e));
    }

    let mut all_ok = true;
    let mut check = |label: &str, region: Vec<&str>, expect: &[&str]| {
        let ok = region == expect;
        all_ok &= ok;
        println!("{label}: {}", if ok { "MATCH" } else { "MISMATCH" });
        for r in &region {
            println!("    {r}");
        }
    };

    header("Equation (3) — ASP/COA bounds");
    let r1 = ScatterBounds {
        max_asp: 0.2,
        min_coa: 0.9962,
    };
    check(
        "region 1 (φ=0.2, ψ=0.9962)",
        r1.region(&evals).iter().map(|e| e.name.as_str()).collect(),
        &[
            "1 DNS + 1 WEB + 2 APP + 1 DB",
            "1 DNS + 1 WEB + 1 APP + 2 DB",
        ],
    );
    let r2 = ScatterBounds {
        max_asp: 0.1,
        min_coa: 0.9961,
    };
    check(
        "region 2 (φ=0.1, ψ=0.9961)",
        r2.region(&evals).iter().map(|e| e.name.as_str()).collect(),
        &["2 DNS + 1 WEB + 1 APP + 1 DB"],
    );

    header("Equation (4) — multi-metric bounds");
    let m1 = MultiBounds {
        max_asp: 0.2,
        max_noev: 9,
        max_noap: 2,
        max_noep: 1,
        min_coa: 0.9962,
    };
    check(
        "region 1 (φ=0.2, ξ=9, ω=2, κ=1, ψ=0.9962)",
        m1.region(&evals).iter().map(|e| e.name.as_str()).collect(),
        &["1 DNS + 1 WEB + 2 APP + 1 DB"],
    );
    let m2 = MultiBounds {
        max_asp: 0.1,
        max_noev: 7,
        max_noap: 1,
        max_noep: 1,
        min_coa: 0.9961,
    };
    check(
        "region 2 (φ=0.1, ξ=7, ω=1, κ=1, ψ=0.9961)",
        m2.region(&evals).iter().map(|e| e.name.as_str()).collect(),
        &["2 DNS + 1 WEB + 1 APP + 1 DB"],
    );

    println!();
    if all_ok {
        println!("all four regions match the paper.");
    } else {
        println!("REGION MISMATCH — see above.");
        std::process::exit(1);
    }
}
