//! Extension (paper §V "SRN models"): partial patch scenarios — not every
//! monthly round patches both the application and the OS, and not every
//! patch needs a reboot. Reports per-tier MTTR and network COA for each
//! scenario.

use redeval::case_study;
use redeval_avail::{NetworkModel, PatchScenario, ServerAnalysis, Tier};
use redeval_bench::header;

fn main() {
    let spec = case_study::network();
    let scenarios = [
        PatchScenario::Full,
        PatchScenario::OsOnly,
        PatchScenario::NoReboot,
        PatchScenario::ServiceOnly,
    ];

    header("per-tier MTTR (hours) under each patch scenario");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>12}",
        "tier", "Full", "OsOnly", "NoReboot", "ServiceOnly"
    );
    for tier in spec.tiers() {
        let mut row = format!("{:<14}", tier.name);
        for s in scenarios {
            let a = ServerAnalysis::of_scenario(&tier.params, s).expect("model solves");
            row.push_str(&format!(" {:>10.4}", a.rates().mttr()));
        }
        println!("{row}");
    }

    header("network COA (1 DNS + 2 WEB + 2 APP + 1 DB) per scenario");
    for s in scenarios {
        let tiers: Vec<Tier> = spec
            .tiers()
            .iter()
            .map(|t| {
                let a = ServerAnalysis::of_scenario(&t.params, s).expect("model solves");
                Tier::new(t.name.clone(), t.count, a.rates())
            })
            .collect();
        let coa = NetworkModel::new(tiers).coa().expect("product form solves");
        println!(
            "{:<14} COA {:.5}   capacity loss {:>6.2} h/month",
            format!("{s:?}"),
            coa,
            (1.0 - coa) * 720.0
        );
    }
    println!();
    println!("lighter patch rounds (no OS patch, no reboot) recover most of the");
    println!("capacity lost to the full monthly cycle — quantifying the value of");
    println!("reboot-less patching the paper lists as future work.");
}
