//! Extension (paper §V "SRN models"): partial patch scenarios — not every
//! monthly round patches both the application and the OS, and not every
//! patch needs a reboot. Reports per-tier MTTR and network COA for each
//! scenario.
//!
//! The (tier × scenario) solve grid runs once on the batch worker pool
//! ([`redeval::exec::run_batch`]); both report sections reuse it.

use redeval::case_study;
use redeval::exec::{default_threads, run_batch};
use redeval_avail::{NetworkModel, PatchScenario, ServerAnalysis, Tier};
use redeval_bench::header;

fn main() {
    let spec = case_study::network();
    let scenarios = [
        PatchScenario::Full,
        PatchScenario::OsOnly,
        PatchScenario::NoReboot,
        PatchScenario::ServiceOnly,
    ];

    // One lower-layer solve per (tier, scenario), in parallel; results
    // come back in grid order (tier-major).
    let tiers = spec.tiers();
    let analyses: Vec<ServerAnalysis> =
        run_batch(tiers.len() * scenarios.len(), default_threads(), |job| {
            let (tier, scenario) = (
                &tiers[job / scenarios.len()],
                scenarios[job % scenarios.len()],
            );
            ServerAnalysis::of_scenario(&tier.params, scenario).expect("model solves")
        });
    let analysis = |ti: usize, si: usize| &analyses[ti * scenarios.len() + si];

    header("per-tier MTTR (hours) under each patch scenario");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>12}",
        "tier", "Full", "OsOnly", "NoReboot", "ServiceOnly"
    );
    for (ti, tier) in tiers.iter().enumerate() {
        let mut row = format!("{:<14}", tier.name);
        for si in 0..scenarios.len() {
            row.push_str(&format!(" {:>10.4}", analysis(ti, si).rates().mttr()));
        }
        println!("{row}");
    }

    header("network COA (1 DNS + 2 WEB + 2 APP + 1 DB) per scenario");
    for (si, s) in scenarios.iter().enumerate() {
        let model_tiers: Vec<Tier> = tiers
            .iter()
            .enumerate()
            .map(|(ti, t)| Tier::new(t.name.clone(), t.count, analysis(ti, si).rates()))
            .collect();
        let coa = NetworkModel::new(model_tiers)
            .coa()
            .expect("product form solves");
        println!(
            "{:<14} COA {:.5}   capacity loss {:>6.2} h/month",
            format!("{s:?}"),
            coa,
            (1.0 - coa) * 720.0
        );
    }
    println!();
    println!("lighter patch rounds (no OS patch, no reboot) recover most of the");
    println!("capacity lost to the full monthly cycle — quantifying the value of");
    println!("reboot-less patching the paper lists as future work.");
}
