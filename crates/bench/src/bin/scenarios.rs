//! Extension (paper §V "SRN models"): partial patch scenarios — per-tier
//! MTTR and network COA per round shape. Thin shim over
//! `redeval_bench::reports::studies::scenarios` (equivalently:
//! `redeval scenarios`).

fn main() {
    redeval_bench::cli::shim("scenarios");
}
