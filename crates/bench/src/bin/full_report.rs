//! Emits the complete markdown evaluation report for the paper's five
//! designs (pipe to a file for CI artifacts). Thin shim over
//! `redeval_bench::reports::full_report_markdown`, which renders through
//! `redeval::report::markdown_report` with the paper's region bounds.

fn main() {
    print!("{}", redeval_bench::reports::full_report_markdown());
}
