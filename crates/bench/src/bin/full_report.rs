//! Emits the complete markdown evaluation report for the paper's five
//! designs (pipe to a file for CI artifacts).

use redeval::case_study;
use redeval::decision::{MultiBounds, ScatterBounds};
use redeval::report::{markdown_report, ReportOptions};

fn main() {
    let evaluator = case_study::evaluator().expect("evaluator builds");
    let designs = case_study::five_designs();
    let options = ReportOptions {
        title: "Ge et al. (DSN 2017) — five redundancy designs under monthly critical patching"
            .into(),
        scatter_bounds: vec![
            (
                "φ=0.2, ψ=0.9962".into(),
                ScatterBounds {
                    max_asp: 0.2,
                    min_coa: 0.9962,
                },
            ),
            (
                "φ=0.1, ψ=0.9961".into(),
                ScatterBounds {
                    max_asp: 0.1,
                    min_coa: 0.9961,
                },
            ),
        ],
        multi_bounds: vec![
            (
                "φ=0.2, ξ=9, ω=2, κ=1, ψ=0.9962".into(),
                MultiBounds {
                    max_asp: 0.2,
                    max_noev: 9,
                    max_noap: 2,
                    max_noep: 1,
                    min_coa: 0.9962,
                },
            ),
            (
                "φ=0.1, ξ=7, ω=1, κ=1, ψ=0.9961".into(),
                MultiBounds {
                    max_asp: 0.1,
                    max_noev: 7,
                    max_noap: 1,
                    max_noep: 1,
                    min_coa: 0.9961,
                },
            ),
        ],
    };
    let report = markdown_report(&evaluator, &designs, &options).expect("designs evaluate");
    print!("{report}");
}
