//! Extension (paper §V "other metrics"): expected monthly operational cost
//! per design — server spend vs. capacity-loss vs. expected breach loss.

use redeval::case_study;
use redeval::cost::CostModel;
use redeval_bench::header;

fn main() {
    let evaluator = case_study::evaluator().expect("evaluator builds");
    let designs = case_study::five_designs();
    let evals = evaluator.evaluate_all(&designs).expect("designs evaluate");

    let model = CostModel::default();
    header("expected monthly cost per design (currency units)");
    println!(
        "server/month {}  downtime/hour {}  breach {}",
        model.server_month, model.downtime_hour, model.breach
    );
    println!();
    println!(
        "{:<32} {:>9} {:>10} {:>9} {:>10}",
        "design", "servers", "downtime", "breach", "total"
    );
    for e in &evals {
        let b = model.evaluate(e);
        println!(
            "{:<32} {:>9.0} {:>10.1} {:>9.0} {:>10.1}",
            e.name,
            b.servers,
            b.downtime,
            b.breach,
            b.total()
        );
    }
    if let Some((best, b)) = model.cheapest(&evals) {
        println!();
        println!("cheapest: {} (total {:.1})", best.name, b.total());
    }

    header("sensitivity: breach cost sweep");
    println!("{:>12}  cheapest design", "breach cost");
    for breach in [0.0, 10_000.0, 100_000.0, 1_000_000.0, 10_000_000.0] {
        let m = CostModel { breach, ..model };
        if let Some((best, _)) = m.cheapest(&evals) {
            println!("{breach:>12.0}  {}", best.name);
        }
    }
    println!();
    println!("as breach cost dominates, the low-attack-surface designs win;");
    println!("as downtime dominates, the high-COA designs win.");
}
