//! Extension (paper §V "other metrics"): expected monthly operational
//! cost per design. Thin shim over
//! `redeval_bench::reports::studies::cost` (equivalently: `redeval cost`).

fn main() {
    redeval_bench::cli::shim("cost");
}
