//! Extension: greedy patch prioritization — when the maintenance window
//! only allows a few patches, which vulnerabilities go first? Thin shim
//! over `redeval_bench::reports::studies::patch_priority` (equivalently:
//! `redeval patch-priority`).

fn main() {
    redeval_bench::cli::shim("patch_priority");
}
