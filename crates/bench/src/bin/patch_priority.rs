//! Extension: greedy patch prioritization — when the maintenance window
//! only allows a few patches, which vulnerabilities should go first?

use redeval::case_study;
use redeval::exec::Sweep;
use redeval::MetricsConfig;
use redeval_bench::header;

fn main() {
    let harm = case_study::network().build_harm();
    let cfg = MetricsConfig::default();

    header("vulnerability importance (ΔASP when patched fleet-wide)");
    let base = harm.metrics(&cfg).attack_success_probability;
    println!("unpatched network ASP = {base:.4}");
    println!();
    println!("{:<28} {:>10}", "vulnerability", "ΔASP");
    for (id, delta) in harm.vulnerability_importance(&cfg).iter().take(10) {
        println!("{id:<28} {delta:>10.4}");
    }

    header("greedy patch schedule (budget 8)");
    println!("{:<6} {:<28} {:>12}", "step", "patch", "ASP after");
    for (i, (id, asp)) in harm.greedy_patch_order(&cfg, 8).iter().enumerate() {
        println!("{:<6} {:<28} {:>12.4}", i + 1, id, asp);
    }
    println!();
    let order = harm.greedy_patch_order(&cfg, 32);
    let blanket = harm
        .patched_critical(8.0)
        .metrics(&cfg)
        .attack_success_probability;
    println!(
        "the paper's blanket critical-only policy applies 9 patches and \
         leaves ASP {blanket:.4};"
    );
    println!(
        "the greedy schedule closes every attack path (ASP 0) after {} \
         targeted patches.",
        order.len()
    );
    println!();
    println!("note the plateau: with several independent certain-success");
    println!("vulnerabilities per host, single patches have zero marginal ΔASP");
    println!("until a host's last remote-root option is removed — a property");
    println!("of saturated noisy-or metrics the schedule makes visible.");

    header("blanket policy across the five designs (batch sweep)");
    let evals = Sweep::new(case_study::network())
        .designs(case_study::five_designs())
        .run()
        .expect("designs evaluate");
    println!("{:<32} {:>10} {:>10}", "design", "ASP before", "ASP after");
    for e in &evals {
        println!(
            "{:<32} {:>10.4} {:>10.4}",
            e.name, e.before.attack_success_probability, e.after.attack_success_probability
        );
    }
    println!();
    println!("every redundant replica multiplies the paths the blanket policy");
    println!("leaves open — the more redundancy a design carries, the more a");
    println!("targeted (greedy) schedule matters.");
}
