//! Cross-validation report: every analytic quantity with a simulation
//! counterpart, side by side (availability, COA, ASP).

use redeval::case_study;
use redeval::{AspStrategy, MetricsConfig};
use redeval_avail::ServerModel;
use redeval_bench::{compare, header};
use redeval_sim::{estimate_asp, simulate_coa, Simulation};

fn main() {
    let spec = case_study::network();
    let analyses = spec.tier_analyses().expect("server models solve");

    header("server availability: SRN steady state vs discrete-event simulation");
    for (tier, analysis) in spec.tiers().iter().zip(&analyses) {
        let model = ServerModel::build(&tier.params);
        let places = *model.places();
        let mut sim = Simulation::new(model.net(), 1_234_567);
        sim.add_reward(
            "avail",
            move |m| {
                if places.service_up(m) {
                    1.0
                } else {
                    0.0
                }
            },
        );
        let out = sim.run(2_000.0, 600_000.0, 20).expect("simulation runs");
        compare(
            &format!("{} availability", tier.name),
            analysis.availability(),
            out.rewards[0].mean,
        );
    }

    header("network COA: product form vs simulation");
    let model = spec.network_model(&analyses);
    let analytic = model.coa().expect("product form solves");
    let est = simulate_coa(&model, 2_000_000.0, 31_337).expect("simulation runs");
    compare("COA", analytic, est.mean);
    println!("simulation CI half-width: {:.2e}", est.ci95);

    header("ASP after patch: exact reliability vs Monte-Carlo attacks");
    let harm = spec.build_harm().patched_critical(8.0);
    let exact = harm
        .metrics(&MetricsConfig {
            asp: AspStrategy::Reliability,
            ..Default::default()
        })
        .attack_success_probability;
    let mc = estimate_asp(&harm, 500_000, 2_718);
    compare("ASP (after patch)", exact, mc.mean);
    println!("Monte-Carlo CI half-width: {:.2e}", mc.ci95);

    println!();
    println!("every analytic result is reproduced by an independent simulator.");
}
