//! Cross-validation report: every analytic quantity with a simulation
//! counterpart, side by side. Thin shim over
//! `redeval_bench::reports::validate::validate_sim` (equivalently:
//! `redeval validate-sim`).

fn main() {
    redeval_bench::cli::shim("validate_sim");
}
