//! Regenerates **Table I** — vulnerability information of the example
//! network — from the embedded CVSS vectors, verifying that every
//! reconstructed vector reproduces the paper's impact/probability pair.

use redeval::case_study::{vector_consistent, VULNERABILITIES};
use redeval_bench::header;
use redeval_cvss::v2::BaseVector;

fn main() {
    header("Table I: vulnerability information of the example network");
    println!(
        "{:<8} {:<16} {:>6} {:>12} {:>6} {:>9}  vector",
        "vuln", "CVE ID", "impact", "probability", "base", "critical"
    );
    let mut all_ok = true;
    for r in &VULNERABILITIES {
        let v: BaseVector = r.vector.parse().expect("embedded vector parses");
        let ok = vector_consistent(r);
        all_ok &= ok;
        println!(
            "{:<8} {:<16} {:>6.1} {:>12.2} {:>6.1} {:>9}  {}{}",
            r.id,
            r.cve,
            v.attack_impact(),
            v.attack_success_probability(),
            v.base_score(),
            if v.is_critical(8.0) { "yes" } else { "no" },
            r.vector,
            if ok { "" } else { "  <-- MISMATCH" }
        );
    }
    println!();
    println!(
        "all vectors reproduce Table I impact/probability: {}",
        if all_ok { "yes" } else { "NO" }
    );
    println!("critical set (base > 8.0) = the nine (10.0, 1.0) vulnerabilities,");
    println!("which is exactly the set the paper patches.");
}
