//! Regenerates **Table I** — vulnerability information of the example
//! network. Thin shim over `redeval_bench::reports::tables::table1`
//! (equivalently: `redeval table 1`).

fn main() {
    redeval_bench::cli::shim("table1");
}
