//! Machine-readable perf harness for the batch execution layer.
//!
//! Times a full-design-space × patch-policy grid three ways —
//!
//! 1. **legacy**: the pre-engine shape (one [`Evaluator`] per policy,
//!    every scenario evaluated independently, one thread);
//! 2. **engine, 1 thread**: the [`Sweep`] engine with its shared solve
//!    cache and policy-group dedup, sequential;
//! 3. **engine, N threads**: the same grid on the worker pool —
//!
//! asserts all three produce identical numbers, and writes
//! `BENCH_sweep.json` (scenario count, wall-clocks, speedups, available
//! parallelism) for the bench trajectory.
//!
//! Usage: `sweep_bench [max_redundancy] [threads]` (defaults 5 and 4,
//! ≥ 500 scenarios), or `sweep_bench --smoke` for the small CI grid
//! (redundancy 2, 2 threads, written to `BENCH_sweep_smoke.json` so the
//! committed full-grid record stays intact).

use std::time::Instant;

use redeval::case_study;
use redeval::exec::Sweep;
use redeval::{DesignEvaluation, Evaluator, MetricsConfig};
use redeval_bench::{arg_or, header, threshold_policies};

/// Scenario equality up to the display label (legacy names carry no
/// policy suffix).
fn same_numbers(a: &DesignEvaluation, b: &DesignEvaluation) -> bool {
    a.counts == b.counts
        && a.before == b.before
        && a.after == b.after
        && a.coa.to_bits() == b.coa.to_bits()
        && a.availability.to_bits() == b.availability.to_bits()
        && a.expected_up.to_bits() == b.expected_up.to_bits()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (max_redundancy, threads): (u32, usize) = if smoke {
        (2, 2)
    } else {
        (arg_or(1, 5), arg_or(2, 4))
    };

    let base = case_study::network();
    let designs = base.enumerate_designs(max_redundancy);
    let policies = threshold_policies();
    let scenario_count = designs.len() * policies.len();
    header(&format!(
        "sweep bench: {} designs × {} policies = {scenario_count} scenarios, {threads} threads",
        designs.len(),
        policies.len()
    ));

    // 1. Legacy shape: one evaluator per policy, scenarios evaluated
    //    independently on one thread (what every sweep did pre-engine).
    let t0 = Instant::now();
    let mut legacy: Vec<Vec<DesignEvaluation>> = Vec::new();
    for &policy in &policies {
        let evaluator = Evaluator::with_options(base.clone(), MetricsConfig::default(), policy)
            .expect("evaluator builds");
        legacy.push(evaluator.evaluate_all(&designs).expect("designs evaluate"));
    }
    let legacy_secs = t0.elapsed().as_secs_f64();
    println!("legacy sequential        {legacy_secs:>8.2} s");

    let sweep = Sweep::new(base)
        .designs(designs.clone())
        .policies(policies.clone());

    // 2. Engine, one thread.
    let t0 = Instant::now();
    let engine_1t = sweep.clone().threads(1).run().expect("grid evaluates");
    let engine_1t_secs = t0.elapsed().as_secs_f64();
    println!("engine, 1 thread         {engine_1t_secs:>8.2} s");

    // 3. Engine, worker pool.
    let t0 = Instant::now();
    let engine_nt = sweep.threads(threads).run().expect("grid evaluates");
    let engine_nt_secs = t0.elapsed().as_secs_f64();
    println!("engine, {threads} threads        {engine_nt_secs:>8.2} s");

    // Determinism: thread count must not change a single bit.
    assert_eq!(
        engine_1t, engine_nt,
        "parallel run diverged from sequential"
    );
    // Engine vs legacy: identical numbers, grid order is design-major in
    // the engine and policy-major in the legacy loop.
    for (di, _) in designs.iter().enumerate() {
        for (pi, _) in policies.iter().enumerate() {
            assert!(
                same_numbers(&engine_nt[di * policies.len() + pi], &legacy[pi][di]),
                "engine diverged from legacy at design {di}, policy {pi}"
            );
        }
    }

    let speedup = legacy_secs / engine_nt_secs;
    let thread_scaling = engine_1t_secs / engine_nt_secs;
    let parallelism = redeval::exec::default_threads();
    println!();
    println!("speedup vs legacy        {speedup:>8.2}×");
    println!("thread scaling (1→{threads})    {thread_scaling:>8.2}× (machine exposes {parallelism} core(s))");

    let json = format!(
        "{{\n  \"bench\": \"sweep\",\n  \"designs\": {},\n  \"policies\": {},\n  \"scenarios\": {scenario_count},\n  \"max_redundancy\": {max_redundancy},\n  \"threads\": {threads},\n  \"available_parallelism\": {parallelism},\n  \"legacy_sequential_secs\": {legacy_secs:.3},\n  \"engine_1_thread_secs\": {engine_1t_secs:.3},\n  \"engine_n_threads_secs\": {engine_nt_secs:.3},\n  \"speedup\": {speedup:.2},\n  \"thread_scaling_speedup\": {thread_scaling:.2},\n  \"results_identical\": true\n}}\n",
        designs.len(),
        policies.len(),
    );
    // The smoke grid must not clobber the committed full-grid record.
    let path = if smoke {
        "BENCH_sweep_smoke.json"
    } else {
        "BENCH_sweep.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("{path} written: {e}"));
    println!();
    println!("wrote {path}");
}
