//! Regenerates **Table IV** — input parameters of the SRN sub-models for
//! the DNS server — plus the derived parameter tables for the other three
//! tiers (DESIGN.md §4.3).

use redeval::case_study;
use redeval::ServerParams;
use redeval_bench::header;

fn print_params(p: &ServerParams) {
    println!("-- {} server --", p.name);
    println!("{:<34} {:>14}", "parameter", "value");
    let rows: [(&str, String); 13] = [
        ("hardware 1/λhw (MTBF)", format!("{}", p.hw_mtbf)),
        ("hardware 1/µhw (repair)", format!("{}", p.hw_repair)),
        ("OS 1/λos (MTBF)", format!("{}", p.os_mtbf)),
        ("OS 1/µos (repair)", format!("{}", p.os_repair)),
        ("OS 1/αos (patch)", format!("{}", p.os_patch)),
        (
            "OS 1/βos (reboot after patch)",
            format!("{}", p.os_reboot_patch),
        ),
        (
            "OS 1/δos (reboot after failure)",
            format!("{}", p.os_reboot_failure),
        ),
        ("service 1/λsvc (MTBF)", format!("{}", p.svc_mtbf)),
        ("service 1/µsvc (repair)", format!("{}", p.svc_repair)),
        ("service 1/αsvc (patch)", format!("{}", p.svc_patch)),
        (
            "service 1/βsvc (reboot after patch)",
            format!("{}", p.svc_reboot_patch),
        ),
        (
            "service 1/δsvc (reboot after failure)",
            format!("{}", p.svc_reboot_failure),
        ),
        ("patch clock 1/τp", format!("{}", p.patch_interval)),
    ];
    for (k, v) in rows {
        println!("{k:<34} {v:>14}");
    }
    println!(
        "{:<34} {:>14}",
        "patch cycle (MTTR target)",
        format!("{}", p.patch_cycle())
    );
    println!();
}

fn main() {
    header("Table IV: input parameters of the SRN sub-models (DNS = exact paper row)");
    print_params(&case_study::dns_params());
    header("derived parameters for the remaining tiers (DESIGN.md §4.3)");
    print_params(&case_study::web_params());
    print_params(&case_study::app_params());
    print_params(&case_study::db_params());
}
