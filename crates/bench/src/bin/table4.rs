//! Regenerates **Table IV** — input parameters of the SRN sub-models
//! (DNS exact, other tiers derived per DESIGN.md §4.3). Thin shim over
//! `redeval_bench::reports::tables::table4` (equivalently: `redeval table 4`).

fn main() {
    redeval_bench::cli::shim("table4");
}
