//! The unified `redeval` CLI: every paper table, figure and extension
//! study behind one dispatcher with `--format text|json|csv` and
//! `--out DIR`. See `redeval --help` and `redeval_bench::cli`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(redeval_bench::cli::run(&args));
}
