//! Regenerates **Table V** — aggregated patch/recovery rates for all
//! servers — by solving each tier's lower-layer SRN and applying the
//! paper's Equations (1) and (2).

use redeval::case_study;
use redeval_bench::{compare, header};

fn main() {
    header("Table V: aggregated values for the servers");

    let spec = case_study::network();
    let analyses = spec.tier_analyses().expect("server models solve");

    println!(
        "{:<10} {:>9} {:>11} {:>9} {:>13}",
        "service", "MTTP (h)", "patch rate", "MTTR (h)", "recovery rate"
    );
    for a in &analyses {
        let r = a.rates();
        println!(
            "{:<10} {:>9.1} {:>11.5} {:>9.4} {:>13.5}",
            a.name(),
            r.mttp(),
            r.lambda_eq,
            r.mttr(),
            r.mu_eq
        );
    }

    header("paper-vs-measured (recovery rates)");
    let paper = [
        ("dns", 1.49992, 0.6667),
        ("web", 1.71420, 0.5834),
        ("app", 0.99995, 1.0001),
        ("db", 1.09085, 0.9167),
    ];
    for (a, (name, mu, mttr)) in analyses.iter().zip(paper) {
        assert_eq!(a.name(), name);
        compare(&format!("{name} µ_eq"), mu, a.rates().mu_eq);
        compare(&format!("{name} MTTR (h)"), mttr, a.rates().mttr());
    }

    header("underlying SRN steady-state probabilities (paper Section III-D2)");
    for a in &analyses {
        println!(
            "{:<10} p_svcpd {:>12.8}   p_svcprrb {:>12.8}   availability {:>10.6}   ({} tangible states)",
            a.name(),
            a.p_patch_down(),
            a.p_ready_reboot(),
            a.availability(),
            a.tangible_states()
        );
    }
    compare(
        "dns p_prrb (paper 0.00011563)",
        0.00011563,
        analyses[0].p_ready_reboot(),
    );
    compare(
        "dns p_pd   (paper 0.00092506)",
        0.00092506,
        analyses[0].p_patch_down(),
    );
}
