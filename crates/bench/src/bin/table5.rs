//! Regenerates **Table V** — aggregated patch/recovery rates for all
//! servers via the paper's Equations (1),(2). Thin shim over
//! `redeval_bench::reports::tables::table5` (equivalently: `redeval table 5`).

fn main() {
    redeval_bench::cli::shim("table5");
}
