//! Regenerates **Figure 3** — the HARMs before/after patch as attack
//! paths plus Graphviz DOT. Thin shim over
//! `redeval_bench::reports::figures::fig3` (equivalently: `redeval fig 3`).

fn main() {
    redeval_bench::cli::shim("fig3");
}
