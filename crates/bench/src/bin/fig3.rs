//! Regenerates **Figure 3** — the HARMs of the example network before and
//! after patch — as Graphviz DOT plus a textual path listing.

use redeval::case_study;
use redeval::MetricsConfig;
use redeval_bench::header;

fn main() {
    let spec = case_study::network();
    let before = spec.build_harm();
    let after = before.patched_critical(8.0);
    let cfg = MetricsConfig::default();

    header("Figure 3(a): HARM before patch — attack paths");
    let paths = before.attack_paths(&cfg).expect("few paths");
    for p in &paths {
        let names: Vec<&str> = p
            .hosts
            .iter()
            .map(|&h| before.graph().host_name(h))
            .collect();
        println!(
            "A -> {}   (aim {:.1}, asp {:.4})",
            names.join(" -> "),
            p.impact,
            p.probability
        );
    }

    header("Figure 3(b): HARM after patch — attack paths");
    let paths = after.attack_paths(&cfg).expect("few paths");
    for p in &paths {
        let names: Vec<&str> = p
            .hosts
            .iter()
            .map(|&h| after.graph().host_name(h))
            .collect();
        println!(
            "A -> {}   (aim {:.1}, asp {:.4})",
            names.join(" -> "),
            p.impact,
            p.probability
        );
    }
    println!();
    println!("(dns1 is excluded after patch: no exploitable vulnerability left)");

    header("Graphviz DOT (before patch) — render with `dot -Tsvg`");
    println!("{}", before.to_dot());
    header("Graphviz DOT (after patch)");
    println!("{}", after.to_dot());
}
