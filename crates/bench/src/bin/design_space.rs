//! Extension (paper §V "systems"): exhaustive design-space search with the
//! paper's decision functions, beyond the five hand-picked designs.
//!
//! The whole space runs through the batch execution layer
//! ([`redeval::exec::Sweep`]) on every available core.

use redeval::case_study;
use redeval::decision::ScatterBounds;
use redeval::exec::Sweep;
use redeval_bench::{arg_or, design_row, header};

fn main() {
    let max_redundancy: u32 = arg_or(1, 3);

    let sweep = Sweep::new(case_study::network()).full_design_space(max_redundancy);
    header(&format!(
        "design space 1..={max_redundancy} per tier: {} designs",
        sweep.len()
    ));
    let evals = sweep.run().expect("designs evaluate");

    // Rank by COA and show the extremes.
    let mut by_coa: Vec<&redeval::DesignEvaluation> = evals.iter().collect();
    by_coa.sort_by(|a, b| b.coa.partial_cmp(&a.coa).expect("finite"));
    println!("highest COA:");
    for e in by_coa.iter().take(5) {
        println!("  {}", design_row(e));
    }
    println!("lowest COA:");
    for e in by_coa.iter().rev().take(3) {
        println!("  {}", design_row(e));
    }

    header("designs satisfying φ=0.2, ψ=0.9968 (tight bounds need redundancy)");
    let bounds = ScatterBounds {
        max_asp: 0.2,
        min_coa: 0.9968,
    };
    let mut region = bounds.region(&evals);
    region.sort_by(|a, b| {
        a.total_servers()
            .cmp(&b.total_servers())
            .then(a.name.cmp(&b.name))
    });
    if region.is_empty() {
        println!("(none — bounds unsatisfiable in this space)");
    }
    for e in region.iter().take(10) {
        println!("  {}", design_row(e));
    }
    println!();
    println!(
        "{} of {} designs satisfy the bounds",
        region.len(),
        evals.len()
    );
}
