//! Extension (paper §V "systems"): exhaustive design-space search with
//! the paper's decision functions. Thin shim over
//! `redeval_bench::reports::studies::design_space`, parameterized by the
//! per-tier redundancy bound (equivalently: `redeval design-space` for
//! the default bound of 3).
//!
//! Usage: `design_space [max_redundancy]`

use redeval_bench::reports::studies;
use redeval_bench::{arg_or, cli};

fn main() {
    let max_redundancy: u32 = arg_or(1, 3);
    std::process::exit(cli::print_report(&studies::design_space(max_redundancy)));
}
