//! Extension (paper §V "systems"): exhaustive design-space search with the
//! paper's decision functions, beyond the five hand-picked designs.

use redeval::case_study;
use redeval::decision::ScatterBounds;
use redeval_bench::{design_row, header};

fn main() {
    let max_redundancy: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    let evaluator = case_study::evaluator().expect("evaluator builds");
    let designs = evaluator.base().enumerate_designs(max_redundancy);
    header(&format!(
        "design space 1..={max_redundancy} per tier: {} designs",
        designs.len()
    ));
    let evals = evaluator.evaluate_all(&designs).expect("designs evaluate");

    // Rank by COA and show the extremes.
    let mut by_coa: Vec<&redeval::DesignEvaluation> = evals.iter().collect();
    by_coa.sort_by(|a, b| b.coa.partial_cmp(&a.coa).expect("finite"));
    println!("highest COA:");
    for e in by_coa.iter().take(5) {
        println!("  {}", design_row(e));
    }
    println!("lowest COA:");
    for e in by_coa.iter().rev().take(3) {
        println!("  {}", design_row(e));
    }

    header("designs satisfying φ=0.2, ψ=0.9968 (tight bounds need redundancy)");
    let bounds = ScatterBounds {
        max_asp: 0.2,
        min_coa: 0.9968,
    };
    let mut region = bounds.region(&evals);
    region.sort_by(|a, b| {
        a.total_servers()
            .cmp(&b.total_servers())
            .then(a.name.cmp(&b.name))
    });
    if region.is_empty() {
        println!("(none — bounds unsatisfiable in this space)");
    }
    for e in region.iter().take(10) {
        println!("  {}", design_row(e));
    }
    println!();
    println!(
        "{} of {} designs satisfy the bounds",
        region.len(),
        evals.len()
    );
}
