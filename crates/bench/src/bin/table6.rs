//! Regenerates **Table VI** — the COA reward function and the paper's
//! ≈ 0.99707 COA computed three ways. Thin shim over
//! `redeval_bench::reports::tables::table6` (equivalently: `redeval table 6`).

fn main() {
    redeval_bench::cli::shim("table6");
}
