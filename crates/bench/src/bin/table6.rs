//! Regenerates **Table VI** — the COA reward function — and the paper's
//! COA value (≈ 0.99707) for the case-study network, computed three ways:
//! product form, explicit upper-layer SRN, and discrete-event simulation.

use redeval::case_study;
use redeval_bench::{compare, header};
use redeval_sim::simulate_coa;

fn main() {
    header("Table VI: reward function of COA (1 DNS + 2 WEB + 2 APP + 1 DB)");
    println!("if (#Pdnsup==1 && #Pwebup==2 && #Pappup==2 && #Pdbup==1)  reward 1");
    println!("else if (#Pdnsup==1 && #Pwebup==1 && #Pappup==2 && #Pdbup==1) 0.83333");
    println!("else if (#Pdnsup==1 && #Pwebup==2 && #Pappup==1 && #Pdbup==1) 0.83333");
    println!("else if (#Pdnsup==1 && #Pwebup==1 && #Pappup==1 && #Pdbup==1) 0.66667");
    println!("else 0");
    println!();
    println!("generalization used here: 0 when any tier has zero servers up,");
    println!("otherwise (running servers)/(total servers).");

    let spec = case_study::network();
    let analyses = spec.tier_analyses().expect("server models solve");
    let model = spec.network_model(&analyses);

    header("COA of the example network");
    let product = model.coa().expect("product form solves");
    let srn = model.coa_via_srn().expect("srn solves");
    compare("COA (product form)", 0.99707, product);
    compare("COA (explicit SRN)", 0.99707, srn);

    let est = simulate_coa(&model, 1_500_000.0, 99).expect("simulation runs");
    compare("COA (simulation)", 0.99707, est.mean);
    println!("simulation 95% CI half-width: {:.2e}", est.ci95);

    header("per-tier steady state (number of servers down due to patch)");
    for (i, t) in model.tiers().iter().enumerate() {
        let d = model.tier_down_distribution(i).expect("solves");
        let line: Vec<String> = d
            .iter()
            .enumerate()
            .map(|(k, p)| format!("P[{k} down]={p:.6}"))
            .collect();
        println!("{:<6} {}", t.name, line.join("  "));
    }
}
