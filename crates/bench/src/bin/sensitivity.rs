//! Extension: COA sensitivity analysis — which Table-IV parameter most
//! moves the availability conclusion, per tier, as elasticities of the
//! capacity loss `1 − COA`.

use redeval::case_study;
use redeval::exec::default_threads;
use redeval::sensitivity::coa_sensitivities_batch;
use redeval_bench::{header, CASE_STUDY_COUNTS};

fn main() {
    let spec = case_study::network();
    // Each (tier, parameter) pair costs two full pipeline solves; spread
    // them over the worker pool (ranking is thread-count independent).
    let sens = coa_sensitivities_batch(&spec, &CASE_STUDY_COUNTS, 0.05, default_threads())
        .expect("pipeline solves");

    header("COA-loss sensitivities, case-study network (1+2+2+1)");
    println!(
        "{:<6} {:<24} {:>12} {:>14} {:>12}",
        "tier", "parameter", "value (h)", "d(1-COA)/dθ", "elasticity"
    );
    for s in &sens {
        println!(
            "{:<6} {:<24} {:>12.4} {:>14.6} {:>12.3}",
            s.tier,
            s.parameter.name(),
            s.value_hours,
            s.derivative,
            s.elasticity
        );
    }
    println!();
    println!("positive elasticity: longer duration costs capacity; negative:");
    println!("longer patch intervals save it. With web/app duplicated, the");
    println!("remaining single-server db and dns tiers dominate every ranking —");
    println!("their downtime zeroes the reward while a redundant server's only");
    println!("costs 1/6 of capacity. The next redundancy investment should go");
    println!("to the database, which is exactly design 5's COA gain in Fig. 6.");
}
