//! Extension: COA sensitivity analysis — which Table-IV parameter most
//! moves the availability conclusion. Thin shim over
//! `redeval_bench::reports::studies::sensitivity_default` (equivalently:
//! `redeval sensitivity`).

fn main() {
    redeval_bench::cli::shim("sensitivity");
}
