//! Regenerates **Figure 6** — the ASP-vs-COA scatter of the five designs
//! plus the Equation-(3) regions. Thin shim over
//! `redeval_bench::reports::figures::fig6` (equivalently: `redeval fig 6`).

fn main() {
    redeval_bench::cli::shim("fig6");
}
