//! Regenerates **Figure 6** — the ASP-vs-COA scatter comparison of the
//! five redundancy designs, before (a) and after (b) patch — as CSV and an
//! ASCII scatter plot, plus the paper's Equation-(3) region analysis.

use redeval::case_study;
use redeval::charts::{scatter_ascii, scatter_csv, scatter_data};
use redeval::decision::ScatterBounds;
use redeval_bench::header;

fn main() {
    let evaluator = case_study::evaluator().expect("evaluator builds");
    let designs = case_study::five_designs();
    let evals = evaluator.evaluate_all(&designs).expect("designs evaluate");

    header("Figure 6(a): before patch");
    let before = scatter_data(&evals, false);
    print!("{}", scatter_csv(&before));
    println!();
    println!("(all designs share ASP = 1.0 before patch, as in the paper)");

    header("Figure 6(b): after patch");
    let after = scatter_data(&evals, true);
    print!("{}", scatter_csv(&after));
    println!();
    print!("{}", scatter_ascii(&after, 64, 14));

    header("Equation (3) regions");
    for (label, bounds, expect) in [
        (
            "region 1: φ=0.2, ψ=0.9962",
            ScatterBounds {
                max_asp: 0.2,
                min_coa: 0.9962,
            },
            vec![
                "1 DNS + 1 WEB + 2 APP + 1 DB",
                "1 DNS + 1 WEB + 1 APP + 2 DB",
            ],
        ),
        (
            "region 2: φ=0.1, ψ=0.9961",
            ScatterBounds {
                max_asp: 0.1,
                min_coa: 0.9961,
            },
            vec!["2 DNS + 1 WEB + 1 APP + 1 DB"],
        ),
    ] {
        let region: Vec<&str> = bounds
            .region(&evals)
            .iter()
            .map(|e| e.name.as_str())
            .collect();
        println!("{label}");
        for name in &region {
            println!("    {name}");
        }
        let matches = region == expect;
        println!(
            "  -> matches the paper's region: {}",
            if matches { "yes" } else { "NO" }
        );
        println!();
    }
}
