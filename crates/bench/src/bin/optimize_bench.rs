//! Machine-readable perf harness for the pruned design-space search
//! (ISSUE 7 acceptance): exhaustive grid vs branch-and-bound.
//!
//! Two stages:
//!
//! 1. **Head-to-head** on the paper's case study at `max_redundancy 8`
//!    (8⁴ = 4096 cells, still inside the sweep cap): the exhaustive
//!    grid + `pareto_frontier_batch` reference is timed against the
//!    pruned search and the two frontiers are asserted **identical**.
//! 2. **Big space**: an `ecommerce_fleet` document with 8 tiers at
//!    `max_redundancy 6` — 6⁸ ≈ 1.68 M designs, a space the sweep path
//!    *rejects* today (asserted, including the `optimize` pointer in
//!    the rejection). The pruned search completes it and must evaluate
//!    **< 10 %** of the space.
//!
//! Writes `BENCH_optimize.json` (wall times, evaluated fractions,
//! prune counters). `optimize_bench [threads]` (default 4), or
//! `optimize_bench --smoke` for a CI-sized variant (7-tier fleet,
//! ~78 k designs, written to `BENCH_optimize_smoke.json` so the
//! committed full record stays intact).

use std::time::Instant;

use redeval::optimize::exhaustive_frontier;
use redeval::scenario::generate::{self, Family, GenParams};
use redeval::scenario::{builtin, ScenarioDoc};
use redeval::{OptimizeOutcome, Optimizer};
use redeval_bench::reports::scenario::sweep_report;
use redeval_bench::{arg_or, header};
use redeval_server::SweepRequest;

/// The big-space document: a seeded fleet whose design space the sweep
/// path refuses to materialize.
fn fleet_doc(tiers: u32) -> ScenarioDoc {
    generate::generate(
        Family::EcommerceFleet,
        &GenParams {
            tiers,
            redundancy: 6,
            designs: 1,
            policies: 1,
        },
        0,
    )
}

fn run_search(doc: &ScenarioDoc, max_redundancy: u32, threads: usize) -> (OptimizeOutcome, f64) {
    let optimizer = Optimizer::from_scenario(doc)
        .expect("document converts")
        .max_redundancy(max_redundancy)
        .threads(threads);
    let t0 = Instant::now();
    let outcome = optimizer.run().expect("search completes");
    (outcome, t0.elapsed().as_secs_f64())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let threads: usize = arg_or(1, 4);

    // Stage 1: head-to-head on a grid the exhaustive path still accepts.
    let doc = builtin::paper_case_study();
    let max_redundancy = 8u32;
    header(&format!(
        "optimize bench: head-to-head on {} at max_redundancy {max_redundancy}, {threads} threads",
        doc.name
    ));
    let optimizer = Optimizer::from_scenario(&doc)
        .expect("case study converts")
        .max_redundancy(max_redundancy)
        .threads(threads);
    let t0 = Instant::now();
    let reference = exhaustive_frontier(&optimizer).expect("exhaustive grid evaluates");
    let exhaustive_secs = t0.elapsed().as_secs_f64();
    let (outcome, pruned_secs) = run_search(&doc, max_redundancy, threads);
    assert_eq!(
        outcome.frontier, reference,
        "pruned frontier diverges from the exhaustive reference"
    );
    for (a, b) in outcome.frontier.iter().zip(&reference) {
        assert_eq!(a.coa.to_bits(), b.coa.to_bits());
        assert_eq!(
            a.after.attack_success_probability.to_bits(),
            b.after.attack_success_probability.to_bits()
        );
    }
    let grid_cells = outcome.space_cells;
    println!("exhaustive grid          {exhaustive_secs:>8.2} s  ({grid_cells} cells)");
    println!(
        "pruned search            {pruned_secs:>8.2} s  ({} cells evaluated, {:.1}%)",
        outcome.evaluated_cells,
        outcome.evaluated_fraction() * 100.0
    );
    println!(
        "frontier                 {:>8} members, identical",
        outcome.frontier.len()
    );
    let head = format!(
        "{{\n    \"scenario\": \"{}\",\n    \"max_redundancy\": {max_redundancy},\n    \
         \"cells\": {grid_cells},\n    \"exhaustive_secs\": {exhaustive_secs:.3},\n    \
         \"pruned_secs\": {pruned_secs:.3},\n    \"evaluated_cells\": {},\n    \
         \"evaluated_fraction\": {:.4},\n    \"frontier\": {},\n    \
         \"frontiers_identical\": true\n  }}",
        doc.name,
        outcome.evaluated_cells,
        outcome.evaluated_fraction(),
        outcome.frontier.len()
    );

    // Stage 2: the space the grid path rejects.
    let (tiers, fleet_r) = if smoke { (7, 5) } else { (8, 6) };
    let fleet = fleet_doc(tiers);
    let space = f64::from(fleet_r).powi(tiers as i32);
    header(&format!(
        "optimize bench: {} ({} tiers) at max_redundancy {fleet_r} — {space:.3e} designs",
        fleet.name, tiers
    ));
    if !smoke {
        assert!(space >= 1e6, "the full-mode space must hold ≥ 10⁶ designs");
    }
    // The sweep front door must reject this very grid, pointing at the
    // search instead (the ISSUE 7 satellite contract).
    let rejection = sweep_report(&SweepRequest {
        doc: fleet.clone(),
        patch_windows_days: None,
        policies: None,
        max_redundancy: Some(fleet_r),
    })
    .expect_err("the sweep path must reject the big grid")
    .to_string();
    assert!(
        rejection.contains("exceeds the limit") && rejection.contains("optimize"),
        "unexpected sweep rejection: {rejection}"
    );
    println!("sweep path: rejected (as it must) — {rejection}");

    let (fleet_outcome, fleet_secs) = run_search(&fleet, fleet_r, threads);
    let fraction = fleet_outcome.evaluated_fraction();
    println!(
        "pruned search            {fleet_secs:>8.2} s  ({} of {:.3e} cells, {:.2}%)",
        fleet_outcome.evaluated_cells,
        fleet_outcome.space_cells,
        fraction * 100.0
    );
    println!(
        "boxes                    {:>8} explored, {} pruned; frontier {}",
        fleet_outcome.boxes_explored,
        fleet_outcome.boxes_pruned,
        fleet_outcome.frontier.len()
    );
    assert!(
        fraction < 0.10,
        "search evaluated {:.1}% of the space — the <10% acceptance bound failed",
        fraction * 100.0
    );

    let big = format!(
        "{{\n    \"scenario\": \"{}\",\n    \"tiers\": {tiers},\n    \
         \"max_redundancy\": {fleet_r},\n    \"space_designs\": {:.0},\n    \
         \"space_cells\": {:.0},\n    \"threads\": {threads},\n    \
         \"secs\": {fleet_secs:.3},\n    \"evaluated_cells\": {},\n    \
         \"evaluated_fraction\": {fraction:.5},\n    \"boxes_explored\": {},\n    \
         \"boxes_pruned\": {},\n    \"frontier\": {},\n    \"sweep_path_rejects\": true\n  }}",
        fleet.name,
        fleet_outcome.space_designs,
        fleet_outcome.space_cells,
        fleet_outcome.evaluated_cells,
        fleet_outcome.boxes_explored,
        fleet_outcome.boxes_pruned,
        fleet_outcome.frontier.len()
    );

    let json = format!(
        "{{\n  \"bench\": \"optimize\",\n  \"head_to_head\": {head},\n  \"big_space\": {big}\n}}\n"
    );
    let path = if smoke {
        "BENCH_optimize_smoke.json"
    } else {
        "BENCH_optimize.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("{path} written: {e}"));
    println!();
    println!("wrote {path}");
}
