//! Validation experiment: accuracy of the paper's hierarchical
//! aggregation against the exact composite model. Thin shim over
//! `redeval_bench::reports::validate::aggregation_error` (equivalently:
//! `redeval aggregation-error`).

fn main() {
    redeval_bench::cli::shim("aggregation_error");
}
