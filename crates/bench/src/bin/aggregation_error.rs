//! Validation experiment: how accurate is the paper's hierarchical
//! aggregation (Equations (1),(2) + patch-only upper layer) against the
//! exact, unreduced composition of full server models?
//!
//! Small networks are solved exactly (product state spaces); the
//! case-study network (6 servers, ~25⁶ states) is simulated instead.

use redeval::case_study;
use redeval_avail::{CompositeNetwork, NetworkModel, ServerAnalysis, Tier};
use redeval_bench::header;
use redeval_sim::Simulation;

fn aggregated_coa(params: &[redeval::ServerParams], counts: &[u32]) -> f64 {
    let tiers: Vec<Tier> = params
        .iter()
        .zip(counts)
        .map(|(p, &c)| {
            let a = ServerAnalysis::of(p).expect("server model solves");
            Tier::new(p.name.clone(), c, a.rates())
        })
        .collect();
    NetworkModel::new(tiers).coa().expect("product form solves")
}

fn main() {
    header("exact composite vs hierarchical aggregation (small networks)");
    println!(
        "{:<28} {:>12} {:>12} {:>12}",
        "network", "exact COA", "aggregated", "error"
    );
    let dns = case_study::dns_params();
    let web = case_study::web_params();
    let cases: Vec<(&str, Vec<redeval::ServerParams>, Vec<u32>)> = vec![
        ("1 dns", vec![dns.clone()], vec![1]),
        ("2 dns (one tier)", vec![dns.clone()], vec![2]),
        ("dns + web", vec![dns.clone(), web.clone()], vec![1, 1]),
        ("dns + 2 web", vec![dns.clone(), web.clone()], vec![1, 2]),
    ];
    for (label, params, counts) in cases {
        let composite = CompositeNetwork::build(&params, &counts);
        let exact = composite.coa_exact().expect("exact solve");
        let agg = aggregated_coa(&params, &counts);
        println!(
            "{:<28} {:>12.6} {:>12.6} {:>+12.2e}",
            label,
            exact,
            agg,
            agg - exact
        );
    }
    println!();
    println!("the aggregation ignores failure-induced downtime (the paper's");
    println!("upper layer models patch states only), so it overestimates COA");
    println!("by roughly the summed failure unavailability.");

    header("case-study network (6 servers): simulation of the full composite");
    let spec = case_study::network();
    let params: Vec<redeval::ServerParams> =
        spec.tiers().iter().map(|t| t.params.clone()).collect();
    let counts: Vec<u32> = spec.tiers().iter().map(|t| t.count).collect();
    let composite = CompositeNetwork::build(&params, &counts);
    let mut sim = Simulation::new(composite.net(), 777);
    // Rebuild the reward against the simulator's marking type.
    let servers = composite.servers().to_vec();
    let n_tiers = counts.len();
    let total: u32 = counts.iter().sum();
    sim.add_reward("coa", move |m| {
        let mut up = vec![0u32; n_tiers];
        for (tier, places) in &servers {
            if places.service_up(m) {
                up[*tier] += 1;
            }
        }
        if up.contains(&0) {
            0.0
        } else {
            f64::from(up.iter().sum::<u32>()) / f64::from(total)
        }
    });
    let out = sim.run(5_000.0, 1_000_000.0, 20).expect("simulation runs");
    let est = &out.rewards[0];
    let agg = aggregated_coa(&params, &counts);
    println!("exact (simulated) COA : {:.5} ± {:.5}", est.mean, est.ci95);
    println!("aggregated (paper)    : {agg:.5}");
    println!("aggregation error     : {:+.2e}", agg - est.mean);
    println!();
    println!("the ~6·10⁻³ offset is the failure-induced downtime the paper's");
    println!("patch-only upper layer deliberately excludes. It applies almost");
    println!("uniformly across redundancy designs (every design runs the same");
    println!("servers), so the paper's design *ranking* survives — but absolute");
    println!("COA values should be read as 'capacity under patching alone'.");
}
