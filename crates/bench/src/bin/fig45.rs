//! Regenerates **Figures 4 and 5** — the SRN sub-models as Graphviz DOT
//! plus the tangible state space. Thin shim over
//! `redeval_bench::reports::figures::fig45` (equivalently: `redeval fig 45`).

fn main() {
    redeval_bench::cli::shim("fig45");
}
