//! Regenerates **Figures 4 and 5** — the SRN sub-models — as Graphviz DOT,
//! plus the tangible state space of the server model.

use redeval::case_study;
use redeval_avail::ServerModel;
use redeval_bench::header;

fn main() {
    header("Figure 5: SRN sub-models for a server (DNS parameters) — DOT");
    let model = ServerModel::build(&case_study::dns_params());
    println!("{}", model.net().to_dot());

    header("tangible state space of the server SRN");
    let ss = model.net().state_space().expect("state space builds");
    println!(
        "{} tangible markings, {} vanishing markings eliminated",
        ss.len(),
        ss.vanishing_count()
    );
    println!();
    println!("(places: Phwup Phwd Posup Posd Posfd Posrp Posp Psvcup Psvcd");
    println!("         Psvcfd Psvcrp Psvcp Psvcrrb Pclock Ppolicy Ptrigger)");
    for m in ss.tangible_markings() {
        println!("  {m}");
    }

    header("Figure 4: SRN sub-models for the network — DOT");
    let spec = case_study::network();
    let analyses = spec.tier_analyses().expect("server models solve");
    let (net, _) = spec.network_model(&analyses).to_srn();
    println!("{}", net.to_dot());
}
