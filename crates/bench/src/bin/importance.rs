//! Extension: host-importance ranking — which server most enables the
//! attack goal, before and after the patch round (a security analogue of
//! component-importance analysis).

use redeval::case_study;
use redeval::MetricsConfig;
use redeval_bench::header;

fn main() {
    let harm = case_study::network().build_harm();
    let cfg = MetricsConfig::default();

    for (label, h) in [
        ("before patch", harm.clone()),
        ("after patch", harm.patched_critical(8.0)),
    ] {
        header(&format!("host importance (ΔASP when hardened), {label}"));
        let base = h.metrics(&cfg).attack_success_probability;
        println!("network ASP = {base:.4}");
        println!();
        println!("{:<10} {:>10} {:>12}", "host", "ΔASP", "ASP if hardened");
        for (host, delta) in h.host_importance(&cfg) {
            println!(
                "{:<10} {:>10.4} {:>12.4}",
                h.graph().host_name(host),
                delta,
                base - delta
            );
        }
        println!();
    }
    println!("the database (single point of the attack goal) dominates both");
    println!("rankings; after the patch, hardening either remaining app server");
    println!("severs half the surviving paths.");
}
