//! Extension: host-importance ranking — which server most enables the
//! attack goal, before and after the patch round. Thin shim over
//! `redeval_bench::reports::studies::importance` (equivalently:
//! `redeval importance`).

fn main() {
    redeval_bench::cli::shim("importance");
}
