//! Machine-readable perf harness for the serving path.
//!
//! Spawns the fully wired `redeval serve` stack — persistent cache tier
//! included — on a loopback ephemeral port and measures `POST /v1/eval`
//! two ways:
//!
//! 1. **single connection** — one keep-alive connection, `cold`
//!    (distinct documents, every request computes) then `cached`
//!    (repeats served from the content-addressed result cache), as a
//!    contention-free baseline;
//! 2. **multi connection** — a closed loop of concurrent clients, each
//!    on its own keep-alive connection, driven through three phases:
//!    `cold` (distinct documents per client), `warm_memory` (repeats of
//!    those documents out of the in-memory tier) and `warm_disk` (the
//!    server is stopped and rebuilt over the same `--cache-dir`, so the
//!    first repeat of every document is answered from disk). Each phase
//!    reports exact client-side p50/p95/p99 latency and throughput.
//!
//! Contract checks baked into the run: cached and disk-served bytes
//! equal the cold bytes for the same document, the hit/miss counters in
//! `/v1/stats` agree with the client's view, the multi-connection
//! warm-memory p99 stays under 10× the single-connection cached p50,
//! and the warm-disk restart beats cold recomputation on throughput.
//!
//! Writes `BENCH_serve.json` for the bench trajectory. Usage:
//! `serve_bench [--smoke]` — `--smoke` shrinks the request counts for
//! CI and writes `BENCH_serve_smoke.json` so the committed full record
//! stays intact.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use redeval::scenario::builtin;
use redeval_bench::{header, serve};
use redeval_server::Server;

/// A minimally parsed response: status, cache disposition, body.
struct Reply {
    status: u16,
    cache: Option<String>,
    body: Vec<u8>,
}

/// Sends one request on the persistent connection and reads the reply.
fn roundtrip(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    method: &str,
    path: &str,
    body: &str,
) -> Reply {
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("request sent");
    stream.flush().expect("request flushed");

    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line {line:?}"));
    let mut content_length = 0usize;
    let mut cache = None;
    loop {
        let mut header_line = String::new();
        reader.read_line(&mut header_line).expect("header line");
        let header_line = header_line.trim_end();
        if header_line.is_empty() {
            break;
        }
        if let Some((name, value)) = header_line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().expect("numeric content length");
            } else if name.eq_ignore_ascii_case("x-redeval-cache") {
                cache = Some(value.to_string());
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body read");
    Reply {
        status,
        cache,
        body,
    }
}

/// One measured request from a benchmark client.
struct Sample {
    latency_us: u64,
    cache: String,
    body: Vec<u8>,
}

/// Runs one closed-loop phase: every client opens its own keep-alive
/// connection, all start together behind a barrier, and each issues its
/// request list back-to-back. Returns per-client samples and the phase
/// wall time.
fn run_phase(addr: SocketAddr, jobs: &[Vec<String>]) -> (Vec<Vec<Sample>>, f64) {
    let barrier = Arc::new(Barrier::new(jobs.len() + 1));
    let clients: Vec<_> = jobs
        .iter()
        .cloned()
        .enumerate()
        .map(|(c, bodies)| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("loopback connect");
                stream.set_nodelay(true).expect("nodelay");
                let mut reader = BufReader::new(stream.try_clone().expect("stream clone"));
                // Unmeasured warm-up: primes the connection and its
                // worker without touching any /v1/eval cache key.
                let ping = roundtrip(&mut stream, &mut reader, "GET", "/healthz", "");
                assert_eq!(ping.status, 200, "client {c} warm-up failed");
                barrier.wait();
                bodies
                    .iter()
                    .map(|body| {
                        let t = Instant::now();
                        let reply = roundtrip(&mut stream, &mut reader, "POST", "/v1/eval", body);
                        let latency_us = u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX);
                        assert_eq!(reply.status, 200, "client {c} request failed");
                        Sample {
                            latency_us,
                            cache: reply.cache.unwrap_or_default(),
                            body: reply.body,
                        }
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    let results = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();
    (results, t0.elapsed().as_secs_f64())
}

/// Exact client-side percentile: `sorted[ceil(q·n) - 1]`.
fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len();
    assert!(n > 0, "percentile of an empty phase");
    let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
    sorted[idx]
}

/// Aggregated view of one multi-connection phase.
struct PhaseStats {
    requests: usize,
    secs: f64,
    rps: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
}

fn phase_stats(samples: &[Vec<Sample>], secs: f64, name: &str, expect_cache: &str) -> PhaseStats {
    let mut latencies: Vec<u64> = Vec::new();
    for (c, client) in samples.iter().enumerate() {
        for (i, s) in client.iter().enumerate() {
            assert_eq!(
                s.cache, expect_cache,
                "{name}: client {c} request {i} expected `{expect_cache}`"
            );
            latencies.push(s.latency_us);
        }
    }
    latencies.sort_unstable();
    let requests = latencies.len();
    let stats = PhaseStats {
        requests,
        secs,
        rps: requests as f64 / secs,
        p50_us: percentile_us(&latencies, 0.50),
        p95_us: percentile_us(&latencies, 0.95),
        p99_us: percentile_us(&latencies, 0.99),
    };
    println!(
        "{name:<12} {requests:>6} requests   {secs:>8.3} s   {:>10.1} req/s   \
         p50 {:>6} µs   p95 {:>6} µs   p99 {:>6} µs",
        stats.rps, stats.p50_us, stats.p95_us, stats.p99_us
    );
    stats
}

fn phase_json(name: &str, s: &PhaseStats) -> String {
    format!(
        "    \"{name}\": {{\n      \"requests\": {},\n      \"secs\": {:.3},\n      \
         \"requests_per_sec\": {:.1},\n      \"p50_us\": {},\n      \"p95_us\": {},\n      \
         \"p99_us\": {}\n    }}",
        s.requests, s.secs, s.rps, s.p50_us, s.p95_us, s.p99_us
    )
}

#[allow(clippy::too_many_lines)]
fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (cold_n, cached_n, threads) = if smoke { (3, 100, 2) } else { (10, 1000, 4) };
    let (clients, docs_per_client, warm_reps) = if smoke { (4, 2, 75) } else { (4, 6, 150) };

    let cache_dir =
        std::env::temp_dir().join(format!("redeval-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);

    let service = serve::service_with_disk(threads, 64 << 20, &cache_dir, serve::DEFAULT_DISK_CAP)
        .expect("cache dir opens");
    let server = Server::bind("127.0.0.1:0", service, clients + 1).expect("loopback bind");
    let addr = server.local_addr().expect("bound address");
    let handle = server.spawn().expect("acceptors start");
    header(&format!(
        "serve bench: single-connection {cold_n} cold + {cached_n} cached, then {clients} \
         closed-loop clients × {docs_per_client} documents through cold / warm-memory / \
         warm-disk-restart POST /v1/eval (http://{addr}, {threads} pool workers)"
    ));

    let mut stream = TcpStream::connect(addr).expect("loopback connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("stream clone"));

    let base = builtin::paper_case_study();

    // Cold: distinct canonical documents, every request computes.
    let t0 = Instant::now();
    for i in 0..cold_n {
        let mut doc = base.clone();
        doc.description = format!("{} [serve_bench cold {i}]", doc.description);
        let reply = roundtrip(&mut stream, &mut reader, "POST", "/v1/eval", &doc.to_json());
        assert_eq!(reply.status, 200, "cold request {i} failed");
        assert_eq!(reply.cache.as_deref(), Some("miss"), "cold request {i} hit");
    }
    let cold_secs = t0.elapsed().as_secs_f64();
    let cold_rps = f64::from(cold_n) / cold_secs;
    println!("cold   {cold_n:>6} requests   {cold_secs:>8.3} s   {cold_rps:>10.1} req/s");

    // Cached: one more distinct document, then repeats of it.
    let mut doc = base.clone();
    doc.description = format!("{} [serve_bench cached]", doc.description);
    let body = doc.to_json();
    let first = roundtrip(&mut stream, &mut reader, "POST", "/v1/eval", &body);
    assert_eq!(first.status, 200);
    assert_eq!(first.cache.as_deref(), Some("miss"));
    let mut single_cached_us: Vec<u64> = Vec::with_capacity(cached_n as usize);
    let t0 = Instant::now();
    for i in 0..cached_n {
        let t = Instant::now();
        let reply = roundtrip(&mut stream, &mut reader, "POST", "/v1/eval", &body);
        single_cached_us.push(u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX));
        assert_eq!(reply.status, 200, "cached request {i} failed");
        assert_eq!(
            reply.cache.as_deref(),
            Some("hit"),
            "cached request {i} missed"
        );
        assert_eq!(reply.body, first.body, "cache hit diverged from recompute");
    }
    let cached_secs = t0.elapsed().as_secs_f64();
    let cached_rps = f64::from(cached_n) / cached_secs;
    println!("cached {cached_n:>6} requests   {cached_secs:>8.3} s   {cached_rps:>10.1} req/s");
    single_cached_us.sort_unstable();
    let single_cached_p50_us = percentile_us(&single_cached_us, 0.50);

    // Cross-check the counters the smoke job asserts on.
    let stats = roundtrip(&mut stream, &mut reader, "GET", "/v1/stats", "");
    let stats_text = String::from_utf8(stats.body).expect("stats is UTF-8");
    let expect_hits = format!("\"cache_hits\": {cached_n}");
    assert!(
        stats_text.contains(&expect_hits),
        "stats disagree: wanted {expect_hits} in {stats_text}"
    );

    let speedup = cached_rps / cold_rps;
    println!();
    println!("cache speedup            {speedup:>8.1}×");
    println!();

    // Release the single-connection client's worker before the
    // concurrent phases: a parked keep-alive peer would otherwise pin
    // one connection worker until its read timeout.
    drop(reader);
    drop(stream);

    // ── Multi-connection closed loop ────────────────────────────────
    // Each client owns a disjoint document set, so per-phase cache
    // dispositions are deterministic: miss, then memory hit, then —
    // across a restart over the same cache directory — disk hit.
    let cold_jobs: Vec<Vec<String>> = (0..clients)
        .map(|c| {
            (0..docs_per_client)
                .map(|i| {
                    let mut doc = base.clone();
                    doc.description = format!("{} [serve_bench mc c{c} d{i}]", doc.description);
                    doc.to_json()
                })
                .collect()
        })
        .collect();
    let warm_jobs: Vec<Vec<String>> = cold_jobs
        .iter()
        .map(|bodies| {
            let mut reps = Vec::with_capacity(bodies.len() * warm_reps);
            for _ in 0..warm_reps {
                reps.extend(bodies.iter().cloned());
            }
            reps
        })
        .collect();

    let (cold_samples, secs) = run_phase(addr, &cold_jobs);
    let mc_cold = phase_stats(&cold_samples, secs, "mc cold", "miss");

    let (warm_samples, secs) = run_phase(addr, &warm_jobs);
    let mc_warm = phase_stats(&warm_samples, secs, "mc warm-mem", "hit");
    for (client, cold_client) in warm_samples.iter().zip(&cold_samples) {
        for (i, s) in client.iter().enumerate() {
            assert_eq!(
                s.body,
                cold_client[i % cold_client.len()].body,
                "warm-memory bytes diverged from cold"
            );
        }
    }

    // Restart over the same cache directory: the in-memory tier is
    // gone, the persistent one answers.
    handle.stop();
    let service = serve::service_with_disk(threads, 64 << 20, &cache_dir, serve::DEFAULT_DISK_CAP)
        .expect("cache dir reopens");
    let server = Server::bind("127.0.0.1:0", service, clients + 1).expect("loopback rebind");
    let addr2 = server.local_addr().expect("bound address");
    let handle = server.spawn().expect("acceptors restart");

    let (disk_samples, secs) = run_phase(addr2, &cold_jobs);
    let mc_disk = phase_stats(&disk_samples, secs, "mc warm-disk", "disk");
    for (client, cold_client) in disk_samples.iter().zip(&cold_samples) {
        for (i, s) in client.iter().enumerate() {
            assert_eq!(
                s.body, cold_client[i].body,
                "disk-served bytes diverged from cold"
            );
        }
    }
    handle.stop();
    let _ = std::fs::remove_dir_all(&cache_dir);

    // Latency gate: concurrent cached tail vs uncontended cached median.
    // A closed loop of C clients on fewer than C cores serializes
    // ceil(C / cores) requests per scheduling lane, so that factor is
    // latency every client pays before any server-side queueing; on a
    // machine with >= C cores the factor is 1 and the gate is a plain
    // 10x the single-connection median.
    let lanes = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(clients);
    let serial_factor = clients.div_ceil(lanes) as u64;
    let p99_budget_us = 10 * single_cached_p50_us.max(1) * serial_factor;
    println!();
    println!(
        "gate: multi-connection warm-memory p99 {} µs < 10 × single-connection cached p50 \
         {} µs × serial factor {} = {} µs",
        mc_warm.p99_us, single_cached_p50_us, serial_factor, p99_budget_us
    );
    assert!(
        mc_warm.p99_us < p99_budget_us,
        "concurrent cached p99 {} µs blew the {} µs budget",
        mc_warm.p99_us,
        p99_budget_us
    );
    assert!(
        mc_disk.rps > mc_cold.rps,
        "warm-disk restart ({:.1} req/s) must beat cold recomputation ({:.1} req/s)",
        mc_disk.rps,
        mc_cold.rps
    );

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"connection\": \"loopback\",\n  \
         \"pool_threads\": {threads},\n  \"cold_requests\": {cold_n},\n  \
         \"cold_secs\": {cold_secs:.3},\n  \"cold_requests_per_sec\": {cold_rps:.1},\n  \
         \"cached_requests\": {cached_n},\n  \"cached_secs\": {cached_secs:.3},\n  \
         \"cached_requests_per_sec\": {cached_rps:.1},\n  \"cache_speedup\": {speedup:.1},\n  \
         \"cached_p50_us\": {single_cached_p50_us},\n  \"hit_bytes_identical\": true,\n  \
         \"multi_connection\": {{\n    \"clients\": {clients},\n    \
         \"docs_per_client\": {docs_per_client},\n{},\n{},\n{},\n    \
         \"latency_gate_serial_factor\": {serial_factor},\n    \
         \"warm_memory_p99_lt_10x_single_p50\": true,\n    \
         \"warm_disk_beats_cold\": true,\n    \"disk_bytes_identical\": true\n  }}\n}}\n",
        phase_json("cold", &mc_cold),
        phase_json("warm_memory", &mc_warm),
        phase_json("warm_disk", &mc_disk),
    );
    let path = if smoke {
        "BENCH_serve_smoke.json"
    } else {
        "BENCH_serve.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("{path} written: {e}"));
    println!("wrote {path}");
}
