//! Machine-readable perf harness for the serving path.
//!
//! Spawns the fully wired `redeval serve` stack on a loopback ephemeral
//! port, opens **one** keep-alive connection and measures `POST
//! /v1/eval` round trips two ways:
//!
//! 1. **cold** — every request names a distinct document (a mutated
//!    description changes the canonical bytes, hence the cache key), so
//!    each one runs the full design × policy evaluation;
//! 2. **cached** — the same document repeatedly, served from the
//!    content-addressed result cache.
//!
//! Asserts the cached bytes equal the cold bytes for the same document
//! (the serving contract), cross-checks the hit/miss counters via
//! `/v1/stats`, and writes `BENCH_serve.json` (requests/sec cold vs
//! cached, single connection, loopback) for the bench trajectory.
//!
//! Usage: `serve_bench [--smoke]` — `--smoke` shrinks the request
//! counts for CI and writes `BENCH_serve_smoke.json` so the committed
//! full record stays intact.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use redeval::scenario::builtin;
use redeval_bench::{header, serve};
use redeval_server::Server;

/// A minimally parsed response: status, cache disposition, body.
struct Reply {
    status: u16,
    cache: Option<String>,
    body: Vec<u8>,
}

/// Sends one request on the persistent connection and reads the reply.
fn roundtrip(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    method: &str,
    path: &str,
    body: &str,
) -> Reply {
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("request sent");
    stream.flush().expect("request flushed");

    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line {line:?}"));
    let mut content_length = 0usize;
    let mut cache = None;
    loop {
        let mut header_line = String::new();
        reader.read_line(&mut header_line).expect("header line");
        let header_line = header_line.trim_end();
        if header_line.is_empty() {
            break;
        }
        if let Some((name, value)) = header_line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().expect("numeric content length");
            } else if name.eq_ignore_ascii_case("x-redeval-cache") {
                cache = Some(value.to_string());
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body read");
    Reply {
        status,
        cache,
        body,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (cold_n, cached_n, threads) = if smoke { (3, 100, 2) } else { (10, 1000, 4) };

    let server =
        Server::bind("127.0.0.1:0", serve::service(threads, 64 << 20), 2).expect("loopback bind");
    let addr = server.local_addr().expect("bound address");
    let handle = server.spawn().expect("acceptors start");
    header(&format!(
        "serve bench: {cold_n} cold + {cached_n} cached POST /v1/eval on one connection \
         (http://{addr}, {threads} pool workers)"
    ));

    let mut stream = TcpStream::connect(addr).expect("loopback connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("stream clone"));

    let base = builtin::paper_case_study();

    // Cold: distinct canonical documents, every request computes.
    let t0 = Instant::now();
    for i in 0..cold_n {
        let mut doc = base.clone();
        doc.description = format!("{} [serve_bench cold {i}]", doc.description);
        let reply = roundtrip(&mut stream, &mut reader, "POST", "/v1/eval", &doc.to_json());
        assert_eq!(reply.status, 200, "cold request {i} failed");
        assert_eq!(reply.cache.as_deref(), Some("miss"), "cold request {i} hit");
    }
    let cold_secs = t0.elapsed().as_secs_f64();
    let cold_rps = f64::from(cold_n) / cold_secs;
    println!("cold   {cold_n:>6} requests   {cold_secs:>8.3} s   {cold_rps:>10.1} req/s");

    // Cached: one more distinct document, then repeats of it.
    let mut doc = base.clone();
    doc.description = format!("{} [serve_bench cached]", doc.description);
    let body = doc.to_json();
    let first = roundtrip(&mut stream, &mut reader, "POST", "/v1/eval", &body);
    assert_eq!(first.status, 200);
    assert_eq!(first.cache.as_deref(), Some("miss"));
    let t0 = Instant::now();
    for i in 0..cached_n {
        let reply = roundtrip(&mut stream, &mut reader, "POST", "/v1/eval", &body);
        assert_eq!(reply.status, 200, "cached request {i} failed");
        assert_eq!(
            reply.cache.as_deref(),
            Some("hit"),
            "cached request {i} missed"
        );
        assert_eq!(reply.body, first.body, "cache hit diverged from recompute");
    }
    let cached_secs = t0.elapsed().as_secs_f64();
    let cached_rps = f64::from(cached_n) / cached_secs;
    println!("cached {cached_n:>6} requests   {cached_secs:>8.3} s   {cached_rps:>10.1} req/s");

    // Cross-check the counters the smoke job asserts on.
    let stats = roundtrip(&mut stream, &mut reader, "GET", "/v1/stats", "");
    let stats_text = String::from_utf8(stats.body).expect("stats is UTF-8");
    let expect_hits = format!("\"cache_hits\": {cached_n}");
    assert!(
        stats_text.contains(&expect_hits),
        "stats disagree: wanted {expect_hits} in {stats_text}"
    );

    let speedup = cached_rps / cold_rps;
    println!();
    println!("cache speedup            {speedup:>8.1}×");

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"connection\": \"single keep-alive, loopback\",\n  \
         \"pool_threads\": {threads},\n  \"cold_requests\": {cold_n},\n  \
         \"cold_secs\": {cold_secs:.3},\n  \"cold_requests_per_sec\": {cold_rps:.1},\n  \
         \"cached_requests\": {cached_n},\n  \"cached_secs\": {cached_secs:.3},\n  \
         \"cached_requests_per_sec\": {cached_rps:.1},\n  \"cache_speedup\": {speedup:.1},\n  \
         \"hit_bytes_identical\": true\n}}\n"
    );
    let path = if smoke {
        "BENCH_serve_smoke.json"
    } else {
        "BENCH_serve.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("{path} written: {e}"));
    println!("wrote {path}");
    handle.stop();
}
