//! Extension (paper §V "user oriented performance"): M/M/c response times
//! per design, weighting each tier's queue by its up-server distribution
//! under the patch schedule.

use redeval::case_study;
use redeval_avail::mmc::{availability_weighted_response_time, Mmc};
use redeval_bench::header;

fn main() {
    let spec = case_study::network();
    let analyses = spec.tier_analyses().expect("server models solve");

    header("per-tier M/M/c response times under patching");
    // Request profile: 50 req/s arrive at the web tier; each request costs
    // one app call and 0.5 db calls. Service rates are per server.
    let arrival_web = 50.0;
    let tiers = [
        ("web", 0, arrival_web, 40.0),
        ("app", 2, arrival_web, 35.0),
        ("db", 3, arrival_web * 0.5, 60.0),
    ];
    println!(
        "{:<6} {:>8} {:>10} {:>14} {:>16}",
        "tier", "servers", "util", "W (all up)", "W (patch-aware)"
    );
    let designs = case_study::five_designs();
    for d in &designs {
        println!("-- {} --", d.name);
        for &(name, tier_idx, lambda, mu) in &tiers {
            let count = d.counts[tier_idx];
            let Ok(q) = Mmc::new(lambda, mu, count) else {
                println!(
                    "{:<6} {:>8} {:>10} {:>14} {:>16}",
                    name, count, "-", "UNSTABLE", "-"
                );
                continue;
            };
            // Up-server distribution from the availability model.
            let model = spec
                .with_counts(&d.counts)
                .expect("valid design")
                .network_model(&analyses);
            let down = model
                .tier_down_distribution(tier_idx)
                .expect("tier distribution solves");
            let dist: Vec<(u32, f64)> = down
                .iter()
                .enumerate()
                .map(|(k, &p)| (count - k as u32, p))
                .collect();
            let w = availability_weighted_response_time(lambda, mu, &dist, Some(5.0));
            match w {
                Ok(w) => println!(
                    "{:<6} {:>8} {:>10.3} {:>12.2}ms {:>14.2}ms",
                    name,
                    count,
                    q.utilization(),
                    q.mean_response_time() * 1000.0,
                    w * 1000.0
                ),
                Err(e) => println!(
                    "{:<6} {:>8} {:>10.3} {:>12.2}ms   ({e})",
                    name,
                    count,
                    q.utilization(),
                    q.mean_response_time() * 1000.0
                ),
            }
        }
    }
    println!();
    println!("redundant tiers keep response times flat through patch windows;");
    println!("single-server tiers pay the 5 s outage penalty while rebooting.");
}
