//! Extension (paper §V "user oriented performance"): M/M/c response
//! times per design under the patch schedule. Thin shim over
//! `redeval_bench::reports::studies::perf` (equivalently: `redeval perf`).

fn main() {
    redeval_bench::cli::shim("perf");
}
