//! Extension: transient analysis — the capacity dip while a patch round
//! propagates through the network, computed by uniformization on the
//! upper-layer SRN.

use redeval::case_study;
use redeval_bench::header;

fn main() {
    let spec = case_study::network();
    let analyses = spec.tier_analyses().expect("server models solve");
    let model = spec.network_model(&analyses);
    let (net, ups) = model.to_srn();
    let counts: Vec<u32> = model.tiers().iter().map(|t| t.count).collect();
    let total: u32 = counts.iter().sum();

    header("capacity transient from the fully-up state");
    let solved = net.solve().expect("net solves");
    println!("steady-state COA = {:.5}", {
        let ups2 = ups.clone();
        solved.expected(move |m| {
            let mut sum = 0u32;
            for &p in &ups2 {
                let u = m.tokens(p);
                if u == 0 {
                    return 0.0;
                }
                sum += u;
            }
            f64::from(sum) / f64::from(total)
        })
    });
    println!();
    println!(
        "{:>10} {:>12} {:>18}",
        "t (hours)", "P(all up)", "E[capacity frac]"
    );
    for &t in &[0.0, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 12.0, 48.0, 720.0] {
        let ups2 = ups.clone();
        let p_all_up = solved
            .transient_probability(t, |m| {
                ups2.iter().zip(&counts).all(|(&p, &c)| m.tokens(p) == c)
            })
            .expect("transient solves");
        let ups3 = ups.clone();
        // E[capacity] via predicate decomposition: sum over levels.
        let mut expected_capacity = 0.0;
        for level in 0..=total {
            let ups4 = ups3.clone();
            let p_level = solved
                .transient_probability(t, move |m| {
                    ups4.iter().map(|&p| m.tokens(p)).sum::<u32>() == level
                })
                .expect("transient solves");
            expected_capacity += p_level * f64::from(level) / f64::from(total);
        }
        println!("{t:>10.2} {p_all_up:>12.6} {expected_capacity:>18.6}");
    }
    println!();
    println!("the network starts fully up; each tier dips independently once");
    println!("per month, and the transient converges to the steady state.");
}
