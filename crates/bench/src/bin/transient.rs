//! Extension: transient analysis — the capacity dip while a patch round
//! propagates through the network. Thin shim over
//! `redeval_bench::reports::studies::transient` (equivalently:
//! `redeval transient`).

fn main() {
    redeval_bench::cli::shim("transient");
}
