//! Regenerates **Figure 7** — the six-metric radar comparison of the five
//! redundancy designs before (a) and after (b) patch — as CSV/tables, plus
//! the paper's Equation-(4) region analysis.

use redeval::case_study;
use redeval::charts::{radar_csv, radar_data, radar_table, RADAR_AXES};
use redeval::decision::MultiBounds;
use redeval_bench::header;

fn main() {
    let evaluator = case_study::evaluator().expect("evaluator builds");
    let designs = case_study::five_designs();
    let evals = evaluator.evaluate_all(&designs).expect("designs evaluate");

    println!("radar axes: {}", RADAR_AXES.join(" | "));

    header("Figure 7(a): before patch");
    let before = radar_data(&evals, false);
    print!("{}", radar_table(&before));
    println!();
    print!("{}", radar_csv(&before));

    header("Figure 7(b): after patch");
    let after = radar_data(&evals, true);
    print!("{}", radar_table(&after));
    println!();
    print!("{}", radar_csv(&after));

    header("paper's qualitative observations, checked");
    let aim_before: Vec<f64> = before.iter().map(|s| s.values[2]).collect();
    println!(
        "AIM identical across designs before patch: {}",
        aim_before.iter().all(|&a| (a - aim_before[0]).abs() < 1e-9)
    );
    let d = |i: usize| &after[i].values;
    println!(
        "designs 1 and 2 share NoAP and NoEV after patch: {}",
        d(0)[4] == d(1)[4] && d(0)[3] == d(1)[3]
    );
    println!(
        "only design 3 (2 WEB) has more entry points after patch: {}",
        d(2)[0] > d(0)[0] && d(1)[0] == d(0)[0] && d(3)[0] == d(0)[0] && d(4)[0] == d(0)[0]
    );
    println!(
        "design 4 (2 APP) has the highest COA: {}",
        (0..5).all(|i| after[3].values[5] >= after[i].values[5])
    );

    header("Equation (4) regions");
    for (label, bounds, expect) in [
        (
            "region 1: φ=0.2, ξ=9, ω=2, κ=1, ψ=0.9962",
            MultiBounds {
                max_asp: 0.2,
                max_noev: 9,
                max_noap: 2,
                max_noep: 1,
                min_coa: 0.9962,
            },
            vec!["1 DNS + 1 WEB + 2 APP + 1 DB"],
        ),
        (
            "region 2: φ=0.1, ξ=7, ω=1, κ=1, ψ=0.9961",
            MultiBounds {
                max_asp: 0.1,
                max_noev: 7,
                max_noap: 1,
                max_noep: 1,
                min_coa: 0.9961,
            },
            vec!["2 DNS + 1 WEB + 1 APP + 1 DB"],
        ),
    ] {
        let region: Vec<&str> = bounds
            .region(&evals)
            .iter()
            .map(|e| e.name.as_str())
            .collect();
        println!("{label}");
        for name in &region {
            println!("    {name}");
        }
        println!(
            "  -> matches the paper's region: {}",
            if region == expect { "yes" } else { "NO" }
        );
        println!();
    }
}
