//! Regenerates **Figure 7** — the six-metric radar comparison plus the
//! Equation-(4) regions. Thin shim over
//! `redeval_bench::reports::figures::fig7` (equivalently: `redeval fig 7`).

fn main() {
    redeval_bench::cli::shim("fig7");
}
