//! Regenerates **Table III** — the guard functions of the server SRN —
//! by probing the guards of the constructed net against synthetic
//! markings, proving each implemented guard matches its paper definition.

use redeval::case_study;
use redeval_avail::ServerModel;
use redeval_bench::header;

fn main() {
    header("Table III: guard functions in the SRN sub-models for a server");

    let model = ServerModel::build(&case_study::dns_params());
    let net = model.net();

    // The paper's guard table, expressed as (transition, definition).
    let rows = [
        ("Tosd", "if (#Phwd == 1) 1 else 0"),
        ("Tosdrb", "if (#Phwup == 1) 1 else 0"),
        ("Tosfup", "if (#Phwup == 1) 1 else 0"),
        ("Tosptrig", "if (#Psvcp == 1) 1 else 0"),
        ("Tosp", "if (#Phwup == 1) 1 else 0"),
        ("Tosrpd", "if (#Phwd == 1) 1 else 0"),
        ("Tospd", "if (#Phwd == 1) 1 else 0"),
        ("Tosprb", "if (#Phwup == 1) 1 else 0"),
        ("Tsvcd", "if (#Phwd == 1 || #Posfd == 1) 1 else 0"),
        ("Tsvcdrb", "if (#Phwup == 1 && #Posup == 1) 1 else 0"),
        ("Tsvcfup", "if (#Phwup == 1 && #Posup == 1) 1 else 0"),
        ("Tsvcptrig", "if (#Ptrigger == 1) 1 else 0"),
        ("Tsvcp", "if (#Phwup == 1 && #Posup == 1) 1 else 0"),
        ("Tsvcrpd", "if (#Phwd == 1 || #Posfd == 1) 1 else 0"),
        ("Tsvcrrb", "if (#Posp == 1) 1 else 0"),
        ("Tsvcrrbd", "if (#Phwd == 1 || #Posfd == 1) 1 else 0"),
        ("Tsvcprb", "if (#Phwup == 1 && #Posup == 1) 1 else 0"),
        (
            "Tinterval",
            "if (#Psvcup == 1 || #Psvcd == 1 || #Psvcfd == 1) 1 else 0",
        ),
        (
            "Tpolicy",
            "if (#Psvcup == 1) 1 else 0  (paper text: service up)",
        ),
        ("Treset", "if (#Posp == 1) 1 else 0"),
    ];

    println!("{:<11} definition", "guard of");
    for (t, def) in rows {
        let present = net.find_transition(t).is_some();
        println!(
            "{:<11} {}{}",
            t,
            def,
            if present {
                ""
            } else {
                "   <-- MISSING TRANSITION"
            }
        );
    }

    println!();
    println!(
        "net: {} places, {} transitions (paper Fig. 5 structure)",
        net.place_count(),
        net.transition_count()
    );
    println!();
    println!("additional freeze guards on Thwd/Tosfd/Tsvcfd realize the paper's");
    println!("assumptions that hardware, OS and applications do not fail during");
    println!("the patch period (Section III-D).");
}
