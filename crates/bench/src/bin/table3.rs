//! Regenerates **Table III** — the guard functions of the server SRN,
//! probed against the constructed net. Thin shim over
//! `redeval_bench::reports::tables::table3` (equivalently: `redeval table 3`).

fn main() {
    redeval_bench::cli::shim("table3");
}
