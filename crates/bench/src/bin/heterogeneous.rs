//! Extension (paper §V "systems"): heterogeneous redundancy — the
//! redundant server runs a *different* software stack, so it carries a
//! different vulnerability set and patch profile than its sibling.
//!
//! The paper's key caveat is that identical redundant servers double the
//! attack surface; this report quantifies how a diverse replica changes
//! the picture: attack paths still double, but an attacker must now master
//! two distinct exploit chains, so the noisy-or ASP grows less than with
//! identical replicas (and AND-style co-compromise metrics fall sharply).

use redeval::exec::{Experiment, Scenario};
use redeval::{
    AttackTree, Design, Durations, NetworkSpec, PatchPolicy, ServerParams, TierSpec, Vulnerability,
};
use redeval_bench::header;

/// Base web tier vulnerability: trivially exploitable remote root.
fn stack_a_tree() -> AttackTree {
    AttackTree::leaf(Vulnerability::new("CVE-A (apache stack)", 10.0, 0.9))
}

/// Diverse stack: harder, two-step exploit.
fn stack_b_tree() -> AttackTree {
    AttackTree::and(vec![
        AttackTree::leaf(Vulnerability::new("CVE-B1 (nginx stack)", 2.9, 0.8)),
        AttackTree::leaf(Vulnerability::new("CVE-B2 (kernel lpe)", 10.0, 0.39)),
    ])
}

fn db_tier() -> TierSpec {
    TierSpec {
        name: "db".into(),
        count: 1,
        params: ServerParams::builder("db")
            .service_patch(Durations::minutes(10.0), Durations::minutes(5.0))
            .os_patch(Durations::minutes(30.0), Durations::minutes(10.0))
            .build(),
        tree: Some(AttackTree::leaf(Vulnerability::new("CVE-DB", 10.0, 0.39))),
        entry: false,
        target: true,
    }
}

fn web_tier(name: &str, tree: AttackTree) -> TierSpec {
    TierSpec {
        name: name.into(),
        count: 1,
        params: ServerParams::builder(name)
            .service_patch(Durations::minutes(10.0), Durations::minutes(5.0))
            .os_patch(Durations::minutes(10.0), Durations::minutes(10.0))
            .build(),
        tree: Some(tree),
        entry: true,
        target: false,
    }
}

fn scenario(label: &str, spec: NetworkSpec, counts: &[u32]) -> Scenario {
    Scenario::new(
        label,
        spec,
        Design::new(label, counts.to_vec()),
        PatchPolicy::CriticalOnly(8.0),
    )
}

fn main() {
    header("heterogeneous redundancy (web tier, after patch)");

    // Three different topologies in one batch: the execution layer takes
    // arbitrary scenario lists, not just regular grids.
    let scenarios = vec![
        // No redundancy.
        scenario(
            "single web (stack A)",
            NetworkSpec::new(
                vec![web_tier("web", stack_a_tree()), db_tier()],
                vec![(0, 1)],
            ),
            &[1, 1],
        ),
        // Identical redundancy: two stack-A servers.
        scenario(
            "2x web (identical A+A)",
            NetworkSpec::new(
                vec![web_tier("web", stack_a_tree()), db_tier()],
                vec![(0, 1)],
            ),
            &[2, 1],
        ),
        // Heterogeneous redundancy: one stack-A and one stack-B server,
        // modelled as two single-server tiers feeding the same database.
        scenario(
            "2x web (diverse A+B)",
            NetworkSpec::new(
                vec![
                    web_tier("webA", stack_a_tree()),
                    web_tier("webB", stack_b_tree()),
                    db_tier(),
                ],
                vec![(0, 2), (1, 2)],
            ),
            &[1, 1, 1],
        ),
    ];
    for e in Experiment::new(scenarios)
        .run()
        .expect("scenarios evaluate")
    {
        println!(
            "{:<26} ASP {:>6.4}  NoEV {:>2}  NoAP {:>2}  COA {:.5}",
            e.name,
            e.after.attack_success_probability,
            e.after.exploitable_vulnerabilities,
            e.after.attack_paths,
            e.coa
        );
    }

    println!();
    println!("identical replicas double the attack surface with the *same*");
    println!("exploit; the diverse replica adds a second, harder chain — its");
    println!("marginal ASP increase is smaller while COA gains are identical.");
}
