//! Extension (paper §V "systems"): heterogeneous redundancy — a diverse
//! replica carries a different vulnerability set and patch profile than
//! its sibling. Thin shim over
//! `redeval_bench::reports::studies::heterogeneous` (equivalently:
//! `redeval heterogeneous`).

fn main() {
    redeval_bench::cli::shim("heterogeneous");
}
