//! Machine-readable perf harness for the steady-state solvers: the
//! states-vs-solve-time curve behind the `ctmc_solvers` criterion bench.
//!
//! For birth–death machine-repair chains of growing size it times
//!
//! * **GTH** — direct dense elimination, O(n³) (capped at 1024 states);
//! * **Gauss–Seidel** — sparse iterative sweeps;
//! * **power** — power iteration on the uniformized DTMC;
//! * **closed form** — the birth–death product formula, the reference —
//!
//! cross-checks every solver against the closed form (max absolute
//! probability deviation), and writes `BENCH_solver.json` with one
//! curve point per (states, method).
//!
//! Usage: `solver_bench` for the full curve (16 … 4096 states), or
//! `solver_bench --smoke` for the CI-sized prefix (16 … 256, written to
//! `BENCH_solver_smoke.json` so the committed full record stays intact).

use std::time::Instant;

use redeval_bench::header;
use redeval_markov::{BirthDeath, SteadyStateMethod, SteadyStateOptions};

/// Largest size the cubic dense GTH elimination is timed at.
const GTH_CAP: usize = 1024;

struct Point {
    states: usize,
    method: &'static str,
    secs: f64,
    max_abs_err: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: &[usize] = if smoke {
        &[16, 64, 256]
    } else {
        &[16, 64, 256, 1024, 4096]
    };
    header(&format!(
        "solver bench: machine-repair chains of {sizes:?} states"
    ));

    let mut points: Vec<Point> = Vec::new();
    for &n in sizes {
        let bd = BirthDeath::machine_repair(n, 0.01, 1.0);
        let ctmc = bd.to_ctmc();

        let t0 = Instant::now();
        let reference = bd.steady_state().expect("closed form solves");
        let closed_secs = t0.elapsed().as_secs_f64();
        points.push(Point {
            states: n,
            method: "closed_form",
            secs: closed_secs,
            max_abs_err: 0.0,
        });
        println!("{n:>5} states  closed_form   {closed_secs:>10.6} s");

        for (method, label) in [
            (SteadyStateMethod::Gth, "gth"),
            (SteadyStateMethod::GaussSeidel, "gauss_seidel"),
            (SteadyStateMethod::Power, "power"),
        ] {
            if method == SteadyStateMethod::Gth && n > GTH_CAP {
                println!("{n:>5} states  {label:<13} skipped (O(n³) dense elimination)");
                continue;
            }
            let opts = SteadyStateOptions {
                method,
                tolerance: 1e-10,
                ..Default::default()
            };
            let t0 = Instant::now();
            let pi = ctmc
                .steady_state_with(&opts)
                .unwrap_or_else(|e| panic!("{label} solves {n} states: {e}"));
            let secs = t0.elapsed().as_secs_f64();
            let max_abs_err = pi
                .iter()
                .zip(&reference)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert!(
                max_abs_err < 1e-6,
                "{label} deviates from the closed form by {max_abs_err:e} at {n} states"
            );
            println!("{n:>5} states  {label:<13} {secs:>10.6} s  (max |Δπ| {max_abs_err:.2e})");
            points.push(Point {
                states: n,
                method: label,
                secs,
                max_abs_err,
            });
        }
    }

    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"states\": {}, \"method\": \"{}\", \"secs\": {:.6}, \
                 \"max_abs_err\": {:.3e}}}",
                p.states, p.method, p.secs, p.max_abs_err
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"solver\",\n  \"model\": \"birth_death_machine_repair\",\n  \
         \"lambda\": 0.01,\n  \"mu\": 1.0,\n  \"gth_cap\": {GTH_CAP},\n  \"curve\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = if smoke {
        "BENCH_solver_smoke.json"
    } else {
        "BENCH_solver.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("{path} written: {e}"));
    println!();
    println!("wrote {path}");
}
