//! Regenerates **Table II** — security metrics for the example network
//! before and after patch — and reports the deviation from the paper for
//! every cell, including the documented ASP/NoEV caveats (EXPERIMENTS.md).

use redeval::case_study;
use redeval::{AspStrategy, MetricsConfig, OrCombine};
use redeval_bench::{compare, header};

fn main() {
    header("Table II: security metrics for the example network");

    let harm = case_study::network().build_harm();
    let cfg = MetricsConfig::default();
    let before = harm.metrics(&cfg);
    let after_harm = harm.patched_critical(8.0);
    let after = after_harm.metrics(&cfg);

    println!(
        "{:<14} {:>8} {:>8} {:>6} {:>6} {:>6}",
        "", "AIM", "ASP", "NoEV", "NoAP", "NoEP"
    );
    println!(
        "{:<14} {:>8.1} {:>8.3} {:>6} {:>6} {:>6}",
        "before patch",
        before.attack_impact,
        before.attack_success_probability,
        before.exploitable_vulnerabilities,
        before.attack_paths,
        before.entry_points
    );
    println!(
        "{:<14} {:>8.1} {:>8.3} {:>6} {:>6} {:>6}",
        "after patch",
        after.attack_impact,
        after.attack_success_probability,
        after.exploitable_vulnerabilities,
        after.attack_paths,
        after.entry_points
    );

    header("paper-vs-measured");
    compare("AIM before", 52.2, before.attack_impact);
    compare("AIM after", 42.2, after.attack_impact);
    compare("ASP before", 1.0, before.attack_success_probability);
    compare("NoAP before", 8.0, before.attack_paths as f64);
    compare("NoAP after", 4.0, after.attack_paths as f64);
    compare("NoEP before", 3.0, before.entry_points as f64);
    compare("NoEP after", 2.0, after.entry_points as f64);
    compare("NoEV after", 11.0, after.exploitable_vulnerabilities as f64);
    compare(
        "NoEV before (paper prints 25; see EXPERIMENTS.md)",
        25.0,
        before.exploitable_vulnerabilities as f64,
    );

    header("ASP after patch under every aggregation strategy");
    for (label, strategy, combine) in [
        ("max path, max OR", AspStrategy::MaxPath, OrCombine::Max),
        (
            "max path, noisy OR",
            AspStrategy::MaxPath,
            OrCombine::NoisyOr,
        ),
        (
            "exact reliability",
            AspStrategy::Reliability,
            OrCombine::NoisyOr,
        ),
        (
            "noisy-or over paths, max OR",
            AspStrategy::NoisyOrPaths,
            OrCombine::Max,
        ),
        (
            "noisy-or over paths, noisy OR",
            AspStrategy::NoisyOrPaths,
            OrCombine::NoisyOr,
        ),
    ] {
        let m = after_harm.metrics(&MetricsConfig {
            asp: strategy,
            or_combine: combine,
            ..Default::default()
        });
        println!("{label:<34} ASP = {:.4}", m.attack_success_probability);
    }
    println!();
    println!("paper value 0.265 lies inside this strategy family; its exact");
    println!("formula is not derivable from the paper (EXPERIMENTS.md, E-ASP).");
}
