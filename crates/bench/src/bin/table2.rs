//! Regenerates **Table II** — security metrics before and after patch,
//! with the paper deviation for every cell. Thin shim over
//! `redeval_bench::reports::tables::table2` (equivalently: `redeval table 2`).

fn main() {
    redeval_bench::cli::shim("table2");
}
