//! Ablation (paper §V "patch schedule"): sweeps the patch interval and the
//! criticality threshold, reporting the COA/security trade-off for the
//! case-study design.

use redeval::case_study;
use redeval::{Durations, Evaluator, MetricsConfig, NetworkSpec, PatchPolicy};
use redeval_bench::header;

fn with_interval(days: f64) -> NetworkSpec {
    let base = case_study::network();
    let tiers = base
        .tiers()
        .iter()
        .cloned()
        .map(|mut t| {
            t.params.patch_interval = Durations::days(days);
            t
        })
        .collect();
    NetworkSpec::new(tiers, base.edges().to_vec())
}

fn main() {
    header("patch-interval sweep (case-study network, 1+2+2+1)");
    println!(
        "{:>10} {:>10} {:>14} {:>16}",
        "interval", "COA", "downtime h/mo", "mean exposure"
    );
    for days in [3.5, 7.0, 14.0, 30.0, 60.0, 90.0, 180.0, 365.0] {
        let evaluator = Evaluator::new(with_interval(days)).expect("evaluator builds");
        let e = evaluator
            .evaluate("case", &[1, 2, 2, 1])
            .expect("evaluates");
        println!(
            "{:>8.1} d {:>10.5} {:>14.2} {:>13.1} d",
            days,
            e.coa,
            (1.0 - e.coa) * 720.0,
            // A vulnerability disclosed uniformly within a cycle waits on
            // average half the interval for its patch.
            days / 2.0
        );
    }
    println!();
    println!("COA falls as patching gets more frequent (more patch windows),");
    println!("while security exposure to newly disclosed criticals shrinks.");

    header("criticality-threshold sweep (monthly patching)");
    println!(
        "{:>10} {:>8} {:>6} {:>6} {:>6}",
        "threshold", "ASP", "NoEV", "NoAP", "NoEP"
    );
    for threshold in [9.5, 9.0, 8.0, 7.0, 6.0, 5.0, 4.0, 0.0] {
        let evaluator = Evaluator::with_options(
            case_study::network(),
            MetricsConfig::default(),
            PatchPolicy::CriticalOnly(threshold),
        )
        .expect("evaluator builds");
        let e = evaluator
            .evaluate("case", &[1, 2, 2, 1])
            .expect("evaluates");
        println!(
            "{:>10.1} {:>8.4} {:>6} {:>6} {:>6}",
            threshold,
            e.after.attack_success_probability,
            e.after.exploitable_vulnerabilities,
            e.after.attack_paths,
            e.after.entry_points
        );
    }
    println!();
    println!("threshold 8.0 is the paper's policy; lowering it removes the");
    println!("AND-pair footholds and eventually closes every attack path.");
}
