//! Ablation (paper §V "patch schedule"): patch-interval and
//! criticality-threshold sweeps on the batch execution layer. Thin shim
//! over `redeval_bench::reports::studies::sweep` (equivalently:
//! `redeval sweep`).

fn main() {
    redeval_bench::cli::shim("sweep");
}
