//! Ablation (paper §V "patch schedule"): sweeps the patch interval and the
//! criticality threshold, reporting the COA/security trade-off for the
//! case-study design.
//!
//! Both sweeps are grids on the batch execution layer: the interval sweep
//! is a spec-variant axis, the threshold sweep a patch-policy axis, and
//! the shared analysis cache dedupes every repeated tier solve.

use redeval::case_study;
use redeval::exec::Sweep;
use redeval::{Design, PatchPolicy};
use redeval_bench::{header, CASE_STUDY_COUNTS, CVSS_THRESHOLDS, PATCH_WINDOWS_DAYS};

fn case_design() -> Design {
    Design::new("case", CASE_STUDY_COUNTS.to_vec())
}

fn main() {
    header("patch-interval sweep (case-study network, 1+2+2+1)");
    println!(
        "{:>10} {:>10} {:>14} {:>16}",
        "interval", "COA", "downtime h/mo", "mean exposure"
    );
    let evals = Sweep::new(case_study::network())
        .patch_intervals_days(&PATCH_WINDOWS_DAYS)
        .designs(vec![case_design()])
        .run()
        .expect("interval grid evaluates");
    for (days, e) in PATCH_WINDOWS_DAYS.iter().zip(&evals) {
        println!(
            "{:>8.1} d {:>10.5} {:>14.2} {:>13.1} d",
            days,
            e.coa,
            (1.0 - e.coa) * 720.0,
            // A vulnerability disclosed uniformly within a cycle waits on
            // average half the interval for its patch.
            days / 2.0
        );
    }
    println!();
    println!("COA falls as patching gets more frequent (more patch windows),");
    println!("while security exposure to newly disclosed criticals shrinks.");

    header("criticality-threshold sweep (monthly patching)");
    println!(
        "{:>10} {:>8} {:>6} {:>6} {:>6}",
        "threshold", "ASP", "NoEV", "NoAP", "NoEP"
    );
    let evals = Sweep::new(case_study::network())
        .designs(vec![case_design()])
        .policies(
            CVSS_THRESHOLDS
                .iter()
                .map(|&t| PatchPolicy::CriticalOnly(t))
                .collect(),
        )
        .run()
        .expect("threshold grid evaluates");
    for (threshold, e) in CVSS_THRESHOLDS.iter().zip(&evals) {
        println!(
            "{:>10.1} {:>8.4} {:>6} {:>6} {:>6}",
            threshold,
            e.after.attack_success_probability,
            e.after.exploitable_vulnerabilities,
            e.after.attack_paths,
            e.after.entry_points
        );
    }
    println!();
    println!("threshold 8.0 is the paper's policy; lowering it removes the");
    println!("AND-pair footholds and eventually closes every attack path.");
}
