//! Machine-readable perf harness for the attacker–defender equilibrium
//! iteration (ISSUE 9 acceptance): convergence behaviour and the
//! best-response search savings.
//!
//! Two stages:
//!
//! 1. **Paper case study**: the Gauss-Seidel iteration at
//!    `max_redundancy 4`; the run must converge to a mutual best
//!    response, the pruned attacker best response at the final profile
//!    is asserted **identical** to the exhaustive one, and the
//!    iterations-to-convergence, per-oracle evaluation counts and prune
//!    savings are recorded.
//! 2. **Generated fleet**: a seeded `iot_swarm` document with five entry
//!    tiers (31 attacker masks per round) — the attacker's prune and the
//!    defender's branch-and-bound both face a space worth skipping.
//!
//! Writes `BENCH_equilibrium.json` (wall times, iteration counts, BR
//! evaluations saved by pruning vs exhaustive).
//! `equilibrium_bench [threads]` (default 4), or
//! `equilibrium_bench --smoke` for a CI-sized variant (smaller fleet,
//! written to `BENCH_equilibrium_smoke.json` so the committed full
//! record stays intact).

use std::time::Instant;

use redeval::equilibrium::{EquilibriumAnalyzer, EquilibriumOutcome};
use redeval::scenario::generate::{self, Family, GenParams};
use redeval::scenario::{builtin, ScenarioDoc};
use redeval_bench::{arg_or, header};

/// The fleet document: a seeded IoT swarm whose `tiers - 3` sensor
/// tiers are all attacker entry points. One policy: with a policy that
/// zeroes every mask's ASP in the list (the generator's second policy
/// is `patch all`), the attacker's payoff ties degenerately and the
/// best responses cycle — a legitimate outcome the cycle detector
/// reports, but not the convergence benchmark wanted here.
fn fleet_doc(tiers: u32) -> ScenarioDoc {
    generate::generate(
        Family::IotSwarm,
        &GenParams {
            tiers,
            redundancy: 3,
            designs: 1,
            policies: 1,
        },
        0,
    )
}

fn run_iteration(
    doc: &ScenarioDoc,
    max_redundancy: u32,
    threads: usize,
) -> (EquilibriumOutcome, f64) {
    let analyzer = EquilibriumAnalyzer::from_scenario(doc)
        .expect("document converts")
        .max_redundancy(max_redundancy)
        .threads(threads);
    let t0 = Instant::now();
    let outcome = analyzer.run().expect("iteration completes");
    (outcome, t0.elapsed().as_secs_f64())
}

/// One stage: run, verify the pruned attacker oracle against the
/// exhaustive one at the final profile, print, and return the JSON
/// fragment.
fn stage(doc: &ScenarioDoc, max_redundancy: u32, threads: usize) -> String {
    header(&format!(
        "equilibrium bench: {} at max_redundancy {max_redundancy}, {threads} threads",
        doc.name
    ));
    let (outcome, secs) = run_iteration(doc, max_redundancy, threads);
    assert!(
        outcome.converged,
        "the iteration must converge on the bench scenarios"
    );

    // The pruned attacker oracle must agree byte-for-byte with the
    // exhaustive enumeration at the final profile (the determinism
    // contract the differential suite pins on small corpora).
    let analyzer = EquilibriumAnalyzer::from_scenario(doc)
        .expect("document converts")
        .max_redundancy(max_redundancy)
        .threads(threads);
    let exhaustive = analyzer
        .attacker_response_exhaustive(&outcome.defender.counts, outcome.policy_idx)
        .expect("exhaustive attacker response");
    assert_eq!(exhaustive.mask, outcome.attacker_mask);
    assert_eq!(exhaustive.asp.to_bits(), outcome.attacker_asp.to_bits());

    let attacker_space_total = outcome.attacker_space_masks * outcome.iterations as u64;
    let attacker_saved = outcome.attacker_masks_pruned;
    println!(
        "converged                {:>8} iterations ({:.2} s wall)",
        outcome.iterations, secs
    );
    println!(
        "defender oracle          {:>8} cells evaluated of {:.3e} per round ({:.1}%)",
        outcome.defender_evaluated_cells,
        outcome.defender_space_cells,
        outcome.defender_evaluated_fraction() * 100.0
    );
    println!(
        "attacker oracle          {:>8} masks evaluated, {} pruned of {} candidates",
        outcome.attacker_masks_evaluated, attacker_saved, attacker_space_total
    );
    println!(
        "profile                  {} | {} vs entries [{}]",
        outcome.defender.name,
        outcome.policy_idx,
        outcome.attacker_entry_tiers().join(", ")
    );
    format!(
        "{{\n    \"scenario\": \"{}\",\n    \"max_redundancy\": {max_redundancy},\n    \
         \"threads\": {threads},\n    \"secs\": {secs:.3},\n    \
         \"converged\": {},\n    \"iterations\": {},\n    \
         \"defender_evaluated_cells\": {},\n    \"defender_space_cells\": {:.0},\n    \
         \"defender_evaluated_fraction\": {:.5},\n    \
         \"attacker_masks_evaluated\": {},\n    \"attacker_masks_pruned\": {},\n    \
         \"attacker_space_masks\": {},\n    \"attacker_pruned_fraction\": {:.5},\n    \
         \"attacker_oracle_matches_exhaustive\": true\n  }}",
        doc.name,
        outcome.converged,
        outcome.iterations,
        outcome.defender_evaluated_cells,
        outcome.defender_space_cells,
        outcome.defender_evaluated_fraction(),
        outcome.attacker_masks_evaluated,
        outcome.attacker_masks_pruned,
        outcome.attacker_space_masks,
        outcome.attacker_pruned_fraction(),
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let threads: usize = arg_or(1, 4);

    // Stage 1: the paper's case study (two entry tiers).
    let case = stage(&builtin::paper_case_study(), 4, threads);

    // Stage 2: a generated fleet with a real attacker space.
    let (tiers, mr) = if smoke { (6, 2) } else { (8, 3) };
    let fleet = stage(&fleet_doc(tiers), mr, threads);

    let json = format!(
        "{{\n  \"bench\": \"equilibrium\",\n  \"case_study\": {case},\n  \"fleet\": {fleet}\n}}\n"
    );
    let path = if smoke {
        "BENCH_equilibrium_smoke.json"
    } else {
        "BENCH_equilibrium.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("{path} written: {e}"));
    println!();
    println!("wrote {path}");
}
