//! Report builders for the declarative scenario gallery and the serving
//! path.
//!
//! [`scenario_suite`] is the registry entry: every bundled scenario
//! evaluated end-to-end (designs × policies on the batch engine), pinned
//! in the golden corpus like any other report. [`eval_report`] is the
//! same evaluation for a *single* document — the engine behind
//! `redeval eval --scenario FILE` — and [`sweep_report`] layers grid
//! axes (patch windows, policy lists, full design spaces) over a
//! document for `POST /v1/sweep`. The `_on` variants run the identical
//! computation on a shared [`Pool`] + [`AnalysisCache`] instead of
//! per-call scoped threads: that is what `redeval serve` wires in, and
//! the engine's bitwise-determinism guarantee (DESIGN.md §5) is what
//! makes the served bytes equal the CLI's.

use std::sync::Arc;

use redeval::exec::{AnalysisCache, Pool, Sweep};
use redeval::output::{Report, Table, Value};
use redeval::scenario::{builtin, generate, ScenarioDoc};
use redeval::{DesignEvaluation, EvalError, ScenarioError};
use redeval_server::SweepRequest;

/// Largest design × policy × window grid one `/v1/sweep` request may
/// ask for; beyond it the request is rejected as a schema violation
/// rather than monopolizing the server.
pub const MAX_SWEEP_GRID: usize = 10_000;

/// How the grid is executed: per-call scoped threads (the CLI default)
/// or a shared, reusable pool + solve cache (the serving path).
pub(crate) type ExecOn<'a> = Option<(&'a Pool, &'a Arc<AnalysisCache>)>;

/// Runs a sweep grid on the chosen execution substrate. Both paths are
/// bitwise-identical by the engine contract.
fn run_grid(sweep: &Sweep, exec: ExecOn<'_>) -> Result<Vec<DesignEvaluation>, EvalError> {
    match exec {
        None => sweep.run(),
        Some((pool, cache)) => sweep.clone().share_cache(cache).build().run_on(pool),
    }
}

/// The standard design × policy evaluation table over computed results.
pub(crate) fn eval_table_from(name: &str, evals: &[DesignEvaluation]) -> Table {
    let mut t = Table::new(
        name,
        [
            "scenario",
            "asp_before",
            "asp",
            "aim",
            "noev",
            "noap",
            "noep",
            "coa",
            "availability",
        ],
    );
    for e in evals {
        t.add_row(vec![
            Value::from(e.name.as_str()),
            Value::from(e.before.attack_success_probability),
            Value::from(e.after.attack_success_probability),
            Value::from(e.after.attack_impact),
            Value::from(e.after.exploitable_vulnerabilities),
            Value::from(e.after.attack_paths),
            Value::from(e.after.entry_points),
            Value::from(e.coa),
            Value::from(e.availability),
        ]);
    }
    t
}

/// The design × policy evaluation table of one scenario document.
fn evaluation_table(name: &str, doc: &ScenarioDoc, exec: ExecOn<'_>) -> Result<Table, EvalError> {
    let evals = run_grid(&Sweep::from_scenario(doc)?, exec)?;
    Ok(eval_table_from(name, &evals))
}

/// The tier-topology table of one scenario document.
fn topology_table(name: &str, doc: &ScenarioDoc) -> Table {
    let mut t = Table::new(name, ["tier", "count", "tree", "entry", "target", "feeds"]);
    for tier in &doc.tiers {
        let feeds: Vec<&str> = doc
            .edges
            .iter()
            .filter(|(from, _)| *from == tier.name)
            .map(|(_, to)| to.as_str())
            .collect();
        t.add_row(vec![
            Value::from(tier.name.as_str()),
            Value::from(tier.count),
            match &tier.tree {
                Some(tree) => Value::from(tree.as_str()),
                None => Value::Null,
            },
            Value::from(tier.entry),
            Value::from(tier.target),
            Value::from(feeds.join("; ")),
        ]);
    }
    t
}

/// Evaluates one scenario document end-to-end into a report named
/// `eval_<scenario>`: summary facts, the tier topology and the full
/// design × policy evaluation table.
///
/// # Errors
///
/// Propagates scenario validation and solver errors.
pub fn eval_report(doc: &ScenarioDoc) -> Result<Report, EvalError> {
    eval_report_impl(doc, None)
}

/// [`eval_report`] on a shared pool and solve cache — the
/// `POST /v1/eval` engine. Byte-identical output to [`eval_report`].
///
/// # Errors
///
/// Propagates scenario validation and solver errors.
pub fn eval_report_on(
    doc: &ScenarioDoc,
    pool: &Pool,
    cache: &Arc<AnalysisCache>,
) -> Result<Report, EvalError> {
    eval_report_impl(doc, Some((pool, cache)))
}

fn eval_report_impl(doc: &ScenarioDoc, exec: ExecOn<'_>) -> Result<Report, EvalError> {
    // The same grid cap the sweep path enforces: an eval grid is
    // designs × policies, and a pathological document must come back as
    // a structured schema error, never a grid that monopolizes the
    // server or the CLI.
    let cells = (doc.designs.len() as u128).saturating_mul(doc.policies.len() as u128);
    if cells > MAX_SWEEP_GRID as u128 {
        return Err(EvalError::Scenario(ScenarioError::Invalid {
            at: "request".to_string(),
            message: format!(
                "grid of {cells} scenarios exceeds the limit of {MAX_SWEEP_GRID}; \
                 `redeval optimize` (POST /v1/optimize) searches larger spaces \
                 without materializing the grid"
            ),
        }));
    }
    let mut r = Report::new(
        format!("eval_{}", doc.name),
        format!("Scenario evaluation — {}", doc.title),
    );
    if !doc.description.is_empty() {
        r.note(doc.description.clone());
    }
    let policies: Vec<String> = doc.policies.iter().map(ToString::to_string).collect();
    r.keys([
        ("scenario", Value::from(doc.name.as_str())),
        ("tiers", Value::from(doc.tiers.len())),
        (
            "servers",
            Value::from(doc.tiers.iter().map(|t| u64::from(t.count)).sum::<u64>() as i64),
        ),
        ("vulnerabilities", Value::from(doc.vulnerabilities.len())),
        ("designs", Value::from(doc.designs.len())),
        ("policies", Value::from(policies.join("; "))),
    ]);
    r.table(topology_table("topology", doc));
    r.table(evaluation_table("evaluations", doc, exec)?);
    Ok(r)
}

/// Evaluates a sweep request — a scenario document plus optional grid
/// axes — into a report named `sweep_<scenario>`. Axis semantics:
/// `max_redundancy` replaces the document's designs with the full
/// per-tier design space, `policies` overrides its policy list, and
/// `patch_windows_days` adds patch-interval variants of every tier.
///
/// # Errors
///
/// Scenario validation and solver errors, plus a schema violation when
/// the grid would exceed [`MAX_SWEEP_GRID`] points.
pub fn sweep_report(req: &SweepRequest) -> Result<Report, EvalError> {
    sweep_report_impl(req, None)
}

/// [`sweep_report`] on a shared pool and solve cache — the
/// `POST /v1/sweep` engine.
///
/// # Errors
///
/// As [`sweep_report`].
pub fn sweep_report_on(
    req: &SweepRequest,
    pool: &Pool,
    cache: &Arc<AnalysisCache>,
) -> Result<Report, EvalError> {
    sweep_report_impl(req, Some((pool, cache)))
}

fn sweep_report_impl(req: &SweepRequest, exec: ExecOn<'_>) -> Result<Report, EvalError> {
    let doc = &req.doc;
    let too_large = |grid: u128| {
        EvalError::Scenario(ScenarioError::Invalid {
            at: "request".to_string(),
            message: format!(
                "grid of {grid} scenarios exceeds the limit of {MAX_SWEEP_GRID}; \
                 `redeval optimize` (POST /v1/optimize) searches larger spaces \
                 without materializing the grid"
            ),
        })
    };
    // Bound the grid arithmetically BEFORE materializing anything:
    // `full_design_space` eagerly enumerates max_redundancy^tiers
    // designs, so a many-tier document must be rejected by this product,
    // not by an allocation attempt.
    let designs: u128 = match req.max_redundancy {
        Some(m) => {
            let per_tier = u128::from(m);
            let mut total: u128 = 1;
            for _ in 0..doc.tiers.len() {
                total = total.saturating_mul(per_tier);
            }
            total
        }
        None => doc.designs.len() as u128,
    };
    let policies_len = req.policies.as_ref().map_or(doc.policies.len(), Vec::len) as u128;
    let windows_len = req.patch_windows_days.as_ref().map_or(1, Vec::len) as u128;
    let projected = designs
        .saturating_mul(policies_len)
        .saturating_mul(windows_len);
    if projected > MAX_SWEEP_GRID as u128 {
        return Err(too_large(projected));
    }

    let mut sweep = Sweep::from_scenario(doc)?;
    if let Some(max_redundancy) = req.max_redundancy {
        sweep = sweep.full_design_space(max_redundancy);
    }
    if let Some(policies) = &req.policies {
        sweep = sweep.policies(policies.clone());
    }
    if let Some(days) = &req.patch_windows_days {
        sweep = sweep.patch_intervals_days(days);
    }
    let grid = sweep.len();
    if grid > MAX_SWEEP_GRID {
        return Err(too_large(grid as u128));
    }
    let evals = run_grid(&sweep, exec)?;
    let mut r = Report::new(
        format!("sweep_{}", doc.name),
        format!("Scenario sweep — {}", doc.title),
    );
    r.keys([
        ("scenario", Value::from(doc.name.as_str())),
        ("grid", Value::from(grid)),
        (
            "patch_windows_days",
            Value::from(req.patch_windows_days.as_ref().map_or(0, Vec::len)),
        ),
        (
            "policies",
            Value::from(req.policies.as_ref().map_or(doc.policies.len(), Vec::len)),
        ),
        (
            "max_redundancy",
            match req.max_redundancy {
                Some(m) => Value::from(m),
                None => Value::Null,
            },
        ),
    ]);
    r.table(eval_table_from("evaluations", &evals));
    Ok(r)
}

/// **Scenario suite** — every bundled scenario of
/// [`builtin::BUILTINS`] evaluated end-to-end through the scenario API;
/// the golden corpus pins the whole gallery's numbers.
pub fn scenario_suite() -> Report {
    let mut r = Report::new(
        "scenario_suite",
        "Bundled scenario gallery, evaluated through the declarative API",
    );
    let mut index = Table::new(
        "scenarios",
        ["scenario", "tiers", "servers", "designs", "policies"],
    );
    for s in builtin::BUILTINS {
        let doc = (s.build)();
        index.add_row(vec![
            Value::from(s.name),
            Value::from(doc.tiers.len()),
            Value::from(doc.tiers.iter().map(|t| u64::from(t.count)).sum::<u64>() as i64),
            Value::from(doc.designs.len()),
            Value::from(doc.policies.len()),
        ]);
    }
    r.table(index);
    for s in builtin::BUILTINS {
        let doc = (s.build)();
        // Round-trip through the canonical JSON first: what this report
        // pins is the *file* semantics, not the in-memory constructors.
        let doc = ScenarioDoc::from_json(&doc.to_json()).expect("builtin round-trips");
        r.check(doc.validate().is_ok());
        r.table(evaluation_table(s.name, &doc, None).expect("builtin evaluates"));
    }
    r.note(
        "every table is produced by Sweep::from_scenario over the canonical \
         JSON form of the bundled document — identical to what \
         `redeval eval --scenario <file>` computes.",
    );
    r
}

/// **Generator suite** — the pinned generator corpus
/// ([`generate::PINNED`]) regenerated in-process, self-checked
/// (byte-determinism, strict validation, round-trip equality) and
/// evaluated end-to-end; the golden pins both the corpus shape and its
/// numbers, so any drift in the generators is a test failure.
pub fn gen_suite() -> Report {
    let mut r = Report::new(
        "gen_suite",
        "Seeded generator corpus, evaluated through the declarative API",
    );
    let mut index = Table::new(
        "corpus",
        [
            "scenario",
            "family",
            "seed",
            "tiers",
            "servers",
            "vulnerabilities",
            "edges",
            "designs",
            "policies",
            "bytes",
        ],
    );
    for &(family, params, seed) in generate::PINNED {
        let doc = generate::generate(family, &params, seed);
        let json = doc.to_json();
        // Byte-determinism, strict validity and round-trip fidelity are
        // report checks: a regression flips `ok` in the golden.
        r.check(generate::generate(family, &params, seed).to_json() == json);
        r.check(doc.validate().is_ok());
        let back = ScenarioDoc::from_json(&json).expect("generated doc parses back");
        r.check(back == doc);
        index.add_row(vec![
            Value::from(doc.name.as_str()),
            Value::from(family.key()),
            Value::from(seed as i64),
            Value::from(doc.tiers.len()),
            Value::from(doc.tiers.iter().map(|t| u64::from(t.count)).sum::<u64>() as i64),
            Value::from(doc.vulnerabilities.len()),
            Value::from(doc.edges.len()),
            Value::from(doc.designs.len()),
            Value::from(doc.policies.len()),
            Value::from(json.len()),
        ]);
    }
    r.table(index);
    for &(family, params, seed) in generate::PINNED {
        let doc = generate::generate(family, &params, seed);
        // Evaluate the canonical-JSON form: these numbers are what
        // `redeval eval --scenario <generated file>` computes.
        let doc = ScenarioDoc::from_json(&doc.to_json()).expect("generated doc round-trips");
        let name = doc.name.clone();
        r.table(evaluation_table(&name, &doc, None).expect("generated doc evaluates"));
    }
    r.note(
        "the corpus is redeval::scenario::generate::PINNED — the same \
         (family, params, seed) triples whose canonical exports are \
         byte-pinned under tests/golden/gen/ and regenerated by the CI \
         gen-corpus job via `redeval gen`.",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_every_builtin_and_passes_checks() {
        let r = scenario_suite();
        assert!(r.ok);
        let json = r.to_json();
        for s in builtin::BUILTINS {
            assert!(json.contains(s.name), "missing {}", s.name);
        }
    }

    #[test]
    fn gen_suite_covers_every_pinned_doc_and_passes_checks() {
        let r = gen_suite();
        assert!(r.ok);
        let json = r.to_json();
        for &(family, params, seed) in generate::PINNED {
            let name = generate::generate(family, &params, seed).name;
            assert!(json.contains(&name), "missing {name}");
        }
    }

    #[test]
    fn oversized_eval_grids_are_rejected_upfront() {
        // 101 designs × 100 policies = 10 100 cells > the cap; the
        // rejection must be a structured schema error, not a grid run.
        let mut doc = builtin::paper_case_study();
        let base = doc.base_design();
        doc.designs = (0..101)
            .map(|i| redeval::Design::new(format!("d{i}"), base.counts.clone()))
            .collect();
        doc.policies = (0..100)
            .map(|i| redeval::PatchPolicy::CriticalOnly(f64::from(i) / 10.0))
            .collect();
        let e = eval_report(&doc).unwrap_err();
        assert!(e.to_string().contains("exceeds the limit"), "{e}");
    }

    #[test]
    fn eval_report_name_embeds_the_scenario_name() {
        let doc = builtin::ecommerce();
        let r = eval_report(&doc).unwrap();
        assert_eq!(r.name, "eval_ecommerce");
        assert!(r.ok);
        // 3 designs × 2 policies.
        let json = r.to_json();
        assert!(json.contains("\"designs\": 3"));
    }

    #[test]
    fn pooled_eval_report_is_byte_identical() {
        let pool = Pool::new(2);
        let cache = Arc::new(AnalysisCache::new());
        let doc = builtin::paper_case_study();
        let scoped = eval_report(&doc).unwrap().to_json();
        let pooled = eval_report_on(&doc, &pool, &cache).unwrap().to_json();
        assert_eq!(scoped, pooled);
        // The shared solve cache actually served the tier solves.
        assert!(cache.solves() > 0);
        // A second pooled run re-solves nothing.
        let solves = cache.solves();
        eval_report_on(&doc, &pool, &cache).unwrap();
        assert_eq!(cache.solves(), solves);
    }

    #[test]
    fn sweep_report_layers_axes_over_the_document() {
        let req = SweepRequest {
            doc: builtin::paper_case_study(),
            patch_windows_days: Some(vec![7.0, 30.0]),
            policies: Some(vec![redeval::PatchPolicy::None, redeval::PatchPolicy::All]),
            max_redundancy: None,
        };
        let r = sweep_report(&req).unwrap();
        assert_eq!(r.name, "sweep_paper_case_study");
        let json = r.to_json();
        // 2 windows × 5 designs × 2 policies.
        assert!(json.contains("\"grid\": 20"), "{json}");
        // Pooled execution, identical bytes.
        let pool = Pool::new(3);
        let cache = Arc::new(AnalysisCache::new());
        assert_eq!(
            sweep_report_on(&req, &pool, &cache).unwrap().to_json(),
            json
        );
    }

    #[test]
    fn oversized_sweep_grids_are_rejected_upfront() {
        let req = SweepRequest {
            doc: builtin::paper_case_study(),
            patch_windows_days: Some((1..=31).map(f64::from).collect()),
            policies: Some(
                (0..31)
                    .map(|i| redeval::PatchPolicy::CriticalOnly(f64::from(i) / 4.0))
                    .collect(),
            ),
            max_redundancy: Some(6), // 31 × 6^4 × 31 ≫ the limit
        };
        let e = sweep_report(&req).unwrap_err();
        assert!(e.to_string().contains("exceeds the limit"), "{e}");
    }

    #[test]
    fn astronomic_design_spaces_are_rejected_without_materializing() {
        // 8^16 designs must be rejected by arithmetic, not by an
        // allocation attempt — this test would OOM (not merely fail) if
        // full_design_space ran first.
        use redeval::scenario::{TierDef, TreeDef, VulnDef, VulnSource};
        use redeval::ServerParams;
        let mut doc = redeval::scenario::ScenarioDoc::new("wide", "Sixteen tiny tiers");
        doc.vulnerabilities = vec![VulnDef {
            id: "v".into(),
            cve: None,
            source: VulnSource::Explicit {
                impact: 5.0,
                probability: 0.5,
                base_score: None,
            },
        }];
        doc.trees = vec![("t".into(), TreeDef::Vuln("v".into()))];
        for i in 0..16 {
            doc.tiers.push(TierDef {
                name: format!("t{i}"),
                count: 1,
                params: ServerParams::builder(format!("t{i}")).build(),
                tree: Some("t".into()),
                entry: i == 0,
                target: i == 15,
            });
            if i > 0 {
                doc.edges.push((format!("t{}", i - 1), format!("t{i}")));
            }
        }
        doc.designs = vec![doc.base_design()];
        let req = SweepRequest {
            doc,
            patch_windows_days: None,
            policies: None,
            max_redundancy: Some(8),
        };
        let e = sweep_report(&req).unwrap_err();
        assert!(e.to_string().contains("exceeds the limit"), "{e}");
    }
}
