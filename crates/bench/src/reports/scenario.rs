//! Report builders for the declarative scenario gallery.
//!
//! [`scenario_suite`] is the registry entry: every bundled scenario
//! evaluated end-to-end (designs × policies on the batch engine), pinned
//! in the golden corpus like any other report. [`eval_report`] is the
//! same evaluation for a *single* document — the engine behind
//! `redeval eval --scenario FILE`, so user files and bundled scenarios
//! flow through identical code.

use redeval::exec::Sweep;
use redeval::output::{Report, Table, Value};
use redeval::scenario::{builtin, ScenarioDoc};
use redeval::EvalError;

/// The design × policy evaluation table of one scenario document.
fn evaluation_table(name: &str, doc: &ScenarioDoc) -> Result<Table, EvalError> {
    let mut t = Table::new(
        name,
        [
            "scenario",
            "asp_before",
            "asp",
            "aim",
            "noev",
            "noap",
            "noep",
            "coa",
            "availability",
        ],
    );
    for e in Sweep::from_scenario(doc)?.run()? {
        t.add_row(vec![
            Value::from(e.name.as_str()),
            Value::from(e.before.attack_success_probability),
            Value::from(e.after.attack_success_probability),
            Value::from(e.after.attack_impact),
            Value::from(e.after.exploitable_vulnerabilities),
            Value::from(e.after.attack_paths),
            Value::from(e.after.entry_points),
            Value::from(e.coa),
            Value::from(e.availability),
        ]);
    }
    Ok(t)
}

/// The tier-topology table of one scenario document.
fn topology_table(name: &str, doc: &ScenarioDoc) -> Table {
    let mut t = Table::new(name, ["tier", "count", "tree", "entry", "target", "feeds"]);
    for tier in &doc.tiers {
        let feeds: Vec<&str> = doc
            .edges
            .iter()
            .filter(|(from, _)| *from == tier.name)
            .map(|(_, to)| to.as_str())
            .collect();
        t.add_row(vec![
            Value::from(tier.name.as_str()),
            Value::from(tier.count),
            match &tier.tree {
                Some(tree) => Value::from(tree.as_str()),
                None => Value::Null,
            },
            Value::from(tier.entry),
            Value::from(tier.target),
            Value::from(feeds.join("; ")),
        ]);
    }
    t
}

/// Evaluates one scenario document end-to-end into a report named
/// `eval_<scenario>`: summary facts, the tier topology and the full
/// design × policy evaluation table.
///
/// # Errors
///
/// Propagates scenario validation and solver errors.
pub fn eval_report(doc: &ScenarioDoc) -> Result<Report, EvalError> {
    let mut r = Report::new(
        format!("eval_{}", doc.name),
        format!("Scenario evaluation — {}", doc.title),
    );
    if !doc.description.is_empty() {
        r.note(doc.description.clone());
    }
    let policies: Vec<String> = doc.policies.iter().map(ToString::to_string).collect();
    r.keys([
        ("scenario", Value::from(doc.name.as_str())),
        ("tiers", Value::from(doc.tiers.len())),
        (
            "servers",
            Value::from(doc.tiers.iter().map(|t| u64::from(t.count)).sum::<u64>() as i64),
        ),
        ("vulnerabilities", Value::from(doc.vulnerabilities.len())),
        ("designs", Value::from(doc.designs.len())),
        ("policies", Value::from(policies.join("; "))),
    ]);
    r.table(topology_table("topology", doc));
    r.table(evaluation_table("evaluations", doc)?);
    Ok(r)
}

/// **Scenario suite** — every bundled scenario of
/// [`builtin::BUILTINS`] evaluated end-to-end through the scenario API;
/// the golden corpus pins the whole gallery's numbers.
pub fn scenario_suite() -> Report {
    let mut r = Report::new(
        "scenario_suite",
        "Bundled scenario gallery, evaluated through the declarative API",
    );
    let mut index = Table::new(
        "scenarios",
        ["scenario", "tiers", "servers", "designs", "policies"],
    );
    for s in builtin::BUILTINS {
        let doc = (s.build)();
        index.add_row(vec![
            Value::from(s.name),
            Value::from(doc.tiers.len()),
            Value::from(doc.tiers.iter().map(|t| u64::from(t.count)).sum::<u64>() as i64),
            Value::from(doc.designs.len()),
            Value::from(doc.policies.len()),
        ]);
    }
    r.table(index);
    for s in builtin::BUILTINS {
        let doc = (s.build)();
        // Round-trip through the canonical JSON first: what this report
        // pins is the *file* semantics, not the in-memory constructors.
        let doc = ScenarioDoc::from_json(&doc.to_json()).expect("builtin round-trips");
        r.check(doc.validate().is_ok());
        r.table(evaluation_table(s.name, &doc).expect("builtin evaluates"));
    }
    r.note(
        "every table is produced by Sweep::from_scenario over the canonical \
         JSON form of the bundled document — identical to what \
         `redeval eval --scenario <file>` computes.",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_every_builtin_and_passes_checks() {
        let r = scenario_suite();
        assert!(r.ok);
        let json = r.to_json();
        for s in builtin::BUILTINS {
            assert!(json.contains(s.name), "missing {}", s.name);
        }
    }

    #[test]
    fn eval_report_name_embeds_the_scenario_name() {
        let doc = builtin::ecommerce();
        let r = eval_report(&doc).unwrap();
        assert_eq!(r.name, "eval_ecommerce");
        assert!(r.ok);
        // 3 designs × 2 policies.
        let json = r.to_json();
        assert!(json.contains("\"designs\": 3"));
    }
}
