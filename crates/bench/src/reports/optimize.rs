//! Report builder for the pruned design-space search.
//!
//! [`optimize_report`] is the engine behind `redeval optimize` and
//! `POST /v1/optimize`: it runs the branch-and-bound search of
//! [`redeval::optimize`] over the per-tier redundancy space of a
//! scenario document and reports the Pareto frontier on (after-patch
//! ASP ↓, COA ↑) together with the search counters. The frontier is
//! byte-identical to what exhaustively enumerating the grid and
//! filtering with `pareto_frontier_batch` would produce — that
//! equivalence is pinned by `tests/optimize_differential.rs` — but the
//! search visits only a fraction of the space, so it accepts documents
//! the sweep path's [`MAX_SWEEP_GRID`](super::scenario::MAX_SWEEP_GRID)
//! cap rejects.
//!
//! Like every registry builder, the report records **no wall-clock and
//! no machine parallelism**: the search counters (`boxes_explored`,
//! `evaluated_cells`, …) are deterministic functions of the request.

use std::sync::Arc;

use redeval::decision::ScatterBounds;
use redeval::exec::{AnalysisCache, Pool};
use redeval::optimize::DEFAULT_MAX_REDUNDANCY;
use redeval::output::{Report, Value};
use redeval::scenario::builtin;
use redeval::{EvalError, OptimizeOutcome, Optimizer};
use redeval_server::OptimizeRequest;

use super::scenario::{eval_table_from, ExecOn};

/// Evaluates an optimize request — a scenario document plus optional
/// policy list, per-tier bound and (φ, ψ) decision bounds — into a
/// report named `optimize_<scenario>`.
///
/// # Errors
///
/// Scenario validation and solver errors. Unlike the sweep path there
/// is no grid cap: the search never materializes the design space.
pub fn optimize_report(req: &OptimizeRequest) -> Result<Report, EvalError> {
    optimize_report_impl(req, None)
}

/// [`optimize_report`] on a shared pool and solve cache — the
/// `POST /v1/optimize` engine.
///
/// # Errors
///
/// As [`optimize_report`].
pub fn optimize_report_on(
    req: &OptimizeRequest,
    pool: &Pool,
    cache: &Arc<AnalysisCache>,
) -> Result<Report, EvalError> {
    optimize_report_impl(req, Some((pool, cache)))
}

fn optimize_report_impl(req: &OptimizeRequest, exec: ExecOn<'_>) -> Result<Report, EvalError> {
    let doc = &req.doc;
    let max_redundancy = req.max_redundancy.unwrap_or(DEFAULT_MAX_REDUNDANCY);
    let mut optimizer = Optimizer::from_scenario(doc)?.max_redundancy(max_redundancy);
    if let Some(policies) = &req.policies {
        optimizer = optimizer.policies(policies.clone());
    }
    let outcome = match exec {
        None => optimizer.run()?,
        Some((pool, cache)) => optimizer.share_cache(cache).run_on(pool)?,
    };

    let mut r = Report::new(
        format!("optimize_{}", doc.name),
        format!("Pruned design-space search — {}", doc.title),
    );
    if !doc.description.is_empty() {
        r.note(doc.description.clone());
    }
    let policies: Vec<String> = match &req.policies {
        Some(p) => p.iter().map(ToString::to_string).collect(),
        None => doc.policies.iter().map(ToString::to_string).collect(),
    };
    r.keys([
        ("scenario", Value::from(doc.name.as_str())),
        ("tiers", Value::from(doc.tiers.len())),
        ("max_redundancy", Value::from(max_redundancy)),
        ("policies", Value::from(policies.join("; "))),
        ("space_designs", Value::from(outcome.space_designs)),
        ("space_cells", Value::from(outcome.space_cells)),
        ("evaluated_designs", Value::from(outcome.evaluated_designs)),
        ("evaluated_cells", Value::from(outcome.evaluated_cells)),
        (
            "evaluated_fraction",
            Value::from(outcome.evaluated_fraction()),
        ),
        ("boxes_explored", Value::from(outcome.boxes_explored)),
        ("boxes_pruned", Value::from(outcome.boxes_pruned)),
        ("frontier_size", Value::from(outcome.frontier.len())),
    ]);
    // Search-soundness self-checks: a regression flips `ok` in the
    // golden. The frontier is ASP-ascending by construction, and the
    // search can never evaluate more cells than the space holds.
    r.check(
        outcome.frontier.windows(2).all(|w| {
            w[0].after.attack_success_probability <= w[1].after.attack_success_probability
        }),
    );
    r.check(outcome.evaluated_cells as f64 <= outcome.space_cells);
    r.table(eval_table_from("frontier", &outcome.frontier));
    if let Some(bounds) = &req.bounds {
        satisfying_section(&mut r, bounds, &outcome);
    }
    r.note(
        "frontier computed by branch-and-bound over the per-tier count \
         space 1..=max_redundancy — byte-identical to exhaustively \
         enumerating the grid and keeping the Pareto-optimal \
         (ASP, COA) points, at any thread count",
    );
    Ok(r)
}

/// The administrator's decision view (the paper's Equation (3) region):
/// frontier members satisfying `ASP ≤ φ ∧ COA ≥ ψ`. A design anywhere
/// in the space satisfies the bounds iff some *frontier* member does —
/// every design is weakly dominated by a frontier member — so an empty
/// table proves the whole space unsatisfying.
fn satisfying_section(r: &mut Report, bounds: &ScatterBounds, outcome: &OptimizeOutcome) {
    let satisfying: Vec<_> = outcome
        .frontier
        .iter()
        .filter(|e| bounds.satisfied(e))
        .cloned()
        .collect();
    r.keys([
        ("max_asp", Value::from(bounds.max_asp)),
        ("min_coa", Value::from(bounds.min_coa)),
        ("satisfying", Value::from(satisfying.len())),
    ]);
    r.table(eval_table_from("satisfying", &satisfying));
    if satisfying.is_empty() {
        r.note(
            "no frontier member satisfies the bounds; since every design \
             is weakly dominated by a frontier member, no design in the \
             space does",
        );
    }
}

/// The request a bare `redeval optimize` runs: the paper's case-study
/// network with its bundled policy, the default per-tier bound, and the
/// paper's Equation (3) region bounds (φ = 0.2, ψ = 0.9962).
pub fn default_request() -> OptimizeRequest {
    OptimizeRequest {
        doc: builtin::paper_case_study(),
        policies: None,
        max_redundancy: None,
        bounds: Some(ScatterBounds {
            max_asp: 0.2,
            min_coa: 0.9962,
        }),
    }
}

/// The registry entry: [`default_request`] evaluated and pinned under
/// the registry key `optimize` (the golden-corpus contract names every
/// registry report after its key; the serving/CLI paths keep the
/// `optimize_<scenario>` convention).
pub fn builtin_optimize() -> Report {
    let mut r = optimize_report(&default_request()).expect("builtin optimize report");
    r.name = "optimize".into();
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use redeval::optimize::exhaustive_frontier;

    #[test]
    fn builtin_report_is_deterministic_and_passes_checks() {
        let r = builtin_optimize();
        assert!(r.ok);
        assert_eq!(r.name, "optimize");
        assert_eq!(r.to_json(), builtin_optimize().to_json());
    }

    #[test]
    fn report_frontier_table_matches_the_exhaustive_frontier() {
        let doc = builtin::paper_case_study();
        let req = OptimizeRequest {
            doc: doc.clone(),
            policies: None,
            max_redundancy: Some(3),
            bounds: None,
        };
        let r = optimize_report(&req).unwrap();
        let exhaustive =
            exhaustive_frontier(&Optimizer::from_scenario(&doc).unwrap().max_redundancy(3))
                .unwrap();
        let table = r.to_json();
        for e in &exhaustive {
            assert!(
                table.contains(&e.name),
                "frontier member {} missing from the report",
                e.name
            );
        }
        assert!(table.contains(&format!("\"frontier_size\": {}", exhaustive.len())));
    }

    #[test]
    fn policy_and_bound_overrides_shape_the_report() {
        let req = OptimizeRequest {
            doc: builtin::paper_case_study(),
            policies: Some(vec![redeval::PatchPolicy::None, redeval::PatchPolicy::All]),
            max_redundancy: Some(2),
            bounds: Some(ScatterBounds {
                max_asp: 0.2,
                min_coa: 0.9962,
            }),
        };
        let r = optimize_report(&req).unwrap();
        let json = r.to_json();
        assert!(json.contains("\"max_redundancy\": 2"));
        assert!(json.contains("no patch; patch all"));
        assert!(json.contains("\"max_asp\": 0.2"));
        assert!(json.contains("\"satisfying\""));
    }
}
