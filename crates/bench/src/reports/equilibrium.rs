//! Report builder for the attacker–defender equilibrium analysis.
//!
//! [`equilibrium_report`] is the engine behind `redeval equilibrium` and
//! `POST /v1/equilibrium`: it runs the Gauss-Seidel best-response
//! iteration of [`redeval::equilibrium`] over a scenario document and
//! reports the final strategy profile, the per-round trace, and the
//! search counters of both best-response oracles. The iteration is
//! deterministic and thread-count invariant, so the report joins the
//! golden corpus like every other registry builder: **no wall-clock, no
//! machine parallelism** in the output.

use std::sync::Arc;

use redeval::equilibrium::{EquilibriumAnalyzer, EquilibriumOutcome, DEFAULT_MAX_ITERS};
use redeval::exec::{AnalysisCache, Pool};
use redeval::optimize::DEFAULT_MAX_REDUNDANCY;
use redeval::output::{Report, Table, Value};
use redeval::scenario::builtin;
use redeval::EvalError;
use redeval_server::EquilibriumRequest;

use super::scenario::{eval_table_from, ExecOn};

/// Evaluates an equilibrium request — a scenario document plus optional
/// policy list, per-tier bound and round cap — into a report named
/// `equilibrium_<scenario>`.
///
/// # Errors
///
/// Scenario validation errors, the entry-tier enumeration cap
/// ([`redeval::equilibrium::MAX_ENTRY_TIERS`]) and solver errors.
pub fn equilibrium_report(req: &EquilibriumRequest) -> Result<Report, EvalError> {
    equilibrium_report_impl(req, None)
}

/// [`equilibrium_report`] on a shared pool and solve cache — the
/// `POST /v1/equilibrium` engine.
///
/// # Errors
///
/// As [`equilibrium_report`].
pub fn equilibrium_report_on(
    req: &EquilibriumRequest,
    pool: &Pool,
    cache: &Arc<AnalysisCache>,
) -> Result<Report, EvalError> {
    equilibrium_report_impl(req, Some((pool, cache)))
}

fn equilibrium_report_impl(
    req: &EquilibriumRequest,
    exec: ExecOn<'_>,
) -> Result<Report, EvalError> {
    let doc = &req.doc;
    let max_redundancy = req.max_redundancy.unwrap_or(DEFAULT_MAX_REDUNDANCY);
    let max_iters = req.max_iters.unwrap_or(DEFAULT_MAX_ITERS);
    let mut analyzer = EquilibriumAnalyzer::from_scenario(doc)?
        .max_redundancy(max_redundancy)
        .max_iters(max_iters);
    if let Some(policies) = &req.policies {
        analyzer = analyzer.policies(policies.clone());
    }
    let outcome = match exec {
        None => analyzer.run()?,
        Some((pool, cache)) => analyzer.share_cache(cache).run_on(pool)?,
    };

    let policies: Vec<String> = match &req.policies {
        Some(p) => p.iter().map(ToString::to_string).collect(),
        None => doc.policies.iter().map(ToString::to_string).collect(),
    };
    let mut r = Report::new(
        format!("equilibrium_{}", doc.name),
        format!(
            "Attacker–defender best-response equilibrium — {}",
            doc.title
        ),
    );
    if !doc.description.is_empty() {
        r.note(doc.description.clone());
    }
    r.keys([
        ("scenario", Value::from(doc.name.as_str())),
        ("tiers", Value::from(doc.tiers.len())),
        (
            "entry_tiers",
            Value::from(outcome.entry_tier_names.join("; ")),
        ),
        ("max_redundancy", Value::from(max_redundancy)),
        ("max_iters", Value::from(max_iters)),
        ("policies", Value::from(policies.join("; "))),
        ("converged", Value::from(outcome.converged)),
        ("cycle_detected", Value::from(outcome.cycle_detected)),
        ("iterations", Value::from(outcome.iterations)),
    ]);
    r.keys([
        (
            "defender_design",
            Value::from(outcome.defender.name.as_str()),
        ),
        (
            "defender_policy",
            Value::from(policies[outcome.policy_idx].as_str()),
        ),
        (
            "defender_asp",
            Value::from(outcome.defender.after.attack_success_probability),
        ),
        ("defender_coa", Value::from(outcome.defender.coa)),
        (
            "attacker_entry_tiers",
            Value::from(outcome.attacker_entry_tiers().join("; ")),
        ),
        ("attacker_asp", Value::from(outcome.attacker_asp)),
        ("attacker_aim", Value::from(outcome.attacker_aim)),
    ]);
    r.keys([
        (
            "defender_evaluated_cells",
            Value::from(outcome.defender_evaluated_cells),
        ),
        (
            "defender_space_cells",
            Value::from(outcome.defender_space_cells),
        ),
        (
            "defender_evaluated_fraction",
            Value::from(outcome.defender_evaluated_fraction()),
        ),
        (
            "attacker_masks_evaluated",
            Value::from(outcome.attacker_masks_evaluated),
        ),
        (
            "attacker_masks_pruned",
            Value::from(outcome.attacker_masks_pruned),
        ),
        (
            "attacker_space_masks",
            Value::from(outcome.attacker_space_masks as f64),
        ),
    ]);
    // Self-checks: the run must stop for a stated reason, the attacker's
    // payoff is a probability, and at a fixed point the attacker (who
    // maximizes over masks including the one the defender answered) does
    // at least as well as the defender's own evaluation under that mask.
    r.check(outcome.converged || outcome.cycle_detected || outcome.iterations as u32 == max_iters);
    r.check((0.0..=1.0).contains(&outcome.attacker_asp));
    if outcome.converged {
        r.check(outcome.attacker_asp >= outcome.defender.after.attack_success_probability);
    }
    r.table(trace_table(&outcome));
    r.table(eval_table_from(
        "equilibrium_design",
        std::slice::from_ref(&outcome.defender),
    ));
    r.note(if outcome.converged {
        "the profile is a mutual best response (a Nash equilibrium of the \
         discretized game): the defender's strategy is optimal against the \
         final attacker mask and vice versa — byte-identical at any thread \
         count"
    } else if outcome.cycle_detected {
        "best responses entered a cycle; the reported profile is the last \
         round's (the discretized game need not admit a pure equilibrium)"
    } else {
        "the iteration cap stopped the search before a fixed point or \
         cycle; the reported profile is the last round's"
    });
    Ok(r)
}

/// The per-round trace: defender move, then the attacker's reply.
fn trace_table(outcome: &EquilibriumOutcome) -> Table {
    let mut t = Table::new(
        "trace",
        [
            "iteration",
            "defender_design",
            "defender_policy_idx",
            "defender_asp",
            "defender_coa",
            "attacker_entry_tiers",
            "attacker_asp",
            "attacker_aim",
        ],
    );
    for step in &outcome.trace {
        let tiers: Vec<&str> = outcome
            .entry_tier_names
            .iter()
            .zip(&step.mask)
            .filter_map(|(n, &keep)| keep.then_some(n.as_str()))
            .collect();
        t.add_row(vec![
            Value::from(step.iteration),
            Value::from(step.design.as_str()),
            Value::from(step.policy_idx),
            Value::from(step.defender_asp),
            Value::from(step.defender_coa),
            Value::from(tiers.join("; ")),
            Value::from(step.attacker_asp),
            Value::from(step.attacker_aim),
        ]);
    }
    t
}

/// The request a bare `redeval equilibrium` runs: the paper's case-study
/// network with its bundled policy and the default bounds — the paper's
/// static full-entry attacker made strategic.
pub fn default_request() -> EquilibriumRequest {
    EquilibriumRequest {
        doc: builtin::paper_case_study(),
        policies: None,
        max_redundancy: None,
        max_iters: None,
    }
}

/// The registry entry: [`default_request`] evaluated and pinned under
/// the registry key `equilibrium`.
pub fn builtin_equilibrium() -> Report {
    let mut r = equilibrium_report(&default_request()).expect("builtin equilibrium report");
    r.name = "equilibrium".into();
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_report_is_deterministic_and_passes_checks() {
        let r = builtin_equilibrium();
        assert!(r.ok);
        assert_eq!(r.name, "equilibrium");
        assert_eq!(r.to_json(), builtin_equilibrium().to_json());
        let json = r.to_json();
        assert!(json.contains("\"converged\": true"));
        assert!(json.contains("\"trace\""));
    }

    #[test]
    fn knob_overrides_shape_the_report() {
        let req = EquilibriumRequest {
            doc: builtin::paper_case_study(),
            policies: Some(vec![redeval::PatchPolicy::None, redeval::PatchPolicy::All]),
            max_redundancy: Some(2),
            max_iters: Some(4),
        };
        let r = equilibrium_report(&req).unwrap();
        let json = r.to_json();
        assert!(json.contains("\"max_redundancy\": 2"));
        assert!(json.contains("\"max_iters\": 4"));
        assert!(json.contains("no patch; patch all"));
    }

    #[test]
    fn pooled_report_is_byte_identical_to_scoped() {
        let req = EquilibriumRequest {
            doc: builtin::iot_fleet(),
            policies: None,
            max_redundancy: Some(2),
            max_iters: None,
        };
        let scoped = equilibrium_report(&req).unwrap();
        let pool = Pool::new(2);
        let cache = Arc::new(AnalysisCache::new());
        let pooled = equilibrium_report_on(&req, &pool, &cache).unwrap();
        assert_eq!(scoped.to_json(), pooled.to_json());
    }
}
