//! Report builders: one function per reproduction artifact, each
//! returning a structured [`Report`] (see `redeval::output`).
//!
//! These functions are the single source of every paper table, figure and
//! extension study. The `redeval` CLI dispatches over [`REGISTRY`], the
//! legacy per-artifact binaries are thin shims over the same functions,
//! and the golden corpus under `tests/golden/` byte-pins each builder's
//! canonical JSON. Every builder is **deterministic**: fixed simulation
//! seeds, order-stable data structures, and results independent of thread
//! count (DESIGN.md §5–§6) — a builder that records wall-clock times or
//! machine parallelism must never join this registry.

pub mod equilibrium;
pub mod figures;
pub mod optimize;
pub mod profile;
pub mod scenario;
pub mod studies;
pub mod tables;
pub mod validate;

use std::sync::OnceLock;

use redeval::case_study;
use redeval::decision::{MultiBounds, ScatterBounds};
use redeval::exec::Sweep;
use redeval::output::{Report, Table, Value};
use redeval::report::{markdown_report, ReportOptions};
use redeval::DesignEvaluation;
use redeval_avail::ServerAnalysis;

/// One registry entry: the machine name (CLI subcommand / golden-file
/// stem), a one-line description, and the zero-argument builder.
#[derive(Debug, Clone, Copy)]
pub struct ReportSpec {
    /// Machine name, e.g. `table2` or `design_space`.
    pub name: &'static str,
    /// One-line description (shown by `redeval list`).
    pub about: &'static str,
    /// Builds the report with its default parameters.
    pub build: fn() -> Report,
}

/// Every report, in the order `report --all` emits them. Names are the
/// golden-file stems; adding an entry here automatically surfaces it in
/// the CLI, the goldens and CI.
pub const REGISTRY: &[ReportSpec] = &[
    ReportSpec {
        name: "table1",
        about: "Table I — vulnerability data from reconstructed CVSS vectors",
        build: tables::table1,
    },
    ReportSpec {
        name: "table2",
        about: "Table II — security metrics before/after patch vs the paper",
        build: tables::table2,
    },
    ReportSpec {
        name: "table3",
        about: "Table III — SRN guard functions probed against the net",
        build: tables::table3,
    },
    ReportSpec {
        name: "table4",
        about: "Table IV — SRN input parameters per tier",
        build: tables::table4,
    },
    ReportSpec {
        name: "table5",
        about: "Table V — aggregated patch/recovery rates per tier",
        build: tables::table5,
    },
    ReportSpec {
        name: "table6",
        about: "Table VI — COA reward function and the paper's COA, three ways",
        build: tables::table6,
    },
    ReportSpec {
        name: "fig3",
        about: "Figure 3 — HARM attack paths and DOT, before/after patch",
        build: figures::fig3,
    },
    ReportSpec {
        name: "fig45",
        about: "Figures 4/5 — SRN sub-models as DOT + tangible state space",
        build: figures::fig45,
    },
    ReportSpec {
        name: "fig6",
        about: "Figure 6 — ASP-vs-COA scatter + Equation (3) regions",
        build: figures::fig6,
    },
    ReportSpec {
        name: "fig7",
        about: "Figure 7 — six-metric radar + Equation (4) regions",
        build: figures::fig7,
    },
    ReportSpec {
        name: "regions",
        about: "Equations (3),(4) region analyses — the headline check",
        build: studies::regions,
    },
    ReportSpec {
        name: "sweep",
        about: "Patch-interval and criticality-threshold sweeps",
        build: studies::sweep,
    },
    ReportSpec {
        name: "sensitivity",
        about: "COA-loss sensitivities of every Table-IV parameter",
        build: studies::sensitivity_default,
    },
    ReportSpec {
        name: "scenarios",
        about: "Partial patch scenarios — per-tier MTTR and network COA",
        build: studies::scenarios,
    },
    ReportSpec {
        name: "cost",
        about: "Expected monthly operational cost per design",
        build: studies::cost,
    },
    ReportSpec {
        name: "design_space",
        about: "Exhaustive design-space search with the decision functions",
        build: studies::design_space_default,
    },
    ReportSpec {
        name: "heterogeneous",
        about: "Heterogeneous (diverse-stack) redundancy study",
        build: studies::heterogeneous,
    },
    ReportSpec {
        name: "importance",
        about: "Host-importance ranking before/after patch",
        build: studies::importance,
    },
    ReportSpec {
        name: "patch_priority",
        about: "Greedy patch prioritization vs the blanket policy",
        build: studies::patch_priority,
    },
    ReportSpec {
        name: "perf",
        about: "M/M/c response times per design under patching",
        build: studies::perf,
    },
    ReportSpec {
        name: "transient",
        about: "Capacity transient of a patch round (uniformization)",
        build: studies::transient,
    },
    ReportSpec {
        name: "optimize",
        about: "Pruned branch-and-bound design-space search (case study)",
        build: optimize::builtin_optimize,
    },
    ReportSpec {
        name: "equilibrium",
        about: "Attacker–defender best-response equilibrium (case study)",
        build: equilibrium::builtin_equilibrium,
    },
    ReportSpec {
        name: "profile",
        about: "Deterministic telemetry counters over eval/optimize/equilibrium",
        build: profile::builtin_profile,
    },
    ReportSpec {
        name: "scenario_suite",
        about: "Bundled scenario gallery evaluated through the declarative API",
        build: scenario::scenario_suite,
    },
    ReportSpec {
        name: "gen_suite",
        about: "Seeded generator corpus evaluated through the declarative API",
        build: scenario::gen_suite,
    },
    ReportSpec {
        name: "validate_sim",
        about: "Analytic vs simulation cross-validation (fixed seeds)",
        build: validate::validate_sim,
    },
    ReportSpec {
        name: "aggregation_error",
        about: "Eq. (1),(2) aggregation accuracy vs the exact composite",
        build: validate::aggregation_error,
    },
];

/// Looks a report up by registry name (underscore form).
pub fn find(name: &str) -> Option<&'static ReportSpec> {
    REGISTRY.iter().find(|s| s.name == name)
}

/// The paper's Equation-(3) regions: label, bounds, and the design set
/// the paper reports (used by `fig6`, `regions` and the full report).
pub fn paper_scatter_regions() -> Vec<(&'static str, ScatterBounds, Vec<&'static str>)> {
    vec![
        (
            "region 1: φ=0.2, ψ=0.9962",
            ScatterBounds {
                max_asp: 0.2,
                min_coa: 0.9962,
            },
            vec![
                "1 DNS + 1 WEB + 2 APP + 1 DB",
                "1 DNS + 1 WEB + 1 APP + 2 DB",
            ],
        ),
        (
            "region 2: φ=0.1, ψ=0.9961",
            ScatterBounds {
                max_asp: 0.1,
                min_coa: 0.9961,
            },
            vec!["2 DNS + 1 WEB + 1 APP + 1 DB"],
        ),
    ]
}

/// The paper's Equation-(4) regions (used by `fig7`, `regions` and the
/// full report).
pub fn paper_multi_regions() -> Vec<(&'static str, MultiBounds, Vec<&'static str>)> {
    vec![
        (
            "region 1: φ=0.2, ξ=9, ω=2, κ=1, ψ=0.9962",
            MultiBounds {
                max_asp: 0.2,
                max_noev: 9,
                max_noap: 2,
                max_noep: 1,
                min_coa: 0.9962,
            },
            vec!["1 DNS + 1 WEB + 2 APP + 1 DB"],
        ),
        (
            "region 2: φ=0.1, ξ=7, ω=1, κ=1, ψ=0.9961",
            MultiBounds {
                max_asp: 0.1,
                max_noev: 7,
                max_noap: 1,
                max_noep: 1,
                min_coa: 0.9961,
            },
            vec!["2 DNS + 1 WEB + 1 APP + 1 DB"],
        ),
    ]
}

/// Evaluates the paper's five designs on the batch engine — the shared
/// evaluation path of `fig6`, `fig7`, `regions`, `cost` and
/// `patch_priority`. Memoized: `report --all` and the golden tests call
/// several of those builders in one process, and the grid is
/// deterministic, so one solve serves them all.
pub fn five_design_evals() -> Vec<DesignEvaluation> {
    static EVALS: OnceLock<Vec<DesignEvaluation>> = OnceLock::new();
    EVALS
        .get_or_init(|| {
            Sweep::new(case_study::network())
                .designs(case_study::five_designs())
                .run()
                .expect("five designs evaluate")
        })
        .clone()
}

/// The solved lower-layer SRN analyses of the case-study tiers, in tier
/// order. Memoized for the same reason as [`five_design_evals`]: six
/// builders need them and the solve is count-independent.
pub(crate) fn case_tier_analyses() -> &'static [ServerAnalysis] {
    static ANALYSES: OnceLock<Vec<ServerAnalysis>> = OnceLock::new();
    ANALYSES.get_or_init(|| {
        case_study::network()
            .tier_analyses()
            .expect("server models solve")
    })
}

/// The complete markdown report over the five designs with the paper's
/// region bounds (the `full_report` binary).
pub fn full_report_markdown() -> String {
    let evaluator = case_study::evaluator().expect("evaluator builds");
    let designs = case_study::five_designs();
    let options = ReportOptions {
        title: "Ge et al. (DSN 2017) — five redundancy designs under monthly critical patching"
            .into(),
        scatter_bounds: paper_scatter_regions()
            .into_iter()
            .map(|(label, b, _)| (label.to_string(), b))
            .collect(),
        multi_bounds: paper_multi_regions()
            .into_iter()
            .map(|(label, b, _)| (label.to_string(), b))
            .collect(),
    };
    markdown_report(&evaluator, &designs, &options).expect("designs evaluate")
}

/// An empty paper-vs-measured comparison table.
pub(crate) fn compare_table(name: &str) -> Table {
    compare_table_vs(name, "paper", "ours")
}

/// An empty comparison table with explicit reference/measured column
/// names (e.g. `analytic` vs `simulated` in the cross-validation
/// reports).
pub(crate) fn compare_table_vs(name: &str, reference: &str, measured: &str) -> Table {
    Table::new(name, ["quantity", reference, measured, "delta_pct"])
}

/// Appends one comparison row; the relative deviation (of `ours` from
/// the reference `paper`) is null when the reference is zero.
pub(crate) fn compare_row(t: &mut Table, label: &str, paper: f64, ours: f64) {
    let delta = if paper != 0.0 {
        Value::from((ours - paper) / paper * 100.0)
    } else {
        Value::Null
    };
    t.add_row(vec![
        Value::from(label),
        Value::from(paper),
        Value::from(ours),
        delta,
    ]);
}

/// Appends the Equation-(3) region tables and their paper checks.
pub(crate) fn eq3_regions(report: &mut Report, evals: &[DesignEvaluation]) {
    let mut t = Table::new("eq3-regions", ["region", "members", "matches_paper"]);
    for (label, bounds, expect) in paper_scatter_regions() {
        let members: Vec<&str> = bounds
            .region(evals)
            .iter()
            .map(|e| e.name.as_str())
            .collect();
        let ok = members == expect;
        report.check(ok);
        t.add_row(vec![
            Value::from(label),
            Value::from(members.join("; ")),
            Value::from(ok),
        ]);
    }
    report.table(t);
}

/// Appends the Equation-(4) region tables and their paper checks.
pub(crate) fn eq4_regions(report: &mut Report, evals: &[DesignEvaluation]) {
    let mut t = Table::new("eq4-regions", ["region", "members", "matches_paper"]);
    for (label, bounds, expect) in paper_multi_regions() {
        let members: Vec<&str> = bounds
            .region(evals)
            .iter()
            .map(|e| e.name.as_str())
            .collect();
        let ok = members == expect;
        report.check(ok);
        t.add_row(vec![
            Value::from(label),
            Value::from(members.join("; ")),
            Value::from(ok),
        ]);
    }
    report.table(t);
}

/// The standard after-patch design table (`regions`, `design_space`).
pub(crate) fn design_table(name: &str, evals: &[&DesignEvaluation]) -> Table {
    let mut t = Table::new(
        name,
        ["design", "asp", "aim", "noev", "noap", "noep", "coa"],
    );
    for e in evals {
        t.add_row(vec![
            Value::from(e.name.as_str()),
            Value::from(e.after.attack_success_probability),
            Value::from(e.after.attack_impact),
            Value::from(e.after.exploitable_vulnerabilities),
            Value::from(e.after.attack_paths),
            Value::from(e.after.entry_points),
            Value::from(e.coa),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        for (i, a) in REGISTRY.iter().enumerate() {
            assert!(find(a.name).is_some());
            for b in &REGISTRY[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate registry name");
            }
        }
        assert!(find("no_such_report").is_none());
    }

    #[test]
    fn report_names_match_registry_keys() {
        // Cheap spot-check on a fast builder: the Report's own name must
        // equal its registry key (the golden-file stem).
        let spec = find("regions").unwrap();
        assert_eq!((spec.build)().name, "regions");
    }
}
