//! Builders for the sweep, decision and extension studies.

use redeval::case_study;
use redeval::cost::CostModel;
use redeval::decision::ScatterBounds;
use redeval::exec::{default_threads, run_batch, Experiment, Scenario, Sweep};
use redeval::output::{Report, Series, Table, Value};
use redeval::sensitivity::coa_sensitivities_batch;
use redeval::{
    AttackTree, Design, Durations, MetricsConfig, NetworkSpec, PatchPolicy, ServerParams, TierSpec,
    Vulnerability,
};
use redeval_avail::mmc::{availability_weighted_response_time, Mmc};
use redeval_avail::{NetworkModel, PatchScenario, ServerAnalysis, Tier};

use super::{case_tier_analyses, design_table, eq3_regions, eq4_regions, five_design_evals};
use crate::{CASE_STUDY_COUNTS, CVSS_THRESHOLDS, PATCH_WINDOWS_DAYS};

/// The paper's **Equation (3) and (4) region analyses** in one report —
/// the workspace's headline-result check (`ok` flips on any deviation).
pub fn regions() -> Report {
    let mut r = Report::new("regions", "Equations (3),(4): decision-function regions");
    let evals = five_design_evals();
    let refs: Vec<&redeval::DesignEvaluation> = evals.iter().collect();
    r.table(design_table("five-designs-after-patch", &refs));
    eq3_regions(&mut r, &evals);
    eq4_regions(&mut r, &evals);
    r
}

/// Patch-interval and criticality-threshold sweeps with the default
/// thread count.
pub fn sweep() -> Report {
    sweep_with_threads(default_threads())
}

/// [`sweep`] with an explicit worker-thread count (the golden tests use
/// this to prove thread-count invariance of the serialized report).
pub fn sweep_with_threads(threads: usize) -> Report {
    let mut r = Report::new(
        "sweep",
        "Patch-schedule sweeps (case-study network, 1+2+2+1)",
    );
    let case_design = Design::new("case", CASE_STUDY_COUNTS.to_vec());

    let evals = Sweep::new(case_study::network())
        .patch_intervals_days(&PATCH_WINDOWS_DAYS)
        .designs(vec![case_design.clone()])
        .threads(threads)
        .run()
        .expect("interval grid evaluates");
    let mut intervals = Table::new(
        "patch-interval-sweep",
        [
            "interval_days",
            "coa",
            "downtime_h_per_month",
            "mean_exposure_days",
        ],
    );
    for (days, e) in PATCH_WINDOWS_DAYS.iter().zip(&evals) {
        intervals.add_row(vec![
            Value::from(*days),
            Value::from(e.coa),
            Value::from((1.0 - e.coa) * 720.0),
            // A vulnerability disclosed uniformly within a cycle waits on
            // average half the interval for its patch.
            Value::from(days / 2.0),
        ]);
    }
    r.table(intervals);
    r.note(
        "COA falls as patching gets more frequent (more patch windows), \
         while security exposure to newly disclosed criticals shrinks.",
    );

    let evals = Sweep::new(case_study::network())
        .designs(vec![case_design])
        .policies(
            CVSS_THRESHOLDS
                .iter()
                .map(|&t| PatchPolicy::CriticalOnly(t))
                .collect(),
        )
        .threads(threads)
        .run()
        .expect("threshold grid evaluates");
    let mut thresholds = Table::new(
        "criticality-threshold-sweep",
        ["threshold", "asp", "noev", "noap", "noep"],
    );
    for (threshold, e) in CVSS_THRESHOLDS.iter().zip(&evals) {
        thresholds.add_row(vec![
            Value::from(*threshold),
            Value::from(e.after.attack_success_probability),
            Value::from(e.after.exploitable_vulnerabilities),
            Value::from(e.after.attack_paths),
            Value::from(e.after.entry_points),
        ]);
    }
    r.table(thresholds);
    r.note(
        "threshold 8.0 is the paper's policy; lowering it removes the \
         AND-pair footholds and eventually closes every attack path.",
    );
    r
}

/// COA sensitivities with the default thread count.
pub fn sensitivity_default() -> Report {
    sensitivity_with_threads(default_threads())
}

/// COA-loss sensitivity analysis — which Table-IV parameter most moves
/// the availability conclusion, per tier, as elasticities of `1 − COA`.
pub fn sensitivity_with_threads(threads: usize) -> Report {
    let mut r = Report::new(
        "sensitivity",
        "COA-loss sensitivities, case-study network (1+2+2+1)",
    );
    let spec = case_study::network();
    let sens =
        coa_sensitivities_batch(&spec, &CASE_STUDY_COUNTS, 0.05, threads).expect("pipeline solves");
    let mut t = Table::new(
        "sensitivities",
        [
            "tier",
            "parameter",
            "value_hours",
            "derivative",
            "elasticity",
        ],
    );
    for s in &sens {
        t.add_row(vec![
            Value::from(s.tier.as_str()),
            Value::from(s.parameter.name()),
            Value::from(s.value_hours),
            Value::from(s.derivative),
            Value::from(s.elasticity),
        ]);
    }
    r.table(t);
    r.note(
        "positive elasticity: longer duration costs capacity; negative: \
         longer patch intervals save it. With web/app duplicated, the \
         remaining single-server db and dns tiers dominate every ranking; \
         the next redundancy investment should go to the database, which \
         is exactly design 5's COA gain in Fig. 6.",
    );
    r
}

/// Partial patch scenarios — per-tier MTTR and network COA for each
/// round shape (paper §V "SRN models").
pub fn scenarios() -> Report {
    let mut r = Report::new("scenarios", "Partial patch scenarios");
    let spec = case_study::network();
    let scenario_list = [
        PatchScenario::Full,
        PatchScenario::OsOnly,
        PatchScenario::NoReboot,
        PatchScenario::ServiceOnly,
    ];

    // One lower-layer solve per (tier, scenario), on the worker pool.
    let tiers = spec.tiers();
    let analyses: Vec<ServerAnalysis> = run_batch(
        tiers.len() * scenario_list.len(),
        default_threads(),
        |job| {
            let (tier, scenario) = (
                &tiers[job / scenario_list.len()],
                scenario_list[job % scenario_list.len()],
            );
            ServerAnalysis::of_scenario(&tier.params, scenario).expect("model solves")
        },
    );
    let analysis = |ti: usize, si: usize| &analyses[ti * scenario_list.len() + si];

    let mut mttr = Table::new(
        "per-tier-mttr-hours",
        ["tier", "full", "os_only", "no_reboot", "service_only"],
    );
    for (ti, tier) in tiers.iter().enumerate() {
        let mut row = vec![Value::from(tier.name.as_str())];
        for si in 0..scenario_list.len() {
            row.push(Value::from(analysis(ti, si).rates().mttr()));
        }
        mttr.add_row(row);
    }
    r.table(mttr);

    let mut coa = Table::new(
        "network-coa-per-scenario",
        ["scenario", "coa", "capacity_loss_h_per_month"],
    );
    for (si, s) in scenario_list.iter().enumerate() {
        let model_tiers: Vec<Tier> = tiers
            .iter()
            .enumerate()
            .map(|(ti, t)| Tier::new(t.name.clone(), t.count, analysis(ti, si).rates()))
            .collect();
        let value = NetworkModel::new(model_tiers)
            .coa()
            .expect("product form solves");
        coa.add_row(vec![
            Value::from(format!("{s:?}")),
            Value::from(value),
            Value::from((1.0 - value) * 720.0),
        ]);
    }
    r.table(coa);
    r.note(
        "lighter patch rounds (no OS patch, no reboot) recover most of the \
         capacity lost to the full monthly cycle — quantifying the value of \
         reboot-less patching the paper lists as future work.",
    );
    r
}

/// Expected monthly operational cost per design — server spend vs
/// capacity-loss vs expected breach loss (paper §V "other metrics").
pub fn cost() -> Report {
    let mut r = Report::new("cost", "Expected monthly cost per design");
    let evals = five_design_evals();
    let model = CostModel::default();
    r.keys([
        ("server_month", Value::from(model.server_month)),
        ("downtime_hour", Value::from(model.downtime_hour)),
        ("breach", Value::from(model.breach)),
    ]);

    let mut t = Table::new(
        "costs",
        ["design", "servers", "downtime", "breach", "total"],
    );
    for e in &evals {
        let b = model.evaluate(e);
        t.add_row(vec![
            Value::from(e.name.as_str()),
            Value::from(b.servers),
            Value::from(b.downtime),
            Value::from(b.breach),
            Value::from(b.total()),
        ]);
    }
    r.table(t);
    if let Some((best, b)) = model.cheapest(&evals) {
        r.keys([
            ("cheapest_design", Value::from(best.name.as_str())),
            ("cheapest_total", Value::from(b.total())),
        ]);
    }

    let mut sweep = Table::new("breach-cost-sweep", ["breach_cost", "cheapest_design"]);
    for breach in [0.0, 10_000.0, 100_000.0, 1_000_000.0, 10_000_000.0] {
        let m = CostModel { breach, ..model };
        if let Some((best, _)) = m.cheapest(&evals) {
            sweep.add_row(vec![Value::from(breach), Value::from(best.name.as_str())]);
        }
    }
    r.table(sweep);
    r.note(
        "as breach cost dominates, the low-attack-surface designs win; \
         as downtime dominates, the high-COA designs win.",
    );
    r
}

/// Design-space search with the default bound (redundancy ≤ 3 per tier).
pub fn design_space_default() -> Report {
    design_space(3)
}

/// Exhaustive design-space search with the paper's decision functions,
/// beyond the five hand-picked designs (paper §V "systems").
pub fn design_space(max_redundancy: u32) -> Report {
    let mut r = Report::new("design_space", "Exhaustive design-space search");
    let sweep = Sweep::new(case_study::network()).full_design_space(max_redundancy);
    r.keys([
        ("max_redundancy", Value::from(max_redundancy)),
        ("designs", Value::from(sweep.len())),
    ]);
    let evals = sweep.run().expect("designs evaluate");

    let mut by_coa: Vec<&redeval::DesignEvaluation> = evals.iter().collect();
    by_coa.sort_by(|a, b| b.coa.partial_cmp(&a.coa).expect("finite"));
    r.table(design_table(
        "highest-coa",
        &by_coa.iter().take(5).copied().collect::<Vec<_>>(),
    ));
    r.table(design_table(
        "lowest-coa",
        &by_coa.iter().rev().take(3).copied().collect::<Vec<_>>(),
    ));

    let bounds = ScatterBounds {
        max_asp: 0.2,
        min_coa: 0.9968,
    };
    let mut region = bounds.region(&evals);
    region.sort_by(|a, b| {
        a.total_servers()
            .cmp(&b.total_servers())
            .then(a.name.cmp(&b.name))
    });
    r.keys([
        ("bounds", Value::from("φ=0.2, ψ=0.9968")),
        ("satisfying_designs", Value::from(region.len())),
    ]);
    r.table(design_table(
        "satisfying-region",
        &region.iter().take(10).copied().collect::<Vec<_>>(),
    ));
    r.note("tight bounds need redundancy; the satisfying table lists the 10 smallest designs.");
    r
}

fn stack_a_tree() -> AttackTree {
    AttackTree::leaf(Vulnerability::new("CVE-A (apache stack)", 10.0, 0.9))
}

fn stack_b_tree() -> AttackTree {
    AttackTree::and(vec![
        AttackTree::leaf(Vulnerability::new("CVE-B1 (nginx stack)", 2.9, 0.8)),
        AttackTree::leaf(Vulnerability::new("CVE-B2 (kernel lpe)", 10.0, 0.39)),
    ])
}

fn het_db_tier() -> TierSpec {
    TierSpec {
        name: "db".into(),
        count: 1,
        params: ServerParams::builder("db")
            .service_patch(Durations::minutes(10.0), Durations::minutes(5.0))
            .os_patch(Durations::minutes(30.0), Durations::minutes(10.0))
            .build(),
        tree: Some(AttackTree::leaf(Vulnerability::new("CVE-DB", 10.0, 0.39))),
        entry: false,
        target: true,
    }
}

fn het_web_tier(name: &str, tree: AttackTree) -> TierSpec {
    TierSpec {
        name: name.into(),
        count: 1,
        params: ServerParams::builder(name)
            .service_patch(Durations::minutes(10.0), Durations::minutes(5.0))
            .os_patch(Durations::minutes(10.0), Durations::minutes(10.0))
            .build(),
        tree: Some(tree),
        entry: true,
        target: false,
    }
}

/// Heterogeneous redundancy — a diverse replica carries a different
/// vulnerability set than its sibling (paper §V "systems").
pub fn heterogeneous() -> Report {
    let mut r = Report::new(
        "heterogeneous",
        "Heterogeneous redundancy (web tier, after patch)",
    );
    let scenario = |label: &str, spec: NetworkSpec, counts: &[u32]| {
        Scenario::new(
            label,
            spec,
            Design::new(label, counts.to_vec()),
            PatchPolicy::CriticalOnly(8.0),
        )
    };
    let scenarios = vec![
        scenario(
            "single web (stack A)",
            NetworkSpec::new(
                vec![het_web_tier("web", stack_a_tree()), het_db_tier()],
                vec![(0, 1)],
            ),
            &[1, 1],
        ),
        scenario(
            "2x web (identical A+A)",
            NetworkSpec::new(
                vec![het_web_tier("web", stack_a_tree()), het_db_tier()],
                vec![(0, 1)],
            ),
            &[2, 1],
        ),
        // Heterogeneous redundancy: one stack-A and one stack-B server,
        // modelled as two single-server tiers feeding the same database.
        scenario(
            "2x web (diverse A+B)",
            NetworkSpec::new(
                vec![
                    het_web_tier("webA", stack_a_tree()),
                    het_web_tier("webB", stack_b_tree()),
                    het_db_tier(),
                ],
                vec![(0, 2), (1, 2)],
            ),
            &[1, 1, 1],
        ),
    ];
    let mut t = Table::new("designs", ["design", "asp", "noev", "noap", "coa"]);
    for e in Experiment::new(scenarios)
        .run()
        .expect("scenarios evaluate")
    {
        t.add_row(vec![
            Value::from(e.name.as_str()),
            Value::from(e.after.attack_success_probability),
            Value::from(e.after.exploitable_vulnerabilities),
            Value::from(e.after.attack_paths),
            Value::from(e.coa),
        ]);
    }
    r.table(t);
    r.note(
        "identical replicas double the attack surface with the *same* \
         exploit; the diverse replica adds a second, harder chain — its \
         marginal ASP increase is smaller while COA gains are identical.",
    );
    r
}

/// Host-importance ranking — which server most enables the attack goal,
/// before and after the patch round.
pub fn importance() -> Report {
    let mut r = Report::new("importance", "Host importance (ΔASP when hardened)");
    let harm = case_study::network().build_harm();
    let cfg = MetricsConfig::default();
    for (label, h) in [
        ("before-patch", harm.clone()),
        ("after-patch", harm.patched_critical(8.0)),
    ] {
        let base = h.metrics(&cfg).attack_success_probability;
        let mut t = Table::new(
            format!("host-importance-{label}"),
            ["host", "delta_asp", "asp_if_hardened"],
        );
        for (host, delta) in h.host_importance(&cfg) {
            t.add_row(vec![
                Value::from(h.graph().host_name(host)),
                Value::from(delta),
                Value::from(base - delta),
            ]);
        }
        r.keys([(format!("network_asp_{label}"), Value::from(base))]);
        r.table(t);
    }
    r.note(
        "the database (single point of the attack goal) dominates both \
         rankings; after the patch, hardening either remaining app server \
         severs half the surviving paths.",
    );
    r
}

/// Greedy patch prioritization — when the maintenance window only allows
/// a few patches, which vulnerabilities go first?
pub fn patch_priority() -> Report {
    let mut r = Report::new("patch_priority", "Greedy patch prioritization");
    let harm = case_study::network().build_harm();
    let cfg = MetricsConfig::default();

    let base = harm.metrics(&cfg).attack_success_probability;
    r.keys([("unpatched_asp", Value::from(base))]);
    let mut imp = Table::new("vulnerability-importance", ["vulnerability", "delta_asp"]);
    for (id, delta) in harm.vulnerability_importance(&cfg).iter().take(10) {
        imp.add_row(vec![Value::from(id.as_str()), Value::from(*delta)]);
    }
    r.table(imp);

    let mut greedy = Table::new("greedy-schedule", ["step", "patch", "asp_after"]);
    for (i, (id, asp)) in harm.greedy_patch_order(&cfg, 8).iter().enumerate() {
        greedy.add_row(vec![
            Value::from(i + 1),
            Value::from(id.as_str()),
            Value::from(*asp),
        ]);
    }
    r.table(greedy);

    let order = harm.greedy_patch_order(&cfg, 32);
    let blanket = harm
        .patched_critical(8.0)
        .metrics(&cfg)
        .attack_success_probability;
    r.keys([
        ("blanket_policy_asp", Value::from(blanket)),
        ("greedy_patches_to_asp_zero", Value::from(order.len())),
    ]);
    r.note(
        "with several independent certain-success vulnerabilities per \
         host, single patches have zero marginal ΔASP until a host's last \
         remote-root option is removed — a property of saturated noisy-or \
         metrics the schedule makes visible.",
    );

    let evals = five_design_evals();
    let mut blanket_table = Table::new(
        "blanket-policy-five-designs",
        ["design", "asp_before", "asp_after"],
    );
    for e in &evals {
        blanket_table.add_row(vec![
            Value::from(e.name.as_str()),
            Value::from(e.before.attack_success_probability),
            Value::from(e.after.attack_success_probability),
        ]);
    }
    r.table(blanket_table);
    r.note(
        "every redundant replica multiplies the paths the blanket policy \
         leaves open — the more redundancy a design carries, the more a \
         targeted (greedy) schedule matters.",
    );
    r
}

/// M/M/c response times per design, weighting each tier's queue by its
/// up-server distribution under the patch schedule (paper §V "user
/// oriented performance").
pub fn perf() -> Report {
    let mut r = Report::new("perf", "M/M/c response times under patching");
    let spec = case_study::network();
    let analyses = case_tier_analyses();
    // Request profile: 50 req/s arrive at the web tier; each request
    // costs one app call and 0.5 db calls. Service rates are per server.
    let arrival_web = 50.0;
    // Tier indices follow case_study::network(): dns=0, web=1, app=2,
    // db=3. (DNS serves lookups, not request traffic, so it carries no
    // queue here.)
    let queue_tiers = [
        ("web", 1usize, arrival_web, 40.0),
        ("app", 2, arrival_web, 35.0),
        ("db", 3, arrival_web * 0.5, 60.0),
    ];
    r.keys([("arrival_web_req_s", Value::from(arrival_web))]);

    let mut t = Table::new(
        "response-times",
        [
            "design",
            "tier",
            "servers",
            "utilization",
            "w_all_up_ms",
            "w_patch_aware_ms",
        ],
    );
    for d in case_study::five_designs() {
        // The availability model depends only on the design, not on
        // which queue is being weighted.
        let model = spec
            .with_counts(&d.counts)
            .expect("valid design")
            .network_model(analyses);
        for &(name, tier_idx, lambda, mu) in &queue_tiers {
            let count = d.counts[tier_idx];
            let design = Value::from(d.name.as_str());
            let Ok(q) = Mmc::new(lambda, mu, count) else {
                t.add_row(vec![
                    design,
                    Value::from(name),
                    Value::from(count),
                    Value::Null,
                    Value::Null,
                    Value::Null,
                ]);
                continue;
            };
            let down = model
                .tier_down_distribution(tier_idx)
                .expect("tier distribution solves");
            let dist: Vec<(u32, f64)> = down
                .iter()
                .enumerate()
                .map(|(k, &p)| (count - k as u32, p))
                .collect();
            let w = availability_weighted_response_time(lambda, mu, &dist, Some(5.0));
            t.add_row(vec![
                design,
                Value::from(name),
                Value::from(count),
                Value::from(q.utilization()),
                Value::from(q.mean_response_time() * 1000.0),
                match w {
                    Ok(w) => Value::from(w * 1000.0),
                    Err(_) => Value::Null,
                },
            ]);
        }
    }
    r.table(t);
    r.note(
        "redundant tiers keep response times flat through patch windows; \
         single-server tiers pay the 5 s outage penalty while rebooting. \
         Null cells mark unstable queues (utilization >= 1).",
    );
    r
}

/// Capacity transient of a patch round, by uniformization on the
/// upper-layer SRN.
pub fn transient() -> Report {
    let mut r = Report::new("transient", "Capacity transient from the fully-up state");
    let spec = case_study::network();
    let analyses = case_tier_analyses();
    let model = spec.network_model(analyses);
    let (net, ups) = model.to_srn();
    let counts: Vec<u32> = model.tiers().iter().map(|t| t.count).collect();
    let total: u32 = counts.iter().sum();

    // The COA reward of Table VI: zero when any tier has no server up,
    // otherwise the running fraction — the same measure steady-state and
    // transient values are computed with, so the series converges to
    // `steady_state_coa`.
    let coa_reward = |m: &redeval_srn::Marking| {
        let mut sum = 0u32;
        for &p in &ups {
            let u = m.tokens(p);
            if u == 0 {
                return 0.0;
            }
            sum += u;
        }
        f64::from(sum) / f64::from(total)
    };
    let solved = net.solve().expect("net solves");
    let steady = solved.expected(coa_reward);
    r.keys([("steady_state_coa", Value::from(steady))]);

    let times = [0.0, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 12.0, 48.0, 720.0];
    let mut p_up = Vec::with_capacity(times.len());
    let mut capacity = Vec::with_capacity(times.len());
    let markings = solved.state_space().tangible_markings();
    for &t in &times {
        // One uniformization solve per time point; both measures reduce
        // over the same distribution.
        let dist = solved.transient_distribution(t).expect("transient solves");
        let mut p_all = 0.0;
        let mut expected_coa = 0.0;
        for (m, &p) in markings.iter().zip(&dist) {
            if ups
                .iter()
                .zip(&counts)
                .all(|(&place, &c)| m.tokens(place) == c)
            {
                p_all += p;
            }
            expected_coa += coa_reward(m) * p;
        }
        p_up.push(p_all);
        capacity.push(expected_coa);
    }
    let index: Vec<String> = times.iter().map(|t| format!("t={t}h")).collect();
    r.series(Series::new("p-all-up", index.clone(), p_up));
    r.series(Series::new("expected-coa", index, capacity));
    r.note(
        "the network starts fully up; each tier dips independently once \
         per month, and the transient COA converges to the steady state.",
    );
    r
}
