//! Report builder for the deterministic telemetry counters.
//!
//! [`builtin_profile`] runs a fixed three-stage pipeline — the paper's
//! case-study evaluation, a small branch-and-bound optimize, and a small
//! attacker–defender equilibrium — over one shared
//! [`AnalysisCache`] carrying a counters-mode [`Telemetry`] handle, and
//! reports the counter snapshot after each stage. Counters are
//! schedule-independent by the telemetry contract (DESIGN.md §14), so
//! the report is byte-identical at any thread count and joins the golden
//! corpus like every other registry builder. Wall-clock spans are
//! **not** recorded here: this is the counters-only view; timings live
//! exclusively in the `--profile` trace file.

use std::sync::Arc;

use redeval::exec::{AnalysisCache, Pool};
use redeval::output::{Report, Table, Value};
use redeval::scenario::builtin;
use redeval::telemetry::{Counter, CounterSnapshot, Telemetry};
use redeval_server::{EquilibriumRequest, OptimizeRequest};

use super::{equilibrium, optimize, scenario};

/// The stage labels, in execution order.
const STAGES: [&str; 3] = ["eval", "optimize", "equilibrium"];

/// The registry entry: cumulative counter snapshots across the fixed
/// pipeline, pinned under the registry key `profile`.
pub fn builtin_profile() -> Report {
    let tel = Telemetry::counters();
    let pool = Pool::new(2);
    let cache = Arc::new(AnalysisCache::with_telemetry(tel.clone()));
    let doc = builtin::paper_case_study();

    scenario::eval_report_on(&doc, &pool, &cache).expect("profile eval stage");
    let after_eval = tel.snapshot();

    let opt_req = OptimizeRequest {
        doc: doc.clone(),
        policies: None,
        max_redundancy: Some(2),
        bounds: None,
    };
    optimize::optimize_report_on(&opt_req, &pool, &cache).expect("profile optimize stage");
    let after_optimize = tel.snapshot();

    let eq_req = EquilibriumRequest {
        doc,
        policies: None,
        max_redundancy: Some(2),
        max_iters: None,
    };
    equilibrium::equilibrium_report_on(&eq_req, &pool, &cache).expect("profile equilibrium stage");
    let after_equilibrium = tel.snapshot();

    let mut r = Report::new(
        "profile",
        "Deterministic telemetry counters over a fixed eval → optimize → equilibrium pipeline",
    );
    r.keys([
        ("scenario", Value::from("paper_case_study")),
        ("stages", Value::from(STAGES.join("; "))),
        ("max_redundancy", Value::from(2_u32)),
        (
            "cache_hit_rate",
            Value::from(after_equilibrium.cache_hit_rate()),
        ),
        ("prune_ratio", Value::from(after_equilibrium.prune_ratio())),
        (
            "solver_residual_below_1e_9",
            Value::from(after_equilibrium.solver_residual_max < 1e-9),
        ),
    ]);
    // Counter-contract self-checks: a schedule dependence or a lost
    // instrumentation site flips `ok` in the golden.
    r.check(after_equilibrium.get(Counter::SolverSolves) > 0);
    r.check(after_equilibrium.get(Counter::CacheHits) > after_eval.get(Counter::CacheHits));
    r.check(after_optimize.get(Counter::BoxesExplored) > after_eval.get(Counter::BoxesExplored));
    r.check(
        after_equilibrium.get(Counter::EquilibriumRounds) > 0
            && after_equilibrium.get(Counter::MasksEvaluated) > 0,
    );
    r.table(counter_table(&[
        after_eval,
        after_optimize,
        after_equilibrium,
    ]));
    r.note(
        "cumulative counter snapshots after each stage, recorded through \
         one shared analysis cache; every value is a deterministic \
         function of the request — byte-identical at any thread count. \
         Wall-clock timing is deliberately absent (see `--profile`).",
    );
    r
}

/// One row per counter, one column per stage (cumulative values).
fn counter_table(snaps: &[CounterSnapshot; 3]) -> Table {
    let mut t = Table::new(
        "counters",
        [
            "counter",
            "after_eval",
            "after_optimize",
            "after_equilibrium",
        ],
    );
    let [eval, optimize, equilibrium] = snaps;
    let int = |v: u64| Value::from(i64::try_from(v).unwrap_or(i64::MAX));
    for (((name, a), (_, b)), (_, c)) in eval
        .entries()
        .zip(optimize.entries())
        .zip(equilibrium.entries())
    {
        t.add_row(vec![Value::from(name), int(a), int(b), int(c)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_report_is_deterministic_and_passes_checks() {
        let r = builtin_profile();
        assert!(r.ok, "counter self-checks hold");
        assert_eq!(r.name, "profile");
        assert_eq!(r.to_json(), builtin_profile().to_json());
        let json = r.to_json();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("solver_solves"));
        assert!(json.contains("equilibrium_rounds"));
    }
}
