//! Builders for the paper's Tables I–VI.

use redeval::case_study::{self, VULNERABILITIES};
use redeval::output::{Report, Table, Value};
use redeval::{AspStrategy, MetricsConfig, OrCombine, SecurityMetrics, ServerParams};
use redeval_avail::ServerModel;
use redeval_cvss::v2::BaseVector;
use redeval_sim::simulate_coa;

use super::{case_tier_analyses, compare_row, compare_table};

/// **Table I** — vulnerability information of the example network,
/// regenerated from the embedded CVSS vectors; checks that every
/// reconstructed vector reproduces the paper's impact/probability pair.
pub fn table1() -> Report {
    let mut r = Report::new(
        "table1",
        "Table I: vulnerability information of the example network",
    );
    let mut t = Table::new(
        "vulnerabilities",
        [
            "vuln",
            "cve",
            "impact",
            "probability",
            "base_score",
            "critical",
            "vector",
            "consistent",
        ],
    );
    let mut all_ok = true;
    for rec in &VULNERABILITIES {
        let v: BaseVector = rec.vector.parse().expect("embedded vector parses");
        let ok = case_study::vector_consistent(rec);
        all_ok &= ok;
        t.add_row(vec![
            Value::from(rec.id),
            Value::from(rec.cve),
            Value::from(v.attack_impact()),
            Value::from(v.attack_success_probability()),
            Value::from(v.base_score()),
            Value::from(v.is_critical(8.0)),
            Value::from(rec.vector),
            Value::from(ok),
        ]);
    }
    r.table(t);
    r.keys([("all_vectors_consistent", Value::from(all_ok))]);
    r.check(all_ok);
    r.note(
        "critical set (base > 8.0) = the nine (10.0, 1.0) vulnerabilities, \
         which is exactly the set the paper patches.",
    );
    r
}

fn metrics_row(t: &mut Table, label: &str, m: &SecurityMetrics) {
    t.add_row(vec![
        Value::from(label),
        Value::from(m.attack_impact),
        Value::from(m.attack_success_probability),
        Value::from(m.exploitable_vulnerabilities),
        Value::from(m.attack_paths),
        Value::from(m.entry_points),
    ]);
}

/// **Table II** — security metrics for the example network before and
/// after patch, the deviation from the paper for every cell, and the ASP
/// aggregation-strategy family (EXPERIMENTS.md caveats).
pub fn table2() -> Report {
    table2_for(&case_study::network())
}

/// [`table2`] computed over an explicit network specification. The golden
/// tests call this with the network loaded from the pinned
/// `paper_case_study` scenario file to prove the declarative path
/// reproduces the committed Table-II report byte-for-byte.
pub fn table2_for(network: &redeval::NetworkSpec) -> Report {
    let mut r = Report::new(
        "table2",
        "Table II: security metrics for the example network",
    );
    let harm = network.build_harm();
    let cfg = MetricsConfig::default();
    let before = harm.metrics(&cfg);
    let after_harm = harm.patched_critical(8.0);
    let after = after_harm.metrics(&cfg);

    let mut t = Table::new("metrics", ["phase", "aim", "asp", "noev", "noap", "noep"]);
    metrics_row(&mut t, "before patch", &before);
    metrics_row(&mut t, "after patch", &after);
    r.table(t);

    let mut cmp = compare_table("paper-vs-measured");
    compare_row(&mut cmp, "AIM before", 52.2, before.attack_impact);
    compare_row(&mut cmp, "AIM after", 42.2, after.attack_impact);
    compare_row(
        &mut cmp,
        "ASP before",
        1.0,
        before.attack_success_probability,
    );
    compare_row(&mut cmp, "NoAP before", 8.0, before.attack_paths as f64);
    compare_row(&mut cmp, "NoAP after", 4.0, after.attack_paths as f64);
    compare_row(&mut cmp, "NoEP before", 3.0, before.entry_points as f64);
    compare_row(&mut cmp, "NoEP after", 2.0, after.entry_points as f64);
    compare_row(
        &mut cmp,
        "NoEV after",
        11.0,
        after.exploitable_vulnerabilities as f64,
    );
    compare_row(
        &mut cmp,
        "NoEV before (paper prints 25; see EXPERIMENTS.md)",
        25.0,
        before.exploitable_vulnerabilities as f64,
    );
    r.table(cmp);

    let mut strategies = Table::new("asp-strategies", ["strategy", "asp_after"]);
    for (label, strategy, combine) in [
        ("max path, max OR", AspStrategy::MaxPath, OrCombine::Max),
        (
            "max path, noisy OR",
            AspStrategy::MaxPath,
            OrCombine::NoisyOr,
        ),
        (
            "exact reliability",
            AspStrategy::Reliability,
            OrCombine::NoisyOr,
        ),
        (
            "noisy-or over paths, max OR",
            AspStrategy::NoisyOrPaths,
            OrCombine::Max,
        ),
        (
            "noisy-or over paths, noisy OR",
            AspStrategy::NoisyOrPaths,
            OrCombine::NoisyOr,
        ),
    ] {
        let m = after_harm.metrics(&MetricsConfig {
            asp: strategy,
            or_combine: combine,
            ..Default::default()
        });
        strategies.add_row(vec![
            Value::from(label),
            Value::from(m.attack_success_probability),
        ]);
    }
    r.table(strategies);
    r.note(
        "paper value 0.265 lies inside this strategy family; its exact \
         formula is not derivable from the paper (EXPERIMENTS.md, E-ASP).",
    );
    r
}

/// **Table III** — the guard functions of the server SRN, probed against
/// the constructed net; checks every guarded transition exists.
pub fn table3() -> Report {
    let mut r = Report::new(
        "table3",
        "Table III: guard functions in the SRN sub-models for a server",
    );
    let model = ServerModel::build(&case_study::dns_params());
    let net = model.net();

    let rows = [
        ("Tosd", "if (#Phwd == 1) 1 else 0"),
        ("Tosdrb", "if (#Phwup == 1) 1 else 0"),
        ("Tosfup", "if (#Phwup == 1) 1 else 0"),
        ("Tosptrig", "if (#Psvcp == 1) 1 else 0"),
        ("Tosp", "if (#Phwup == 1) 1 else 0"),
        ("Tosrpd", "if (#Phwd == 1) 1 else 0"),
        ("Tospd", "if (#Phwd == 1) 1 else 0"),
        ("Tosprb", "if (#Phwup == 1) 1 else 0"),
        ("Tsvcd", "if (#Phwd == 1 || #Posfd == 1) 1 else 0"),
        ("Tsvcdrb", "if (#Phwup == 1 && #Posup == 1) 1 else 0"),
        ("Tsvcfup", "if (#Phwup == 1 && #Posup == 1) 1 else 0"),
        ("Tsvcptrig", "if (#Ptrigger == 1) 1 else 0"),
        ("Tsvcp", "if (#Phwup == 1 && #Posup == 1) 1 else 0"),
        ("Tsvcrpd", "if (#Phwd == 1 || #Posfd == 1) 1 else 0"),
        ("Tsvcrrb", "if (#Posp == 1) 1 else 0"),
        ("Tsvcrrbd", "if (#Phwd == 1 || #Posfd == 1) 1 else 0"),
        ("Tsvcprb", "if (#Phwup == 1 && #Posup == 1) 1 else 0"),
        (
            "Tinterval",
            "if (#Psvcup == 1 || #Psvcd == 1 || #Psvcfd == 1) 1 else 0",
        ),
        (
            "Tpolicy",
            "if (#Psvcup == 1) 1 else 0  (paper text: service up)",
        ),
        ("Treset", "if (#Posp == 1) 1 else 0"),
    ];

    let mut t = Table::new("guards", ["transition", "definition", "present"]);
    for (name, def) in rows {
        let present = net.find_transition(name).is_some();
        r.check(present);
        t.add_row(vec![
            Value::from(name),
            Value::from(def),
            Value::from(present),
        ]);
    }
    r.table(t);
    r.keys([
        ("places", Value::from(net.place_count())),
        ("transitions", Value::from(net.transition_count())),
    ]);
    r.note(
        "additional freeze guards on Thwd/Tosfd/Tsvcfd realize the paper's \
         assumptions that hardware, OS and applications do not fail during \
         the patch period (Section III-D).",
    );
    r
}

fn params_table(p: &ServerParams) -> Table {
    let mut t = Table::new(format!("params-{}", p.name), ["parameter", "value"]);
    let rows: [(&str, String); 14] = [
        ("hardware 1/λhw (MTBF)", format!("{}", p.hw_mtbf)),
        ("hardware 1/µhw (repair)", format!("{}", p.hw_repair)),
        ("OS 1/λos (MTBF)", format!("{}", p.os_mtbf)),
        ("OS 1/µos (repair)", format!("{}", p.os_repair)),
        ("OS 1/αos (patch)", format!("{}", p.os_patch)),
        (
            "OS 1/βos (reboot after patch)",
            format!("{}", p.os_reboot_patch),
        ),
        (
            "OS 1/δos (reboot after failure)",
            format!("{}", p.os_reboot_failure),
        ),
        ("service 1/λsvc (MTBF)", format!("{}", p.svc_mtbf)),
        ("service 1/µsvc (repair)", format!("{}", p.svc_repair)),
        ("service 1/αsvc (patch)", format!("{}", p.svc_patch)),
        (
            "service 1/βsvc (reboot after patch)",
            format!("{}", p.svc_reboot_patch),
        ),
        (
            "service 1/δsvc (reboot after failure)",
            format!("{}", p.svc_reboot_failure),
        ),
        ("patch clock 1/τp", format!("{}", p.patch_interval)),
        ("patch cycle (MTTR target)", format!("{}", p.patch_cycle())),
    ];
    for (k, v) in rows {
        t.add_row(vec![Value::from(k), Value::from(v)]);
    }
    t
}

/// **Table IV** — input parameters of the SRN sub-models: the paper's
/// exact DNS row plus the derived tables for the other tiers
/// (DESIGN.md §4.3).
pub fn table4() -> Report {
    let mut r = Report::new("table4", "Table IV: input parameters of the SRN sub-models");
    r.note("DNS = exact paper row; web/app/db derived per DESIGN.md §4.3.");
    r.table(params_table(&case_study::dns_params()));
    r.table(params_table(&case_study::web_params()));
    r.table(params_table(&case_study::app_params()));
    r.table(params_table(&case_study::db_params()));
    r
}

/// **Table V** — aggregated patch/recovery rates for all servers, from
/// each tier's lower-layer SRN and the paper's Equations (1),(2).
pub fn table5() -> Report {
    let mut r = Report::new("table5", "Table V: aggregated values for the servers");
    let analyses = case_tier_analyses();

    let mut t = Table::new(
        "aggregated-rates",
        ["service", "mttp_h", "patch_rate", "mttr_h", "recovery_rate"],
    );
    for a in analyses {
        let rates = a.rates();
        t.add_row(vec![
            Value::from(a.name()),
            Value::from(rates.mttp()),
            Value::from(rates.lambda_eq),
            Value::from(rates.mttr()),
            Value::from(rates.mu_eq),
        ]);
    }
    r.table(t);

    let mut cmp = compare_table("paper-vs-measured");
    let paper = [
        ("dns", 1.49992, 0.6667),
        ("web", 1.71420, 0.5834),
        ("app", 0.99995, 1.0001),
        ("db", 1.09085, 0.9167),
    ];
    for (a, (name, mu, mttr)) in analyses.iter().zip(paper) {
        assert_eq!(a.name(), name);
        compare_row(&mut cmp, &format!("{name} µ_eq"), mu, a.rates().mu_eq);
        compare_row(
            &mut cmp,
            &format!("{name} MTTR (h)"),
            mttr,
            a.rates().mttr(),
        );
    }
    compare_row(
        &mut cmp,
        "dns p_prrb (paper 0.00011563)",
        0.00011563,
        analyses[0].p_ready_reboot(),
    );
    compare_row(
        &mut cmp,
        "dns p_pd (paper 0.00092506)",
        0.00092506,
        analyses[0].p_patch_down(),
    );
    r.table(cmp);

    let mut steady = Table::new(
        "steady-state",
        [
            "service",
            "p_svcpd",
            "p_svcprrb",
            "availability",
            "tangible_states",
        ],
    );
    for a in analyses {
        steady.add_row(vec![
            Value::from(a.name()),
            Value::from(a.p_patch_down()),
            Value::from(a.p_ready_reboot()),
            Value::from(a.availability()),
            Value::from(a.tangible_states()),
        ]);
    }
    r.table(steady);
    r
}

/// **Table VI** — the COA reward function and the paper's COA value
/// (≈ 0.99707), computed by product form, explicit upper-layer SRN and
/// discrete-event simulation (fixed seed).
pub fn table6() -> Report {
    table6_for(&case_study::network(), case_tier_analyses())
}

/// [`table6`] computed over an explicit specification and its solved tier
/// analyses (same byte-for-byte contract as
/// [`table2_for`]).
pub fn table6_for(
    spec: &redeval::NetworkSpec,
    analyses: &[redeval_avail::ServerAnalysis],
) -> Report {
    let mut r = Report::new(
        "table6",
        "Table VI: reward function of COA (1 DNS + 2 WEB + 2 APP + 1 DB)",
    );
    let mut reward = Table::new("reward-function", ["condition", "reward"]);
    for (cond, val) in [
        ("#Pdnsup==1 && #Pwebup==2 && #Pappup==2 && #Pdbup==1", 1.0),
        (
            "#Pdnsup==1 && #Pwebup==1 && #Pappup==2 && #Pdbup==1",
            0.83333,
        ),
        (
            "#Pdnsup==1 && #Pwebup==2 && #Pappup==1 && #Pdbup==1",
            0.83333,
        ),
        (
            "#Pdnsup==1 && #Pwebup==1 && #Pappup==1 && #Pdbup==1",
            0.66667,
        ),
        ("otherwise", 0.0),
    ] {
        reward.add_row(vec![Value::from(cond), Value::from(val)]);
    }
    r.table(reward);
    r.note(
        "generalization used here: 0 when any tier has zero servers up, \
         otherwise (running servers)/(total servers).",
    );

    let model = spec.network_model(analyses);
    let product = model.coa().expect("product form solves");
    let srn = model.coa_via_srn().expect("srn solves");
    let est = simulate_coa(&model, 1_500_000.0, 99).expect("simulation runs");

    let mut cmp = compare_table("coa-three-ways");
    compare_row(&mut cmp, "COA (product form)", 0.99707, product);
    compare_row(&mut cmp, "COA (explicit SRN)", 0.99707, srn);
    compare_row(&mut cmp, "COA (simulation, seed 99)", 0.99707, est.mean);
    r.table(cmp);
    r.keys([("simulation_ci95", Value::from(est.ci95))]);

    let tier_names: Vec<String> = model.tiers().iter().map(|t| t.name.clone()).collect();
    let mut down = Table::new("tier-down-distribution", ["tier", "servers_down", "p"]);
    for (i, name) in tier_names.iter().enumerate() {
        let d = model.tier_down_distribution(i).expect("solves");
        for (k, p) in d.iter().enumerate() {
            down.add_row(vec![
                Value::from(name.as_str()),
                Value::from(k),
                Value::from(*p),
            ]);
        }
    }
    r.table(down);
    r
}
