//! Builders for the paper's Figures 3–7.

use redeval::case_study;
use redeval::charts::{
    radar_data, radar_series_table, scatter_ascii, scatter_data, scatter_table, RADAR_AXES,
};
use redeval::output::{Report, Table, Value};
use redeval::{Harm, MetricsConfig};
use redeval_avail::ServerModel;

use super::{case_tier_analyses, eq3_regions, eq4_regions, five_design_evals};

fn path_table(name: &str, harm: &Harm, cfg: &MetricsConfig) -> Table {
    let mut t = Table::new(name, ["path", "aim", "asp"]);
    for p in &harm.attack_paths(cfg).expect("few paths") {
        let names: Vec<&str> = p.hosts.iter().map(|&h| harm.graph().host_name(h)).collect();
        t.add_row(vec![
            Value::from(format!("A -> {}", names.join(" -> "))),
            Value::from(p.impact),
            Value::from(p.probability),
        ]);
    }
    t
}

/// **Figure 3** — the HARMs of the example network before and after
/// patch: attack-path listings plus Graphviz DOT.
pub fn fig3() -> Report {
    let mut r = Report::new("fig3", "Figure 3: HARMs of the example network");
    let spec = case_study::network();
    let before = spec.build_harm();
    let after = before.patched_critical(8.0);
    let cfg = MetricsConfig::default();

    r.table(path_table("paths-before-patch", &before, &cfg));
    r.table(path_table("paths-after-patch", &after, &cfg));
    r.note("dns1 is excluded after patch: no exploitable vulnerability left.");
    r.note(format!(
        "Graphviz DOT, before patch (render with `dot -Tsvg`):\n{}",
        before.to_dot()
    ));
    r.note(format!("Graphviz DOT, after patch:\n{}", after.to_dot()));
    r
}

/// **Figures 4 and 5** — the SRN sub-models as Graphviz DOT, plus the
/// tangible state space of the server model.
pub fn fig45() -> Report {
    let mut r = Report::new("fig45", "Figures 4/5: SRN sub-models");
    let model = ServerModel::build(&case_study::dns_params());
    r.note(format!(
        "Figure 5 — SRN sub-models for a server (DNS parameters), DOT:\n{}",
        model.net().to_dot()
    ));

    let ss = model.net().state_space().expect("state space builds");
    r.keys([
        ("tangible_markings", Value::from(ss.len())),
        (
            "vanishing_markings_eliminated",
            Value::from(ss.vanishing_count()),
        ),
    ]);
    r.note(
        "places: Phwup Phwd Posup Posd Posfd Posrp Posp Psvcup Psvcd \
         Psvcfd Psvcrp Psvcp Psvcrrb Pclock Ppolicy Ptrigger",
    );
    let mut markings = Table::new("tangible-markings", ["marking"]);
    for m in ss.tangible_markings() {
        markings.add_row(vec![Value::from(format!("{m}"))]);
    }
    r.table(markings);

    let spec = case_study::network();
    let (net, _) = spec.network_model(case_tier_analyses()).to_srn();
    r.note(format!(
        "Figure 4 — SRN sub-models for the network, DOT:\n{}",
        net.to_dot()
    ));
    r
}

/// **Figure 6** — the ASP-vs-COA scatter of the five designs, before and
/// after patch, plus the Equation-(3) region analysis.
pub fn fig6() -> Report {
    let mut r = Report::new("fig6", "Figure 6: ASP vs COA for the five designs");
    let evals = five_design_evals();

    let mut before = scatter_table(&scatter_data(&evals, false));
    before.name = "scatter-before-patch".to_string();
    r.table(before);
    r.note("all designs share ASP = 1.0 before patch, as in the paper.");

    let after_points = scatter_data(&evals, true);
    let mut after = scatter_table(&after_points);
    after.name = "scatter-after-patch".to_string();
    r.table(after);
    r.note(format!(
        "ASCII scatter (after patch):\n{}",
        scatter_ascii(&after_points, 64, 14)
    ));

    eq3_regions(&mut r, &evals);
    r
}

/// **Figure 7** — the six-metric radar comparison of the five designs,
/// the paper's qualitative observations (checked), and the Equation-(4)
/// region analysis.
pub fn fig7() -> Report {
    let mut r = Report::new(
        "fig7",
        "Figure 7: six-metric comparison of the five designs",
    );
    let evals = five_design_evals();
    r.note(format!("radar axes: {}", RADAR_AXES.join(" | ")));

    let before = radar_data(&evals, false);
    let mut before_table = radar_series_table(&before);
    before_table.name = "radar-before-patch".to_string();
    r.table(before_table);

    let after = radar_data(&evals, true);
    let mut after_table = radar_series_table(&after);
    after_table.name = "radar-after-patch".to_string();
    r.table(after_table);

    // The paper's qualitative observations, each as a checked fact.
    let aim_before: Vec<f64> = before.iter().map(|s| s.values[2]).collect();
    let aim_identical = aim_before.iter().all(|&a| (a - aim_before[0]).abs() < 1e-9);
    let d = |i: usize| &after[i].values;
    let share_noap_noev = d(0)[4] == d(1)[4] && d(0)[3] == d(1)[3];
    let only_web_more_entries =
        d(2)[0] > d(0)[0] && d(1)[0] == d(0)[0] && d(3)[0] == d(0)[0] && d(4)[0] == d(0)[0];
    let app_highest_coa = (0..5).all(|i| after[3].values[5] >= after[i].values[5]);
    for (label, ok) in [
        ("aim_identical_before_patch", aim_identical),
        ("designs_1_2_share_noap_noev_after_patch", share_noap_noev),
        ("only_design_3_gains_entry_points", only_web_more_entries),
        ("design_4_has_highest_coa", app_highest_coa),
    ] {
        r.check(ok);
        r.keys([(label, Value::from(ok))]);
    }

    eq4_regions(&mut r, &evals);
    r
}
