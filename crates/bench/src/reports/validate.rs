//! Builders for the simulation and aggregation cross-validation reports.
//!
//! Both reports run the independent discrete-event simulator with fixed
//! seeds, so their numbers — and therefore their goldens — are exactly
//! reproducible.

use redeval::case_study;
use redeval::output::{Report, Table, Value};
use redeval::{AspStrategy, MetricsConfig, ServerParams};
use redeval_avail::{CompositeNetwork, NetworkModel, ServerAnalysis, ServerModel, Tier};
use redeval_sim::{estimate_asp, simulate_coa, Simulation};

use super::{case_tier_analyses, compare_row, compare_table_vs};

/// Cross-validation report: every analytic quantity with a simulation
/// counterpart, side by side (availability, COA, ASP).
pub fn validate_sim() -> Report {
    let mut r = Report::new(
        "validate_sim",
        "Cross-validation: analytic vs discrete-event simulation",
    );
    let spec = case_study::network();
    let analyses = case_tier_analyses();

    let mut avail = compare_table_vs("server-availability-srn-vs-sim", "analytic", "simulated");
    for (tier, analysis) in spec.tiers().iter().zip(analyses) {
        let model = ServerModel::build(&tier.params);
        let places = *model.places();
        let mut sim = Simulation::new(model.net(), 1_234_567);
        sim.add_reward(
            "avail",
            move |m| {
                if places.service_up(m) {
                    1.0
                } else {
                    0.0
                }
            },
        );
        let out = sim.run(2_000.0, 600_000.0, 20).expect("simulation runs");
        compare_row(
            &mut avail,
            &format!("{} availability", tier.name),
            analysis.availability(),
            out.rewards[0].mean,
        );
    }
    r.table(avail);

    let model = spec.network_model(analyses);
    let analytic = model.coa().expect("product form solves");
    let est = simulate_coa(&model, 2_000_000.0, 31_337).expect("simulation runs");
    let mut coa = compare_table_vs("network-coa-analytic-vs-sim", "analytic", "simulated");
    compare_row(&mut coa, "COA", analytic, est.mean);
    r.table(coa);
    r.keys([("coa_sim_ci95", Value::from(est.ci95))]);

    let harm = spec.build_harm().patched_critical(8.0);
    let exact = harm
        .metrics(&MetricsConfig {
            asp: AspStrategy::Reliability,
            ..Default::default()
        })
        .attack_success_probability;
    let mc = estimate_asp(&harm, 500_000, 2_718);
    let mut asp = compare_table_vs("asp-exact-vs-monte-carlo", "exact", "monte_carlo");
    compare_row(&mut asp, "ASP (after patch)", exact, mc.mean);
    r.table(asp);
    r.keys([("asp_mc_ci95", Value::from(mc.ci95))]);

    r.note("every analytic result is reproduced by an independent simulator (fixed seeds).");
    r
}

fn aggregated_coa(params: &[ServerParams], counts: &[u32]) -> f64 {
    let tiers: Vec<Tier> = params
        .iter()
        .zip(counts)
        .map(|(p, &c)| {
            let a = ServerAnalysis::of(p).expect("server model solves");
            Tier::new(p.name.clone(), c, a.rates())
        })
        .collect();
    NetworkModel::new(tiers).coa().expect("product form solves")
}

/// Validation of the paper's hierarchical aggregation (Equations
/// (1),(2) + patch-only upper layer) against the exact, unreduced
/// composition of full server models.
pub fn aggregation_error() -> Report {
    let mut r = Report::new(
        "aggregation_error",
        "Aggregation accuracy: exact composite vs Equations (1),(2)",
    );
    let dns = case_study::dns_params();
    let web = case_study::web_params();
    let cases: Vec<(&str, Vec<ServerParams>, Vec<u32>)> = vec![
        ("1 dns", vec![dns.clone()], vec![1]),
        ("2 dns (one tier)", vec![dns.clone()], vec![2]),
        ("dns + web", vec![dns.clone(), web.clone()], vec![1, 1]),
        ("dns + 2 web", vec![dns, web], vec![1, 2]),
    ];
    let mut exact_table = Table::new(
        "small-networks-exact-vs-aggregated",
        ["network", "exact_coa", "aggregated_coa", "error"],
    );
    for (label, params, counts) in cases {
        let composite = CompositeNetwork::build(&params, &counts);
        let exact = composite.coa_exact().expect("exact solve");
        let agg = aggregated_coa(&params, &counts);
        exact_table.add_row(vec![
            Value::from(label),
            Value::from(exact),
            Value::from(agg),
            Value::from(agg - exact),
        ]);
    }
    r.table(exact_table);
    r.note(
        "the aggregation ignores failure-induced downtime (the paper's \
         upper layer models patch states only), so it overestimates COA \
         by roughly the summed failure unavailability.",
    );

    // Case-study network (6 servers): the full composite is too large to
    // solve exactly, so simulate it (fixed seed).
    let spec = case_study::network();
    let params: Vec<ServerParams> = spec.tiers().iter().map(|t| t.params.clone()).collect();
    let counts: Vec<u32> = spec.tiers().iter().map(|t| t.count).collect();
    let composite = CompositeNetwork::build(&params, &counts);
    let mut sim = Simulation::new(composite.net(), 777);
    // Rebuild the reward against the simulator's marking type.
    let servers = composite.servers().to_vec();
    let n_tiers = counts.len();
    let total: u32 = counts.iter().sum();
    sim.add_reward("coa", move |m| {
        let mut up = vec![0u32; n_tiers];
        for (tier, places) in &servers {
            if places.service_up(m) {
                up[*tier] += 1;
            }
        }
        if up.contains(&0) {
            0.0
        } else {
            f64::from(up.iter().sum::<u32>()) / f64::from(total)
        }
    });
    let out = sim.run(5_000.0, 1_000_000.0, 20).expect("simulation runs");
    let est = &out.rewards[0];
    let agg = aggregated_coa(&params, &counts);
    r.keys([
        ("case_study_simulated_coa", Value::from(est.mean)),
        ("case_study_sim_ci95", Value::from(est.ci95)),
        ("case_study_aggregated_coa", Value::from(agg)),
        ("case_study_aggregation_error", Value::from(agg - est.mean)),
    ]);
    r.note(
        "the ~6e-3 offset is the failure-induced downtime the paper's \
         patch-only upper layer deliberately excludes. It applies almost \
         uniformly across redundancy designs, so the paper's design \
         *ranking* survives — but absolute COA values should be read as \
         'capacity under patching alone'.",
    );
    r
}
