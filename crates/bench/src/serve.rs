//! Wiring for `redeval serve`: the report registry and batch engine
//! plugged into `redeval-server`'s endpoint slots.
//!
//! The server crate owns the wire (HTTP parsing, the result cache, the
//! routing contract); this module owns *what the endpoints mean*:
//!
//! * `POST /v1/eval` → [`reports::scenario::eval_report_on`] — the same
//!   builder behind `redeval eval --scenario FILE`, so a served response
//!   is byte-identical to the CLI's `--format json` output;
//! * `POST /v1/sweep` → [`reports::scenario::sweep_report_on`];
//! * `POST /v1/optimize` → [`reports::optimize::optimize_report_on`] —
//!   the pruned branch-and-bound search behind `redeval optimize`;
//! * `POST /v1/equilibrium` →
//!   [`reports::equilibrium::equilibrium_report_on`] — the Gauss-Seidel
//!   best-response iteration behind `redeval equilibrium`;
//! * `GET /v1/scenarios` → [`cli::scenario_list_report`];
//! * `GET /v1/reports` → [`cli::list_report`].
//!
//! `POST /v1/generate` needs no wiring here: the seeded generators are
//! pure core code, so the server crate runs them directly and returns
//! the same canonical bytes as `redeval gen`.
//!
//! Both evaluation endpoints share one [`Pool`] (spawned once, reused
//! for every request) and one [`AnalysisCache`] (tier solves survive
//! across requests), so a warm server only pays for what a request
//! actually changes.

use std::path::Path;
use std::sync::Arc;

use redeval::exec::{AnalysisCache, Pool};
use redeval_server::{DiskCache, Endpoints, Limits, Service, ServiceConfig};

use crate::{cli, reports};

/// Default listen address of `redeval serve`.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7878";

/// Default result-cache budget (64 MiB of serialized responses).
pub const DEFAULT_CACHE_CAP: usize = 64 * 1024 * 1024;

/// Default byte budget of the persistent tier under `--cache-dir`
/// (256 MiB of entry files).
pub const DEFAULT_DISK_CAP: u64 = 256 * 1024 * 1024;

/// Builds the fully wired service: `threads` pool workers for the
/// evaluation grids and a result cache capped at `cache_capacity`
/// bytes (memory tier only; see [`service_with_disk`]).
pub fn service(threads: usize, cache_capacity: usize) -> Service {
    wired_service(threads, cache_capacity)
}

/// [`service`] plus a persistent cache tier under `cache_dir` (created
/// if needed, budgeted at `disk_capacity` bytes): a server restarted
/// over the same directory answers its first repeated request from
/// disk.
///
/// # Errors
///
/// Propagates the cache-directory open failure.
pub fn service_with_disk(
    threads: usize,
    cache_capacity: usize,
    cache_dir: &Path,
    disk_capacity: u64,
) -> std::io::Result<Service> {
    let disk = DiskCache::open(cache_dir, disk_capacity)?;
    Ok(wired_service(threads, cache_capacity).with_disk(disk))
}

fn wired_service(threads: usize, cache_capacity: usize) -> Service {
    // One counters-mode telemetry handle for the whole server lifetime:
    // the cache mirrors its hits/solves/relabels and every solver's
    // convergence stats into it, and the same handle backs the `core`
    // section of `GET /v1/stats` and the `redeval_core_*` series of
    // `GET /metrics`. Counters only — spans would cost wall-clock
    // bookkeeping on every request for a signal nobody scrapes.
    let telemetry = redeval::Telemetry::counters();
    let pool = Arc::new(Pool::new(threads));
    let cache = Arc::new(AnalysisCache::with_telemetry(telemetry.clone()));
    let (eval_pool, eval_cache) = (Arc::clone(&pool), Arc::clone(&cache));
    let (opt_pool, opt_cache) = (Arc::clone(&pool), Arc::clone(&cache));
    let (eq_pool, eq_cache) = (Arc::clone(&pool), Arc::clone(&cache));
    let endpoints = Endpoints {
        eval: Box::new(move |doc| reports::scenario::eval_report_on(doc, &eval_pool, &eval_cache)),
        sweep: Box::new(move |req| reports::scenario::sweep_report_on(req, &pool, &cache)),
        optimize: Box::new(move |req| {
            reports::optimize::optimize_report_on(req, &opt_pool, &opt_cache)
        }),
        equilibrium: Box::new(move |req| {
            reports::equilibrium::equilibrium_report_on(req, &eq_pool, &eq_cache)
        }),
        scenarios: Box::new(cli::scenario_list_report),
        reports: Box::new(cli::list_report),
    };
    Service::new(
        endpoints,
        ServiceConfig {
            cache_capacity,
            limits: Limits::default(),
        },
    )
    .with_telemetry(telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use redeval::scenario::builtin;
    use redeval_server::{Request, CACHE_HEADER};

    #[test]
    fn wired_service_serves_the_cli_bytes_and_caches() {
        let svc = service(2, 1 << 20);
        let doc = builtin::paper_case_study();
        let body = doc.to_json();
        let first = svc.handle(&Request::synthetic("POST", "/v1/eval", body.as_bytes()));
        assert_eq!(first.status, 200);
        // The serving path and the CLI path are the same builder.
        let cli_bytes = reports::scenario::eval_report(&doc).unwrap().to_json();
        assert_eq!(String::from_utf8(first.body.clone()).unwrap(), cli_bytes);
        // Second request: cache hit, identical bytes.
        let second = svc.handle(&Request::synthetic("POST", "/v1/eval", body.as_bytes()));
        assert!(second.extra_headers.contains(&(CACHE_HEADER, "hit".into())));
        assert_eq!(first.body, second.body);
    }

    #[test]
    fn wired_service_generates_the_cli_bytes() {
        use redeval::scenario::generate::{self, Family, GenParams};
        let svc = service(1, 1 << 20);
        let req_body =
            b"{\"family\": \"microservice_mesh\", \"seed\": 3, \"tiers\": 9, \"redundancy\": 2}";
        let resp = svc.handle(&Request::synthetic("POST", "/v1/generate", req_body));
        assert_eq!(resp.status, 200);
        let expected = generate::generate(
            Family::MicroserviceMesh,
            &GenParams {
                tiers: 9,
                redundancy: 2,
                ..GenParams::default()
            },
            3,
        )
        .to_json();
        assert_eq!(String::from_utf8(resp.body).unwrap(), expected);
    }

    #[test]
    fn wired_listings_expose_the_registries() {
        let svc = service(1, 1 << 20);
        let scenarios = svc.handle(&Request::synthetic("GET", "/v1/scenarios", b""));
        let text = String::from_utf8(scenarios.body).unwrap();
        assert!(text.contains("paper_case_study") && text.contains("ecommerce"));
        let reports_resp = svc.handle(&Request::synthetic("GET", "/v1/reports", b""));
        let text = String::from_utf8(reports_resp.body).unwrap();
        assert!(text.contains("table2") && text.contains("scenario_suite"));
    }
}
