//! The unified `redeval` command-line interface.
//!
//! One dispatcher over the report registry (`reports::REGISTRY`) and the
//! declarative scenario API:
//!
//! ```console
//! $ redeval table 2                 # any artifact, text to stdout
//! $ redeval fig 6 --format csv     # deterministic CSV
//! $ redeval report --all --format json --out reports/
//! $ redeval report --all --bless   # regenerate tests/golden/
//! $ redeval scenario list          # the bundled scenario gallery
//! $ redeval scenario export ecommerce > mine.json
//! $ redeval scenario validate mine.json
//! $ redeval eval --scenario mine.json --policy all
//! ```
//!
//! Subcommands are registry names (`table2`, `sweep`, `design_space`, …;
//! dashes and underscores are interchangeable), plus the `table N` /
//! `fig N` spellings, `report --all`, `list`, the `scenario` family and
//! `eval --scenario FILE`. Report-producing commands take
//! `--format text|json|csv` and `--out DIR`; with `--out`, each report
//! is written to `DIR/<name>.<ext>` instead of stdout.
//!
//! Exit codes: `0` success, `1` a report's embedded consistency check
//! failed (e.g. a region deviates from the paper) or a scenario failed
//! validation, `2` usage error.

use std::path::Path;
use std::sync::Arc;

use redeval::decision::ScatterBounds;
use redeval::exec::{AnalysisCache, Pool};
use redeval::output::{Report, Table, Value};
use redeval::scenario::generate::{self, Family, GenParams};
use redeval::scenario::{builtin, ScenarioDoc};
use redeval::PatchPolicy;
use redeval::Telemetry;
use redeval_server::{EquilibriumRequest, OptimizeRequest};

use crate::reports::{self, REGISTRY};

/// Where blessed goldens live. Anchored at compile time to this crate's
/// manifest directory (like `tests/golden.rs` does), so `--bless` lands
/// in the repo's corpus whatever the invocation CWD is.
pub const GOLDEN_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden");

/// Where a bare `--profile` writes the Chrome-trace file.
pub const DEFAULT_TRACE_FILE: &str = "redeval.trace.json";

/// Usage text (also shown on `--help`).
pub const USAGE: &str = "\
redeval — unified reproduction CLI (Ge, Kim & Kim, DSN 2017)

USAGE:
    redeval <COMMAND> [--format text|json|csv] [--out DIR]

COMMANDS:
    table <1..6>         one of the paper's Tables I-VI
    fig <3|45|6|7>       one of the paper's Figures 3-7
    <name>               any report by registry name (see `list`)
    report --all         every report; with --out DIR, one file each
    report --all --bless regenerate the golden corpus (tests/golden/*.json)
    list                 reports and bundled scenarios (honors --format json)

    eval --scenario FILE [--policy P] [--profile[=FILE]]
                         evaluate a scenario file end-to-end (designs ×
                         policies); --policy overrides the file's policy
                         list (none | all | critical>T)
    optimize [--scenario FILE|NAME] [--max-redundancy N] [--policy P]
             [--bounds ASP,COA] [--profile[=FILE]]
                         pruned branch-and-bound search of the per-tier
                         redundancy space: the Pareto frontier on
                         (after-patch ASP, COA), byte-identical to the
                         exhaustive sweep but without materializing the
                         grid; without --scenario, searches the paper
                         case study with its Equation (3) bounds
    equilibrium [--scenario FILE|NAME] [--max-redundancy N] [--policy P]
                [--max-iters K] [--profile[=FILE]]
                         attacker–defender equilibrium: Gauss-Seidel
                         best-response iteration between the pruned
                         design/policy search and an entry-subset
                         attacker; deterministic at any thread count;
                         without --scenario, analyzes the paper case
                         study
    scenario list        the bundled scenario gallery
    scenario export NAME print a bundled scenario's canonical JSON
    scenario validate FILE...
                         parse + validate scenario files (exit 1 on failure)

    gen <FAMILY> [--seed N] [--tiers K] [--redundancy R] [--designs D]
                 [--policies P]
                         emit a seeded, byte-deterministic scenario
                         (canonical JSON) of an archetype family:
                         ecommerce_fleet | iot_swarm | microservice_mesh

    serve [--addr A] [--threads N] [--cache-cap BYTES] [--cache-dir DIR]
                         run the HTTP evaluation server (DESIGN.md §9):
                         POST /v1/eval, POST /v1/sweep, POST /v1/optimize,
                         POST /v1/equilibrium, GET /v1/scenarios,
                         GET /v1/reports, GET /v1/stats, GET /metrics,
                         GET /healthz

OPTIONS:
    --format <FMT>       text (default), json, or csv
    --out <DIR>          write DIR/<name>.<ext> instead of stdout
    --addr <A>           serve: listen address (default 127.0.0.1:7878)
    --threads <N>        serve: worker-pool size (default: all cores)
    --cache-cap <BYTES>  serve: result-cache budget (default 67108864)
    --cache-dir <DIR>    serve: persist results under DIR so a restarted
                         server answers repeats warm (DESIGN.md §12)
    --max-redundancy <N> optimize/equilibrium: per-tier count bound 1..=8
                         (default 4)
    --bounds <ASP,COA>   optimize: decision bounds φ,ψ selecting the
                         satisfying region (e.g. --bounds 0.2,0.9962)
    --max-iters <K>      equilibrium: best-response round cap 1..=64
                         (default 16)
    --profile[=FILE]     eval/optimize/equilibrium: record wall-clock
                         spans and deterministic counters; writes a
                         Chrome-trace JSON (chrome://tracing, Perfetto)
                         to FILE (default redeval.trace.json) and a
                         span/counter summary to stderr — the report on
                         stdout stays byte-identical (DESIGN.md §14)
    --seed <N>           gen: generator seed (default 0)
    --tiers <K>          gen: total tiers (family-specific range; default 12)
    --redundancy <R>     gen: host-count bound 1..=8 (default 3)
    --designs <D>        gen: extra designs beyond base, 0..=6 (default 2)
    --policies <P>       gen: patch policies 1..=4 (default 2)
    -h, --help           this text

EXIT CODES: 0 ok; 1 a consistency/validation check failed; 2 usage error.
";

/// Output format of a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Human-oriented aligned text (default).
    Text,
    /// Canonical JSON — the golden-corpus format.
    Json,
    /// CSV blocks per table/series.
    Csv,
}

impl Format {
    fn parse(s: &str) -> Option<Format> {
        match s {
            "text" => Some(Format::Text),
            "json" => Some(Format::Json),
            "csv" => Some(Format::Csv),
            _ => None,
        }
    }

    fn extension(self) -> &'static str {
        match self {
            Format::Text => "txt",
            Format::Json => "json",
            Format::Csv => "csv",
        }
    }

    fn render(self, report: &Report) -> String {
        match self {
            Format::Text => report.to_text(),
            Format::Json => report.to_json(),
            Format::Csv => report.to_csv(),
        }
    }
}

/// What a parsed command line asks for.
#[derive(Debug, PartialEq)]
enum Cmd {
    /// Print the usage text.
    Help,
    /// The combined report/scenario listing (a [`Report`] itself, so it
    /// honors `--format json` for tooling).
    List,
    /// Registry reports to build, in order.
    Reports(Vec<&'static str>),
    /// List the bundled scenario gallery.
    ScenarioList,
    /// Print a bundled scenario's canonical JSON.
    ScenarioExport(String),
    /// Parse + validate scenario files.
    ScenarioValidate(Vec<String>),
    /// Evaluate one scenario file end-to-end.
    Eval {
        /// Path of the scenario JSON file.
        file: String,
        /// Overrides the file's policy list when present.
        policy: Option<PatchPolicy>,
        /// Chrome-trace output path of `--profile`.
        profile: Option<String>,
    },
    /// Pruned branch-and-bound search of the redundancy design space.
    Optimize {
        /// Scenario file path or builtin name; `None` searches the
        /// default request (paper case study + Equation (3) bounds).
        scenario: Option<String>,
        /// Per-tier count bound of the searched space.
        max_redundancy: Option<u32>,
        /// Overrides the scenario's policy list when present.
        policy: Option<PatchPolicy>,
        /// Decision bounds (φ, ψ) selecting the satisfying region.
        bounds: Option<ScatterBounds>,
        /// Chrome-trace output path of `--profile`.
        profile: Option<String>,
    },
    /// Attacker–defender best-response equilibrium analysis.
    Equilibrium {
        /// Scenario file path or builtin name; `None` analyzes the
        /// paper case study.
        scenario: Option<String>,
        /// Per-tier count bound of the defender's design space.
        max_redundancy: Option<u32>,
        /// Overrides the scenario's policy list when present.
        policy: Option<PatchPolicy>,
        /// Gauss-Seidel round cap.
        max_iters: Option<u32>,
        /// Chrome-trace output path of `--profile`.
        profile: Option<String>,
    },
    /// Emit a generated scenario's canonical JSON.
    Gen {
        /// Archetype family.
        family: Family,
        /// Generator knobs (defaults overridden by flags).
        params: GenParams,
        /// Generator seed.
        seed: u64,
    },
    /// Run the HTTP evaluation server.
    Serve {
        /// Listen address.
        addr: String,
        /// Worker-pool size.
        threads: usize,
        /// Result-cache byte budget.
        cache_cap: usize,
        /// Persistent cache directory (`None` = memory tier only).
        cache_dir: Option<String>,
    },
}

/// A parsed command line.
#[derive(Debug, PartialEq)]
struct Invocation {
    cmd: Cmd,
    format: Format,
    out: Option<String>,
}

fn parse(args: &[String]) -> Result<Invocation, String> {
    let mut positional: Vec<&str> = Vec::new();
    let mut format = Format::Text;
    let mut explicit_format = false;
    let mut out: Option<String> = None;
    let mut all = false;
    let mut bless = false;
    let mut help = false;
    let mut scenario_file: Option<String> = None;
    let mut policy: Option<PatchPolicy> = None;
    let mut addr: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut cache_cap: Option<usize> = None;
    let mut cache_dir: Option<String> = None;
    let mut max_redundancy: Option<u32> = None;
    let mut bounds: Option<ScatterBounds> = None;
    let mut max_iters: Option<u32> = None;
    let mut profile: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut tiers: Option<u32> = None;
    let mut redundancy: Option<u32> = None;
    let mut designs: Option<u32> = None;
    let mut policies: Option<u32> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                addr = Some(args.get(i).ok_or("--addr needs an address")?.clone());
                i += 1;
                continue;
            }
            "--threads" => {
                i += 1;
                let v = args.get(i).ok_or("--threads needs a count")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--threads: `{v}` is not a number"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                threads = Some(n);
                i += 1;
                continue;
            }
            "--cache-cap" => {
                i += 1;
                let v = args.get(i).ok_or("--cache-cap needs a byte count")?;
                cache_cap = Some(
                    v.parse()
                        .map_err(|_| format!("--cache-cap: `{v}` is not a byte count"))?,
                );
                i += 1;
                continue;
            }
            "--cache-dir" => {
                i += 1;
                cache_dir = Some(args.get(i).ok_or("--cache-dir needs a directory")?.clone());
                i += 1;
                continue;
            }
            "--max-redundancy" => {
                i += 1;
                let v = args.get(i).ok_or("--max-redundancy needs a number")?;
                let n: u32 = v
                    .parse()
                    .map_err(|_| format!("--max-redundancy: `{v}` is not a number"))?;
                if !(1..=8).contains(&n) {
                    return Err(format!("--max-redundancy: `{n}` is not in 1..=8"));
                }
                max_redundancy = Some(n);
                i += 1;
                continue;
            }
            "--max-iters" => {
                i += 1;
                let v = args.get(i).ok_or("--max-iters needs a number")?;
                let n: u32 = v
                    .parse()
                    .map_err(|_| format!("--max-iters: `{v}` is not a number"))?;
                if !(1..=64).contains(&n) {
                    return Err(format!("--max-iters: `{n}` is not in 1..=64"));
                }
                max_iters = Some(n);
                i += 1;
                continue;
            }
            "--bounds" => {
                i += 1;
                let v = args.get(i).ok_or("--bounds needs `ASP,COA`")?;
                let (asp, coa) = v
                    .split_once(',')
                    .ok_or_else(|| format!("--bounds: `{v}` is not `ASP,COA`"))?;
                let parse_finite = |s: &str, what: &str| -> Result<f64, String> {
                    s.trim()
                        .parse::<f64>()
                        .ok()
                        .filter(|x| x.is_finite())
                        .ok_or_else(|| format!("--bounds: `{s}` is not a finite {what}"))
                };
                bounds = Some(ScatterBounds {
                    max_asp: parse_finite(asp, "ASP bound")?,
                    min_coa: parse_finite(coa, "COA bound")?,
                });
                i += 1;
                continue;
            }
            "--seed" => {
                i += 1;
                let v = args.get(i).ok_or("--seed needs a number")?;
                seed = Some(
                    v.parse()
                        .map_err(|_| format!("--seed: `{v}` is not a number"))?,
                );
                i += 1;
                continue;
            }
            // `--profile` takes an *optional* value, so it must use the
            // `=` spelling — a separate positional would be ambiguous.
            "--profile" => {
                profile = Some(DEFAULT_TRACE_FILE.to_string());
                i += 1;
                continue;
            }
            flag if flag.starts_with("--profile=") => {
                let path = &flag["--profile=".len()..];
                if path.is_empty() {
                    return Err("--profile= needs a file path".to_string());
                }
                profile = Some(path.to_string());
                i += 1;
                continue;
            }
            flag @ ("--tiers" | "--redundancy" | "--designs" | "--policies") => {
                i += 1;
                let v = args
                    .get(i)
                    .ok_or_else(|| format!("{flag} needs a number"))?;
                let n: u32 = v
                    .parse()
                    .map_err(|_| format!("{flag}: `{v}` is not a number"))?;
                match flag {
                    "--tiers" => tiers = Some(n),
                    "--redundancy" => redundancy = Some(n),
                    "--designs" => designs = Some(n),
                    _ => policies = Some(n),
                }
                i += 1;
                continue;
            }
            _ => {}
        }
        match args[i].as_str() {
            "--format" => {
                i += 1;
                let v = args.get(i).ok_or("--format needs a value")?;
                format = Format::parse(v).ok_or_else(|| format!("unknown format `{v}`"))?;
                explicit_format = true;
            }
            "--out" => {
                i += 1;
                out = Some(args.get(i).ok_or("--out needs a value")?.clone());
            }
            "--scenario" => {
                i += 1;
                scenario_file = Some(args.get(i).ok_or("--scenario needs a file path")?.clone());
            }
            "--policy" => {
                i += 1;
                let v = args.get(i).ok_or("--policy needs a value")?;
                policy = Some(v.parse().map_err(|e| format!("{e}"))?);
            }
            "--all" => all = true,
            "--bless" => bless = true,
            "-h" | "--help" => help = true,
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            p => positional.push(p),
        }
        i += 1;
    }

    if positional.is_empty() && !help {
        // A flag without a command is a mistyped invocation; exiting 0
        // with the usage text would let scripts treat the no-op as
        // success.
        if all || bless {
            return Err("`--all` and `--bless` belong to the `report` command \
                        (e.g. `redeval report --all`)"
                .to_string());
        }
        if scenario_file.is_some() || policy.is_some() {
            return Err(
                "`--scenario`/`--policy` belong to the `eval`, `optimize` and \
                 `equilibrium` commands (e.g. `redeval eval --scenario mine.json`)"
                    .to_string(),
            );
        }
        if max_redundancy.is_some() || bounds.is_some() {
            return Err("`--max-redundancy`/`--bounds` belong to the `optimize` \
                 command (e.g. `redeval optimize --max-redundancy 6`)"
                .to_string());
        }
        if max_iters.is_some() {
            return Err("`--max-iters` belongs to the `equilibrium` command \
                 (e.g. `redeval equilibrium --max-iters 8`)"
                .to_string());
        }
        if profile.is_some() {
            return Err("`--profile` belongs to the `eval`, `optimize` and \
                 `equilibrium` commands (e.g. `redeval optimize --profile`)"
                .to_string());
        }
        if addr.is_some() || threads.is_some() || cache_cap.is_some() || cache_dir.is_some() {
            return Err(
                "`--addr`/`--threads`/`--cache-cap`/`--cache-dir` belong to the \
                 `serve` command (e.g. `redeval serve --addr 127.0.0.1:7878`)"
                    .to_string(),
            );
        }
        if seed.is_some()
            || tiers.is_some()
            || redundancy.is_some()
            || designs.is_some()
            || policies.is_some()
        {
            return Err(
                "`--seed`/`--tiers`/`--redundancy`/`--designs`/`--policies` \
                 belong to the `gen` command (e.g. `redeval gen iot_swarm --seed 7`)"
                    .to_string(),
            );
        }
        if explicit_format || out.is_some() {
            return Err("`--format`/`--out` need a command to render".to_string());
        }
    }
    if help || positional.is_empty() {
        return Ok(Invocation {
            cmd: Cmd::Help,
            format,
            out,
        });
    }
    if positional[0] != "report" && (all || bless) {
        return Err(format!(
            "`--all`/`--bless` only apply to `report`, not `{}`",
            positional[0]
        ));
    }
    if !matches!(positional[0], "eval" | "optimize" | "equilibrium") {
        if scenario_file.is_some() {
            return Err(
                "`--scenario` belongs to `eval`, `optimize` and `equilibrium` \
                 (e.g. `redeval eval --scenario f.json`)"
                    .to_string(),
            );
        }
        if policy.is_some() {
            return Err("`--policy` belongs to `eval`, `optimize` and `equilibrium`".to_string());
        }
        if profile.is_some() {
            return Err("`--profile` belongs to `eval`, `optimize` and `equilibrium`".to_string());
        }
    }
    if !matches!(positional[0], "optimize" | "equilibrium") && max_redundancy.is_some() {
        return Err(format!(
            "`--max-redundancy` only applies to `optimize` and `equilibrium`, not `{}`",
            positional[0]
        ));
    }
    if positional[0] != "optimize" && bounds.is_some() {
        return Err(format!(
            "`--bounds` only applies to `optimize`, not `{}`",
            positional[0]
        ));
    }
    if positional[0] != "equilibrium" && max_iters.is_some() {
        return Err(format!(
            "`--max-iters` only applies to `equilibrium`, not `{}`",
            positional[0]
        ));
    }
    if positional[0] != "serve"
        && (addr.is_some() || threads.is_some() || cache_cap.is_some() || cache_dir.is_some())
    {
        return Err(format!(
            "`--addr`/`--threads`/`--cache-cap`/`--cache-dir` only apply to `serve`, not `{}`",
            positional[0]
        ));
    }
    if positional[0] != "gen"
        && (seed.is_some()
            || tiers.is_some()
            || redundancy.is_some()
            || designs.is_some()
            || policies.is_some())
    {
        return Err(format!(
            "`--seed`/`--tiers`/`--redundancy`/`--designs`/`--policies` only apply \
             to `gen`, not `{}`",
            positional[0]
        ));
    }

    // Positionals the command consumes; anything beyond is an error.
    let mut consumed = 1;
    let cmd = match positional[0] {
        "list" => Cmd::List,
        "report" => {
            // `report` runs everything; `--all` is the documented form.
            if bless {
                // Blessing fixes both the format and the destination;
                // an explicit --format/--out would be silently ignored,
                // so reject the contradiction instead.
                if explicit_format || out.is_some() {
                    return Err("`--bless` implies `--format json --out tests/golden`; \
                         drop the explicit --format/--out"
                        .to_string());
                }
                format = Format::Json;
                out = Some(GOLDEN_DIR.to_string());
            }
            Cmd::Reports(REGISTRY.iter().map(|s| s.name).collect())
        }
        "eval" => {
            let file = scenario_file
                .take()
                .ok_or("`eval` needs `--scenario <FILE>`")?;
            Cmd::Eval {
                file,
                policy,
                profile: profile.take(),
            }
        }
        "optimize" => Cmd::Optimize {
            scenario: scenario_file.take(),
            max_redundancy,
            policy,
            bounds,
            profile: profile.take(),
        },
        "equilibrium" => Cmd::Equilibrium {
            scenario: scenario_file.take(),
            max_redundancy,
            policy,
            max_iters,
            profile: profile.take(),
        },
        "gen" => {
            let key = positional
                .get(1)
                .ok_or("`gen` needs a family: ecommerce_fleet, iot_swarm or microservice_mesh")?;
            consumed = 2;
            let family = Family::parse(key).ok_or_else(|| {
                format!(
                    "unknown family `{key}` (expected ecommerce_fleet, iot_swarm \
                     or microservice_mesh)"
                )
            })?;
            // The emitted document *is* canonical JSON; another format
            // would be a lie (same contract as `scenario export`).
            if explicit_format && format != Format::Json {
                return Err(
                    "`gen` always writes canonical scenario JSON; drop the --format flag"
                        .to_string(),
                );
            }
            let defaults = GenParams::default();
            Cmd::Gen {
                family,
                params: GenParams {
                    tiers: tiers.unwrap_or(defaults.tiers),
                    redundancy: redundancy.unwrap_or(defaults.redundancy),
                    designs: designs.unwrap_or(defaults.designs),
                    policies: policies.unwrap_or(defaults.policies),
                },
                seed: seed.unwrap_or(0),
            }
        }
        "serve" => {
            if explicit_format || out.is_some() {
                return Err("`serve` speaks HTTP; it takes no --format/--out".to_string());
            }
            Cmd::Serve {
                addr: addr
                    .take()
                    .unwrap_or_else(|| crate::serve::DEFAULT_ADDR.to_string()),
                threads: threads.unwrap_or_else(redeval::exec::default_threads),
                cache_cap: cache_cap.unwrap_or(crate::serve::DEFAULT_CACHE_CAP),
                cache_dir: cache_dir.take(),
            }
        }
        "scenario" => {
            let sub = positional
                .get(1)
                .ok_or("`scenario` needs a subcommand: list, export or validate")?;
            consumed = 2;
            match *sub {
                "list" => Cmd::ScenarioList,
                "export" => {
                    let name = positional
                        .get(2)
                        .ok_or("`scenario export` needs a scenario name (see `scenario list`)")?;
                    consumed = 3;
                    let spec = builtin::find(name).ok_or_else(|| {
                        format!("unknown scenario `{name}`; see `redeval scenario list`")
                    })?;
                    // The export *is* JSON; another format would be a lie.
                    if explicit_format && format != Format::Json {
                        return Err("`scenario export` always writes canonical JSON; \
                                    drop the --format flag"
                            .to_string());
                    }
                    Cmd::ScenarioExport(spec.name.to_string())
                }
                "validate" => {
                    let files: Vec<String> =
                        positional[2..].iter().map(|s| s.to_string()).collect();
                    if files.is_empty() {
                        return Err("`scenario validate` needs at least one file".to_string());
                    }
                    consumed = positional.len();
                    if explicit_format || out.is_some() {
                        return Err("`scenario validate` prints a plain summary; it takes no \
                             --format/--out"
                            .to_string());
                    }
                    Cmd::ScenarioValidate(files)
                }
                other => {
                    return Err(format!(
                        "unknown scenario subcommand `{other}` (expected list, export, validate)"
                    ));
                }
            }
        }
        "table" | "fig" => {
            let kind = positional[0];
            let n = positional
                .get(1)
                .ok_or_else(|| format!("`{kind}` needs a number (e.g. `redeval {kind} 2`)"))?;
            consumed = 2;
            let name = format!("{kind}{n}");
            let spec = reports::find(&name)
                .ok_or_else(|| format!("no report `{name}`; see `redeval list`"))?;
            Cmd::Reports(vec![spec.name])
        }
        other => {
            let normalized = other.replace('-', "_");
            let spec = reports::find(&normalized)
                .ok_or_else(|| format!("unknown command `{other}`; see `redeval list`"))?;
            Cmd::Reports(vec![spec.name])
        }
    };
    if positional.len() > consumed {
        return Err(format!("unexpected argument `{}`", positional[consumed]));
    }
    Ok(Invocation { cmd, format, out })
}

/// Writes `content` to `DIR/<stem>.<ext>` (creating DIR) or stdout.
fn emit_text(content: &str, stem: &str, ext: &str, out: Option<&str>) -> Result<(), String> {
    match out {
        Some(dir) => {
            let dir = Path::new(dir);
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
            let path = dir.join(format!("{stem}.{ext}"));
            std::fs::write(&path, content)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            eprintln!("wrote {}", path.display());
        }
        None => print!("{content}"),
    }
    Ok(())
}

/// Renders one report in the chosen format to stdout or `--out`.
fn emit(report: &Report, format: Format, out: Option<&str>) -> Result<bool, String> {
    emit_text(
        &format.render(report),
        &report.name,
        format.extension(),
        out,
    )?;
    Ok(report.ok)
}

/// The combined listing as a [`Report`]: one table of registry reports,
/// one of bundled scenarios — so `redeval list --format json` gives
/// tooling a machine-readable index of both.
pub fn list_report() -> Report {
    let mut r = Report::new("list", "redeval — reports and bundled scenarios");
    let mut reports = Table::new("reports", ["name", "about"]);
    for spec in REGISTRY {
        reports.add_row(vec![Value::from(spec.name), Value::from(spec.about)]);
    }
    r.table(reports);
    r.table(scenario_table());
    r.table(generator_table());
    r
}

/// The generator families as a table (`redeval gen <family>`).
fn generator_table() -> Table {
    let mut t = Table::new("generators", ["family", "about"]);
    for family in generate::FAMILIES {
        t.add_row(vec![Value::from(family.key()), Value::from(family.about())]);
    }
    t
}

/// The bundled scenario gallery as a table (shared by `list` and
/// `scenario list`).
fn scenario_table() -> Table {
    let mut t = Table::new("scenarios", ["name", "about"]);
    for s in builtin::BUILTINS {
        t.add_row(vec![Value::from(s.name), Value::from(s.about)]);
    }
    t
}

/// The `scenario list` report. (Named `scenario_list`, not `scenarios` —
/// that name belongs to the partial-patch registry report, and `--out`
/// into one directory must never clobber it.)
pub fn scenario_list_report() -> Report {
    let mut r = Report::new(
        "scenario_list",
        "bundled scenarios (redeval scenario export <name>)",
    );
    r.table(scenario_table());
    r
}

/// Loads and fully validates a scenario file.
fn load_scenario(file: &str) -> Result<ScenarioDoc, String> {
    let text = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    ScenarioDoc::from_json(&text).map_err(|e| format!("{file}: {e}"))
}

/// The `--profile` execution context: a profiler-mode [`Telemetry`]
/// handle feeding a shared pool + analysis cache, so the instrumented
/// `_on` report builders record spans and counters. The report bytes on
/// stdout are unaffected — the engine contract makes the pooled path
/// byte-identical to the scoped one.
struct ProfileCtx {
    telemetry: Telemetry,
    pool: Pool,
    cache: Arc<AnalysisCache>,
    path: String,
}

impl ProfileCtx {
    fn new(path: &str) -> Self {
        let telemetry = Telemetry::profiler();
        ProfileCtx {
            pool: Pool::new(redeval::exec::default_threads()),
            cache: Arc::new(AnalysisCache::with_telemetry(telemetry.clone())),
            telemetry,
            path: path.to_string(),
        }
    }

    /// Writes the Chrome-trace file and prints the span/counter summary
    /// to stderr (stdout belongs to the report).
    fn finish(&self) -> Result<(), String> {
        std::fs::write(&self.path, self.telemetry.chrome_trace_json())
            .map_err(|e| format!("cannot write profile trace {}: {e}", self.path))?;
        eprintln!("wrote profile trace {}", self.path);
        eprint!("{}", self.telemetry.text_summary());
        Ok(())
    }
}

/// Runs the CLI on `args` (without the program name); returns the
/// process exit code.
pub fn run(args: &[String]) -> i32 {
    let invocation = match parse(args) {
        Ok(inv) => inv,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            return 2;
        }
    };
    let format = invocation.format;
    let out = invocation.out.as_deref();
    let emit_or_exit = |report: &Report| -> Result<bool, i32> {
        emit(report, format, out).map_err(|msg| {
            eprintln!("error: {msg}");
            2
        })
    };
    match &invocation.cmd {
        Cmd::Help => {
            print!("{USAGE}");
            0
        }
        Cmd::List => match emit_or_exit(&list_report()) {
            Ok(_) => 0,
            Err(code) => code,
        },
        Cmd::ScenarioList => match emit_or_exit(&scenario_list_report()) {
            Ok(_) => 0,
            Err(code) => code,
        },
        Cmd::ScenarioExport(name) => {
            let spec = builtin::find(name).expect("parse resolved the name");
            let json = ((spec.build)()).to_json();
            match emit_text(&json, name, "json", out) {
                Ok(()) => 0,
                Err(msg) => {
                    eprintln!("error: {msg}");
                    2
                }
            }
        }
        Cmd::ScenarioValidate(files) => {
            let mut all_ok = true;
            for file in files {
                match load_scenario(file) {
                    Ok(doc) => {
                        let servers: u64 = doc.tiers.iter().map(|t| u64::from(t.count)).sum();
                        println!(
                            "ok {file}: scenario `{}` — {} tiers, {servers} servers, \
                             {} designs, {} policies",
                            doc.name,
                            doc.tiers.len(),
                            doc.designs.len(),
                            doc.policies.len()
                        );
                    }
                    Err(msg) => {
                        all_ok = false;
                        eprintln!("error: {msg}");
                    }
                }
            }
            i32::from(!all_ok)
        }
        Cmd::Eval {
            file,
            policy,
            profile,
        } => {
            let mut doc = match load_scenario(file) {
                Ok(doc) => doc,
                Err(msg) => {
                    eprintln!("error: {msg}");
                    return 1;
                }
            };
            if let Some(p) = policy {
                doc.policies = vec![*p];
            }
            let profiling = profile.as_deref().map(ProfileCtx::new);
            let result = match &profiling {
                None => reports::scenario::eval_report(&doc),
                Some(ctx) => reports::scenario::eval_report_on(&doc, &ctx.pool, &ctx.cache),
            };
            let report = match result {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {file}: {e}");
                    return 1;
                }
            };
            if let Some(ctx) = &profiling {
                if let Err(msg) = ctx.finish() {
                    eprintln!("error: {msg}");
                    return 2;
                }
            }
            match emit_or_exit(&report) {
                Ok(ok) => i32::from(!ok),
                Err(code) => code,
            }
        }
        Cmd::Optimize {
            scenario,
            max_redundancy,
            policy,
            bounds,
            profile,
        } => {
            // A bare `redeval optimize` *is* the registry report, byte
            // for byte — same contract as `redeval report` golden runs.
            // `--profile` alone keeps that contract: it changes how the
            // search executes (instrumented pool + cache), never what it
            // reports.
            let bare = scenario.is_none()
                && max_redundancy.is_none()
                && policy.is_none()
                && bounds.is_none();
            if bare && profile.is_none() {
                return match emit_or_exit(&reports::optimize::builtin_optimize()) {
                    Ok(ok) => i32::from(!ok),
                    Err(code) => code,
                };
            }
            let req = match scenario {
                None => {
                    let mut req = reports::optimize::default_request();
                    // Explicit bounds replace the default ones; the other
                    // overrides keep them (same document, same region).
                    if let Some(b) = bounds {
                        req.bounds = Some(*b);
                    }
                    req
                }
                Some(s) => {
                    let doc = match builtin::find(s) {
                        Some(spec) => (spec.build)(),
                        None => match load_scenario(s) {
                            Ok(doc) => doc,
                            Err(msg) => {
                                eprintln!("error: {msg}");
                                return 1;
                            }
                        },
                    };
                    OptimizeRequest {
                        doc,
                        policies: None,
                        max_redundancy: None,
                        bounds: *bounds,
                    }
                }
            };
            let req = OptimizeRequest {
                policies: policy.as_ref().map(|p| vec![*p]),
                max_redundancy: *max_redundancy,
                ..req
            };
            let profiling = profile.as_deref().map(ProfileCtx::new);
            let result = match &profiling {
                None => reports::optimize::optimize_report(&req),
                Some(ctx) => reports::optimize::optimize_report_on(&req, &ctx.pool, &ctx.cache),
            };
            let mut report = match result {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 1;
                }
            };
            if bare {
                // Same rename `builtin_optimize` performs: the bare
                // invocation is the registry report.
                report.name = "optimize".into();
            }
            if let Some(ctx) = &profiling {
                if let Err(msg) = ctx.finish() {
                    eprintln!("error: {msg}");
                    return 2;
                }
            }
            match emit_or_exit(&report) {
                Ok(ok) => i32::from(!ok),
                Err(code) => code,
            }
        }
        Cmd::Equilibrium {
            scenario,
            max_redundancy,
            policy,
            max_iters,
            profile,
        } => {
            // A bare `redeval equilibrium` *is* the registry report,
            // byte for byte — same contract as `redeval optimize`.
            let bare = scenario.is_none()
                && max_redundancy.is_none()
                && policy.is_none()
                && max_iters.is_none();
            if bare && profile.is_none() {
                return match emit_or_exit(&reports::equilibrium::builtin_equilibrium()) {
                    Ok(ok) => i32::from(!ok),
                    Err(code) => code,
                };
            }
            let doc = match scenario {
                None => reports::equilibrium::default_request().doc,
                Some(s) => match builtin::find(s) {
                    Some(spec) => (spec.build)(),
                    None => match load_scenario(s) {
                        Ok(doc) => doc,
                        Err(msg) => {
                            eprintln!("error: {msg}");
                            return 1;
                        }
                    },
                },
            };
            let req = EquilibriumRequest {
                doc,
                policies: policy.as_ref().map(|p| vec![*p]),
                max_redundancy: *max_redundancy,
                max_iters: *max_iters,
            };
            let profiling = profile.as_deref().map(ProfileCtx::new);
            let result = match &profiling {
                None => reports::equilibrium::equilibrium_report(&req),
                Some(ctx) => {
                    reports::equilibrium::equilibrium_report_on(&req, &ctx.pool, &ctx.cache)
                }
            };
            let mut report = match result {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 1;
                }
            };
            if bare {
                report.name = "equilibrium".into();
            }
            if let Some(ctx) = &profiling {
                if let Err(msg) = ctx.finish() {
                    eprintln!("error: {msg}");
                    return 2;
                }
            }
            match emit_or_exit(&report) {
                Ok(ok) => i32::from(!ok),
                Err(code) => code,
            }
        }
        Cmd::Gen {
            family,
            params,
            seed,
        } => {
            let doc = generate::generate(*family, params, *seed);
            // Generators guarantee validity by construction; check it
            // anyway so a regression can never emit a broken document.
            if let Err(e) = doc.validate() {
                eprintln!("error: generated scenario failed validation: {e}");
                return 1;
            }
            match emit_text(&doc.to_json(), &doc.name, "json", out) {
                Ok(()) => 0,
                Err(msg) => {
                    eprintln!("error: {msg}");
                    2
                }
            }
        }
        Cmd::Serve {
            addr,
            threads,
            cache_cap,
            cache_dir,
        } => {
            let service = match cache_dir {
                Some(dir) => {
                    match crate::serve::service_with_disk(
                        *threads,
                        *cache_cap,
                        std::path::Path::new(dir),
                        crate::serve::DEFAULT_DISK_CAP,
                    ) {
                        Ok(service) => service,
                        Err(e) => {
                            eprintln!("error: cannot open cache dir {dir}: {e}");
                            return 2;
                        }
                    }
                }
                None => crate::serve::service(*threads, *cache_cap),
            };
            let server = match redeval_server::Server::bind(addr.as_str(), service, *threads) {
                Ok(server) => server,
                Err(e) => {
                    eprintln!("error: cannot bind {addr}: {e}");
                    return 2;
                }
            };
            if let Ok(local) = server.local_addr() {
                let persistence = match cache_dir {
                    Some(dir) => format!(", cache dir {dir}"),
                    None => String::new(),
                };
                eprintln!(
                    "redeval serve: listening on http://{local} \
                     ({threads} worker(s), cache cap {cache_cap} bytes{persistence})"
                );
            }
            match server.spawn() {
                Ok(handle) => {
                    handle.wait();
                    0
                }
                Err(e) => {
                    eprintln!("error: cannot start acceptors: {e}");
                    2
                }
            }
        }
        Cmd::Reports(names) => {
            let mut all_ok = true;
            for name in names {
                let spec = reports::find(name).expect("registry name resolves");
                match emit_or_exit(&(spec.build)()) {
                    Ok(ok) => all_ok &= ok,
                    Err(code) => return code,
                }
            }
            if all_ok {
                0
            } else {
                eprintln!("error: a consistency check failed — see the report output");
                1
            }
        }
    }
}

/// Entry point of the thin per-artifact shim binaries: renders the named
/// report as text on stdout and exits non-zero when a consistency check
/// fails.
pub fn shim(name: &str) -> ! {
    let spec = reports::find(name).expect("shim names a registered report");
    std::process::exit(print_report(&(spec.build)()))
}

/// Prints a report as text and returns the exit code its `ok` flag
/// implies (shared by [`shim`] and the parameterized binaries).
pub fn print_report(report: &Report) -> i32 {
    print!("{}", report.to_text());
    i32::from(!report.ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn names(inv: &Invocation) -> &[&'static str] {
        match &inv.cmd {
            Cmd::Reports(names) => names,
            other => panic!("expected Reports, got {other:?}"),
        }
    }

    #[test]
    fn parses_table_and_fig_spellings() {
        let inv = parse(&args(&["table", "2"])).unwrap();
        assert_eq!(names(&inv), ["table2"]);
        let inv = parse(&args(&["fig", "45"])).unwrap();
        assert_eq!(names(&inv), ["fig45"]);
        let inv = parse(&args(&["table5"])).unwrap();
        assert_eq!(names(&inv), ["table5"]);
    }

    #[test]
    fn dashes_and_underscores_are_interchangeable() {
        let a = parse(&args(&["design-space"])).unwrap();
        let b = parse(&args(&["design_space"])).unwrap();
        assert_eq!(a.cmd, b.cmd);
    }

    #[test]
    fn report_all_expands_to_the_whole_registry() {
        let inv = parse(&args(&["report", "--all", "--format", "json"])).unwrap();
        assert_eq!(names(&inv).len(), REGISTRY.len());
        assert_eq!(inv.format, Format::Json);
    }

    #[test]
    fn bless_forces_json_into_the_golden_dir() {
        let inv = parse(&args(&["report", "--all", "--bless"])).unwrap();
        assert_eq!(inv.format, Format::Json);
        assert_eq!(inv.out.as_deref(), Some(GOLDEN_DIR));
        // An explicit --format/--out contradicts --bless; reject rather
        // than silently rewrite the golden corpus.
        assert!(parse(&args(&["report", "--all", "--bless", "--format", "csv"])).is_err());
        assert!(parse(&args(&["report", "--all", "--bless", "--out", "/tmp/x"])).is_err());
    }

    #[test]
    fn rejects_unknown_commands_and_flags() {
        assert!(parse(&args(&["no_such_report"])).is_err());
        assert!(parse(&args(&["--frobnicate"])).is_err());
        assert!(parse(&args(&["table"])).is_err());
        assert!(parse(&args(&["--format", "yaml"])).is_err());
    }

    #[test]
    fn rejects_misplaced_all_and_bless() {
        // Flag-only invocations must be usage errors, not panics.
        assert!(parse(&args(&["--all"])).is_err());
        assert!(parse(&args(&["--bless"])).is_err());
        // `--all`/`--bless` outside `report` would otherwise be silently
        // ignored — the user would believe the goldens were regenerated.
        assert!(parse(&args(&["table", "2", "--bless"])).is_err());
        assert!(parse(&args(&["regions", "--all"])).is_err());
    }

    #[test]
    fn rejects_trailing_positionals() {
        assert!(parse(&args(&["report", "regions"])).is_err());
        assert!(parse(&args(&["table", "2", "3"])).is_err());
        assert!(parse(&args(&["list", "extra"])).is_err());
        assert!(parse(&args(&["scenario", "list", "extra"])).is_err());
        assert!(parse(&args(&["scenario", "export", "ecommerce", "extra"])).is_err());
    }

    #[test]
    fn list_is_a_report_and_honors_format() {
        // `list` renders through the Report model, so tooling can ask for
        // the machine-readable form.
        assert_eq!(parse(&args(&["list"])).unwrap().cmd, Cmd::List);
        let inv = parse(&args(&["list", "--format", "json"])).unwrap();
        assert_eq!((inv.cmd, inv.format), (Cmd::List, Format::Json));
        let listing = list_report();
        let json = listing.to_json();
        assert!(json.contains("\"scenarios\"") && json.contains("\"reports\""));
        assert!(json.contains("scenario_suite") && json.contains("paper_case_study"));
    }

    #[test]
    fn parses_the_scenario_family() {
        assert_eq!(
            parse(&args(&["scenario", "list"])).unwrap().cmd,
            Cmd::ScenarioList
        );
        assert_eq!(
            parse(&args(&["scenario", "export", "iot_fleet"]))
                .unwrap()
                .cmd,
            Cmd::ScenarioExport("iot_fleet".into())
        );
        assert_eq!(
            parse(&args(&["scenario", "validate", "a.json", "b.json"]))
                .unwrap()
                .cmd,
            Cmd::ScenarioValidate(vec!["a.json".into(), "b.json".into()])
        );
        // Usage errors, not panics.
        assert!(parse(&args(&["scenario"])).is_err());
        assert!(parse(&args(&["scenario", "frobnicate"])).is_err());
        assert!(parse(&args(&["scenario", "export"])).is_err());
        assert!(parse(&args(&["scenario", "export", "no_such"])).is_err());
        assert!(parse(&args(&["scenario", "validate"])).is_err());
        // Export is always JSON; a contradictory format is rejected, the
        // explicit JSON spelling is fine.
        assert!(parse(&args(&[
            "scenario",
            "export",
            "ecommerce",
            "--format",
            "csv"
        ]))
        .is_err());
        assert!(parse(&args(&[
            "scenario",
            "export",
            "ecommerce",
            "--format",
            "json"
        ]))
        .is_ok());
        // Validate prints a summary, not a report.
        assert!(parse(&args(&[
            "scenario", "validate", "a.json", "--format", "json"
        ]))
        .is_err());
    }

    #[test]
    fn parses_eval_with_scenario_and_policy() {
        let inv = parse(&args(&["eval", "--scenario", "mine.json"])).unwrap();
        assert_eq!(
            inv.cmd,
            Cmd::Eval {
                file: "mine.json".into(),
                policy: None,
                profile: None,
            }
        );
        let inv = parse(&args(&[
            "eval",
            "--scenario",
            "mine.json",
            "--policy",
            "critical>7.5",
            "--format",
            "csv",
        ]))
        .unwrap();
        assert_eq!(
            inv.cmd,
            Cmd::Eval {
                file: "mine.json".into(),
                policy: Some(PatchPolicy::CriticalOnly(7.5)),
                profile: None,
            }
        );
        assert_eq!(inv.format, Format::Csv);
        // `eval` without a file, bad policies, and `--scenario` on other
        // commands are usage errors.
        assert!(parse(&args(&["eval"])).is_err());
        assert!(parse(&args(&[
            "eval",
            "--scenario",
            "f.json",
            "--policy",
            "bogus"
        ]))
        .is_err());
        assert!(parse(&args(&["table", "2", "--scenario", "f.json"])).is_err());
        assert!(parse(&args(&["list", "--policy", "all"])).is_err());
    }

    #[test]
    fn parses_optimize_with_defaults_and_overrides() {
        let inv = parse(&args(&["optimize"])).unwrap();
        assert_eq!(
            inv.cmd,
            Cmd::Optimize {
                scenario: None,
                max_redundancy: None,
                policy: None,
                bounds: None,
                profile: None,
            }
        );
        let inv = parse(&args(&[
            "optimize",
            "--scenario",
            "ecommerce",
            "--max-redundancy",
            "6",
            "--policy",
            "all",
            "--bounds",
            "0.2,0.9962",
            "--format",
            "json",
        ]))
        .unwrap();
        assert_eq!(
            inv.cmd,
            Cmd::Optimize {
                scenario: Some("ecommerce".into()),
                max_redundancy: Some(6),
                policy: Some(PatchPolicy::All),
                bounds: Some(ScatterBounds {
                    max_asp: 0.2,
                    min_coa: 0.9962,
                }),
                profile: None,
            }
        );
        assert_eq!(inv.format, Format::Json);
        // Usage errors: out-of-range or malformed knobs, misplaced flags.
        assert!(parse(&args(&["optimize", "--max-redundancy", "0"])).is_err());
        assert!(parse(&args(&["optimize", "--max-redundancy", "9"])).is_err());
        assert!(parse(&args(&["optimize", "--max-redundancy", "two"])).is_err());
        assert!(parse(&args(&["optimize", "--bounds", "0.2"])).is_err());
        assert!(parse(&args(&["optimize", "--bounds", "0.2,inf"])).is_err());
        assert!(parse(&args(&["optimize", "--bounds", "x,0.9"])).is_err());
        assert!(parse(&args(&["table", "2", "--max-redundancy", "3"])).is_err());
        assert!(parse(&args(&["eval", "--scenario", "f.json", "--bounds", "0,1"])).is_err());
        assert!(parse(&args(&["--bounds", "0,1"])).is_err());
        assert!(parse(&args(&["optimize", "extra"])).is_err());
    }

    #[test]
    fn parses_equilibrium_with_defaults_and_overrides() {
        let inv = parse(&args(&["equilibrium"])).unwrap();
        assert_eq!(
            inv.cmd,
            Cmd::Equilibrium {
                scenario: None,
                max_redundancy: None,
                policy: None,
                max_iters: None,
                profile: None,
            }
        );
        let inv = parse(&args(&[
            "equilibrium",
            "--scenario",
            "iot_fleet",
            "--max-redundancy",
            "2",
            "--policy",
            "all",
            "--max-iters",
            "8",
            "--format",
            "json",
        ]))
        .unwrap();
        assert_eq!(
            inv.cmd,
            Cmd::Equilibrium {
                scenario: Some("iot_fleet".into()),
                max_redundancy: Some(2),
                policy: Some(PatchPolicy::All),
                max_iters: Some(8),
                profile: None,
            }
        );
        assert_eq!(inv.format, Format::Json);
        // Usage errors: out-of-range or malformed knobs, misplaced flags.
        assert!(parse(&args(&["equilibrium", "--max-iters", "0"])).is_err());
        assert!(parse(&args(&["equilibrium", "--max-iters", "65"])).is_err());
        assert!(parse(&args(&["equilibrium", "--max-iters", "two"])).is_err());
        assert!(parse(&args(&["equilibrium", "--bounds", "0.2,0.9"])).is_err());
        assert!(parse(&args(&["optimize", "--max-iters", "4"])).is_err());
        assert!(parse(&args(&["table", "2", "--max-iters", "4"])).is_err());
        assert!(parse(&args(&["--max-iters", "4"])).is_err());
        assert!(parse(&args(&["equilibrium", "extra"])).is_err());
    }

    #[test]
    fn parses_profile_on_the_evaluation_commands() {
        // Bare form defaults the trace path; `=` pins it.
        let inv = parse(&args(&["optimize", "--profile"])).unwrap();
        assert_eq!(
            inv.cmd,
            Cmd::Optimize {
                scenario: None,
                max_redundancy: None,
                policy: None,
                bounds: None,
                profile: Some(DEFAULT_TRACE_FILE.into()),
            }
        );
        let inv = parse(&args(&[
            "eval",
            "--scenario",
            "mine.json",
            "--profile=trace.json",
        ]))
        .unwrap();
        assert_eq!(
            inv.cmd,
            Cmd::Eval {
                file: "mine.json".into(),
                policy: None,
                profile: Some("trace.json".into()),
            }
        );
        let inv = parse(&args(&[
            "equilibrium",
            "--profile=eq.json",
            "--max-iters",
            "4",
        ]))
        .unwrap();
        assert_eq!(
            inv.cmd,
            Cmd::Equilibrium {
                scenario: None,
                max_redundancy: None,
                policy: None,
                max_iters: Some(4),
                profile: Some("eq.json".into()),
            }
        );
        // Usage errors: an empty path, a command that never profiles,
        // and a bare flag without a command.
        assert!(parse(&args(&["optimize", "--profile="])).is_err());
        assert!(parse(&args(&["table", "2", "--profile"])).is_err());
        assert!(parse(&args(&["serve", "--profile"])).is_err());
        assert!(parse(&args(&["--profile"])).is_err());
    }

    #[test]
    fn parses_gen_with_defaults_and_overrides() {
        let inv = parse(&args(&["gen", "iot_swarm"])).unwrap();
        assert_eq!(
            inv.cmd,
            Cmd::Gen {
                family: Family::IotSwarm,
                params: GenParams::default(),
                seed: 0,
            }
        );
        let inv = parse(&args(&[
            "gen",
            "ecommerce-fleet",
            "--seed",
            "42",
            "--tiers",
            "120",
            "--redundancy",
            "2",
            "--designs",
            "1",
            "--policies",
            "3",
            "--out",
            "corpus/",
        ]))
        .unwrap();
        assert_eq!(
            inv.cmd,
            Cmd::Gen {
                family: Family::EcommerceFleet,
                params: GenParams {
                    tiers: 120,
                    redundancy: 2,
                    designs: 1,
                    policies: 3,
                },
                seed: 42,
            }
        );
        assert_eq!(inv.out.as_deref(), Some("corpus/"));
        // The document is canonical JSON: explicit json is fine, any
        // other format is a contradiction.
        assert!(parse(&args(&["gen", "mesh", "--format", "json"])).is_ok());
        assert!(parse(&args(&["gen", "mesh", "--format", "csv"])).is_err());
        // Usage errors: missing/unknown family, bad numbers, misplaced
        // generator flags, trailing positionals.
        assert!(parse(&args(&["gen"])).is_err());
        assert!(parse(&args(&["gen", "no_such_family"])).is_err());
        assert!(parse(&args(&["gen", "iot", "--seed", "NaN"])).is_err());
        assert!(parse(&args(&["gen", "iot", "--tiers"])).is_err());
        assert!(parse(&args(&["table", "2", "--seed", "1"])).is_err());
        assert!(parse(&args(&["--seed", "1"])).is_err());
        assert!(parse(&args(&["gen", "iot", "extra"])).is_err());
    }

    #[test]
    fn gen_command_writes_the_generated_document() {
        let dir = std::env::temp_dir().join(format!("redeval-cli-gen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let code = run(&args(&[
            "gen",
            "microservice_mesh",
            "--seed",
            "11",
            "--tiers",
            "9",
            "--out",
            dir.to_str().unwrap(),
        ]));
        assert_eq!(code, 0);
        let doc = generate::generate(
            Family::MicroserviceMesh,
            &GenParams {
                tiers: 9,
                ..GenParams::default()
            },
            11,
        );
        let written = std::fs::read_to_string(dir.join(format!("{}.json", doc.name))).unwrap();
        assert_eq!(written, doc.to_json(), "CLI bytes differ from the API's");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn list_includes_the_generator_families() {
        let json = list_report().to_json();
        for family in generate::FAMILIES {
            assert!(json.contains(family.key()), "missing {family}");
        }
    }

    #[test]
    fn parses_serve_with_defaults_and_overrides() {
        let inv = parse(&args(&["serve"])).unwrap();
        assert_eq!(
            inv.cmd,
            Cmd::Serve {
                addr: crate::serve::DEFAULT_ADDR.to_string(),
                threads: redeval::exec::default_threads(),
                cache_cap: crate::serve::DEFAULT_CACHE_CAP,
                cache_dir: None,
            }
        );
        let inv = parse(&args(&[
            "serve",
            "--addr",
            "0.0.0.0:9000",
            "--threads",
            "3",
            "--cache-cap",
            "1048576",
            "--cache-dir",
            "/tmp/redeval-cache",
        ]))
        .unwrap();
        assert_eq!(
            inv.cmd,
            Cmd::Serve {
                addr: "0.0.0.0:9000".into(),
                threads: 3,
                cache_cap: 1_048_576,
                cache_dir: Some("/tmp/redeval-cache".into()),
            }
        );
        // Usage errors: bad numbers, misplaced flags, stray output flags.
        assert!(parse(&args(&["serve", "--threads", "0"])).is_err());
        assert!(parse(&args(&["serve", "--threads", "many"])).is_err());
        assert!(parse(&args(&["serve", "--cache-cap", "big"])).is_err());
        assert!(parse(&args(&["serve", "--format", "json"])).is_err());
        assert!(parse(&args(&["serve", "--out", "/tmp/x"])).is_err());
        assert!(parse(&args(&["serve", "--cache-dir"])).is_err());
        assert!(parse(&args(&["table", "2", "--addr", "x"])).is_err());
        assert!(parse(&args(&["table", "2", "--cache-dir", "/tmp/x"])).is_err());
        assert!(parse(&args(&["--addr", "127.0.0.1:1"])).is_err());
        assert!(parse(&args(&["serve", "extra"])).is_err());
    }

    #[test]
    fn out_dir_is_created_with_parents() {
        // `--out DIR` must create DIR (including parents) rather than
        // erroring when it does not exist yet.
        let root = std::env::temp_dir().join(format!("redeval-cli-out-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let nested = root.join("deep/nested/dir");
        assert!(!nested.exists());
        emit_text("payload\n", "report", "txt", Some(nested.to_str().unwrap())).unwrap();
        assert_eq!(
            std::fs::read_to_string(nested.join("report.txt")).unwrap(),
            "payload\n"
        );
        // Re-emitting into the now-existing directory keeps working.
        emit_text("again\n", "report", "txt", Some(nested.to_str().unwrap())).unwrap();
        assert_eq!(
            std::fs::read_to_string(nested.join("report.txt")).unwrap(),
            "again\n"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn empty_args_ask_for_help() {
        assert_eq!(parse(&args(&[])).unwrap().cmd, Cmd::Help);
        assert_eq!(parse(&args(&["--help", "--all"])).unwrap().cmd, Cmd::Help);
    }

    #[test]
    fn flags_without_a_command_are_usage_errors() {
        // A mistyped invocation must not exit 0 with the usage text.
        for bad in [
            vec!["--scenario", "mine.json"],
            vec!["--policy", "all"],
            vec!["--format", "json"],
            vec!["--out", "/tmp/x"],
        ] {
            assert!(parse(&args(&bad)).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn scenario_listing_report_name_avoids_the_registry() {
        // `scenario list --out DIR` and `report --all --out DIR` may
        // share a directory; the listing must never clobber the
        // `scenarios` (partial-patch study) registry report.
        let listing = scenario_list_report();
        assert_eq!(listing.name, "scenario_list");
        assert!(reports::find(&listing.name).is_none());
        assert!(reports::find("scenarios").is_some());
    }
}
