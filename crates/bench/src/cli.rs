//! The unified `redeval` command-line interface.
//!
//! One dispatcher over the report registry (`reports::REGISTRY`):
//!
//! ```console
//! $ redeval table 2                 # any artifact, text to stdout
//! $ redeval fig 6 --format csv     # deterministic CSV
//! $ redeval report --all --format json --out reports/
//! $ redeval report --all --bless   # regenerate tests/golden/
//! ```
//!
//! Subcommands are registry names (`table2`, `sweep`, `design_space`, …;
//! dashes and underscores are interchangeable), plus the `table N` /
//! `fig N` spellings, `report --all`, and `list`. Every command takes
//! `--format text|json|csv` and `--out DIR`; with `--out`, each report
//! is written to `DIR/<name>.<ext>` instead of stdout.
//!
//! Exit codes: `0` success, `1` a report's embedded consistency check
//! failed (e.g. a region deviates from the paper), `2` usage error.

use std::path::Path;

use redeval::output::Report;

use crate::reports::{self, ReportSpec, REGISTRY};

/// Where blessed goldens live. Anchored at compile time to this crate's
/// manifest directory (like `tests/golden.rs` does), so `--bless` lands
/// in the repo's corpus whatever the invocation CWD is.
pub const GOLDEN_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden");

/// Usage text (also shown on `--help`).
pub const USAGE: &str = "\
redeval — unified reproduction CLI (Ge, Kim & Kim, DSN 2017)

USAGE:
    redeval <COMMAND> [--format text|json|csv] [--out DIR]

COMMANDS:
    table <1..6>         one of the paper's Tables I-VI
    fig <3|45|6|7>       one of the paper's Figures 3-7
    <name>               any report by registry name (see `list`)
    report --all         every report; with --out DIR, one file each
    report --all --bless regenerate the golden corpus (tests/golden/*.json)
    list                 list every report name with a description

OPTIONS:
    --format <FMT>       text (default), json, or csv
    --out <DIR>          write DIR/<name>.<ext> instead of stdout
    -h, --help           this text

EXIT CODES: 0 ok; 1 a consistency check failed; 2 usage error.
";

/// Output format of a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Human-oriented aligned text (default).
    Text,
    /// Canonical JSON — the golden-corpus format.
    Json,
    /// CSV blocks per table/series.
    Csv,
}

impl Format {
    fn parse(s: &str) -> Option<Format> {
        match s {
            "text" => Some(Format::Text),
            "json" => Some(Format::Json),
            "csv" => Some(Format::Csv),
            _ => None,
        }
    }

    fn extension(self) -> &'static str {
        match self {
            Format::Text => "txt",
            Format::Json => "json",
            Format::Csv => "csv",
        }
    }

    fn render(self, report: &Report) -> String {
        match self {
            Format::Text => report.to_text(),
            Format::Json => report.to_json(),
            Format::Csv => report.to_csv(),
        }
    }
}

/// A parsed command line.
#[derive(Debug, PartialEq, Eq)]
struct Invocation {
    /// Registry names to build, in order.
    names: Vec<&'static str>,
    format: Format,
    out: Option<String>,
    list: bool,
    help: bool,
}

fn parse(args: &[String]) -> Result<Invocation, String> {
    let mut positional: Vec<&str> = Vec::new();
    let mut format = Format::Text;
    let mut explicit_format = false;
    let mut out: Option<String> = None;
    let mut all = false;
    let mut bless = false;
    let mut help = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                i += 1;
                let v = args.get(i).ok_or("--format needs a value")?;
                format = Format::parse(v).ok_or_else(|| format!("unknown format `{v}`"))?;
                explicit_format = true;
            }
            "--out" => {
                i += 1;
                out = Some(args.get(i).ok_or("--out needs a value")?.clone());
            }
            "--all" => all = true,
            "--bless" => bless = true,
            "-h" | "--help" => help = true,
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            p => positional.push(p),
        }
        i += 1;
    }

    if positional.is_empty() && (all || bless) && !help {
        return Err("`--all` and `--bless` belong to the `report` command \
                    (e.g. `redeval report --all`)"
            .to_string());
    }
    if help || positional.is_empty() {
        return Ok(Invocation {
            names: Vec::new(),
            format,
            out,
            list: false,
            help: true,
        });
    }
    if positional[0] != "report" && (all || bless) {
        return Err(format!(
            "`--all`/`--bless` only apply to `report`, not `{}`",
            positional[0]
        ));
    }

    let mut names: Vec<&'static str> = Vec::new();
    let mut list = false;
    // Positionals the command consumes; anything beyond is an error.
    let mut consumed = 1;
    match positional[0] {
        "list" => {
            // `list` has no report output, so accepted-but-ignored
            // --format/--out would mislead scripting users; reject them.
            if explicit_format || out.is_some() {
                return Err("`list` prints plain text; it takes no --format/--out".to_string());
            }
            list = true;
        }
        "report" => {
            // `report` runs everything; `--all` is the documented form.
            if bless {
                // Blessing fixes both the format and the destination;
                // an explicit --format/--out would be silently ignored,
                // so reject the contradiction instead.
                if explicit_format || out.is_some() {
                    return Err("`--bless` implies `--format json --out tests/golden`; \
                         drop the explicit --format/--out"
                        .to_string());
                }
                format = Format::Json;
                out = Some(GOLDEN_DIR.to_string());
            }
            names = REGISTRY.iter().map(|s| s.name).collect();
        }
        "table" | "fig" => {
            let kind = positional[0];
            let n = positional
                .get(1)
                .ok_or_else(|| format!("`{kind}` needs a number (e.g. `redeval {kind} 2`)"))?;
            consumed = 2;
            let name = format!("{kind}{n}");
            let spec = reports::find(&name)
                .ok_or_else(|| format!("no report `{name}`; see `redeval list`"))?;
            names.push(spec.name);
        }
        other => {
            let normalized = other.replace('-', "_");
            let spec = reports::find(&normalized)
                .ok_or_else(|| format!("unknown command `{other}`; see `redeval list`"))?;
            names.push(spec.name);
        }
    }
    if positional.len() > consumed {
        return Err(format!("unexpected argument `{}`", positional[consumed]));
    }
    Ok(Invocation {
        names,
        format,
        out,
        list,
        help: false,
    })
}

fn emit(spec: &ReportSpec, format: Format, out: Option<&str>) -> Result<bool, String> {
    let report = (spec.build)();
    let rendered = format.render(&report);
    match out {
        Some(dir) => {
            let dir = Path::new(dir);
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
            let path = dir.join(format!("{}.{}", spec.name, format.extension()));
            std::fs::write(&path, rendered)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            eprintln!("wrote {}", path.display());
        }
        None => print!("{rendered}"),
    }
    Ok(report.ok)
}

/// Runs the CLI on `args` (without the program name); returns the
/// process exit code.
pub fn run(args: &[String]) -> i32 {
    let invocation = match parse(args) {
        Ok(inv) => inv,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            return 2;
        }
    };
    if invocation.help {
        print!("{USAGE}");
        return 0;
    }
    if invocation.list {
        for spec in REGISTRY {
            println!("{:<18} {}", spec.name, spec.about);
        }
        return 0;
    }
    let mut all_ok = true;
    for name in &invocation.names {
        let spec = reports::find(name).expect("registry name resolves");
        match emit(spec, invocation.format, invocation.out.as_deref()) {
            Ok(ok) => all_ok &= ok,
            Err(msg) => {
                eprintln!("error: {msg}");
                return 2;
            }
        }
    }
    if all_ok {
        0
    } else {
        eprintln!("error: a consistency check failed — see the report output");
        1
    }
}

/// Entry point of the thin per-artifact shim binaries: renders the named
/// report as text on stdout and exits non-zero when a consistency check
/// fails.
pub fn shim(name: &str) -> ! {
    let spec = reports::find(name).expect("shim names a registered report");
    std::process::exit(print_report(&(spec.build)()))
}

/// Prints a report as text and returns the exit code its `ok` flag
/// implies (shared by [`shim`] and the parameterized binaries).
pub fn print_report(report: &Report) -> i32 {
    print!("{}", report.to_text());
    i32::from(!report.ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_table_and_fig_spellings() {
        let inv = parse(&args(&["table", "2"])).unwrap();
        assert_eq!(inv.names, ["table2"]);
        let inv = parse(&args(&["fig", "45"])).unwrap();
        assert_eq!(inv.names, ["fig45"]);
        let inv = parse(&args(&["table5"])).unwrap();
        assert_eq!(inv.names, ["table5"]);
    }

    #[test]
    fn dashes_and_underscores_are_interchangeable() {
        let a = parse(&args(&["design-space"])).unwrap();
        let b = parse(&args(&["design_space"])).unwrap();
        assert_eq!(a.names, b.names);
    }

    #[test]
    fn report_all_expands_to_the_whole_registry() {
        let inv = parse(&args(&["report", "--all", "--format", "json"])).unwrap();
        assert_eq!(inv.names.len(), REGISTRY.len());
        assert_eq!(inv.format, Format::Json);
    }

    #[test]
    fn bless_forces_json_into_the_golden_dir() {
        let inv = parse(&args(&["report", "--all", "--bless"])).unwrap();
        assert_eq!(inv.format, Format::Json);
        assert_eq!(inv.out.as_deref(), Some(GOLDEN_DIR));
        // An explicit --format/--out contradicts --bless; reject rather
        // than silently rewrite the golden corpus.
        assert!(parse(&args(&["report", "--all", "--bless", "--format", "csv"])).is_err());
        assert!(parse(&args(&["report", "--all", "--bless", "--out", "/tmp/x"])).is_err());
    }

    #[test]
    fn rejects_unknown_commands_and_flags() {
        assert!(parse(&args(&["no_such_report"])).is_err());
        assert!(parse(&args(&["--frobnicate"])).is_err());
        assert!(parse(&args(&["table"])).is_err());
        assert!(parse(&args(&["--format", "yaml"])).is_err());
    }

    #[test]
    fn rejects_misplaced_all_and_bless() {
        // Flag-only invocations must be usage errors, not panics.
        assert!(parse(&args(&["--all"])).is_err());
        assert!(parse(&args(&["--bless"])).is_err());
        // `--all`/`--bless` outside `report` would otherwise be silently
        // ignored — the user would believe the goldens were regenerated.
        assert!(parse(&args(&["table", "2", "--bless"])).is_err());
        assert!(parse(&args(&["regions", "--all"])).is_err());
    }

    #[test]
    fn rejects_trailing_positionals() {
        assert!(parse(&args(&["report", "regions"])).is_err());
        assert!(parse(&args(&["table", "2", "3"])).is_err());
        assert!(parse(&args(&["list", "extra"])).is_err());
    }

    #[test]
    fn list_takes_no_format_or_out() {
        assert!(parse(&args(&["list"])).unwrap().list);
        // `list` output is plain text only; accepted-but-ignored flags
        // would mislead scripting users.
        assert!(parse(&args(&["list", "--format", "json"])).is_err());
        assert!(parse(&args(&["list", "--out", "/tmp/x"])).is_err());
    }

    #[test]
    fn empty_args_ask_for_help() {
        assert!(parse(&args(&[])).unwrap().help);
        assert!(parse(&args(&["--help", "--all"])).unwrap().help);
    }
}
