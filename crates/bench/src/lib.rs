//! Shared library of the `redeval-bench` reproduction tooling.
//!
//! Each paper table/figure — Tables I–VI, Figures 3–7, the Equation
//! (3),(4) region analyses and the §V extension studies — is built by a
//! function in [`reports`] returning a structured
//! [`Report`](redeval::output::Report). The unified `redeval` binary
//! ([`cli`]) dispatches over the report registry with `--format
//! text|json|csv`; the per-artifact binaries under `src/bin/` are thin
//! shims over the same functions. See `DESIGN.md` §6–§7 and the README's
//! reproduction index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use redeval::{DesignEvaluation, PatchPolicy};

pub mod cli;
pub mod reports;
pub mod serve;

/// The CVSS base-score thresholds swept by the criticality reports
/// (8.0 is the paper's policy; 0.0 patches everything scored).
pub const CVSS_THRESHOLDS: [f64; 8] = [9.5, 9.0, 8.0, 7.0, 6.0, 5.0, 4.0, 0.0];

/// The patch-window grid (days) swept by the schedule reports, from
/// twice-weekly to yearly around the paper's monthly default.
pub const PATCH_WINDOWS_DAYS: [f64; 8] = [3.5, 7.0, 14.0, 30.0, 60.0, 90.0, 180.0, 365.0];

/// Per-tier counts of the paper's case-study network (Figure 2):
/// 1 DNS + 2 WEB + 2 APP + 1 DB.
pub const CASE_STUDY_COUNTS: [u32; 4] = [1, 2, 2, 1];

/// The standard policy axis of the big sweeps: unpatched, the full
/// CVSS-threshold grid of [`CVSS_THRESHOLDS`], and patch-everything.
pub fn threshold_policies() -> Vec<PatchPolicy> {
    let mut out = vec![PatchPolicy::None];
    out.extend(
        CVSS_THRESHOLDS
            .iter()
            .map(|&t| PatchPolicy::CriticalOnly(t)),
    );
    out.push(PatchPolicy::All);
    out
}

/// Parses positional CLI argument `n` (1-based), falling back to
/// `default` when absent or unparsable.
pub fn arg_or<T: std::str::FromStr>(n: usize, default: T) -> T {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Prints a section header (used by the perf harnesses).
pub fn header(title: &str) {
    println!();
    println!("==== {title} ====");
    println!();
}

/// Prints a paper-vs-measured comparison line (perf-harness path; the
/// structured reports use `reports::compare_row` instead).
pub fn compare(label: &str, paper: f64, ours: f64) {
    let rel = if paper != 0.0 {
        format!("{:+.3}%", (ours - paper) / paper * 100.0)
    } else {
        String::from("n/a")
    };
    println!("{label:<44} paper {paper:>10.5}   ours {ours:>10.5}   Δ {rel}");
}

/// Formats a design-evaluation row used by the perf harnesses.
pub fn design_row(e: &DesignEvaluation) -> String {
    format!(
        "{:<32} ASP {:>7.4}  AIM {:>5.1}  NoEV {:>2}  NoAP {:>2}  NoEP {:>2}  COA {:>8.5}",
        e.name,
        e.after.attack_success_probability,
        e.after.attack_impact,
        e.after.exploitable_vulnerabilities,
        e.after.attack_paths,
        e.after.entry_points,
        e.coa
    )
}

#[cfg(test)]
mod tests {
    use redeval::PatchPolicy;

    #[test]
    fn smoke() {
        super::header("x");
        super::compare("y", 1.0, 1.001);
        super::compare("z", 0.0, 0.5);
    }

    #[test]
    fn policy_axis_brackets_the_threshold_grid() {
        let p = super::threshold_policies();
        assert_eq!(p.len(), super::CVSS_THRESHOLDS.len() + 2);
        assert_eq!(p[0], PatchPolicy::None);
        assert_eq!(p[p.len() - 1], PatchPolicy::All);
        assert_eq!(p[3], PatchPolicy::CriticalOnly(8.0));
    }
}
