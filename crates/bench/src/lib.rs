//! Shared helpers for the `redeval-bench` report binaries.
//!
//! Each paper table/figure has a binary under `src/bin/` that regenerates
//! it — Tables I–VI, Figures 3–7 and the Equation (3),(4) region analyses;
//! see `DESIGN.md` §5 and the README's reproduction index. This library
//! carries the small formatting utilities the binaries share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use redeval::DesignEvaluation;

/// Prints a section header.
pub fn header(title: &str) {
    println!();
    println!("==== {title} ====");
    println!();
}

/// Prints a paper-vs-measured comparison line.
pub fn compare(label: &str, paper: f64, ours: f64) {
    let rel = if paper != 0.0 {
        format!("{:+.3}%", (ours - paper) / paper * 100.0)
    } else {
        String::from("n/a")
    };
    println!("{label:<44} paper {paper:>10.5}   ours {ours:>10.5}   Δ {rel}");
}

/// Formats a design-evaluation row used by several binaries.
pub fn design_row(e: &DesignEvaluation) -> String {
    format!(
        "{:<32} ASP {:>7.4}  AIM {:>5.1}  NoEV {:>2}  NoAP {:>2}  NoEP {:>2}  COA {:>8.5}",
        e.name,
        e.after.attack_success_probability,
        e.after.attack_impact,
        e.after.exploitable_vulnerabilities,
        e.after.attack_paths,
        e.after.entry_points,
        e.coa
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke() {
        super::header("x");
        super::compare("y", 1.0, 1.001);
        super::compare("z", 0.0, 0.5);
    }
}
