//! Shared helpers for the `redeval-bench` report binaries.
//!
//! Each paper table/figure has a binary under `src/bin/` that regenerates
//! it — Tables I–VI, Figures 3–7 and the Equation (3),(4) region analyses;
//! see `DESIGN.md` §6 and the README's reproduction index. This library
//! carries the small formatting utilities the binaries share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use redeval::DesignEvaluation;

/// The CVSS base-score thresholds swept by the criticality reports
/// (8.0 is the paper's policy; 0.0 patches everything scored).
pub const CVSS_THRESHOLDS: [f64; 8] = [9.5, 9.0, 8.0, 7.0, 6.0, 5.0, 4.0, 0.0];

/// The patch-window grid (days) swept by the schedule reports, from
/// twice-weekly to yearly around the paper's monthly default.
pub const PATCH_WINDOWS_DAYS: [f64; 8] = [3.5, 7.0, 14.0, 30.0, 60.0, 90.0, 180.0, 365.0];

/// Per-tier counts of the paper's case-study network (Figure 2):
/// 1 DNS + 2 WEB + 2 APP + 1 DB.
pub const CASE_STUDY_COUNTS: [u32; 4] = [1, 2, 2, 1];

/// Parses positional CLI argument `n` (1-based), falling back to
/// `default` when absent or unparsable.
pub fn arg_or<T: std::str::FromStr>(n: usize, default: T) -> T {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Prints a section header.
pub fn header(title: &str) {
    println!();
    println!("==== {title} ====");
    println!();
}

/// Prints a paper-vs-measured comparison line.
pub fn compare(label: &str, paper: f64, ours: f64) {
    let rel = if paper != 0.0 {
        format!("{:+.3}%", (ours - paper) / paper * 100.0)
    } else {
        String::from("n/a")
    };
    println!("{label:<44} paper {paper:>10.5}   ours {ours:>10.5}   Δ {rel}");
}

/// Formats a design-evaluation row used by several binaries.
pub fn design_row(e: &DesignEvaluation) -> String {
    format!(
        "{:<32} ASP {:>7.4}  AIM {:>5.1}  NoEV {:>2}  NoAP {:>2}  NoEP {:>2}  COA {:>8.5}",
        e.name,
        e.after.attack_success_probability,
        e.after.attack_impact,
        e.after.exploitable_vulnerabilities,
        e.after.attack_paths,
        e.after.entry_points,
        e.coa
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke() {
        super::header("x");
        super::compare("y", 1.0, 1.001);
        super::compare("z", 0.0, 0.5);
    }
}
