//! Criterion bench: discrete-event simulator throughput on the server SRN
//! and the Monte-Carlo attack sampler.

use criterion::{criterion_group, criterion_main, Criterion};
use redeval::case_study;
use redeval_avail::ServerModel;
use redeval_sim::{estimate_asp, Simulation};

fn bench_des(c: &mut Criterion) {
    let model = ServerModel::build(&case_study::dns_params());
    c.bench_function("des/server_10k_hours", |b| {
        let places = *model.places();
        b.iter(|| {
            let mut sim = Simulation::new(model.net(), 42);
            sim.add_reward(
                "avail",
                move |m| {
                    if places.service_up(m) {
                        1.0
                    } else {
                        0.0
                    }
                },
            );
            std::hint::black_box(sim.run(0.0, 10_000.0, 4).unwrap())
        });
    });
}

fn bench_attack_mc(c: &mut Criterion) {
    let harm = case_study::network().build_harm().patched_critical(8.0);
    c.bench_function("attack_mc/10k_trials", |b| {
        b.iter(|| std::hint::black_box(estimate_asp(&harm, 10_000, 7)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_des, bench_attack_mc
}
criterion_main!(benches);
