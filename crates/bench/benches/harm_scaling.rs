//! Criterion bench: HARM construction and metric evaluation as the network
//! grows (the scalability story of the HARM reference [4]).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redeval::{AttackTree, MetricsConfig, NetworkSpec, ServerParams, TierSpec, Vulnerability};

/// A k-tier chain with `width` redundant servers per middle tier.
fn chain_spec(tiers: usize, width: u32) -> NetworkSpec {
    let mk_tree = |i: usize| {
        Some(AttackTree::or(vec![
            AttackTree::leaf(Vulnerability::new(format!("v{i}a"), 10.0, 1.0)),
            AttackTree::and(vec![
                AttackTree::leaf(Vulnerability::new(format!("v{i}b"), 2.9, 1.0)),
                AttackTree::leaf(Vulnerability::new(format!("v{i}c"), 10.0, 0.39)),
            ]),
        ]))
    };
    let specs: Vec<TierSpec> = (0..tiers)
        .map(|i| TierSpec {
            name: format!("t{i}"),
            count: if i == 0 || i == tiers - 1 { 1 } else { width },
            params: ServerParams::builder(format!("t{i}")).build(),
            tree: mk_tree(i),
            entry: i == 0,
            target: i == tiers - 1,
        })
        .collect();
    let edges = (0..tiers - 1).map(|i| (i, i + 1)).collect();
    NetworkSpec::new(specs, edges)
}

fn bench_harm(c: &mut Criterion) {
    let mut group = c.benchmark_group("harm_metrics");
    for &(tiers, width) in &[(4usize, 2u32), (5, 3), (6, 3), (6, 4)] {
        let spec = chain_spec(tiers, width);
        let paths = (width as usize).pow((tiers - 2) as u32);
        group.bench_with_input(
            BenchmarkId::new("metrics", format!("{tiers}tiers_w{width}_{paths}paths")),
            &spec,
            |b, spec| {
                let cfg = MetricsConfig::default();
                b.iter(|| {
                    let harm = spec.build_harm();
                    std::hint::black_box(harm.metrics(&cfg))
                });
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("harm_patch");
    let spec = chain_spec(6, 3);
    group.bench_function("patch_and_reeval", |b| {
        let harm = spec.build_harm();
        let cfg = MetricsConfig::default();
        b.iter(|| std::hint::black_box(harm.patched_critical(8.0).metrics(&cfg)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_harm
}
criterion_main!(benches);
