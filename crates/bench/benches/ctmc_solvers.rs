//! Criterion bench: steady-state solver comparison (GTH vs Gauss–Seidel vs
//! power iteration) on birth–death chains of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redeval_markov::{BirthDeath, SteadyStateMethod, SteadyStateOptions};

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctmc_steady_state");
    for &n in &[16usize, 64, 256] {
        let bd = BirthDeath::machine_repair(n, 0.01, 1.0);
        let ctmc = bd.to_ctmc();
        for (label, method) in [
            ("gth", SteadyStateMethod::Gth),
            ("gauss_seidel", SteadyStateMethod::GaussSeidel),
            ("power", SteadyStateMethod::Power),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &ctmc, |b, ctmc| {
                let opts = SteadyStateOptions {
                    method,
                    tolerance: 1e-10,
                    ..Default::default()
                };
                b.iter(|| std::hint::black_box(ctmc.steady_state_with(&opts).unwrap()));
            });
        }
        group.bench_with_input(BenchmarkId::new("closed_form", n), &bd, |b, bd| {
            b.iter(|| std::hint::black_box(bd.steady_state().unwrap()));
        });
    }
    group.finish();
}

fn bench_transient(c: &mut Criterion) {
    let bd = BirthDeath::machine_repair(64, 0.01, 1.0);
    let ctmc = bd.to_ctmc();
    c.bench_function("ctmc_transient/uniformization_t100", |b| {
        b.iter(|| std::hint::black_box(ctmc.transient(0, 100.0).unwrap()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_solvers, bench_transient
}
criterion_main!(benches);
