//! Criterion bench: steady-state solver comparison (GTH vs Gauss–Seidel vs
//! power iteration) on birth–death chains of growing size.
//!
//! GTH densifies the rate matrix (O(n²) memory, O(n³) time), so it is
//! capped at 1024 states; the iterative solvers and the closed form run
//! the full curve up to 4096 (the `solver_bench` bin records the same
//! curve as machine-readable `BENCH_solver.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redeval_markov::{BirthDeath, SteadyStateMethod, SteadyStateOptions};

/// Largest size the cubic dense GTH elimination is benched at.
const GTH_CAP: usize = 1024;

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctmc_steady_state");
    for &n in &[16usize, 64, 256, 1024, 4096] {
        let bd = BirthDeath::machine_repair(n, 0.01, 1.0);
        let ctmc = bd.to_ctmc();
        for (label, method) in [
            ("gth", SteadyStateMethod::Gth),
            ("gauss_seidel", SteadyStateMethod::GaussSeidel),
            ("power", SteadyStateMethod::Power),
        ] {
            if method == SteadyStateMethod::Gth && n > GTH_CAP {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(label, n), &ctmc, |b, ctmc| {
                let opts = SteadyStateOptions {
                    method,
                    tolerance: 1e-10,
                    ..Default::default()
                };
                b.iter(|| std::hint::black_box(ctmc.steady_state_with(&opts).unwrap()));
            });
        }
        group.bench_with_input(BenchmarkId::new("closed_form", n), &bd, |b, bd| {
            b.iter(|| std::hint::black_box(bd.steady_state().unwrap()));
        });
    }
    group.finish();
}

fn bench_transient(c: &mut Criterion) {
    let bd = BirthDeath::machine_repair(64, 0.01, 1.0);
    let ctmc = bd.to_ctmc();
    c.bench_function("ctmc_transient/uniformization_t100", |b| {
        b.iter(|| std::hint::black_box(ctmc.transient(0, 100.0).unwrap()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_solvers, bench_transient
}
criterion_main!(benches);
