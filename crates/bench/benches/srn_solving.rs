//! Criterion bench: SRN reachability generation + CTMC solve for the
//! paper's models (the SPNP-equivalent workload).

use criterion::{criterion_group, criterion_main, Criterion};
use redeval::case_study;
use redeval_avail::{NetworkModel, ServerModel, Tier};

fn bench_server_srn(c: &mut Criterion) {
    let params = case_study::app_params();
    c.bench_function("server_srn/state_space", |b| {
        let model = ServerModel::build(&params);
        b.iter(|| std::hint::black_box(model.net().state_space().unwrap()));
    });
    c.bench_function("server_srn/full_analysis", |b| {
        b.iter(|| std::hint::black_box(params.analyze().unwrap()));
    });
}

fn bench_network_srn(c: &mut Criterion) {
    let spec = case_study::network();
    let analyses = spec.tier_analyses().unwrap();
    let model = spec.network_model(&analyses);
    c.bench_function("network/coa_product_form", |b| {
        b.iter(|| std::hint::black_box(model.coa().unwrap()));
    });
    c.bench_function("network/coa_via_srn", |b| {
        b.iter(|| std::hint::black_box(model.coa_via_srn().unwrap()));
    });
    // Larger composed nets: k tiers of n servers.
    for (tiers, n) in [(4u32, 4u32), (5, 5)] {
        let rates = analyses[0].rates();
        let model = NetworkModel::new(
            (0..tiers)
                .map(|i| Tier::new(format!("t{i}"), n, rates))
                .collect(),
        );
        c.bench_function(format!("network/coa_srn_{tiers}x{n}"), |b| {
            b.iter(|| std::hint::black_box(model.coa_via_srn().unwrap()));
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_server_srn, bench_network_srn
}
criterion_main!(benches);
