//! Criterion bench: the full paper pipeline — evaluator construction
//! (four lower-layer SRN solves) and the five-design evaluation behind
//! Figures 6/7.

use criterion::{criterion_group, criterion_main, Criterion};
use redeval::case_study;

fn bench_pipeline(c: &mut Criterion) {
    c.bench_function("pipeline/evaluator_construction", |b| {
        b.iter(|| std::hint::black_box(case_study::evaluator().unwrap()));
    });

    let evaluator = case_study::evaluator().unwrap();
    let designs = case_study::five_designs();
    c.bench_function("pipeline/five_designs_eval", |b| {
        b.iter(|| std::hint::black_box(evaluator.evaluate_all(&designs).unwrap()));
    });

    c.bench_function("pipeline/single_design_eval", |b| {
        b.iter(|| std::hint::black_box(evaluator.evaluate("case", &[1, 2, 2, 1]).unwrap()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(benches);
