//! Content-addressed LRU result cache.
//!
//! Values are the exact serialized response bytes of a previously
//! computed report, keyed by the SHA-256 digest of the request's
//! canonical form (see [`redeval::output::cache_key_bytes`]). Because the
//! key covers everything the computation depends on and the report
//! builders are byte-deterministic, **a hit is byte-identical to a
//! recompute** — the property the loopback tests and the `prop_serve`
//! suite pin.
//!
//! Eviction is least-recently-used under a byte budget; each entry is
//! accounted as its value length plus [`ENTRY_OVERHEAD`] for the key.
//! All operations are `&self` and thread-safe (one mutex, no poisoning
//! paths that survive a panic), and the hit/miss/eviction counters feed
//! the `/v1/stats` endpoint.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use crate::sha256::Digest;

/// Bytes accounted per entry on top of the value: the 32-byte key plus a
/// flat allowance for the index structures.
pub const ENTRY_OVERHEAD: usize = 64;

/// A point-in-time snapshot of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Inserts rejected because a single value exceeded the budget.
    pub rejected: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Bytes currently accounted (values + per-entry overhead).
    pub used_bytes: usize,
    /// The configured byte budget.
    pub capacity_bytes: usize,
}

#[derive(Debug)]
struct Entry {
    bytes: Arc<[u8]>,
    /// Recency stamp; the lowest stamp is the LRU entry.
    stamp: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<Digest, Entry>,
    /// stamp → key, ordered oldest-first for O(log n) eviction.
    by_stamp: BTreeMap<u64, Digest>,
    next_stamp: u64,
    used: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    rejected: u64,
}

/// The thread-safe LRU byte cache (see the [module docs](self)).
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl ResultCache {
    /// An empty cache holding at most `capacity_bytes` of accounted data.
    pub fn new(capacity_bytes: usize) -> Self {
        ResultCache {
            capacity: capacity_bytes,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The cached bytes for `key`, bumping its recency. Counts a hit or
    /// a miss.
    pub fn get(&self, key: &Digest) -> Option<Arc<[u8]>> {
        let mut inner = self.inner.lock().expect("cache lock");
        let inner = &mut *inner;
        match inner.map.get_mut(key) {
            Some(entry) => {
                inner.hits += 1;
                inner.by_stamp.remove(&entry.stamp);
                entry.stamp = inner.next_stamp;
                inner.next_stamp += 1;
                inner.by_stamp.insert(entry.stamp, *key);
                Some(Arc::clone(&entry.bytes))
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts `bytes` under `key`, evicting least-recently-used entries
    /// until the budget holds. Returns `false` (and caches nothing) when
    /// the value alone exceeds the budget. Re-inserting an existing key
    /// refreshes its recency; by the content-address contract the bytes
    /// are necessarily identical, so the stored value is kept.
    pub fn insert(&self, key: Digest, bytes: &[u8]) -> bool {
        let cost = bytes.len() + ENTRY_OVERHEAD;
        let mut inner = self.inner.lock().expect("cache lock");
        let inner = &mut *inner;
        if cost > self.capacity {
            inner.rejected += 1;
            return false;
        }
        if let Some(entry) = inner.map.get_mut(&key) {
            // Concurrent misses on the same key both compute and both
            // insert; first write wins, the second only bumps recency.
            inner.by_stamp.remove(&entry.stamp);
            entry.stamp = inner.next_stamp;
            inner.next_stamp += 1;
            inner.by_stamp.insert(entry.stamp, key);
            return true;
        }
        while inner.used + cost > self.capacity {
            let (&oldest, &victim) = inner
                .by_stamp
                .iter()
                .next()
                .expect("a non-empty cache has an LRU entry");
            let evicted = inner.map.remove(&victim).expect("index and map agree");
            inner.used -= evicted.bytes.len() + ENTRY_OVERHEAD;
            inner.by_stamp.remove(&oldest);
            inner.evictions += 1;
        }
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        inner.map.insert(
            key,
            Entry {
                bytes: Arc::from(bytes),
                stamp,
            },
        );
        inner.by_stamp.insert(stamp, key);
        inner.used += cost;
        true
    }

    /// A snapshot of the counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            rejected: inner.rejected,
            entries: inner.map.len(),
            used_bytes: inner.used,
            capacity_bytes: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    fn key(n: u8) -> Digest {
        sha256(&[n])
    }

    #[test]
    fn hit_returns_the_exact_inserted_bytes() {
        let cache = ResultCache::new(1 << 16);
        assert!(cache.get(&key(1)).is_none());
        assert!(cache.insert(key(1), b"payload-one"));
        assert_eq!(cache.get(&key(1)).unwrap().as_ref(), b"payload-one");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn capacity_accounting_includes_overhead() {
        let cache = ResultCache::new(3 * (10 + ENTRY_OVERHEAD));
        for n in 0..3 {
            assert!(cache.insert(key(n), &[n; 10]));
        }
        let s = cache.stats();
        assert_eq!(s.entries, 3);
        assert_eq!(s.used_bytes, 3 * (10 + ENTRY_OVERHEAD));
        assert_eq!(s.used_bytes, s.capacity_bytes);
        // One more insert must evict exactly one entry.
        assert!(cache.insert(key(3), &[3; 10]));
        let s = cache.stats();
        assert_eq!((s.entries, s.evictions), (3, 1));
        assert_eq!(s.used_bytes, 3 * (10 + ENTRY_OVERHEAD));
    }

    #[test]
    fn eviction_follows_recency_not_insertion() {
        let cache = ResultCache::new(3 * (4 + ENTRY_OVERHEAD));
        cache.insert(key(0), b"aaaa");
        cache.insert(key(1), b"bbbb");
        cache.insert(key(2), b"cccc");
        // Touch the oldest: key(0) becomes the most recent.
        assert!(cache.get(&key(0)).is_some());
        cache.insert(key(3), b"dddd");
        // key(1) (now the LRU) is gone; key(0) survived its touch.
        assert!(cache.get(&key(1)).is_none());
        assert!(cache.get(&key(0)).is_some());
        assert!(cache.get(&key(2)).is_some());
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn oversized_values_are_rejected_not_cached() {
        let cache = ResultCache::new(100);
        assert!(!cache.insert(key(0), &[0; 200]));
        let s = cache.stats();
        assert_eq!((s.entries, s.rejected, s.evictions), (0, 1, 0));
        // The cache still works for values that fit.
        assert!(cache.insert(key(1), &[1; 10]));
        assert!(cache.get(&key(1)).is_some());
    }

    #[test]
    fn a_large_insert_can_evict_several_small_entries() {
        let cache = ResultCache::new(4 * (8 + ENTRY_OVERHEAD));
        for n in 0..4 {
            cache.insert(key(n), &[n; 8]);
        }
        // A value needing three slots evicts the three oldest.
        let big = vec![9u8; 2 * ENTRY_OVERHEAD + 24];
        assert!(cache.insert(key(9), &big));
        let s = cache.stats();
        assert_eq!(s.evictions, 3);
        assert!(cache.get(&key(9)).is_some());
        assert!(cache.get(&key(3)).is_some()); // newest survivor
        assert!(cache.get(&key(0)).is_none());
    }

    #[test]
    fn reinserting_a_key_keeps_one_entry_and_bumps_recency() {
        let cache = ResultCache::new(2 * (4 + ENTRY_OVERHEAD));
        cache.insert(key(0), b"aaaa");
        cache.insert(key(1), b"bbbb");
        // Re-insert key(0): still two entries, key(0) now most recent.
        assert!(cache.insert(key(0), b"aaaa"));
        assert_eq!(cache.stats().entries, 2);
        cache.insert(key(2), b"cccc");
        assert!(cache.get(&key(1)).is_none(), "key(1) was the LRU");
        assert!(cache.get(&key(0)).is_some());
    }

    #[test]
    fn stats_counters_are_cumulative() {
        let cache = ResultCache::new(1 << 12);
        cache.insert(key(0), b"x");
        for _ in 0..5 {
            cache.get(&key(0));
        }
        for _ in 0..3 {
            cache.get(&key(7));
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (5, 3));
    }
}
