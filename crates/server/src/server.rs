//! The TCP front: one acceptor thread feeding a pool of connection
//! workers over a condvar queue, with keep-alive connection handling
//! and draining shutdown.
//!
//! The acceptor only accepts: each connection is pushed onto a shared
//! queue (the same mutex-plus-condvar discipline as
//! `redeval::exec::Pool`) and served to completion by one of `threads`
//! workers — requests on one connection are sequential by HTTP/1.1
//! semantics anyway, so the server handles up to `threads` connections
//! concurrently and queues the excess instead of refusing it. The heavy
//! lifting inside a request — the sweep grids — runs on the shared
//! [`redeval::exec::Pool`] the injected endpoints carry, so one slow
//! evaluation still uses every core.
//!
//! Shutdown is cooperative and *draining*: [`ServerHandle::stop`]
//! raises a flag, severs idle keep-alive peers immediately, drops
//! queued-but-unserved connections, and gives connections that are
//! mid-request a bounded grace period ([`Server::grace`]) to finish
//! writing their response before severing them too. A request the
//! server has started handling is thus answered completely unless it
//! outlives the grace period.

use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::http::{read_request, Response};
use crate::service::{http_error_response, Service};

/// How long a single socket read may block (also the idle keep-alive
/// cap: a silent peer is dropped after one timed-out read).
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Hard wall-clock budget for reading one *complete* request. A
/// per-read timeout alone would let a peer dribble one byte per
/// `READ_TIMEOUT` forever and pin its worker thread; the deadline cuts
/// the whole request off, slow or silent alike.
const REQUEST_DEADLINE: Duration = Duration::from_secs(60);

/// Default bound on how long [`ServerHandle::stop`] keeps in-flight
/// connections alive to finish their current response.
const DEFAULT_GRACE: Duration = Duration::from_secs(5);

/// A [`TcpStream`] whose reads respect a shared absolute deadline: each
/// read blocks at most until `min(deadline, now + READ_TIMEOUT)`. The
/// connection loop pushes the deadline forward once per request, so the
/// budget is per-request, not per-connection.
struct DeadlineStream {
    stream: TcpStream,
    deadline: Arc<Mutex<Instant>>,
}

impl Read for DeadlineStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let deadline = *self.deadline.lock().expect("deadline lock");
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "request deadline exceeded",
            ));
        }
        self.stream
            .set_read_timeout(Some(remaining.min(READ_TIMEOUT)))?;
        self.stream.read(buf)
    }
}

/// One registered connection: the severing handle plus whether a
/// request is currently being handled on it (read completely, response
/// not yet written).
#[derive(Debug)]
struct ConnState {
    stream: TcpStream,
    busy: Arc<AtomicBool>,
}

/// The open connections, so [`ServerHandle::stop`] can cut idle
/// keep-alive peers immediately and drain busy ones.
#[derive(Debug, Default)]
struct ActiveConnections {
    next_id: AtomicU64,
    map: Mutex<HashMap<u64, ConnState>>,
}

impl ActiveConnections {
    /// Registers a connection; returns its deregistration token (`None`
    /// when the fd cannot be duplicated — the connection then simply
    /// rides out its own timeout on shutdown).
    fn register(&self, stream: &TcpStream, busy: &Arc<AtomicBool>) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.map.lock().expect("connection registry").insert(
            id,
            ConnState {
                stream: clone,
                busy: Arc::clone(busy),
            },
        );
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.map.lock().expect("connection registry").remove(&id);
    }

    /// Severs every registered connection that is *not* mid-request,
    /// unblocking handlers parked in an idle keep-alive read.
    fn shutdown_idle(&self) {
        for conn in self.map.lock().expect("connection registry").values() {
            if !conn.busy.load(Ordering::SeqCst) {
                let _ = conn.stream.shutdown(Shutdown::Both);
            }
        }
    }

    /// Severs every registered connection, busy or not.
    fn shutdown_all(&self) {
        for conn in self.map.lock().expect("connection registry").values() {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
    }

    /// Whether any registered connection is mid-request.
    fn any_busy(&self) -> bool {
        self.map
            .lock()
            .expect("connection registry")
            .values()
            .any(|c| c.busy.load(Ordering::SeqCst))
    }
}

/// The accepted-connection queue between the acceptor and the workers —
/// the `exec::Pool` discipline: a mutexed deque plus a condvar, no
/// spinning.
#[derive(Debug, Default)]
struct ConnQueue {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

impl ConnQueue {
    fn push(&self, stream: TcpStream) {
        self.queue
            .lock()
            .expect("connection queue")
            .push_back(stream);
        self.ready.notify_one();
    }

    /// The next connection to serve, blocking while the queue is empty;
    /// `None` once `stop` is raised and the queue has drained.
    fn pop(&self, stop: &AtomicBool) -> Option<TcpStream> {
        let mut queue = self.queue.lock().expect("connection queue");
        loop {
            if let Some(stream) = queue.pop_front() {
                return Some(stream);
            }
            if stop.load(Ordering::Acquire) {
                return None;
            }
            queue = self.ready.wait(queue).expect("connection queue");
        }
    }

    /// Removes and returns everything queued (shutdown: these
    /// connections were never served and are dropped, not drained).
    fn drain(&self) -> Vec<TcpStream> {
        self.queue
            .lock()
            .expect("connection queue")
            .drain(..)
            .collect()
    }

    fn wake_all(&self) {
        self.ready.notify_all();
    }
}

/// A bound, not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
    threads: usize,
    grace: Duration,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7878`, port `0` for an ephemeral
    /// test port) around the given service with `threads` connection
    /// workers (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Service,
        threads: usize,
    ) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            service: Arc::new(service),
            threads: threads.max(1),
            grace: DEFAULT_GRACE,
        })
    }

    /// Overrides how long [`ServerHandle::stop`] lets in-flight
    /// requests finish before severing their connections.
    #[must_use]
    pub fn grace(mut self, grace: Duration) -> Server {
        self.grace = grace;
        self
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The service (e.g. for in-process stats in tests and benches).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Starts the acceptor and worker threads and returns a handle; the
    /// caller keeps running (tests, benches) or parks on
    /// [`ServerHandle::wait`] (the CLI).
    ///
    /// # Errors
    ///
    /// Propagates address-query or thread-spawn failures.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(ActiveConnections::default());
        let queue = Arc::new(ConnQueue::default());
        let mut threads = Vec::with_capacity(self.threads + 1);
        for i in 0..self.threads {
            let service = Arc::clone(&self.service);
            let stop = Arc::clone(&stop);
            let connections = Arc::clone(&connections);
            let queue = Arc::clone(&queue);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("redeval-serve-{i}"))
                    .spawn(move || {
                        while let Some(stream) = queue.pop(&stop) {
                            serve_connection(stream, &service, &connections, &stop);
                        }
                    })?,
            );
        }
        {
            let listener = self.listener;
            let stop = Arc::clone(&stop);
            let queue = Arc::clone(&queue);
            threads.push(
                std::thread::Builder::new()
                    .name("redeval-accept".to_string())
                    .spawn(move || loop {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                if stop.load(Ordering::Acquire) {
                                    return;
                                }
                                queue.push(stream);
                            }
                            // Transient accept errors (e.g. the peer
                            // vanished between SYN and accept) must not
                            // kill the acceptor.
                            Err(_) => {
                                if stop.load(Ordering::Acquire) {
                                    return;
                                }
                            }
                        }
                    })?,
            );
        }
        Ok(ServerHandle {
            addr,
            service: self.service,
            stop,
            connections,
            queue,
            grace: self.grace,
            threads,
        })
    }
}

/// A running server: address, service access and cooperative shutdown.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<Service>,
    stop: Arc<AtomicBool>,
    connections: Arc<ActiveConnections>,
    queue: Arc<ConnQueue>,
    grace: Duration,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server accepts on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service (live counters, cache stats).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Parks the caller until the server stops (the `redeval serve`
    /// foreground path — effectively forever).
    pub fn wait(mut self) {
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }

    /// Stops accepting and shuts the server down, *draining* in-flight
    /// work: idle keep-alive peers and never-served queued connections
    /// are severed immediately, while connections mid-request get up to
    /// the configured grace period to finish writing their response.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        // Idle peers are parked in a read with nothing owed to them.
        self.connections.shutdown_idle();
        // Queued connections were never read from; drop them.
        for stream in self.queue.drain() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        self.queue.wake_all();
        // Poke the (possibly blocked) acceptor awake; it sees the flag
        // and returns, dropping this dummy connection unserved.
        let _ = TcpStream::connect(self.addr);
        // The drain: busy connections finish their current response and
        // then exit via the connection loop's stop check.
        let deadline = Instant::now() + self.grace;
        while self.connections.any_busy() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        // Anything still running past the grace period is cut off; its
        // response write fails and the worker returns.
        self.connections.shutdown_all();
        self.queue.wake_all();
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

/// Serves one connection to completion: sequential keep-alive requests,
/// one response each; wire errors get a final structured response (when
/// the socket still works) and close the connection.
fn serve_connection(
    stream: TcpStream,
    service: &Service,
    connections: &ActiveConnections,
    stop: &AtomicBool,
) {
    let busy = Arc::new(AtomicBool::new(false));
    let token = connections.register(&stream, &busy);
    serve_requests(stream, service, &busy, stop);
    if let Some(token) = token {
        connections.deregister(token);
    }
}

/// The request/response loop of one registered connection. The `busy`
/// flag brackets handle-plus-write, so a draining shutdown knows which
/// connections are owed a response; the loop re-checks `stop` after
/// every response so drained connections close instead of idling.
fn serve_requests(stream: TcpStream, service: &Service, busy: &Arc<AtomicBool>, stop: &AtomicBool) {
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let deadline = Arc::new(Mutex::new(Instant::now() + REQUEST_DEADLINE));
    let mut reader = BufReader::new(DeadlineStream {
        stream,
        deadline: Arc::clone(&deadline),
    });
    loop {
        *deadline.lock().expect("deadline lock") = Instant::now() + REQUEST_DEADLINE;
        match read_request(&mut reader, service.limits()) {
            Ok(None) => return,
            Ok(Some(request)) => {
                busy.store(true, Ordering::SeqCst);
                let keep_alive = request.keep_alive;
                let response = service.handle(&request);
                let wrote = write_response(&mut writer, &response, keep_alive);
                busy.store(false, Ordering::SeqCst);
                if wrote.is_err() || !keep_alive || stop.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(error) => {
                if let Some(response) = http_error_response(&error) {
                    let _ = write_response(&mut writer, &response, false);
                }
                return;
            }
        }
    }
}

fn write_response(
    writer: &mut TcpStream,
    response: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    writer.write_all(&response.to_bytes(keep_alive))?;
    writer.flush()
}
