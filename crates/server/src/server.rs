//! The TCP front: a blocking accept loop over [`std::net::TcpListener`]
//! with keep-alive connection handling.
//!
//! `threads` acceptor threads share one listener; each accepted
//! connection is served to completion on its acceptor's thread (requests
//! on one connection are sequential by HTTP/1.1 semantics anyway), so
//! the server handles up to `threads` concurrent connections. The heavy
//! lifting inside a request — the sweep grids — runs on the shared
//! [`redeval::exec::Pool`] the injected endpoints carry, so one slow
//! evaluation still uses every core.
//!
//! Shutdown is cooperative: [`ServerHandle::stop`] raises a flag and
//! pokes each acceptor awake with a dummy connection, then joins them —
//! no platform-specific socket teardown required.

use std::collections::HashMap;
use std::io::{BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::http::{read_request, Response};
use crate::service::{http_error_response, Service};

/// How long a single socket read may block (also the idle keep-alive
/// cap: a silent peer is dropped after one timed-out read).
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Hard wall-clock budget for reading one *complete* request. A
/// per-read timeout alone would let a peer dribble one byte per
/// `READ_TIMEOUT` forever and pin its acceptor thread; the deadline cuts
/// the whole request off, slow or silent alike.
const REQUEST_DEADLINE: Duration = Duration::from_secs(60);

/// A [`TcpStream`] whose reads respect a shared absolute deadline: each
/// read blocks at most until `min(deadline, now + READ_TIMEOUT)`. The
/// connection loop pushes the deadline forward once per request, so the
/// budget is per-request, not per-connection.
struct DeadlineStream {
    stream: TcpStream,
    deadline: Arc<Mutex<Instant>>,
}

impl Read for DeadlineStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let deadline = *self.deadline.lock().expect("deadline lock");
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "request deadline exceeded",
            ));
        }
        self.stream
            .set_read_timeout(Some(remaining.min(READ_TIMEOUT)))?;
        self.stream.read(buf)
    }
}

/// The open connections, so [`ServerHandle::stop`] can cut idle
/// keep-alive peers instead of waiting out their read timeout.
#[derive(Debug, Default)]
struct ActiveConnections {
    next_id: AtomicU64,
    map: Mutex<HashMap<u64, TcpStream>>,
}

impl ActiveConnections {
    /// Registers a connection; returns its deregistration token (`None`
    /// when the fd cannot be duplicated — the connection then simply
    /// rides out its own timeout on shutdown).
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.map
            .lock()
            .expect("connection registry")
            .insert(id, clone);
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.map.lock().expect("connection registry").remove(&id);
    }

    /// Severs every registered connection (both directions), unblocking
    /// any handler parked in a read.
    fn shutdown_all(&self) {
        for stream in self.map.lock().expect("connection registry").values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// A bound, not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
    threads: usize,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7878`, port `0` for an ephemeral
    /// test port) around the given service with `threads` acceptor
    /// threads (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Service,
        threads: usize,
    ) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            service: Arc::new(service),
            threads: threads.max(1),
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The service (e.g. for in-process stats in tests and benches).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Starts the acceptor threads and returns a handle; the caller
    /// keeps running (tests, benches) or parks on
    /// [`ServerHandle::wait`] (the CLI).
    ///
    /// # Errors
    ///
    /// Propagates address-query or thread-spawn failures.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(ActiveConnections::default());
        let listener = Arc::new(self.listener);
        let mut workers = Vec::with_capacity(self.threads);
        for i in 0..self.threads {
            let listener = Arc::clone(&listener);
            let service = Arc::clone(&self.service);
            let stop = Arc::clone(&stop);
            let connections = Arc::clone(&connections);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("redeval-serve-{i}"))
                    .spawn(move || {
                        while !stop.load(Ordering::Acquire) {
                            match listener.accept() {
                                Ok((stream, _peer)) => {
                                    if stop.load(Ordering::Acquire) {
                                        return;
                                    }
                                    serve_connection(stream, &service, &connections);
                                }
                                // Transient accept errors (e.g. the peer
                                // vanished between SYN and accept) must
                                // not kill the acceptor.
                                Err(_) => continue,
                            }
                        }
                    })?,
            );
        }
        Ok(ServerHandle {
            addr,
            service: self.service,
            stop,
            connections,
            workers,
        })
    }
}

/// A running server: address, service access and cooperative shutdown.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<Service>,
    stop: Arc<AtomicBool>,
    connections: Arc<ActiveConnections>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server accepts on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service (live counters, cache stats).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Parks the caller until the server stops (the `redeval serve`
    /// foreground path — effectively forever).
    pub fn wait(mut self) {
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// Stops accepting, severs open connections, wakes every acceptor
    /// and joins them.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        // Cut idle keep-alive peers loose: a handler parked in a read
        // must not hold the join for its full read timeout.
        self.connections.shutdown_all();
        for _ in 0..self.workers.len() {
            // Poke each (potentially blocked) acceptor awake; the accept
            // sees the flag and returns.
            let _ = TcpStream::connect(self.addr);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Serves one connection to completion: sequential keep-alive requests,
/// one response each; wire errors get a final structured response (when
/// the socket still works) and close the connection.
fn serve_connection(stream: TcpStream, service: &Service, connections: &ActiveConnections) {
    let token = connections.register(&stream);
    serve_requests(stream, service);
    if let Some(token) = token {
        connections.deregister(token);
    }
}

/// The request/response loop of one registered connection.
fn serve_requests(stream: TcpStream, service: &Service) {
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let deadline = Arc::new(Mutex::new(Instant::now() + REQUEST_DEADLINE));
    let mut reader = BufReader::new(DeadlineStream {
        stream,
        deadline: Arc::clone(&deadline),
    });
    loop {
        *deadline.lock().expect("deadline lock") = Instant::now() + REQUEST_DEADLINE;
        match read_request(&mut reader, service.limits()) {
            Ok(None) => return,
            Ok(Some(request)) => {
                let keep_alive = request.keep_alive;
                let response = service.handle(&request);
                if write_response(&mut writer, &response, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Err(error) => {
                if let Some(response) = http_error_response(&error) {
                    let _ = write_response(&mut writer, &response, false);
                }
                return;
            }
        }
    }
}

fn write_response(
    writer: &mut TcpStream,
    response: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    writer.write_all(&response.to_bytes(keep_alive))?;
    writer.flush()
}
