//! Prometheus text exposition (version 0.0.4) for `GET /metrics`, plus
//! a small in-repo syntax checker so the serve-smoke CI can validate a
//! scrape without network dependencies.
//!
//! The exposition renders three source families:
//!
//! * **request traffic** — per-endpoint request/error counters and the
//!   [`Histogram`](crate::metrics::Histogram) latency buckets as
//!   cumulative `_bucket` series (the log2-µs bucket ceilings of
//!   [`bucket_ceil_us`] become the `le`
//!   boundaries, closed by `+Inf`);
//! * **result cache** — the memory- and disk-tier counters of the
//!   content-addressed response cache;
//! * **core counters** — the deterministic [`CounterSnapshot`] of the
//!   evaluation pipeline (solver iterations, analysis-cache traffic,
//!   optimizer/attacker pruning), exported under a `redeval_core_`
//!   prefix.
//!
//! Everything here is a pure function of the counter values: no
//! wall-clock reads, no allocation beyond the output string. Scrape
//! values obviously change between scrapes — the *format* is what the
//! checker pins.

use redeval::CounterSnapshot;

use crate::cache::CacheStats;
use crate::disk::DiskStats;
use crate::metrics::{bucket_ceil_us, ServiceMetrics, BUCKETS};

/// The `Content-Type` of the exposition, as Prometheus expects it.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Everything one scrape reads; a plain value struct so the renderer
/// stays decoupled from [`crate::service::Service`].
#[derive(Debug)]
pub struct Scrape<'a> {
    /// Requests handled so far (every endpoint).
    pub requests: u64,
    /// Service uptime in whole seconds.
    pub uptime_seconds: u64,
    /// The per-endpoint traffic table.
    pub metrics: &'a ServiceMetrics,
    /// Memory-tier result-cache counters.
    pub cache: CacheStats,
    /// Disk-tier result-cache counters (all-zero when absent).
    pub disk: DiskStats,
    /// Whether a disk tier is attached.
    pub disk_enabled: bool,
    /// The core evaluation-pipeline counters.
    pub core: CounterSnapshot,
}

/// Appends one `# HELP` / `# TYPE` preamble.
fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(help);
    out.push_str("\n# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Appends one unlabelled integer sample.
fn sample(out: &mut String, name: &str, value: u64) {
    out.push_str(name);
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

/// Appends one sample carrying an `endpoint` label (plus optionally
/// `le` for histogram buckets).
fn labelled(out: &mut String, name: &str, endpoint: &str, le: Option<&str>, value: u64) {
    out.push_str(name);
    out.push_str("{endpoint=\"");
    out.push_str(endpoint);
    out.push('"');
    if let Some(le) = le {
        out.push_str(",le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push_str("} ");
    out.push_str(&value.to_string());
    out.push('\n');
}

/// A counter metric and its preamble in one call.
fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    header(out, name, help, "counter");
    sample(out, name, value);
}

/// A gauge metric and its preamble in one call.
fn gauge(out: &mut String, name: &str, help: &str, value: u64) {
    header(out, name, help, "gauge");
    sample(out, name, value);
}

/// Renders one scrape (see the [module docs](self)).
pub fn render(s: &Scrape<'_>) -> String {
    let mut out = String::with_capacity(16 * 1024);

    counter(
        &mut out,
        "redeval_requests_total",
        "Requests handled, every endpoint.",
        s.requests,
    );
    gauge(
        &mut out,
        "redeval_uptime_seconds",
        "Seconds since the service started.",
        s.uptime_seconds,
    );

    // Per-endpoint traffic. Endpoints that never saw a request are
    // omitted, mirroring /v1/stats.
    header(
        &mut out,
        "redeval_endpoint_requests_total",
        "Requests routed to each endpoint.",
        "counter",
    );
    s.metrics.for_each_live(|label, requests, _, _| {
        labelled(
            &mut out,
            "redeval_endpoint_requests_total",
            label,
            None,
            requests,
        );
    });
    header(
        &mut out,
        "redeval_endpoint_errors_total",
        "Responses with status >= 400 per endpoint.",
        "counter",
    );
    s.metrics.for_each_live(|label, _, errors, _| {
        labelled(
            &mut out,
            "redeval_endpoint_errors_total",
            label,
            None,
            errors,
        );
    });
    header(
        &mut out,
        "redeval_request_duration_microseconds",
        "Request latency in microseconds, log2 buckets.",
        "histogram",
    );
    s.metrics.for_each_live(|label, _, _, latency| {
        let counts = latency.bucket_counts();
        let mut cumulative = 0u64;
        for (i, &c) in counts.iter().enumerate().take(BUCKETS) {
            cumulative += c;
            let le = bucket_ceil_us(i).to_string();
            labelled(
                &mut out,
                "redeval_request_duration_microseconds_bucket",
                label,
                Some(&le),
                cumulative,
            );
        }
        labelled(
            &mut out,
            "redeval_request_duration_microseconds_bucket",
            label,
            Some("+Inf"),
            cumulative,
        );
        labelled(
            &mut out,
            "redeval_request_duration_microseconds_sum",
            label,
            None,
            latency.sum_us(),
        );
        labelled(
            &mut out,
            "redeval_request_duration_microseconds_count",
            label,
            None,
            latency.count(),
        );
    });

    // Memory-tier result cache.
    counter(
        &mut out,
        "redeval_cache_hits_total",
        "Result-cache memory-tier hits.",
        s.cache.hits,
    );
    counter(
        &mut out,
        "redeval_cache_misses_total",
        "Result-cache memory-tier misses.",
        s.cache.misses,
    );
    counter(
        &mut out,
        "redeval_cache_evictions_total",
        "Result-cache entries evicted for capacity.",
        s.cache.evictions,
    );
    gauge(
        &mut out,
        "redeval_cache_entries",
        "Result-cache entries resident.",
        s.cache.entries as u64,
    );
    gauge(
        &mut out,
        "redeval_cache_used_bytes",
        "Result-cache bytes accounted.",
        s.cache.used_bytes as u64,
    );
    gauge(
        &mut out,
        "redeval_cache_capacity_bytes",
        "Result-cache byte budget.",
        s.cache.capacity_bytes as u64,
    );

    // Disk tier (exported even when absent so the series never vanish).
    gauge(
        &mut out,
        "redeval_cache_disk_enabled",
        "1 when a persistent cache tier is attached.",
        u64::from(s.disk_enabled),
    );
    counter(
        &mut out,
        "redeval_cache_disk_hits_total",
        "Disk-tier cache hits.",
        s.disk.hits,
    );
    counter(
        &mut out,
        "redeval_cache_disk_misses_total",
        "Disk-tier cache misses.",
        s.disk.misses,
    );
    counter(
        &mut out,
        "redeval_cache_disk_writes_total",
        "Disk-tier entries written.",
        s.disk.writes,
    );

    // Core evaluation-pipeline counters, in the snapshot's stable order.
    for (name, value) in s.core.entries() {
        let metric = format!("redeval_core_{name}_total");
        counter(
            &mut out,
            &metric,
            "Deterministic core pipeline counter.",
            value,
        );
    }
    header(
        &mut out,
        "redeval_core_solver_residual_max",
        "Largest final solver residual observed.",
        "gauge",
    );
    out.push_str("redeval_core_solver_residual_max ");
    out.push_str(&format!("{:?}\n", s.core.solver_residual_max));

    out
}

/// Is `c` legal at position `i` of a metric or label name?
fn name_char(c: char, i: usize) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
}

/// Validates `text` against the exposition-format grammar this renderer
/// targets: every line is a `# HELP`/`# TYPE` preamble or a sample
/// `name{labels} value`, names are well-formed, label values are
/// quoted, sample values parse as floats (`+Inf`/`-Inf`/`NaN`
/// included), a metric's samples follow its `# TYPE`, and the text ends
/// with a newline.
///
/// # Errors
///
/// The first offending line, 1-based, with what was wrong.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    if text.is_empty() {
        return Err("empty exposition".into());
    }
    if !text.ends_with('\n') {
        return Err("exposition must end with a newline".into());
    }
    let mut typed: Vec<String> = Vec::new();
    for (no, line) in text.lines().enumerate() {
        let no = no + 1;
        let err = |m: String| Err(format!("line {no}: {m}"));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let (keyword, rest) = rest.split_once(' ').unwrap_or((rest, ""));
            match keyword {
                "HELP" => {
                    let name = rest.split(' ').next().unwrap_or("");
                    if !valid_name(name) {
                        return err(format!("bad metric name in HELP: `{name}`"));
                    }
                }
                "TYPE" => {
                    let mut parts = rest.split(' ');
                    let name = parts.next().unwrap_or("");
                    let kind = parts.next().unwrap_or("");
                    if !valid_name(name) {
                        return err(format!("bad metric name in TYPE: `{name}`"));
                    }
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return err(format!("unknown TYPE `{kind}` for `{name}`"));
                    }
                    if typed.iter().any(|t| t == name) {
                        return err(format!("duplicate TYPE for `{name}`"));
                    }
                    typed.push(name.to_string());
                }
                _ => return err(format!("unknown comment keyword `{keyword}`")),
            }
            continue;
        }
        if line.starts_with('#') {
            return err("comment must start with `# `".into());
        }
        // Sample: name{labels} value
        let name_end = line
            .char_indices()
            .take_while(|&(i, c)| name_char(c, i))
            .count();
        if name_end == 0 {
            return err("sample line does not start with a metric name".into());
        }
        let name = &line[..name_end];
        let mut rest = &line[name_end..];
        if let Some(after) = rest.strip_prefix('{') {
            let close = after
                .find('}')
                .ok_or_else(|| format!("line {no}: unterminated label set"))?;
            let labels = &after[..close];
            for pair in labels.split(',') {
                let (lname, lvalue) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("line {no}: label without `=`: `{pair}`"))?;
                if !valid_name(lname) || lname.contains(':') {
                    return err(format!("bad label name `{lname}`"));
                }
                if !(lvalue.len() >= 2 && lvalue.starts_with('"') && lvalue.ends_with('"')) {
                    return err(format!("unquoted label value for `{lname}`"));
                }
                let inner = &lvalue[1..lvalue.len() - 1];
                if inner.contains('"') || inner.contains('\n') {
                    return err(format!("unescaped character in label value for `{lname}`"));
                }
            }
            rest = &after[close + 1..];
        }
        let value = rest.trim_start();
        if value.is_empty() {
            return err(format!("sample `{name}` has no value"));
        }
        let ok = matches!(value, "+Inf" | "-Inf" | "NaN") || value.parse::<f64>().is_ok();
        if !ok {
            return err(format!("sample `{name}` has a non-numeric value `{value}`"));
        }
        // A sample must follow its family's TYPE: `_bucket`/`_sum`/
        // `_count` suffixes belong to the histogram base name.
        let base = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|s| name.strip_suffix(s))
            .filter(|base| typed.iter().any(|t| t == base))
            .unwrap_or(name);
        if !typed.iter().any(|t| t == base) {
            return err(format!("sample `{name}` before its # TYPE"));
        }
    }
    Ok(())
}

/// Is `name` a well-formed metric name?
fn valid_name(name: &str) -> bool {
    !name.is_empty() && name.char_indices().all(|(i, c)| name_char(c, i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn scrape_fixture(metrics: &ServiceMetrics) -> Scrape<'_> {
        Scrape {
            requests: 3,
            uptime_seconds: 12,
            metrics,
            cache: CacheStats {
                hits: 2,
                misses: 1,
                evictions: 0,
                rejected: 0,
                entries: 1,
                used_bytes: 100,
                capacity_bytes: 1024,
            },
            disk: DiskStats::default(),
            disk_enabled: false,
            core: CounterSnapshot::zero(),
        }
    }

    #[test]
    fn render_validates_and_carries_the_expected_series() {
        let m = ServiceMetrics::new();
        m.record("eval", 200, Duration::from_micros(700));
        m.record("eval", 400, Duration::from_micros(5));
        m.record("no-such", 404, Duration::from_micros(1));
        let text = render(&scrape_fixture(&m));
        validate_exposition(&text).unwrap();
        assert!(text.contains("redeval_requests_total 3\n"));
        assert!(text.contains("redeval_endpoint_requests_total{endpoint=\"eval\"} 2\n"));
        assert!(text.contains("redeval_endpoint_errors_total{endpoint=\"eval\"} 1\n"));
        assert!(text.contains("redeval_endpoint_requests_total{endpoint=\"other\"} 1\n"));
        assert!(text.contains("redeval_cache_hits_total 2\n"));
        assert!(text.contains("redeval_core_solver_solves_total 0\n"));
        assert!(text.contains("redeval_core_solver_residual_max 0.0\n"));
        // Histogram: cumulative buckets end at +Inf == _count.
        assert!(text.contains(
            "redeval_request_duration_microseconds_bucket{endpoint=\"eval\",le=\"+Inf\"} 2\n"
        ));
        assert!(text.contains("redeval_request_duration_microseconds_count{endpoint=\"eval\"} 2\n"));
        assert!(text.contains("redeval_request_duration_microseconds_sum{endpoint=\"eval\"} 705\n"));
    }

    #[test]
    fn buckets_are_cumulative_and_monotone() {
        let m = ServiceMetrics::new();
        for us in [1u64, 10, 100, 1000, 10_000] {
            m.record("eval", 200, Duration::from_micros(us));
        }
        let text = render(&scrape_fixture(&m));
        let mut last = 0u64;
        let mut buckets = 0;
        for line in text.lines() {
            if let Some(rest) =
                line.strip_prefix("redeval_request_duration_microseconds_bucket{endpoint=\"eval\"")
            {
                let value: u64 = rest.rsplit(' ').next().unwrap().parse().unwrap();
                assert!(value >= last, "non-monotone bucket: {line}");
                last = value;
                buckets += 1;
            }
        }
        assert_eq!(buckets, BUCKETS + 1, "all le boundaries plus +Inf");
        assert_eq!(last, 5);
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        let cases: &[(&str, &str)] = &[
            ("", "empty"),
            ("redeval_x 1", "newline"),
            ("redeval_x 1\n", "before its # TYPE"),
            ("# TYPE redeval_x counter\nredeval_x\n", "no value"),
            ("# TYPE redeval_x counter\nredeval_x abc\n", "non-numeric"),
            ("# TYPE redeval_x frobnicator\n", "unknown TYPE"),
            (
                "# TYPE redeval_x counter\n# TYPE redeval_x counter\n",
                "duplicate TYPE",
            ),
            (
                "# TYPE redeval_x counter\nredeval_x{endpoint=eval} 1\n",
                "unquoted",
            ),
            (
                "# TYPE redeval_x counter\nredeval_x{endpoint=\"eval\" 1\n",
                "unterminated",
            ),
            ("#TYPE redeval_x counter\n", "comment"),
            ("{} 1\n", "metric name"),
        ];
        for (text, needle) in cases {
            let err = validate_exposition(text).unwrap_err();
            assert!(
                err.contains(needle),
                "expected `{needle}` in error for {text:?}, got: {err}"
            );
        }
    }

    #[test]
    fn validator_accepts_special_float_values() {
        let text = "# TYPE redeval_x gauge\nredeval_x +Inf\nredeval_x{a=\"b\",c=\"d\"} NaN\n";
        validate_exposition(text).unwrap();
    }
}
