//! The evaluation service: routing, request decoding, the result cache
//! and structured error bodies — everything between a parsed
//! [`Request`] and a [`Response`], independent of any socket.
//!
//! The service does not know how reports are built: the report
//! producers are **injected** as [`Endpoints`] closures (the `redeval`
//! CLI wires them to its report registry and batch engine). What the
//! service owns is the serving contract:
//!
//! * bodies are validated through [`ScenarioDoc::from_json`] /
//!   [`ScenarioDoc::from_value`] — the same dotted-path validation the
//!   CLI uses — and every rejection is a structured `Report` body with
//!   `ok: false`, never an echo of raw request bytes;
//! * successful `POST /v1/eval`, `POST /v1/sweep`, `POST /v1/optimize`
//!   and `POST /v1/equilibrium` responses are memoized in a
//!   content-addressed
//!   [`ResultCache`]: the key is the
//!   SHA-256 of [`cache_key_bytes`] over the request kind, the
//!   canonicalized grid parameters and the **canonical** serialization
//!   of the scenario document, so two textually different bodies naming
//!   the same scenario share one entry, and a hit is byte-identical to a
//!   recompute by construction;
//! * `POST /v1/generate` runs the seeded scenario generators in-process
//!   (no injection needed — generation is pure core code) and returns
//!   the canonical document bytes, memoized under the clamped
//!   parameters;
//! * `GET /v1/stats` exposes the cache and request counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use redeval::decision::ScatterBounds;
use redeval::output::{cache_key_bytes, Json, Report, Value};
use redeval::scenario::generate::{self, Family, GenParams};
use redeval::scenario::ScenarioDoc;
use redeval::{EvalError, PatchPolicy, ScenarioError};

use crate::cache::{CacheStats, ResultCache};
use crate::disk::{DiskCache, DiskStats};
use crate::http::{HttpError, Limits, Request, Response};
use crate::metrics::ServiceMetrics;
use crate::prometheus;
use crate::sha256::{sha256, Digest};

/// Identifies the serving schema (bumped on breaking endpoint changes).
pub const SERVE_SCHEMA: &str = "redeval-serve/1";

/// The response header reporting cache disposition: `hit` (memory
/// tier), `disk` (persistent tier, promoted into memory) or `miss`
/// (recomputed).
pub const CACHE_HEADER: &str = "X-Redeval-Cache";

/// Most entries accepted in a sweep request's grid-parameter arrays.
pub const MAX_GRID_AXIS: usize = 32;

/// A decoded `POST /v1/sweep` body: the embedded scenario document plus
/// the optional grid axes layered over it.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRequest {
    /// The scenario document (fully validated).
    pub doc: ScenarioDoc,
    /// Patch-interval variants in days, applied to every tier.
    pub patch_windows_days: Option<Vec<f64>>,
    /// Patch policies overriding the document's list.
    pub policies: Option<Vec<PatchPolicy>>,
    /// Replaces the document's designs with the full design space
    /// `1..=max_redundancy` per tier.
    pub max_redundancy: Option<u32>,
}

/// A decoded `POST /v1/optimize` body: the embedded scenario document
/// plus the pruned-search knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeRequest {
    /// The scenario document (fully validated).
    pub doc: ScenarioDoc,
    /// Patch policies overriding the document's list.
    pub policies: Option<Vec<PatchPolicy>>,
    /// Per-tier count bound of the searched space (default
    /// [`redeval::optimize::DEFAULT_MAX_REDUNDANCY`]).
    pub max_redundancy: Option<u32>,
    /// Administrator bounds (φ, ψ) selecting the satisfying region.
    pub bounds: Option<ScatterBounds>,
}

/// A boxed `POST /v1/eval` report producer.
pub type EvalEndpoint = Box<dyn Fn(&ScenarioDoc) -> Result<Report, EvalError> + Send + Sync>;

/// A boxed `POST /v1/sweep` report producer.
pub type SweepEndpoint = Box<dyn Fn(&SweepRequest) -> Result<Report, EvalError> + Send + Sync>;

/// A decoded `POST /v1/equilibrium` body: the embedded scenario
/// document plus the Gauss-Seidel iteration knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct EquilibriumRequest {
    /// The scenario document (fully validated).
    pub doc: ScenarioDoc,
    /// Patch policies overriding the document's list (the defender's
    /// policy axis).
    pub policies: Option<Vec<PatchPolicy>>,
    /// Per-tier count bound of the defender's design space (default
    /// [`redeval::optimize::DEFAULT_MAX_REDUNDANCY`]).
    pub max_redundancy: Option<u32>,
    /// Gauss-Seidel round cap (default
    /// [`redeval::equilibrium::DEFAULT_MAX_ITERS`]).
    pub max_iters: Option<u32>,
}

/// A boxed `POST /v1/optimize` report producer.
pub type OptimizeEndpoint =
    Box<dyn Fn(&OptimizeRequest) -> Result<Report, EvalError> + Send + Sync>;

/// A boxed `POST /v1/equilibrium` report producer.
pub type EquilibriumEndpoint =
    Box<dyn Fn(&EquilibriumRequest) -> Result<Report, EvalError> + Send + Sync>;

/// A boxed parameterless listing producer (`GET` registries).
pub type ListingEndpoint = Box<dyn Fn() -> Report + Send + Sync>;

/// The injected report producers (see the [module docs](self)).
pub struct Endpoints {
    /// Builds the `POST /v1/eval` report for a validated document.
    pub eval: EvalEndpoint,
    /// Builds the `POST /v1/sweep` report.
    pub sweep: SweepEndpoint,
    /// Builds the `POST /v1/optimize` report (pruned design-space
    /// search).
    pub optimize: OptimizeEndpoint,
    /// Builds the `POST /v1/equilibrium` report (attacker–defender
    /// best-response iteration).
    pub equilibrium: EquilibriumEndpoint,
    /// The `GET /v1/scenarios` listing (the bundled scenario registry).
    pub scenarios: ListingEndpoint,
    /// The `GET /v1/reports` listing (the report registry).
    pub reports: ListingEndpoint,
}

impl std::fmt::Debug for Endpoints {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoints").finish_non_exhaustive()
    }
}

/// Service construction knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Byte budget of the result cache.
    pub cache_capacity: usize,
    /// Wire-reading bounds (also consulted by the connection loop).
    pub limits: Limits,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_capacity: 64 * 1024 * 1024,
            limits: Limits::default(),
        }
    }
}

/// The routing core: dispatches parsed requests, memoizes results,
/// counts traffic. Socket-free — the loopback server and in-process
/// tests drive the same `handle`.
#[derive(Debug)]
pub struct Service {
    endpoints: Endpoints,
    cache: ResultCache,
    disk: Option<DiskCache>,
    metrics: ServiceMetrics,
    telemetry: redeval::Telemetry,
    limits: Limits,
    requests: AtomicU64,
    started: Instant,
}

impl Service {
    /// A service over the given endpoints (memory cache tier only).
    pub fn new(endpoints: Endpoints, config: ServiceConfig) -> Self {
        Service {
            endpoints,
            cache: ResultCache::new(config.cache_capacity),
            disk: None,
            metrics: ServiceMetrics::new(),
            telemetry: redeval::Telemetry::noop(),
            limits: config.limits,
            requests: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Attaches a persistent cache tier: lookups read through memory to
    /// disk (promoting disk hits), stores write to both, and a restart
    /// that reopens the same directory answers repeated requests from
    /// disk.
    #[must_use]
    pub fn with_disk(mut self, disk: DiskCache) -> Self {
        self.disk = Some(disk);
        self
    }

    /// Attaches the core telemetry handle whose counters `GET /metrics`
    /// and the `/v1/stats` core section report — the same handle the
    /// injected endpoints' evaluation pipeline increments (the CLI
    /// threads it through the shared analysis cache). Defaults to a
    /// no-op handle whose counters read zero.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: redeval::Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The wire-reading bounds the connection loop must apply.
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// A snapshot of the memory-tier cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// A snapshot of the disk-tier counters (all-zero when no disk tier
    /// is attached).
    pub fn disk_stats(&self) -> DiskStats {
        self.disk.as_ref().map(DiskCache::stats).unwrap_or_default()
    }

    /// Requests handled so far (every endpoint, including `/v1/stats`).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Routes one request, timing it into the per-endpoint metrics.
    /// Never panics on request content: every malformed body becomes a
    /// structured 4xx [`Report`].
    pub fn handle(&self, req: &Request) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let (label, response) = self.route(req);
        self.metrics
            .record(label, response.status, started.elapsed());
        response
    }

    /// The dispatch table, returning the metrics label alongside the
    /// response (405s count against the endpoint they aimed at, 404s
    /// against `other`).
    fn route(&self, req: &Request) -> (&'static str, Response) {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => (
                "healthz",
                Response::json(
                    200,
                    format!("{{\"ok\": true, \"schema\": \"{SERVE_SCHEMA}\"}}\n"),
                ),
            ),
            ("GET", "/v1/scenarios") => (
                "scenarios",
                Response::json(200, (self.endpoints.scenarios)().to_json()),
            ),
            ("GET", "/v1/reports") => (
                "reports",
                Response::json(200, (self.endpoints.reports)().to_json()),
            ),
            ("GET", "/v1/stats") => ("stats", Response::json(200, self.stats_report().to_json())),
            ("GET", "/metrics") => ("metrics", self.metrics_response()),
            ("POST", "/v1/eval") => ("eval", self.eval(req)),
            ("POST", "/v1/sweep") => ("sweep", self.sweep(req)),
            ("POST", "/v1/optimize") => ("optimize", self.optimize(req)),
            ("POST", "/v1/equilibrium") => ("equilibrium", self.equilibrium(req)),
            ("POST", "/v1/generate") => ("generate", self.generate(req)),
            (_, "/v1/eval") => ("eval", method_not_allowed("POST")),
            (_, "/v1/sweep") => ("sweep", method_not_allowed("POST")),
            (_, "/v1/optimize") => ("optimize", method_not_allowed("POST")),
            (_, "/v1/equilibrium") => ("equilibrium", method_not_allowed("POST")),
            (_, "/v1/generate") => ("generate", method_not_allowed("POST")),
            (_, "/healthz") => ("healthz", method_not_allowed("GET")),
            (_, "/v1/scenarios") => ("scenarios", method_not_allowed("GET")),
            (_, "/v1/reports") => ("reports", method_not_allowed("GET")),
            (_, "/v1/stats") => ("stats", method_not_allowed("GET")),
            (_, "/metrics") => ("metrics", method_not_allowed("GET")),
            _ => (
                "other",
                error_response(
                    404,
                    "not_found",
                    vec![(
                        "message".into(),
                        Value::from(
                            "no such endpoint; see /healthz, /metrics, /v1/scenarios, \
                             /v1/reports, /v1/stats, /v1/eval, /v1/sweep, /v1/optimize, \
                             /v1/equilibrium, /v1/generate",
                        ),
                    )],
                ),
            ),
        }
    }

    /// Two-tier cache lookup: memory first, then disk. A disk hit is
    /// promoted into the memory tier and reported as `disk` in the
    /// [`CACHE_HEADER`]; either way the bytes are the exact stored
    /// response.
    fn cached(&self, key: &Digest) -> Option<(Vec<u8>, &'static str)> {
        if let Some(bytes) = self.cache.get(key) {
            return Some((bytes.to_vec(), "hit"));
        }
        if let Some(disk) = &self.disk {
            if let Some(bytes) = disk.load(key) {
                self.cache.insert(*key, &bytes);
                return Some((bytes, "disk"));
            }
        }
        None
    }

    /// Stores a computed response in every cache tier.
    fn remember(&self, key: Digest, body: &[u8]) {
        self.cache.insert(key, body);
        if let Some(disk) = &self.disk {
            disk.store(&key, body);
        }
    }

    /// The `GET /metrics` response: Prometheus text exposition over the
    /// same counters `/v1/stats` reports (see [`crate::prometheus`]).
    fn metrics_response(&self) -> Response {
        let text = prometheus::render(&prometheus::Scrape {
            requests: self.requests.load(Ordering::Relaxed),
            uptime_seconds: self.started.elapsed().as_secs(),
            metrics: &self.metrics,
            cache: self.cache.stats(),
            disk: self.disk_stats(),
            disk_enabled: self.disk.is_some(),
            core: self.telemetry.snapshot(),
        });
        Response {
            status: 200,
            content_type: prometheus::CONTENT_TYPE,
            extra_headers: Vec::new(),
            body: text.into_bytes(),
        }
    }

    /// The `GET /v1/stats` report: live counters, deliberately *not*
    /// golden-pinned (it changes with every request). Four blocks: the
    /// request/uptime counters, the memory- and disk-tier cache
    /// counters, the core evaluation-pipeline counters (the attached
    /// [`redeval::Telemetry`] snapshot, `core_`-prefixed), and a
    /// per-endpoint latency table (see [`crate::metrics`] for what the
    /// quantiles mean).
    pub fn stats_report(&self) -> Report {
        let c = self.cache.stats();
        let d = self.disk_stats();
        let mut r = Report::new("serve_stats", "redeval serve — live service counters");
        r.keys([
            ("schema_serve", Value::from(SERVE_SCHEMA)),
            ("requests", int(self.requests.load(Ordering::Relaxed))),
            ("uptime_ticks", int(self.started.elapsed().as_secs())),
        ]);
        r.keys([
            ("cache_hits", int(c.hits)),
            ("cache_misses", int(c.misses)),
            ("cache_evictions", int(c.evictions)),
            ("cache_rejected", int(c.rejected)),
            ("cache_entries", Value::from(c.entries)),
            ("cache_used_bytes", Value::from(c.used_bytes)),
            ("cache_capacity_bytes", Value::from(c.capacity_bytes)),
        ]);
        r.keys([
            ("cache_disk_enabled", Value::from(self.disk.is_some())),
            ("cache_disk_hits", int(d.hits)),
            ("cache_disk_misses", int(d.misses)),
            ("cache_disk_writes", int(d.writes)),
            ("cache_disk_evictions", int(d.evictions)),
            ("cache_disk_corrupt", int(d.corrupt)),
            ("cache_disk_rejected", int(d.rejected)),
            ("cache_disk_entries", Value::from(d.entries)),
            ("cache_disk_used_bytes", int(d.used_bytes)),
            ("cache_disk_capacity_bytes", int(d.capacity_bytes)),
        ]);
        let snap = self.telemetry.snapshot();
        let mut core: Vec<(String, Value)> = snap
            .entries()
            .map(|(name, value)| (format!("core_{name}"), int(value)))
            .collect();
        core.push((
            "core_cache_hit_rate".into(),
            Value::from(snap.cache_hit_rate()),
        ));
        core.push(("core_prune_ratio".into(), Value::from(snap.prune_ratio())));
        core.push((
            "core_solver_residual_max".into(),
            Value::from(snap.solver_residual_max),
        ));
        r.keys(core);
        let mut table = redeval::output::Table::new(
            "endpoints",
            [
                "endpoint", "requests", "errors", "p50_us", "p95_us", "p99_us", "max_us",
            ],
        );
        for s in self.metrics.snapshot() {
            table.add_row(vec![
                Value::from(s.endpoint),
                int(s.requests),
                int(s.errors),
                int(s.p50_us),
                int(s.p95_us),
                int(s.p99_us),
                int(s.max_us),
            ]);
        }
        r.table(table);
        r
    }

    /// `POST /v1/eval`: body is a scenario document.
    fn eval(&self, req: &Request) -> Response {
        let doc = match decode_body_doc(&req.body) {
            Ok(doc) => doc,
            Err(resp) => return *resp,
        };
        let canonical = doc.to_json();
        let key = sha256(&cache_key_bytes("eval", &Json::Null, &canonical));
        if let Some((bytes, tier)) = self.cached(&key) {
            return Response::json(200, bytes).with_header(CACHE_HEADER, tier);
        }
        match (self.endpoints.eval)(&doc) {
            Ok(report) => self.respond_and_cache(key, report),
            Err(e) => eval_error_response(&e),
        }
    }

    /// `POST /v1/sweep`: body embeds the document plus grid parameters.
    fn sweep(&self, req: &Request) -> Response {
        let sweep_req = match decode_sweep_body(&req.body) {
            Ok(r) => r,
            Err(resp) => return *resp,
        };
        let canonical = sweep_req.doc.to_json();
        let key = sha256(&cache_key_bytes(
            "sweep",
            &sweep_params_json(&sweep_req),
            &canonical,
        ));
        if let Some((bytes, tier)) = self.cached(&key) {
            return Response::json(200, bytes).with_header(CACHE_HEADER, tier);
        }
        match (self.endpoints.sweep)(&sweep_req) {
            Ok(report) => self.respond_and_cache(key, report),
            Err(e) => eval_error_response(&e),
        }
    }

    /// `POST /v1/optimize`: body embeds the document plus the search
    /// knobs; same clamp/reject discipline and content-addressed
    /// caching as `/v1/sweep`.
    fn optimize(&self, req: &Request) -> Response {
        let opt_req = match decode_optimize_body(&req.body) {
            Ok(r) => r,
            Err(resp) => return *resp,
        };
        let canonical = opt_req.doc.to_json();
        let key = sha256(&cache_key_bytes(
            "optimize",
            &optimize_params_json(&opt_req),
            &canonical,
        ));
        if let Some((bytes, tier)) = self.cached(&key) {
            return Response::json(200, bytes).with_header(CACHE_HEADER, tier);
        }
        match (self.endpoints.optimize)(&opt_req) {
            Ok(report) => self.respond_and_cache(key, report),
            Err(e) => eval_error_response(&e),
        }
    }

    /// `POST /v1/equilibrium`: body embeds the document plus the
    /// iteration knobs; same clamp/reject discipline and
    /// content-addressed caching as `/v1/optimize`.
    fn equilibrium(&self, req: &Request) -> Response {
        let eq_req = match decode_equilibrium_body(&req.body) {
            Ok(r) => r,
            Err(resp) => return *resp,
        };
        let canonical = eq_req.doc.to_json();
        let key = sha256(&cache_key_bytes(
            "equilibrium",
            &equilibrium_params_json(&eq_req),
            &canonical,
        ));
        if let Some((bytes, tier)) = self.cached(&key) {
            return Response::json(200, bytes).with_header(CACHE_HEADER, tier);
        }
        match (self.endpoints.equilibrium)(&eq_req) {
            Ok(report) => self.respond_and_cache(key, report),
            Err(e) => eval_error_response(&e),
        }
    }

    /// `POST /v1/generate`: body names a generator family plus optional
    /// knobs; the response is the canonical scenario document — the
    /// same bytes `redeval gen` writes and the in-process generator
    /// returns. Cached under the *clamped* parameters, so two requests
    /// that resolve to the same document share one entry.
    fn generate(&self, req: &Request) -> Response {
        let (family, params, seed) = match decode_generate_body(&req.body) {
            Ok(t) => t,
            Err(resp) => return *resp,
        };
        let clamped = params.clamped(family);
        let params_json = Json::Obj(vec![
            ("family".to_string(), Json::Str(family.key().to_string())),
            ("seed".to_string(), Json::Num(seed as f64)),
            ("tiers".to_string(), Json::Num(f64::from(clamped.tiers))),
            (
                "redundancy".to_string(),
                Json::Num(f64::from(clamped.redundancy)),
            ),
            ("designs".to_string(), Json::Num(f64::from(clamped.designs))),
            (
                "policies".to_string(),
                Json::Num(f64::from(clamped.policies)),
            ),
        ]);
        let key = sha256(&cache_key_bytes("generate", &params_json, ""));
        if let Some((bytes, tier)) = self.cached(&key) {
            return Response::json(200, bytes).with_header(CACHE_HEADER, tier);
        }
        let doc = generate::generate(family, &params, seed);
        let body = doc.to_json().into_bytes();
        self.remember(key, &body);
        Response::json(200, body).with_header(CACHE_HEADER, "miss")
    }

    fn respond_and_cache(&self, key: Digest, report: Report) -> Response {
        let body = report.to_json().into_bytes();
        self.remember(key, &body);
        Response::json(200, body).with_header(CACHE_HEADER, "miss")
    }
}

/// `u64` counters as report integers (saturating far beyond any
/// realistic uptime).
fn int(x: u64) -> Value {
    Value::from(i64::try_from(x).unwrap_or(i64::MAX))
}

/// The canonical grid-parameter value hashed into a sweep cache key:
/// every axis present (absent ⇒ `null`), floats canonical, policies in
/// their `Display` form — so `"all"` and `"patch all"` share an entry.
fn sweep_params_json(req: &SweepRequest) -> Json {
    let days = match &req.patch_windows_days {
        None => Json::Null,
        Some(days) => Json::Arr(days.iter().map(|&d| Json::Num(d)).collect()),
    };
    let policies = match &req.policies {
        None => Json::Null,
        Some(ps) => Json::Arr(ps.iter().map(|p| Json::Str(p.to_string())).collect()),
    };
    let maxr = match req.max_redundancy {
        None => Json::Null,
        Some(m) => Json::Num(f64::from(m)),
    };
    Json::Obj(vec![
        ("patch_windows_days".to_string(), days),
        ("policies".to_string(), policies),
        ("max_redundancy".to_string(), maxr),
    ])
}

/// The canonical search-parameter value hashed into an optimize cache
/// key: every knob present (absent ⇒ `null`), policies in `Display`
/// form, bounds as a two-key object.
fn optimize_params_json(req: &OptimizeRequest) -> Json {
    let policies = match &req.policies {
        None => Json::Null,
        Some(ps) => Json::Arr(ps.iter().map(|p| Json::Str(p.to_string())).collect()),
    };
    let maxr = match req.max_redundancy {
        None => Json::Null,
        Some(m) => Json::Num(f64::from(m)),
    };
    let bounds = match &req.bounds {
        None => Json::Null,
        Some(b) => Json::Obj(vec![
            ("max_asp".to_string(), Json::Num(b.max_asp)),
            ("min_coa".to_string(), Json::Num(b.min_coa)),
        ]),
    };
    Json::Obj(vec![
        ("policies".to_string(), policies),
        ("max_redundancy".to_string(), maxr),
        ("bounds".to_string(), bounds),
    ])
}

/// The canonical iteration-parameter value hashed into an equilibrium
/// cache key: every knob present (absent ⇒ `null`), policies in
/// `Display` form.
fn equilibrium_params_json(req: &EquilibriumRequest) -> Json {
    let policies = match &req.policies {
        None => Json::Null,
        Some(ps) => Json::Arr(ps.iter().map(|p| Json::Str(p.to_string())).collect()),
    };
    let maxr = match req.max_redundancy {
        None => Json::Null,
        Some(m) => Json::Num(f64::from(m)),
    };
    let iters = match req.max_iters {
        None => Json::Null,
        Some(m) => Json::Num(f64::from(m)),
    };
    Json::Obj(vec![
        ("policies".to_string(), policies),
        ("max_redundancy".to_string(), maxr),
        ("max_iters".to_string(), iters),
    ])
}

/// Decodes a `POST /v1/equilibrium` body:
/// `{"scenario": <doc>, "policies"?, "max_redundancy"?, "max_iters"?}`.
/// Unknown keys are rejected like everywhere else in the scenario
/// schema.
fn decode_equilibrium_body(body: &[u8]) -> Result<EquilibriumRequest, Box<Response>> {
    let bad = |at: &str, message: String| {
        Box::new(eval_error_response(&EvalError::Scenario(
            ScenarioError::Invalid {
                at: at.to_string(),
                message,
            },
        )))
    };
    let text = std::str::from_utf8(body).map_err(|_| {
        Box::new(error_response(
            400,
            "encoding",
            vec![(
                "message".into(),
                Value::from("request body is not valid UTF-8"),
            )],
        ))
    })?;
    let root = redeval::output::parse_json(text).map_err(|e| {
        Box::new(eval_error_response(&EvalError::Scenario(
            ScenarioError::Json {
                line: e.line,
                col: e.col,
                message: e.message,
            },
        )))
    })?;
    let entries = root
        .as_obj()
        .ok_or_else(|| bad("request", "expected an object".to_string()))?;
    for (k, _) in entries {
        if !matches!(
            k.as_str(),
            "scenario" | "policies" | "max_redundancy" | "max_iters"
        ) {
            return Err(bad(
                "request",
                format!("unknown key `{}`", redeval::output::snippet(k)),
            ));
        }
    }
    let field = |name: &str| entries.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    let doc_value = field("scenario").ok_or_else(|| {
        bad(
            "request",
            "missing key `scenario` (the embedded scenario document)".to_string(),
        )
    })?;
    let doc = ScenarioDoc::from_value(doc_value).map_err(|e| Box::new(eval_error_response(&e)))?;

    let policies = match field("policies") {
        None => None,
        Some(v) => {
            let items = v
                .as_arr()
                .ok_or_else(|| bad("policies", "expected an array".to_string()))?;
            if items.is_empty() || items.len() > MAX_GRID_AXIS {
                return Err(bad(
                    "policies",
                    format!("expected 1..={MAX_GRID_AXIS} entries"),
                ));
            }
            let mut out = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let at = format!("policies[{i}]");
                let s = item
                    .as_str()
                    .ok_or_else(|| bad(&at, "expected a policy string".to_string()))?;
                let p: PatchPolicy = s.parse().map_err(|e| bad(&at, format!("{e}")))?;
                out.push(p);
            }
            Some(out)
        }
    };
    let max_redundancy = match field("max_redundancy") {
        None => None,
        Some(v) => {
            let m = v
                .as_f64()
                .filter(|m| m.fract() == 0.0 && (1.0..=8.0).contains(m));
            match m {
                Some(m) => Some(m as u32),
                None => {
                    return Err(bad(
                        "max_redundancy",
                        "expected an integer in 1..=8".to_string(),
                    ));
                }
            }
        }
    };
    let max_iters = match field("max_iters") {
        None => None,
        Some(v) => {
            let m = v
                .as_f64()
                .filter(|m| m.fract() == 0.0 && (1.0..=64.0).contains(m));
            match m {
                Some(m) => Some(m as u32),
                None => {
                    return Err(bad(
                        "max_iters",
                        "expected an integer in 1..=64".to_string(),
                    ));
                }
            }
        }
    };
    Ok(EquilibriumRequest {
        doc,
        policies,
        max_redundancy,
        max_iters,
    })
}

/// Decodes a `POST /v1/optimize` body:
/// `{"scenario": <doc>, "policies"?, "max_redundancy"?, "bounds"?}`
/// with `bounds = {"max_asp": φ, "min_coa": ψ}`. Unknown keys are
/// rejected like everywhere else in the scenario schema.
fn decode_optimize_body(body: &[u8]) -> Result<OptimizeRequest, Box<Response>> {
    let bad = |at: &str, message: String| {
        Box::new(eval_error_response(&EvalError::Scenario(
            ScenarioError::Invalid {
                at: at.to_string(),
                message,
            },
        )))
    };
    let text = std::str::from_utf8(body).map_err(|_| {
        Box::new(error_response(
            400,
            "encoding",
            vec![(
                "message".into(),
                Value::from("request body is not valid UTF-8"),
            )],
        ))
    })?;
    let root = redeval::output::parse_json(text).map_err(|e| {
        Box::new(eval_error_response(&EvalError::Scenario(
            ScenarioError::Json {
                line: e.line,
                col: e.col,
                message: e.message,
            },
        )))
    })?;
    let entries = root
        .as_obj()
        .ok_or_else(|| bad("request", "expected an object".to_string()))?;
    for (k, _) in entries {
        if !matches!(
            k.as_str(),
            "scenario" | "policies" | "max_redundancy" | "bounds"
        ) {
            return Err(bad(
                "request",
                format!("unknown key `{}`", redeval::output::snippet(k)),
            ));
        }
    }
    let field = |name: &str| entries.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    let doc_value = field("scenario").ok_or_else(|| {
        bad(
            "request",
            "missing key `scenario` (the embedded scenario document)".to_string(),
        )
    })?;
    let doc = ScenarioDoc::from_value(doc_value).map_err(|e| Box::new(eval_error_response(&e)))?;

    let policies = match field("policies") {
        None => None,
        Some(v) => {
            let items = v
                .as_arr()
                .ok_or_else(|| bad("policies", "expected an array".to_string()))?;
            if items.is_empty() || items.len() > MAX_GRID_AXIS {
                return Err(bad(
                    "policies",
                    format!("expected 1..={MAX_GRID_AXIS} entries"),
                ));
            }
            let mut out = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let at = format!("policies[{i}]");
                let s = item
                    .as_str()
                    .ok_or_else(|| bad(&at, "expected a policy string".to_string()))?;
                let p: PatchPolicy = s.parse().map_err(|e| bad(&at, format!("{e}")))?;
                out.push(p);
            }
            Some(out)
        }
    };
    let max_redundancy = match field("max_redundancy") {
        None => None,
        Some(v) => {
            let m = v
                .as_f64()
                .filter(|m| m.fract() == 0.0 && (1.0..=8.0).contains(m));
            match m {
                Some(m) => Some(m as u32),
                None => {
                    return Err(bad(
                        "max_redundancy",
                        "expected an integer in 1..=8".to_string(),
                    ));
                }
            }
        }
    };
    let bounds = match field("bounds") {
        None => None,
        Some(v) => {
            let obj = v.as_obj().ok_or_else(|| {
                bad(
                    "bounds",
                    "expected an object {\"max_asp\": φ, \"min_coa\": ψ}".to_string(),
                )
            })?;
            for (k, _) in obj {
                if !matches!(k.as_str(), "max_asp" | "min_coa") {
                    return Err(bad(
                        "bounds",
                        format!("unknown key `{}`", redeval::output::snippet(k)),
                    ));
                }
            }
            let num = |name: &'static str| -> Result<f64, Box<Response>> {
                obj.iter()
                    .find(|(k, _)| k == name)
                    .and_then(|(_, v)| v.as_f64())
                    .filter(|n| n.is_finite())
                    .ok_or_else(|| {
                        bad(
                            &format!("bounds.{name}"),
                            "expected a finite number".to_string(),
                        )
                    })
            };
            Some(ScatterBounds {
                max_asp: num("max_asp")?,
                min_coa: num("min_coa")?,
            })
        }
    };
    Ok(OptimizeRequest {
        doc,
        policies,
        max_redundancy,
        bounds,
    })
}

/// Decodes a request body that *is* a scenario document.
fn decode_body_doc(body: &[u8]) -> Result<ScenarioDoc, Box<Response>> {
    let text = std::str::from_utf8(body).map_err(|_| {
        Box::new(error_response(
            400,
            "encoding",
            vec![(
                "message".into(),
                Value::from("request body is not valid UTF-8"),
            )],
        ))
    })?;
    ScenarioDoc::from_json(text).map_err(|e| Box::new(eval_error_response(&e)))
}

/// Decodes a `POST /v1/sweep` body:
/// `{"scenario": <doc>, "patch_windows_days"?, "policies"?,
/// "max_redundancy"?}`. Unknown keys are rejected like everywhere else
/// in the scenario schema.
fn decode_sweep_body(body: &[u8]) -> Result<SweepRequest, Box<Response>> {
    let bad = |at: &str, message: String| {
        Box::new(eval_error_response(&EvalError::Scenario(
            ScenarioError::Invalid {
                at: at.to_string(),
                message,
            },
        )))
    };
    let text = std::str::from_utf8(body).map_err(|_| {
        Box::new(error_response(
            400,
            "encoding",
            vec![(
                "message".into(),
                Value::from("request body is not valid UTF-8"),
            )],
        ))
    })?;
    let root = redeval::output::parse_json(text).map_err(|e| {
        Box::new(eval_error_response(&EvalError::Scenario(
            ScenarioError::Json {
                line: e.line,
                col: e.col,
                message: e.message,
            },
        )))
    })?;
    let entries = root
        .as_obj()
        .ok_or_else(|| bad("request", "expected an object".to_string()))?;
    for (k, _) in entries {
        if !matches!(
            k.as_str(),
            "scenario" | "patch_windows_days" | "policies" | "max_redundancy"
        ) {
            return Err(bad(
                "request",
                format!("unknown key `{}`", redeval::output::snippet(k)),
            ));
        }
    }
    let field = |name: &str| entries.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    let doc_value = field("scenario").ok_or_else(|| {
        bad(
            "request",
            "missing key `scenario` (the embedded scenario document)".to_string(),
        )
    })?;
    let doc = ScenarioDoc::from_value(doc_value).map_err(|e| Box::new(eval_error_response(&e)))?;

    let patch_windows_days = match field("patch_windows_days") {
        None => None,
        Some(v) => {
            let items = v
                .as_arr()
                .ok_or_else(|| bad("patch_windows_days", "expected an array".to_string()))?;
            if items.is_empty() || items.len() > MAX_GRID_AXIS {
                return Err(bad(
                    "patch_windows_days",
                    format!("expected 1..={MAX_GRID_AXIS} entries"),
                ));
            }
            let mut days = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let d = item.as_f64().filter(|d| d.is_finite() && *d > 0.0);
                match d {
                    Some(d) => days.push(d),
                    None => {
                        return Err(bad(
                            &format!("patch_windows_days[{i}]"),
                            "expected a positive number of days".to_string(),
                        ));
                    }
                }
            }
            Some(days)
        }
    };
    let policies = match field("policies") {
        None => None,
        Some(v) => {
            let items = v
                .as_arr()
                .ok_or_else(|| bad("policies", "expected an array".to_string()))?;
            if items.is_empty() || items.len() > MAX_GRID_AXIS {
                return Err(bad(
                    "policies",
                    format!("expected 1..={MAX_GRID_AXIS} entries"),
                ));
            }
            let mut out = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let at = format!("policies[{i}]");
                let s = item
                    .as_str()
                    .ok_or_else(|| bad(&at, "expected a policy string".to_string()))?;
                let p: PatchPolicy = s.parse().map_err(|e| bad(&at, format!("{e}")))?;
                out.push(p);
            }
            Some(out)
        }
    };
    let max_redundancy = match field("max_redundancy") {
        None => None,
        Some(v) => {
            let m = v
                .as_f64()
                .filter(|m| m.fract() == 0.0 && (1.0..=8.0).contains(m));
            match m {
                Some(m) => Some(m as u32),
                None => {
                    return Err(bad(
                        "max_redundancy",
                        "expected an integer in 1..=8".to_string(),
                    ));
                }
            }
        }
    };
    Ok(SweepRequest {
        doc,
        patch_windows_days,
        policies,
        max_redundancy,
    })
}

/// Decodes a `POST /v1/generate` body:
/// `{"family": <str>, "seed"?, "tiers"?, "redundancy"?, "designs"?,
/// "policies"?}`. Knob values must be non-negative integers; they are
/// clamped to the family's documented ranges downstream rather than
/// rejected, matching the CLI and the in-process API.
fn decode_generate_body(body: &[u8]) -> Result<(Family, GenParams, u64), Box<Response>> {
    let bad = |at: &str, message: String| {
        Box::new(eval_error_response(&EvalError::Scenario(
            ScenarioError::Invalid {
                at: at.to_string(),
                message,
            },
        )))
    };
    let text = std::str::from_utf8(body).map_err(|_| {
        Box::new(error_response(
            400,
            "encoding",
            vec![(
                "message".into(),
                Value::from("request body is not valid UTF-8"),
            )],
        ))
    })?;
    let root = redeval::output::parse_json(text).map_err(|e| {
        Box::new(eval_error_response(&EvalError::Scenario(
            ScenarioError::Json {
                line: e.line,
                col: e.col,
                message: e.message,
            },
        )))
    })?;
    let entries = root
        .as_obj()
        .ok_or_else(|| bad("request", "expected an object".to_string()))?;
    for (k, _) in entries {
        if !matches!(
            k.as_str(),
            "family" | "seed" | "tiers" | "redundancy" | "designs" | "policies"
        ) {
            return Err(bad(
                "request",
                format!("unknown key `{}`", redeval::output::snippet(k)),
            ));
        }
    }
    let field = |name: &str| entries.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    let family_value = field("family").ok_or_else(|| {
        bad(
            "family",
            "missing key `family` (one of ecommerce_fleet, iot_swarm, microservice_mesh)"
                .to_string(),
        )
    })?;
    let family_str = family_value
        .as_str()
        .ok_or_else(|| bad("family", "expected a family name string".to_string()))?;
    let family = Family::parse(family_str).ok_or_else(|| {
        bad(
            "family",
            format!(
                "unknown family `{}` (one of ecommerce_fleet, iot_swarm, microservice_mesh)",
                redeval::output::snippet(family_str)
            ),
        )
    })?;
    // Largest f64-exact integer: seeds round-trip through JSON losslessly.
    const MAX_SEED: f64 = 9_007_199_254_740_992.0; // 2^53
    let uint = |name: &'static str, max: f64| -> Result<Option<u64>, Box<Response>> {
        match field(name) {
            None => Ok(None),
            Some(v) => match v
                .as_f64()
                .filter(|n| n.fract() == 0.0 && (0.0..=max).contains(n))
            {
                Some(n) => Ok(Some(n as u64)),
                None => Err(bad(
                    name,
                    format!("expected a non-negative integer (at most {max:.0})"),
                )),
            },
        }
    };
    let seed = uint("seed", MAX_SEED)?.unwrap_or(0);
    let defaults = GenParams::default();
    let knob = |value: Option<u64>, default: u32| {
        value.map_or(default, |n| u32::try_from(n).unwrap_or(u32::MAX))
    };
    let params = GenParams {
        tiers: knob(uint("tiers", f64::from(u32::MAX))?, defaults.tiers),
        redundancy: knob(
            uint("redundancy", f64::from(u32::MAX))?,
            defaults.redundancy,
        ),
        designs: knob(uint("designs", f64::from(u32::MAX))?, defaults.designs),
        policies: knob(uint("policies", f64::from(u32::MAX))?, defaults.policies),
    };
    Ok((family, params, seed))
}

/// A structured error body: a `Report` named `error` with `ok: false`
/// and one key/value block — `status`, `error` kind, then the detail
/// entries (whose message strings are snippet-capped upstream; raw
/// request bytes never appear here).
pub fn error_response(status: u16, kind: &str, details: Vec<(String, Value)>) -> Response {
    let mut r = Report::new("error", "request rejected");
    r.check(false);
    let mut entries: Vec<(String, Value)> = vec![
        ("schema_serve".into(), Value::from(SERVE_SCHEMA)),
        ("status".into(), Value::from(i64::from(status))),
        ("error".into(), Value::from(kind)),
    ];
    entries.extend(details);
    r.keys(entries);
    Response::json(status, r.to_json())
}

/// Maps an evaluation-path error to its structured response: scenario
/// and design defects are the client's fault (400), solver failures are
/// the server's (500).
pub fn eval_error_response(e: &EvalError) -> Response {
    match e {
        EvalError::Scenario(ScenarioError::Json { line, col, message }) => error_response(
            400,
            "json",
            vec![
                ("line".into(), int(*line as u64)),
                ("col".into(), int(*col as u64)),
                ("message".into(), Value::from(message.as_str())),
            ],
        ),
        EvalError::Scenario(ScenarioError::Invalid { at, message }) => error_response(
            400,
            "schema",
            vec![
                ("at".into(), Value::from(at.as_str())),
                ("message".into(), Value::from(message.as_str())),
            ],
        ),
        EvalError::InvalidSpec(issue) => error_response(
            400,
            "spec",
            vec![("message".into(), Value::from(issue.to_string()))],
        ),
        EvalError::CountMismatch { .. } | EvalError::ZeroServers { .. } => error_response(
            400,
            "design",
            vec![("message".into(), Value::from(e.to_string()))],
        ),
        EvalError::Srn(_) | EvalError::Solve(_) => error_response(
            500,
            "solver",
            vec![("message".into(), Value::from(e.to_string()))],
        ),
    }
}

/// The 405 response, naming the allowed method.
fn method_not_allowed(allow: &'static str) -> Response {
    error_response(
        405,
        "method_not_allowed",
        vec![(
            "message".into(),
            Value::from(format!("use {allow} for this endpoint")),
        )],
    )
    .with_header("Allow", allow)
}

/// Maps a wire-reading failure to its (connection-closing) response;
/// `None` when the socket is beyond answering.
pub fn http_error_response(e: &HttpError) -> Option<Response> {
    let status = e.status()?;
    Some(error_response(
        status,
        "http",
        vec![("message".into(), Value::from(e.to_string()))],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use redeval::scenario::builtin;

    /// Cheap deterministic endpoints: no SRN solves, but real documents
    /// and real cache behaviour.
    fn test_service(cache_capacity: usize) -> Service {
        let endpoints = Endpoints {
            eval: Box::new(|doc| {
                let mut r = Report::new(format!("eval_{}", doc.name), "stub eval");
                r.keys([("tiers", Value::from(doc.tiers.len()))]);
                Ok(r)
            }),
            sweep: Box::new(|req| {
                let mut r = Report::new(format!("sweep_{}", req.doc.name), "stub sweep");
                r.keys([(
                    "axes",
                    Value::from(
                        req.patch_windows_days.as_ref().map_or(0, Vec::len)
                            + req.policies.as_ref().map_or(0, Vec::len),
                    ),
                )]);
                Ok(r)
            }),
            optimize: Box::new(|req| {
                let mut r = Report::new(format!("optimize_{}", req.doc.name), "stub optimize");
                r.keys([
                    (
                        "max_redundancy",
                        Value::from(i64::from(req.max_redundancy.unwrap_or(0))),
                    ),
                    ("bounded", Value::from(req.bounds.is_some())),
                ]);
                Ok(r)
            }),
            equilibrium: Box::new(|req| {
                let mut r =
                    Report::new(format!("equilibrium_{}", req.doc.name), "stub equilibrium");
                r.keys([
                    (
                        "max_redundancy",
                        Value::from(i64::from(req.max_redundancy.unwrap_or(0))),
                    ),
                    (
                        "max_iters",
                        Value::from(i64::from(req.max_iters.unwrap_or(0))),
                    ),
                ]);
                Ok(r)
            }),
            scenarios: Box::new(|| Report::new("scenario_list", "stub scenarios")),
            reports: Box::new(|| Report::new("list", "stub reports")),
        };
        Service::new(
            endpoints,
            ServiceConfig {
                cache_capacity,
                limits: Limits::default(),
            },
        )
    }

    fn doc_json() -> String {
        builtin::paper_case_study().to_json()
    }

    #[test]
    fn routes_get_endpoints() {
        let svc = test_service(1 << 20);
        let ok = svc.handle(&Request::synthetic("GET", "/healthz", b""));
        assert_eq!(ok.status, 200);
        assert_eq!(
            String::from_utf8(ok.body).unwrap(),
            format!("{{\"ok\": true, \"schema\": \"{SERVE_SCHEMA}\"}}\n")
        );
        for path in ["/v1/scenarios", "/v1/reports", "/v1/stats"] {
            assert_eq!(
                svc.handle(&Request::synthetic("GET", path, b"")).status,
                200
            );
        }
        assert_eq!(
            svc.handle(&Request::synthetic("GET", "/nope", b"")).status,
            404
        );
        let r = svc.handle(&Request::synthetic("GET", "/v1/eval", b""));
        assert_eq!(r.status, 405);
        assert!(r.extra_headers.contains(&("Allow", "POST".to_string())));
        let r = svc.handle(&Request::synthetic("POST", "/healthz", b"x"));
        assert_eq!(r.status, 405);
        assert_eq!(svc.requests(), 7);
    }

    #[test]
    fn eval_caches_by_canonical_content() {
        let svc = test_service(1 << 20);
        let body = doc_json();
        let first = svc.handle(&Request::synthetic("POST", "/v1/eval", body.as_bytes()));
        assert_eq!(first.status, 200);
        assert!(first.extra_headers.contains(&(CACHE_HEADER, "miss".into())));
        let second = svc.handle(&Request::synthetic("POST", "/v1/eval", body.as_bytes()));
        assert!(second.extra_headers.contains(&(CACHE_HEADER, "hit".into())));
        assert_eq!(first.body, second.body, "hit must be byte-identical");
        // A *textually* different body for the same document also hits:
        // the key hashes the canonical form.
        let spaced = body.replace(",\n", " ,\n");
        assert!(redeval::scenario::ScenarioDoc::from_json(&spaced).is_ok());
        let third = svc.handle(&Request::synthetic("POST", "/v1/eval", spaced.as_bytes()));
        assert!(third.extra_headers.contains(&(CACHE_HEADER, "hit".into())));
        assert_eq!(first.body, third.body);
        let stats = svc.cache_stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
    }

    #[test]
    fn generate_returns_the_canonical_document_and_caches_it() {
        let svc = test_service(1 << 20);
        let body = b"{\"family\": \"iot_swarm\", \"seed\": 2, \"tiers\": 7, \"redundancy\": 8}";
        let first = svc.handle(&Request::synthetic("POST", "/v1/generate", body));
        assert_eq!(first.status, 200);
        assert!(first.extra_headers.contains(&(CACHE_HEADER, "miss".into())));
        let expected = generate::generate(
            Family::IotSwarm,
            &GenParams {
                tiers: 7,
                redundancy: 8,
                ..GenParams::default()
            },
            2,
        )
        .to_json();
        assert_eq!(String::from_utf8(first.body.clone()).unwrap(), expected);
        let second = svc.handle(&Request::synthetic("POST", "/v1/generate", body));
        assert!(second.extra_headers.contains(&(CACHE_HEADER, "hit".into())));
        assert_eq!(first.body, second.body, "hit must be byte-identical");
        // A request that clamps to the same parameters shares the entry.
        let clamped = b"{\"family\": \"iot_swarm\", \"seed\": 2, \"tiers\": 7, \"redundancy\": 99}";
        let third = svc.handle(&Request::synthetic("POST", "/v1/generate", clamped));
        assert!(third.extra_headers.contains(&(CACHE_HEADER, "hit".into())));
        assert_eq!(first.body, third.body);
    }

    #[test]
    fn generate_rejects_malformed_requests_with_structured_errors() {
        let svc = test_service(1 << 20);
        let cases: &[(&[u8], &str)] = &[
            (b"{\"seed\": 1}", "missing key `family`"),
            (b"{\"family\": \"cloud\"}", "unknown family"),
            (b"{\"family\": 3}", "expected a family name string"),
            (
                b"{\"family\": \"iot_swarm\", \"speed\": 1}",
                "unknown key `speed`",
            ),
            (
                b"{\"family\": \"iot_swarm\", \"seed\": 1.5}",
                "non-negative integer",
            ),
            (
                b"{\"family\": \"iot_swarm\", \"tiers\": -2}",
                "non-negative integer",
            ),
            (b"[]", "expected an object"),
            (b"{", "json"),
        ];
        for (body, needle) in cases {
            let r = svc.handle(&Request::synthetic("POST", "/v1/generate", body));
            assert_eq!(r.status, 400, "body {:?}", String::from_utf8_lossy(body));
            let text = String::from_utf8(r.body).unwrap();
            assert!(
                text.contains(needle),
                "expected `{needle}` in response to {:?}, got: {text}",
                String::from_utf8_lossy(body)
            );
        }
        let r = svc.handle(&Request::synthetic("GET", "/v1/generate", b""));
        assert_eq!(r.status, 405);
        assert!(r.extra_headers.contains(&("Allow", "POST".to_string())));
    }

    #[test]
    fn eval_and_sweep_keys_do_not_collide() {
        let svc = test_service(1 << 20);
        let eval_body = doc_json();
        let sweep_body = format!("{{\"scenario\": {}}}", eval_body.trim_end());
        let a = svc.handle(&Request::synthetic(
            "POST",
            "/v1/eval",
            eval_body.as_bytes(),
        ));
        let b = svc.handle(&Request::synthetic(
            "POST",
            "/v1/sweep",
            sweep_body.as_bytes(),
        ));
        assert_eq!((a.status, b.status), (200, 200));
        assert!(b.extra_headers.contains(&(CACHE_HEADER, "miss".into())));
        assert_ne!(a.body, b.body);
        // Different sweep params, different entry.
        let with_axis = format!(
            "{{\"scenario\": {}, \"patch_windows_days\": [7, 30]}}",
            eval_body.trim_end()
        );
        let c = svc.handle(&Request::synthetic(
            "POST",
            "/v1/sweep",
            with_axis.as_bytes(),
        ));
        assert!(c.extra_headers.contains(&(CACHE_HEADER, "miss".into())));
        assert_eq!(svc.cache_stats().entries, 3);
    }

    #[test]
    fn malformed_bodies_become_structured_reports_without_echo() {
        let svc = test_service(1 << 20);
        let junk = format!("{{ nope {}", "Z".repeat(10_000));
        let r = svc.handle(&Request::synthetic("POST", "/v1/eval", junk.as_bytes()));
        assert_eq!(r.status, 400);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("\"ok\": false"));
        assert!(body.contains("\"error\": \"json\""));
        assert!(!body.contains("ZZZZ"), "request bytes echoed: {body}");
        // Schema violations carry the dotted path.
        let bad_schema = doc_json().replace("\"title\"", "\"titel\"");
        let r = svc.handle(&Request::synthetic(
            "POST",
            "/v1/eval",
            bad_schema.as_bytes(),
        ));
        assert_eq!(r.status, 400);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("\"error\": \"schema\"") && body.contains("titel"));
        // Non-UTF-8 bodies are rejected, not panicked on.
        let r = svc.handle(&Request::synthetic("POST", "/v1/eval", &[0xff, 0xfe, 0x00]));
        assert_eq!(r.status, 400);
        // Errors are not cached.
        assert_eq!(svc.cache_stats().entries, 0);
    }

    #[test]
    fn sweep_body_validation_pinpoints_axes() {
        let svc = test_service(1 << 20);
        let doc = doc_json();
        let doc = doc.trim_end();
        let cases = [
            ("{}".to_string(), "missing key `scenario`"),
            (
                format!("{{\"scenario\": {doc}, \"frob\": 1}}"),
                "unknown key",
            ),
            (
                format!("{{\"scenario\": {doc}, \"patch_windows_days\": [-1]}}"),
                "patch_windows_days[0]",
            ),
            (
                format!("{{\"scenario\": {doc}, \"policies\": [\"bogus\"]}}"),
                "policies[0]",
            ),
            (
                format!("{{\"scenario\": {doc}, \"max_redundancy\": 99}}"),
                "1..=8",
            ),
        ];
        for (body, needle) in cases {
            let r = svc.handle(&Request::synthetic("POST", "/v1/sweep", body.as_bytes()));
            assert_eq!(r.status, 400, "body {}", &body[..60.min(body.len())]);
            let text = String::from_utf8(r.body).unwrap();
            assert!(text.contains(needle), "`{needle}` not in {text}");
        }
    }

    #[test]
    fn optimize_routes_caches_and_validates() {
        let svc = test_service(1 << 20);
        let doc = doc_json();
        let doc = doc.trim_end();
        let body = format!(
            "{{\"scenario\": {doc}, \"max_redundancy\": 3, \
             \"bounds\": {{\"max_asp\": 0.2, \"min_coa\": 0.9962}}}}"
        );
        let first = svc.handle(&Request::synthetic("POST", "/v1/optimize", body.as_bytes()));
        assert_eq!(first.status, 200);
        assert!(first.extra_headers.contains(&(CACHE_HEADER, "miss".into())));
        let text = String::from_utf8(first.body.clone()).unwrap();
        assert!(text.contains("\"max_redundancy\": 3") && text.contains("\"bounded\": true"));
        let second = svc.handle(&Request::synthetic("POST", "/v1/optimize", body.as_bytes()));
        assert!(second.extra_headers.contains(&(CACHE_HEADER, "hit".into())));
        assert_eq!(first.body, second.body, "hit must be byte-identical");
        // Different knobs, different cache entry.
        let other = format!("{{\"scenario\": {doc}, \"max_redundancy\": 2}}");
        let third = svc.handle(&Request::synthetic(
            "POST",
            "/v1/optimize",
            other.as_bytes(),
        ));
        assert!(third.extra_headers.contains(&(CACHE_HEADER, "miss".into())));
        // Validation pinpoints the offending knob.
        let cases = [
            ("{}".to_string(), "missing key `scenario`"),
            (
                format!("{{\"scenario\": {doc}, \"depth\": 1}}"),
                "unknown key",
            ),
            (
                format!("{{\"scenario\": {doc}, \"max_redundancy\": 99}}"),
                "1..=8",
            ),
            (
                format!("{{\"scenario\": {doc}, \"bounds\": [1, 2]}}"),
                "expected an object",
            ),
            (
                format!("{{\"scenario\": {doc}, \"bounds\": {{\"max_asp\": 0.2}}}}"),
                "bounds.min_coa",
            ),
            (
                format!(
                    "{{\"scenario\": {doc}, \
                     \"bounds\": {{\"max_asp\": 0.2, \"min_coa\": 0.9, \"phi\": 1}}}}"
                ),
                "unknown key `phi`",
            ),
            (
                format!("{{\"scenario\": {doc}, \"policies\": [\"bogus\"]}}"),
                "policies[0]",
            ),
        ];
        for (body, needle) in cases {
            let r = svc.handle(&Request::synthetic("POST", "/v1/optimize", body.as_bytes()));
            assert_eq!(r.status, 400, "body {}", &body[..60.min(body.len())]);
            let text = String::from_utf8(r.body).unwrap();
            assert!(text.contains(needle), "`{needle}` not in {text}");
        }
        let r = svc.handle(&Request::synthetic("GET", "/v1/optimize", b""));
        assert_eq!(r.status, 405);
        assert!(r.extra_headers.contains(&("Allow", "POST".to_string())));
        // The 404 listing names the new endpoint.
        let r = svc.handle(&Request::synthetic("GET", "/nope", b""));
        assert!(String::from_utf8(r.body).unwrap().contains("/v1/optimize"));
    }

    #[test]
    fn equilibrium_routes_caches_and_validates() {
        let svc = test_service(1 << 20);
        let doc = doc_json();
        let doc = doc.trim_end();
        let body = format!("{{\"scenario\": {doc}, \"max_redundancy\": 2, \"max_iters\": 8}}");
        let first = svc.handle(&Request::synthetic(
            "POST",
            "/v1/equilibrium",
            body.as_bytes(),
        ));
        assert_eq!(first.status, 200);
        assert!(first.extra_headers.contains(&(CACHE_HEADER, "miss".into())));
        let text = String::from_utf8(first.body.clone()).unwrap();
        assert!(text.contains("\"max_redundancy\": 2") && text.contains("\"max_iters\": 8"));
        let second = svc.handle(&Request::synthetic(
            "POST",
            "/v1/equilibrium",
            body.as_bytes(),
        ));
        assert!(second.extra_headers.contains(&(CACHE_HEADER, "hit".into())));
        assert_eq!(first.body, second.body, "hit must be byte-identical");
        // Different knobs, different cache entry.
        let other = format!("{{\"scenario\": {doc}, \"max_iters\": 4}}");
        let third = svc.handle(&Request::synthetic(
            "POST",
            "/v1/equilibrium",
            other.as_bytes(),
        ));
        assert!(third.extra_headers.contains(&(CACHE_HEADER, "miss".into())));
        // Validation pinpoints the offending knob.
        let cases = [
            ("{}".to_string(), "missing key `scenario`"),
            (
                format!("{{\"scenario\": {doc}, \"bounds\": {{}}}}"),
                "unknown key `bounds`",
            ),
            (
                format!("{{\"scenario\": {doc}, \"max_redundancy\": 99}}"),
                "1..=8",
            ),
            (
                format!("{{\"scenario\": {doc}, \"max_iters\": 0}}"),
                "1..=64",
            ),
            (
                format!("{{\"scenario\": {doc}, \"max_iters\": 2.5}}"),
                "1..=64",
            ),
            (
                format!("{{\"scenario\": {doc}, \"policies\": [\"bogus\"]}}"),
                "policies[0]",
            ),
        ];
        for (body, needle) in cases {
            let r = svc.handle(&Request::synthetic(
                "POST",
                "/v1/equilibrium",
                body.as_bytes(),
            ));
            assert_eq!(r.status, 400, "body {}", &body[..60.min(body.len())]);
            let text = String::from_utf8(r.body).unwrap();
            assert!(text.contains(needle), "`{needle}` not in {text}");
        }
        let r = svc.handle(&Request::synthetic("GET", "/v1/equilibrium", b""));
        assert_eq!(r.status, 405);
        assert!(r.extra_headers.contains(&("Allow", "POST".to_string())));
        // The 404 listing names the new endpoint.
        let r = svc.handle(&Request::synthetic("GET", "/nope", b""));
        assert!(String::from_utf8(r.body)
            .unwrap()
            .contains("/v1/equilibrium"));
    }

    #[test]
    fn stats_report_tracks_cache_counters() {
        let svc = test_service(1 << 20);
        let body = doc_json();
        svc.handle(&Request::synthetic("POST", "/v1/eval", body.as_bytes()));
        svc.handle(&Request::synthetic("POST", "/v1/eval", body.as_bytes()));
        let stats = svc.handle(&Request::synthetic("GET", "/v1/stats", b""));
        let text = String::from_utf8(stats.body).unwrap();
        assert!(text.contains("\"cache_hits\": 1"), "{text}");
        assert!(text.contains("\"cache_misses\": 1"));
        assert!(text.contains("\"cache_entries\": 1"));
        assert!(text.contains("\"requests\": 3"));
    }

    #[test]
    fn tiny_cache_evicts_but_stays_correct() {
        let svc = test_service(700); // fits roughly one stub response
        let a = doc_json();
        let b = builtin::ecommerce().to_json();
        let ra = svc.handle(&Request::synthetic("POST", "/v1/eval", a.as_bytes()));
        let rb = svc.handle(&Request::synthetic("POST", "/v1/eval", b.as_bytes()));
        assert_eq!((ra.status, rb.status), (200, 200));
        // Whatever was evicted, recomputation still yields identical
        // bytes.
        let ra2 = svc.handle(&Request::synthetic("POST", "/v1/eval", a.as_bytes()));
        assert_eq!(ra.body, ra2.body);
    }

    #[test]
    fn http_error_responses_map_statuses() {
        assert_eq!(
            http_error_response(&HttpError::BodyTooLarge)
                .unwrap()
                .status,
            413
        );
        assert_eq!(
            http_error_response(&HttpError::BadRequestLine)
                .unwrap()
                .status,
            400
        );
        assert!(http_error_response(&HttpError::Truncated).is_none());
    }

    /// A unique scratch directory per test, removed on drop.
    struct Scratch(std::path::PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Scratch {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "redeval-service-test-{}-{tag}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = std::fs::remove_dir_all(&dir);
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn disk_tier_survives_a_service_restart() {
        let scratch = Scratch::new("restart");
        let body = doc_json();
        let first = {
            let svc =
                test_service(1 << 20).with_disk(DiskCache::open(&scratch.0, 1 << 20).unwrap());
            let r = svc.handle(&Request::synthetic("POST", "/v1/eval", body.as_bytes()));
            assert!(r.extra_headers.contains(&(CACHE_HEADER, "miss".into())));
            assert_eq!(svc.disk_stats().writes, 1);
            r
        };
        // A fresh service over the same directory: cold memory, warm disk.
        let svc = test_service(1 << 20).with_disk(DiskCache::open(&scratch.0, 1 << 20).unwrap());
        let second = svc.handle(&Request::synthetic("POST", "/v1/eval", body.as_bytes()));
        assert!(
            second
                .extra_headers
                .contains(&(CACHE_HEADER, "disk".into())),
            "first repeat after restart must be a disk hit: {:?}",
            second.extra_headers
        );
        assert_eq!(first.body, second.body, "disk hit must be byte-identical");
        assert_eq!(svc.disk_stats().hits, 1);
        // The disk hit was promoted: the next repeat is a memory hit.
        let third = svc.handle(&Request::synthetic("POST", "/v1/eval", body.as_bytes()));
        assert!(third.extra_headers.contains(&(CACHE_HEADER, "hit".into())));
        assert_eq!(first.body, third.body);
        assert_eq!(svc.disk_stats().hits, 1, "memory answered the repeat");
        // Stats expose the disk tier.
        let stats = svc.handle(&Request::synthetic("GET", "/v1/stats", b""));
        let text = String::from_utf8(stats.body).unwrap();
        assert!(text.contains("\"cache_disk_enabled\": true"), "{text}");
        assert!(text.contains("\"cache_disk_hits\": 1"), "{text}");
    }

    #[test]
    fn corrupted_disk_entry_degrades_to_a_recompute() {
        let scratch = Scratch::new("corrupt");
        let body = doc_json();
        let first = {
            let svc =
                test_service(1 << 20).with_disk(DiskCache::open(&scratch.0, 1 << 20).unwrap());
            svc.handle(&Request::synthetic("POST", "/v1/eval", body.as_bytes()))
        };
        // Corrupt every stored entry on disk.
        for entry in std::fs::read_dir(&scratch.0).unwrap() {
            let path = entry.unwrap().path();
            let mut data = std::fs::read(&path).unwrap();
            let last = data.len() - 1;
            data[last] ^= 0xff;
            std::fs::write(&path, &data).unwrap();
        }
        let svc = test_service(1 << 20).with_disk(DiskCache::open(&scratch.0, 1 << 20).unwrap());
        let second = svc.handle(&Request::synthetic("POST", "/v1/eval", body.as_bytes()));
        assert_eq!(second.status, 200);
        assert!(
            second
                .extra_headers
                .contains(&(CACHE_HEADER, "miss".into())),
            "corruption must fall back to a recompute: {:?}",
            second.extra_headers
        );
        assert_eq!(first.body, second.body, "recompute is byte-identical");
        assert_eq!(svc.disk_stats().corrupt, 1);
    }

    #[test]
    fn stats_report_includes_per_endpoint_latency_rows() {
        let svc = test_service(1 << 20);
        svc.handle(&Request::synthetic(
            "POST",
            "/v1/eval",
            doc_json().as_bytes(),
        ));
        svc.handle(&Request::synthetic("GET", "/nope", b""));
        let stats = svc.handle(&Request::synthetic("GET", "/v1/stats", b""));
        let text = String::from_utf8(stats.body).unwrap();
        assert!(text.contains("\"endpoints\""), "{text}");
        assert!(text.contains("\"eval\""), "{text}");
        assert!(text.contains("\"other\""), "{text}");
        assert!(text.contains("p99_us"), "{text}");
    }

    #[test]
    fn solver_errors_are_500_not_400() {
        let endpoints = Endpoints {
            eval: Box::new(|_| Err(EvalError::from(redeval_srn::SrnError::VanishingLoop))),
            sweep: Box::new(|_| unreachable!()),
            optimize: Box::new(|_| unreachable!()),
            equilibrium: Box::new(|_| unreachable!()),
            scenarios: Box::new(|| Report::new("scenario_list", "x")),
            reports: Box::new(|| Report::new("list", "x")),
        };
        let svc = Service::new(endpoints, ServiceConfig::default());
        let r = svc.handle(&Request::synthetic(
            "POST",
            "/v1/eval",
            doc_json().as_bytes(),
        ));
        assert_eq!(r.status, 500);
        assert!(String::from_utf8(r.body)
            .unwrap()
            .contains("\"error\": \"solver\""));
    }
}
