//! Persistent content-addressed result cache: one file per entry under
//! a cache directory, keyed by the same SHA-256 digests as the
//! in-memory [`ResultCache`](crate::cache::ResultCache).
//!
//! The disk tier exists so a restarted server answers its first
//! repeated request warm. Its contract mirrors the memory tier's —
//! **a hit is byte-identical to a recompute** — and is enforced
//! physically: every entry carries its key and a payload digest, and a
//! load verifies both before returning a single byte. Anything that
//! fails verification (truncation, bit rot, a foreign file squatting on
//! the name) is deleted and reported as a miss, never served and never
//! fatal.
//!
//! Writes are crash-safe by construction: the entry is written to a
//! `.tmp` sibling and `rename(2)`d into place, so a reader can only
//! ever observe a missing file or a complete one — a torn write leaves
//! at worst a stale `.tmp` that the next [`DiskCache::open`] sweeps.
//! Eviction is least-recently-used under a byte budget, tracked by an
//! in-memory index seeded from a directory scan at open (oldest
//! modification time first).
//!
//! # Entry format
//!
//! ```text
//! offset  len  field
//!      0   16  magic  b"redeval-disk/1\n\0"
//!     16   32  cache key (the SHA-256 the entry is addressed by)
//!     48    8  payload length, little-endian u64
//!     56   32  SHA-256 of the payload
//!     88    n  payload (the exact serialized response bytes)
//! ```

use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::sha256::{hex, sha256, Digest};

/// The 16-byte entry magic (version-bumped on format changes).
pub const DISK_MAGIC: &[u8; 16] = b"redeval-disk/1\n\0";

/// Fixed bytes preceding the payload: magic + key + length + payload
/// digest.
pub const HEADER_LEN: usize = 16 + 32 + 8 + 32;

/// File extension of cache entries (files are named `<hex key>.rdc`).
const ENTRY_EXT: &str = "rdc";

/// A point-in-time snapshot of the disk-tier counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskStats {
    /// Loads answered from disk (verification passed).
    pub hits: u64,
    /// Loads that found no entry.
    pub misses: u64,
    /// Entries written (temp-then-rename completed).
    pub writes: u64,
    /// Entries evicted to hold the byte budget.
    pub evictions: u64,
    /// Entries that failed verification and were deleted (each also
    /// counts as a miss).
    pub corrupt: u64,
    /// Stores rejected because a single entry exceeded the budget, plus
    /// stores whose write failed.
    pub rejected: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Bytes currently accounted (header + payload per entry).
    pub used_bytes: u64,
    /// The configured byte budget.
    pub capacity_bytes: u64,
}

#[derive(Debug, Default)]
struct Inner {
    /// key → (entry size in bytes, recency stamp).
    index: HashMap<Digest, (u64, u64)>,
    /// stamp → key, ordered oldest-first for eviction.
    by_stamp: BTreeMap<u64, Digest>,
    next_stamp: u64,
    used: u64,
    hits: u64,
    misses: u64,
    writes: u64,
    evictions: u64,
    corrupt: u64,
    rejected: u64,
}

impl Inner {
    fn stamp(&mut self) -> u64 {
        let s = self.next_stamp;
        self.next_stamp += 1;
        s
    }

    fn touch(&mut self, key: &Digest) {
        if let Some(&(size, old)) = self.index.get(key) {
            self.by_stamp.remove(&old);
            let new = self.stamp();
            self.index.insert(*key, (size, new));
            self.by_stamp.insert(new, *key);
        }
    }

    fn insert(&mut self, key: Digest, size: u64) {
        let stamp = self.stamp();
        if let Some((old_size, old_stamp)) = self.index.insert(key, (size, stamp)) {
            self.by_stamp.remove(&old_stamp);
            self.used -= old_size;
        }
        self.by_stamp.insert(stamp, key);
        self.used += size;
    }

    fn remove(&mut self, key: &Digest) {
        if let Some((size, stamp)) = self.index.remove(key) {
            self.by_stamp.remove(&stamp);
            self.used -= size;
        }
    }
}

/// The persistent cache tier (see the [module docs](self)). All
/// operations are `&self` and thread-safe.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    capacity: u64,
    inner: Mutex<Inner>,
}

impl DiskCache {
    /// Opens (creating if needed) the cache directory and seeds the
    /// eviction index from the entries already present, oldest
    /// modification time first. Stale `.tmp` files from interrupted
    /// writes are removed; entries beyond the budget are evicted
    /// immediately.
    ///
    /// # Errors
    ///
    /// Propagates directory creation/scan failures. Unreadable
    /// individual entries are skipped, not fatal.
    pub fn open(dir: impl Into<PathBuf>, capacity_bytes: u64) -> std::io::Result<DiskCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut found: Vec<(std::time::SystemTime, Digest, u64)> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let Ok(entry) = entry else { continue };
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("tmp") {
                let _ = fs::remove_file(&path);
                continue;
            }
            if path.extension().and_then(|e| e.to_str()) != Some(ENTRY_EXT) {
                continue;
            }
            let Some(key) = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(parse_hex_digest)
            else {
                continue;
            };
            let Ok(meta) = entry.metadata() else { continue };
            let mtime = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            found.push((mtime, key, meta.len()));
        }
        // Oldest first, file name as the deterministic tie-break.
        found.sort_by_key(|a| (a.0, a.1));
        let cache = DiskCache {
            dir,
            capacity: capacity_bytes,
            inner: Mutex::new(Inner::default()),
        };
        {
            let mut inner = cache.inner.lock().expect("disk cache lock");
            for (_, key, size) in found {
                inner.insert(key, size);
            }
            cache.evict_over_budget(&mut inner);
            // A fresh open starts its counters at zero: evictions during
            // the seeding scan are budget enforcement, not traffic.
            inner.evictions = 0;
        }
        Ok(cache)
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, key: &Digest) -> PathBuf {
        self.dir.join(format!("{}.{ENTRY_EXT}", hex(key)))
    }

    /// The verified payload for `key`, bumping its recency. A missing
    /// file counts a miss; a file that fails verification is deleted
    /// and counts both corrupt and a miss.
    pub fn load(&self, key: &Digest) -> Option<Vec<u8>> {
        let path = self.path_of(key);
        let mut inner = self.inner.lock().expect("disk cache lock");
        let data = match fs::read(&path) {
            Ok(data) => data,
            Err(_) => {
                inner.misses += 1;
                inner.remove(key);
                return None;
            }
        };
        match parse_entry(key, &data) {
            Some(payload) => {
                inner.hits += 1;
                if inner.index.contains_key(key) {
                    inner.touch(key);
                } else {
                    // Present on disk but not indexed (e.g. written by a
                    // previous process after our scan): adopt it.
                    inner.insert(*key, data.len() as u64);
                    self.evict_over_budget(&mut inner);
                }
                Some(payload)
            }
            None => {
                let _ = fs::remove_file(&path);
                inner.remove(key);
                inner.corrupt += 1;
                inner.misses += 1;
                None
            }
        }
    }

    /// Stores `bytes` under `key` via temp-then-rename, then evicts
    /// least-recently-used entries until the budget holds. Returns
    /// `false` (storing nothing) when the entry alone exceeds the
    /// budget or the write fails. Re-storing an existing key only bumps
    /// its recency: by the content-address contract the bytes are
    /// necessarily identical.
    pub fn store(&self, key: &Digest, bytes: &[u8]) -> bool {
        let size = (HEADER_LEN + bytes.len()) as u64;
        let mut inner = self.inner.lock().expect("disk cache lock");
        if size > self.capacity {
            inner.rejected += 1;
            return false;
        }
        if inner.index.contains_key(key) {
            inner.touch(key);
            return true;
        }
        let tmp = self.dir.join(format!("{}.tmp", hex(key)));
        let result =
            write_entry(&tmp, key, bytes).and_then(|()| fs::rename(&tmp, self.path_of(key)));
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
            inner.rejected += 1;
            return false;
        }
        inner.writes += 1;
        inner.insert(*key, size);
        self.evict_over_budget(&mut inner);
        true
    }

    fn evict_over_budget(&self, inner: &mut Inner) {
        while inner.used > self.capacity {
            let Some((&stamp, &victim)) = inner.by_stamp.iter().next() else {
                break;
            };
            let _ = stamp;
            let _ = fs::remove_file(self.path_of(&victim));
            inner.remove(&victim);
            inner.evictions += 1;
        }
    }

    /// A snapshot of the counters and occupancy.
    pub fn stats(&self) -> DiskStats {
        let inner = self.inner.lock().expect("disk cache lock");
        DiskStats {
            hits: inner.hits,
            misses: inner.misses,
            writes: inner.writes,
            evictions: inner.evictions,
            corrupt: inner.corrupt,
            rejected: inner.rejected,
            entries: inner.index.len(),
            used_bytes: inner.used,
            capacity_bytes: self.capacity,
        }
    }
}

/// Serializes and writes one entry to `path` (the temp name).
fn write_entry(path: &Path, key: &Digest, payload: &[u8]) -> std::io::Result<()> {
    let mut file = fs::File::create(path)?;
    file.write_all(DISK_MAGIC)?;
    file.write_all(key)?;
    file.write_all(&(payload.len() as u64).to_le_bytes())?;
    file.write_all(&sha256(payload))?;
    file.write_all(payload)?;
    file.sync_all()
}

/// Verifies a raw entry against `key` and returns its payload; `None`
/// on any mismatch (wrong magic, wrong key, truncated or padded length,
/// payload digest mismatch).
fn parse_entry(key: &Digest, data: &[u8]) -> Option<Vec<u8>> {
    if data.len() < HEADER_LEN || &data[..16] != DISK_MAGIC || &data[16..48] != key {
        return None;
    }
    let len = u64::from_le_bytes(data[48..56].try_into().ok()?);
    let payload = &data[HEADER_LEN..];
    if payload.len() as u64 != len {
        return None;
    }
    let mut digest = [0u8; 32];
    digest.copy_from_slice(&data[56..88]);
    if sha256(payload) != digest {
        return None;
    }
    Some(payload.to_vec())
}

/// Parses a 64-character lowercase hex file stem back into a digest.
fn parse_hex_digest(stem: &str) -> Option<Digest> {
    let bytes = stem.as_bytes();
    if bytes.len() != 64 {
        return None;
    }
    let nibble = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            _ => None,
        }
    };
    let mut out = [0u8; 32];
    for (i, pair) in bytes.chunks_exact(2).enumerate() {
        out[i] = nibble(pair[0])? << 4 | nibble(pair[1])?;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique scratch directory per test, removed on drop.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Scratch {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "redeval-disk-test-{}-{tag}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = fs::remove_dir_all(&dir);
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn key(n: u8) -> Digest {
        sha256(&[n])
    }

    #[test]
    fn store_then_load_round_trips_bytes_exactly() {
        let scratch = Scratch::new("roundtrip");
        let cache = DiskCache::open(&scratch.0, 1 << 20).unwrap();
        assert!(cache.load(&key(1)).is_none());
        assert!(cache.store(&key(1), b"the exact response bytes\n"));
        assert_eq!(
            cache.load(&key(1)).unwrap(),
            b"the exact response bytes\n".to_vec()
        );
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.writes, s.entries), (1, 1, 1, 1));
        assert_eq!(s.used_bytes, (HEADER_LEN + 25) as u64);
    }

    #[test]
    fn reopen_survives_a_restart() {
        let scratch = Scratch::new("reopen");
        {
            let cache = DiskCache::open(&scratch.0, 1 << 20).unwrap();
            assert!(cache.store(&key(7), b"persisted"));
        }
        let reopened = DiskCache::open(&scratch.0, 1 << 20).unwrap();
        assert_eq!(reopened.stats().entries, 1);
        assert_eq!(reopened.load(&key(7)).unwrap(), b"persisted".to_vec());
    }

    #[test]
    fn corrupt_entries_become_misses_and_are_deleted() {
        let scratch = Scratch::new("corrupt");
        let cache = DiskCache::open(&scratch.0, 1 << 20).unwrap();
        assert!(cache.store(&key(2), b"payload"));
        let path = scratch.0.join(format!("{}.{ENTRY_EXT}", hex(&key(2))));
        // Flip one payload byte on disk.
        let mut data = fs::read(&path).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0x01;
        fs::write(&path, &data).unwrap();
        assert!(cache.load(&key(2)).is_none());
        assert!(!path.exists(), "corrupt entry must be deleted");
        let s = cache.stats();
        assert_eq!((s.corrupt, s.misses, s.entries), (1, 1, 0));
        // The key stores and loads cleanly again afterwards.
        assert!(cache.store(&key(2), b"payload"));
        assert_eq!(cache.load(&key(2)).unwrap(), b"payload".to_vec());
    }

    #[test]
    fn truncated_and_foreign_files_fail_verification() {
        let scratch = Scratch::new("truncate");
        let cache = DiskCache::open(&scratch.0, 1 << 20).unwrap();
        assert!(cache.store(&key(3), b"0123456789"));
        let path = scratch.0.join(format!("{}.{ENTRY_EXT}", hex(&key(3))));
        let data = fs::read(&path).unwrap();
        // Truncated mid-payload.
        fs::write(&path, &data[..data.len() - 3]).unwrap();
        assert!(cache.load(&key(3)).is_none());
        // A file whose embedded key disagrees with its name.
        assert!(cache.store(&key(4), b"other"));
        let other = fs::read(scratch.0.join(format!("{}.{ENTRY_EXT}", hex(&key(4))))).unwrap();
        fs::write(&path, &other).unwrap();
        assert!(cache.load(&key(3)).is_none());
        // Garbage shorter than the header.
        fs::write(&path, b"not a cache entry").unwrap();
        assert!(cache.load(&key(3)).is_none());
        assert_eq!(cache.stats().corrupt, 3);
    }

    #[test]
    fn eviction_is_lru_under_the_byte_budget() {
        let scratch = Scratch::new("evict");
        let entry = (HEADER_LEN + 8) as u64;
        let cache = DiskCache::open(&scratch.0, 3 * entry).unwrap();
        for n in 0..3 {
            assert!(cache.store(&key(n), &[n; 8]));
        }
        // Touch the oldest so it survives the next eviction.
        assert!(cache.load(&key(0)).is_some());
        assert!(cache.store(&key(3), &[3; 8]));
        let s = cache.stats();
        assert_eq!((s.entries, s.evictions), (3, 1));
        assert!(cache.load(&key(1)).is_none(), "key(1) was the LRU");
        assert!(cache.load(&key(0)).is_some());
        assert!(cache.load(&key(3)).is_some());
        // Oversized entries are rejected outright.
        assert!(!cache.store(&key(9), &vec![9u8; 4 * HEADER_LEN + 32]));
        assert_eq!(cache.stats().rejected, 1);
    }

    #[test]
    fn open_enforces_the_budget_and_sweeps_tmp_files() {
        let scratch = Scratch::new("open-budget");
        let entry = (HEADER_LEN + 4) as u64;
        {
            let cache = DiskCache::open(&scratch.0, 10 * entry).unwrap();
            for n in 0..4 {
                assert!(cache.store(&key(n), &[n; 4]));
            }
        }
        // A torn write leaves a .tmp sibling.
        fs::write(scratch.0.join("deadbeef.tmp"), b"torn").unwrap();
        let reopened = DiskCache::open(&scratch.0, 2 * entry).unwrap();
        let s = reopened.stats();
        assert_eq!(s.entries, 2, "reopen under a smaller budget evicts");
        assert_eq!(s.evictions, 0, "seeding evictions are not traffic");
        assert!(!scratch.0.join("deadbeef.tmp").exists());
        // Non-entry files are ignored, not deleted.
        fs::write(scratch.0.join("README"), b"hello").unwrap();
        let again = DiskCache::open(&scratch.0, 2 * entry).unwrap();
        assert_eq!(again.stats().entries, 2);
        assert!(scratch.0.join("README").exists());
    }

    #[test]
    fn restore_of_an_existing_key_only_bumps_recency() {
        let scratch = Scratch::new("restore");
        let entry = (HEADER_LEN + 4) as u64;
        let cache = DiskCache::open(&scratch.0, 2 * entry).unwrap();
        assert!(cache.store(&key(0), b"aaaa"));
        assert!(cache.store(&key(1), b"bbbb"));
        assert!(cache.store(&key(0), b"aaaa"));
        assert_eq!(cache.stats().writes, 2, "re-store writes nothing");
        assert!(cache.store(&key(2), b"cccc"));
        assert!(cache.load(&key(1)).is_none(), "key(1) was the LRU");
        assert!(cache.load(&key(0)).is_some());
    }

    #[test]
    fn hex_digest_parsing_round_trips() {
        let k = key(42);
        assert_eq!(parse_hex_digest(&hex(&k)), Some(k));
        assert_eq!(parse_hex_digest("zz"), None);
        assert_eq!(parse_hex_digest(&"A".repeat(64)), None, "uppercase");
    }
}
