//! Per-endpoint request counters and latency histograms for
//! `GET /v1/stats`.
//!
//! Latency is recorded into log2 microsecond buckets: bucket 0 holds
//! sub-microsecond requests, bucket *i* ≥ 1 holds `[2^(i-1), 2^i)` µs.
//! Quantiles are answered from the cumulative bucket counts as the
//! upper bound of the covering bucket (clamped to the exact observed
//! maximum), so a reported p99 is an upper estimate within a factor of
//! two of the true order statistic. That is deliberate: the histogram
//! is a fixed-size array of relaxed atomics — recording is a handful of
//! `fetch_add`s with no lock and no allocation, cheap enough to sit on
//! the hot path of every request. The *exact* percentiles published in
//! BENCH_serve.json come from the benchmark client, which keeps every
//! sample; the histogram serves live observability.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log2 latency buckets. Bucket 31 is open-ended and starts
/// at 2^30 µs ≈ 18 minutes — far beyond any request the connection
/// deadline lets live.
pub const BUCKETS: usize = 32;

/// The endpoint labels tracked independently; `other` absorbs unknown
/// paths (404s).
pub const ENDPOINT_LABELS: [&str; 10] = [
    "healthz",
    "scenarios",
    "reports",
    "stats",
    "metrics",
    "eval",
    "sweep",
    "optimize",
    "generate",
    "other",
];

/// A fixed-size log2 latency histogram over relaxed atomics.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

/// The bucket index covering `us` (see the [module docs](self)).
fn bucket_index(us: u64) -> usize {
    ((64 - us.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// The inclusive upper bound of bucket `i` in microseconds — also the
/// `le` boundary of the Prometheus `_bucket` series (`/metrics`).
pub fn bucket_ceil_us(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The exact largest sample, in microseconds (0 when empty).
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// Sum of all samples, in microseconds (the Prometheus `_sum`).
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Per-bucket sample counts (non-cumulative), in bucket order — the
    /// raw series behind the Prometheus cumulative `_bucket` lines.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// The upper-estimate `q`-quantile in microseconds (0 when empty):
    /// the upper bound of the first bucket whose cumulative count
    /// reaches `⌈q·n⌉`, clamped to the observed maximum.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= target {
                return bucket_ceil_us(i).min(self.max_us());
            }
        }
        self.max_us()
    }
}

/// One endpoint's live counters.
#[derive(Debug, Default)]
struct EndpointMetrics {
    requests: AtomicU64,
    /// Responses with status ≥ 400.
    errors: AtomicU64,
    latency: Histogram,
}

/// A point-in-time snapshot of one endpoint's counters, quantiles
/// resolved (see [`Histogram::quantile_us`] for their meaning).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndpointSnapshot {
    /// The label from [`ENDPOINT_LABELS`].
    pub endpoint: &'static str,
    /// Requests routed here.
    pub requests: u64,
    /// Responses with status ≥ 400.
    pub errors: u64,
    /// Upper-estimate median latency, µs.
    pub p50_us: u64,
    /// Upper-estimate 95th-percentile latency, µs.
    pub p95_us: u64,
    /// Upper-estimate 99th-percentile latency, µs.
    pub p99_us: u64,
    /// Exact maximum latency, µs.
    pub max_us: u64,
}

/// Per-endpoint request counters and latency histograms; all recording
/// is lock-free and `&self`.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    endpoints: [EndpointMetrics; ENDPOINT_LABELS.len()],
}

impl ServiceMetrics {
    /// An empty metrics table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one handled request. Unknown labels fold into `other`.
    pub fn record(&self, label: &str, status: u16, elapsed: Duration) {
        let i = ENDPOINT_LABELS
            .iter()
            .position(|&l| l == label)
            .unwrap_or(ENDPOINT_LABELS.len() - 1);
        let e = &self.endpoints[i];
        e.requests.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            e.errors.fetch_add(1, Ordering::Relaxed);
        }
        e.latency.record(elapsed);
    }

    /// Visits every endpoint that has seen at least one request, in
    /// [`ENDPOINT_LABELS`] order, with its request/error counts and raw
    /// latency histogram — the iteration behind the Prometheus
    /// exposition.
    pub fn for_each_live(&self, mut f: impl FnMut(&'static str, u64, u64, &Histogram)) {
        for (&label, e) in ENDPOINT_LABELS.iter().zip(&self.endpoints) {
            let requests = e.requests.load(Ordering::Relaxed);
            if requests > 0 {
                f(
                    label,
                    requests,
                    e.errors.load(Ordering::Relaxed),
                    &e.latency,
                );
            }
        }
    }

    /// Snapshots of every endpoint that has seen at least one request,
    /// in [`ENDPOINT_LABELS`] order.
    pub fn snapshot(&self) -> Vec<EndpointSnapshot> {
        ENDPOINT_LABELS
            .iter()
            .zip(&self.endpoints)
            .filter(|(_, e)| e.requests.load(Ordering::Relaxed) > 0)
            .map(|(&endpoint, e)| EndpointSnapshot {
                endpoint,
                requests: e.requests.load(Ordering::Relaxed),
                errors: e.errors.load(Ordering::Relaxed),
                p50_us: e.latency.quantile_us(0.50),
                p95_us: e.latency.quantile_us(0.95),
                p99_us: e.latency.quantile_us(0.99),
                max_us: e.latency.max_us(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_log2_ranges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_ceil_us(0), 0);
        assert_eq!(bucket_ceil_us(10), 1023);
    }

    #[test]
    fn quantiles_are_upper_bounds_clamped_to_the_max() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.99), 0, "empty histogram");
        // 99 fast samples in [512, 1024) µs, one slow outlier.
        for _ in 0..99 {
            h.record(Duration::from_micros(700));
        }
        h.record(Duration::from_micros(5_000));
        assert_eq!(h.count(), 100);
        assert_eq!(h.max_us(), 5_000);
        // p50/p95 land in the fast bucket: upper bound 1023 µs ≥ 700.
        assert_eq!(h.quantile_us(0.50), 1023);
        assert_eq!(h.quantile_us(0.95), 1023);
        // p100 covers the outlier and clamps to the exact max.
        assert_eq!(h.quantile_us(1.0), 5_000);
    }

    #[test]
    fn single_sample_quantiles_are_exactly_the_max() {
        let h = Histogram::default();
        h.record(Duration::from_micros(137));
        for q in [0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile_us(q), 137);
        }
    }

    #[test]
    fn metrics_count_per_endpoint_and_fold_unknowns() {
        let m = ServiceMetrics::new();
        m.record("eval", 200, Duration::from_micros(10));
        m.record("eval", 400, Duration::from_micros(20));
        m.record("no-such-endpoint", 404, Duration::from_micros(5));
        let snap = m.snapshot();
        assert_eq!(snap.len(), 2);
        let eval = snap.iter().find(|s| s.endpoint == "eval").unwrap();
        assert_eq!((eval.requests, eval.errors), (2, 1));
        assert_eq!(eval.max_us, 20);
        let other = snap.iter().find(|s| s.endpoint == "other").unwrap();
        assert_eq!((other.requests, other.errors), (1, 1));
    }
}
