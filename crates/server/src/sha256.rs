//! Hand-rolled SHA-256 (FIPS 180-4).
//!
//! The build environment has no crate network, so the content-addressed
//! result cache hashes with this ~100-line implementation instead of a
//! dependency — the same policy under which `redeval::output` hand-rolls
//! JSON. It is a straight transcription of the FIPS 180-4 algorithm
//! (§5.1.1 padding, §6.2.2 compression) and is pinned against the
//! standard's own test vectors below. Throughput is irrelevant here:
//! cache keys hash a few kilobytes of canonical JSON per request.

/// A SHA-256 digest.
pub type Digest = [u8; 32];

/// The first 32 bits of the fractional parts of the cube roots of the
/// first 64 primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Processes one 64-byte block into the hash state (FIPS 180-4 §6.2.2).
fn compress(state: &mut [u32; 8], block: &[u8]) {
    debug_assert_eq!(block.len(), 64);
    let mut w = [0u32; 64];
    for (t, chunk) in block.chunks_exact(4).enumerate() {
        w[t] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for t in 16..64 {
        let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
        let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
        w[t] = w[t - 16]
            .wrapping_add(s0)
            .wrapping_add(w[t - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for t in 0..64 {
        let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(big_s1)
            .wrapping_add(ch)
            .wrapping_add(K[t])
            .wrapping_add(w[t]);
        let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = big_s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    for (s, v) in state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
        *s = s.wrapping_add(v);
    }
}

/// The SHA-256 digest of `data`.
pub fn sha256(data: &[u8]) -> Digest {
    // Initial hash values: fractional parts of the square roots of the
    // first 8 primes (FIPS 180-4 §5.3.3).
    let mut state: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    let mut blocks = data.chunks_exact(64);
    for block in blocks.by_ref() {
        compress(&mut state, block);
    }
    // Padding: 0x80, zeros, then the bit length as a big-endian u64,
    // aligned to a 64-byte boundary (§5.1.1).
    let mut tail = [0u8; 128];
    let rem = blocks.remainder();
    tail[..rem.len()].copy_from_slice(rem);
    tail[rem.len()] = 0x80;
    let tail_len = if rem.len() < 56 { 64 } else { 128 };
    let bit_len = (data.len() as u64).wrapping_mul(8);
    tail[tail_len - 8..tail_len].copy_from_slice(&bit_len.to_be_bytes());
    for block in tail[..tail_len].chunks_exact(64) {
        compress(&mut state, block);
    }
    let mut out = [0u8; 32];
    for (chunk, word) in out.chunks_exact_mut(4).zip(state) {
        chunk.copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Lowercase hex rendering of a digest.
pub fn hex(digest: &Digest) -> String {
    digest.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The FIPS 180-4 / NIST example vectors for SHA-256, plus the
    /// one-million-`a` stress vector.
    #[test]
    fn fips_180_4_test_vectors() {
        let cases: [(&[u8], &str); 4] = [
            (
                b"",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ),
            (
                b"abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
            (
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
                  ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(hex(&sha256(input)), want, "input {input:?}");
        }
        let million_a = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&million_a)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn every_length_mod_64_pads_correctly() {
        // The padding boundary cases (55, 56, 63, 64 bytes) are where
        // hand-rolled implementations classically break; a change in any
        // input byte must change the digest.
        let mut seen = std::collections::HashSet::new();
        for len in 0..130 {
            let data = vec![0x5a_u8; len];
            assert!(seen.insert(sha256(&data)), "collision at length {len}");
        }
        let mut data = vec![0x5a_u8; 64];
        data[63] ^= 1;
        assert_ne!(sha256(&data), sha256(&[0x5a_u8; 64]));
    }

    #[test]
    fn hex_is_lowercase_and_64_chars() {
        let h = hex(&sha256(b"abc"));
        assert_eq!(h.len(), 64);
        assert!(h
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
    }
}
