//! `redeval-server` — an embedded HTTP/1.1 evaluation server with a
//! content-addressed result cache.
//!
//! The declarative scenario API (DESIGN.md §8) made networks pure data;
//! this crate puts that data on the wire: a long-running service accepts
//! `redeval-scenario/1` documents over HTTP and answers with the same
//! byte-deterministic reports the `redeval` CLI produces, memoizing each
//! answer under the SHA-256 of its request's canonical form. See
//! DESIGN.md §9 for the endpoint table and the determinism / cache-keying
//! guarantees; the reports themselves reproduce the security/availability
//! evaluation of redundancy designs under security patching of Ge, Kim &
//! Kim (DSN 2017, `PAPER.md`).
//!
//! Everything is dependency-free on top of `std` + the `redeval` core —
//! the build environment has no crate network, so the HTTP parsing
//! ([`http`]), the SHA-256 ([`mod@sha256`]) and the LRU cache ([`cache`])
//! are hand-rolled and individually pinned by tests (FIPS 180-4 vectors,
//! bounded wire parsing, capacity-accounting suites).
//!
//! The crate deliberately does **not** know how reports are built:
//! [`Endpoints`] injects the report producers, which
//! `redeval-bench` wires to its report registry and the shared
//! [`redeval::exec::Pool`]. That keeps the dependency arrow pointing one
//! way (`bench → server → core`) while the loopback tests prove the
//! served bytes equal the CLI's.
//!
//! # Examples
//!
//! A service over stub endpoints, driven without a socket:
//!
//! ```
//! use redeval::output::Report;
//! use redeval_server::{Endpoints, Request, Service, ServiceConfig};
//!
//! let endpoints = Endpoints {
//!     eval: Box::new(|doc| Ok(Report::new(format!("eval_{}", doc.name), "demo"))),
//!     sweep: Box::new(|req| Ok(Report::new(format!("sweep_{}", req.doc.name), "demo"))),
//!     optimize: Box::new(|req| Ok(Report::new(format!("optimize_{}", req.doc.name), "demo"))),
//!     equilibrium: Box::new(|req| {
//!         Ok(Report::new(format!("equilibrium_{}", req.doc.name), "demo"))
//!     }),
//!     scenarios: Box::new(|| Report::new("scenario_list", "demo")),
//!     reports: Box::new(|| Report::new("list", "demo")),
//! };
//! let service = Service::new(endpoints, ServiceConfig::default());
//! let health = service.handle(&Request::synthetic("GET", "/healthz", b""));
//! assert_eq!(health.status, 200);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod disk;
pub mod http;
pub mod metrics;
pub mod prometheus;
pub mod server;
pub mod service;
pub mod sha256;

pub use cache::{CacheStats, ResultCache, ENTRY_OVERHEAD};
pub use disk::{DiskCache, DiskStats};
pub use http::{read_request, HttpError, Limits, Request, Response};
pub use metrics::{EndpointSnapshot, Histogram, ServiceMetrics};
pub use prometheus::validate_exposition;
pub use server::{Server, ServerHandle};
pub use service::{
    error_response, eval_error_response, http_error_response, Endpoints, EquilibriumEndpoint,
    EquilibriumRequest, EvalEndpoint, ListingEndpoint, OptimizeEndpoint, OptimizeRequest, Service,
    ServiceConfig, SweepEndpoint, SweepRequest, CACHE_HEADER, MAX_GRID_AXIS, SERVE_SCHEMA,
};
pub use sha256::{hex, sha256, Digest};
