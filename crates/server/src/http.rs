//! Minimal, strict HTTP/1.1 message handling over any [`BufRead`] /
//! byte sink.
//!
//! Hand-rolled for the same reason `redeval::output` hand-rolls JSON:
//! the build environment has no crate network, and the server needs only
//! a small, auditable subset — request line + headers + body
//! (`Content-Length` or strict `chunked`), and a deterministic response
//! serializer (no `Date` header, fixed header order), so loopback
//! transcripts can be byte-pinned like every other artifact.
//!
//! Everything read off the wire is **bounded and untrusted**: head lines,
//! header counts, body sizes and chunk framing are all capped by
//! [`Limits`], every malformed input surfaces as a typed [`HttpError`]
//! (never a panic), and error messages are static strings — request
//! bytes are never echoed into them.

use std::io::{self, BufRead};

/// Hard bounds applied while reading a request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Longest accepted request/header/chunk-size line, in bytes.
    pub max_head_line: usize,
    /// Most headers (and most trailer lines) accepted.
    pub max_headers: usize,
    /// Largest accepted body, in bytes (either framing).
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_line: 8 * 1024,
            max_headers: 64,
            max_body: 2 * 1024 * 1024,
        }
    }
}

/// Why a request could not be read. Messages are static by design — no
/// wire bytes are ever reflected back to the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The underlying socket failed.
    Io(io::ErrorKind),
    /// The peer closed mid-message.
    Truncated,
    /// A request/header line exceeded [`Limits::max_head_line`].
    HeadTooLarge,
    /// More headers than [`Limits::max_headers`].
    TooManyHeaders,
    /// The request line was not `METHOD SP TARGET SP VERSION`.
    BadRequestLine,
    /// The version was not `HTTP/1.1` or `HTTP/1.0`.
    BadVersion,
    /// A header line was not `name: value` with a token name.
    BadHeader,
    /// `Content-Length` was not a plain decimal integer.
    BadContentLength,
    /// Both `Content-Length` and `Transfer-Encoding` were present, or a
    /// transfer coding other than `chunked` was requested.
    AmbiguousFraming,
    /// A body-carrying method arrived with no framing header at all.
    LengthRequired,
    /// Chunked framing was malformed.
    BadChunk,
    /// The declared or accumulated body exceeded [`Limits::max_body`].
    BodyTooLarge,
}

impl HttpError {
    /// The response status this error maps to (`None`: the connection is
    /// beyond answering — I/O failure or mid-message disconnect).
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::Io(_) | HttpError::Truncated => None,
            HttpError::HeadTooLarge | HttpError::TooManyHeaders => Some(431),
            HttpError::LengthRequired => Some(411),
            HttpError::BodyTooLarge => Some(413),
            _ => Some(400),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            HttpError::Io(kind) => return write!(f, "socket error: {kind}"),
            HttpError::Truncated => "connection closed mid-request",
            HttpError::HeadTooLarge => "request line or header line too long",
            HttpError::TooManyHeaders => "too many headers",
            HttpError::BadRequestLine => "malformed request line",
            HttpError::BadVersion => "unsupported HTTP version",
            HttpError::BadHeader => "malformed header line",
            HttpError::BadContentLength => "malformed Content-Length",
            HttpError::AmbiguousFraming => "ambiguous or unsupported body framing",
            HttpError::LengthRequired => "a request body requires Content-Length",
            HttpError::BadChunk => "malformed chunked framing",
            HttpError::BodyTooLarge => "request body exceeds the server limit",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e.kind())
    }
}

/// A fully read request: line, headers (names lowercased) and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method token, as sent (`GET`, `POST`, …).
    pub method: String,
    /// The path component of the target (query string stripped).
    pub path: String,
    /// Headers in arrival order; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The decoded body (chunked framing already removed).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response
    /// (version default adjusted by any `Connection` header).
    pub keep_alive: bool,
}

impl Request {
    /// A minimal request for in-process service tests (keep-alive, no
    /// headers beyond what the body implies).
    pub fn synthetic(method: &str, path: &str, body: &[u8]) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: body.to_vec(),
            keep_alive: true,
        }
    }

    /// The first value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one line bounded by `max`, stripping the trailing CRLF (or bare
/// LF). `Ok(None)` is a clean end-of-stream *before any byte* — the
/// peer simply closed an idle connection.
fn read_line(reader: &mut impl BufRead, max: usize) -> Result<Option<Vec<u8>>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(HttpError::Truncated)
            };
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(i) => {
                if line.len() + i > max {
                    return Err(HttpError::HeadTooLarge);
                }
                line.extend_from_slice(&buf[..i]);
                reader.consume(i + 1);
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(Some(line));
            }
            None => {
                if line.len() + buf.len() > max {
                    return Err(HttpError::HeadTooLarge);
                }
                line.extend_from_slice(buf);
                let n = buf.len();
                reader.consume(n);
            }
        }
    }
}

/// Whether `name` is an RFC 7230 header-name token.
fn is_token(name: &[u8]) -> bool {
    !name.is_empty()
        && name
            .iter()
            .all(|&b| b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b))
}

/// Reads and decodes one request. `Ok(None)` means the peer closed the
/// (idle) connection cleanly before sending anything.
///
/// # Errors
///
/// A typed [`HttpError`] for every malformed or over-limit input; the
/// caller maps it to a status via [`HttpError::status`].
pub fn read_request(
    reader: &mut impl BufRead,
    limits: &Limits,
) -> Result<Option<Request>, HttpError> {
    let Some(line) = read_line(reader, limits.max_head_line)? else {
        return Ok(None);
    };
    let line = String::from_utf8(line).map_err(|_| HttpError::BadRequestLine)?;
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::BadRequestLine),
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequestLine);
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::BadVersion),
    };
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = read_line(reader, limits.max_head_line)?.ok_or(HttpError::Truncated)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::TooManyHeaders);
        }
        let colon = line
            .iter()
            .position(|&b| b == b':')
            .ok_or(HttpError::BadHeader)?;
        let (name, value) = line.split_at(colon);
        if !is_token(name) {
            return Err(HttpError::BadHeader);
        }
        let name = String::from_utf8(name.to_ascii_lowercase()).expect("token is ASCII");
        let value = String::from_utf8(value[1..].to_vec())
            .map_err(|_| HttpError::BadHeader)?
            .trim()
            .to_string();
        headers.push((name, value));
    }

    let header = |name: &str| -> Option<&str> {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };

    // Framing headers must be unique: duplicate `Content-Length` (even
    // with equal values) or `Transfer-Encoding` fields are the raw
    // material of request smuggling, so first-wins/last-wins guessing is
    // off the table (RFC 7230 §3.3.2-style strictness).
    let count = |name: &str| headers.iter().filter(|(n, _)| n == name).count();
    if count("content-length") > 1 {
        return Err(HttpError::BadContentLength);
    }
    if count("transfer-encoding") > 1 {
        return Err(HttpError::AmbiguousFraming);
    }

    let body = match (header("transfer-encoding"), header("content-length")) {
        (Some(_), Some(_)) => return Err(HttpError::AmbiguousFraming),
        (Some(te), None) => {
            if !te.eq_ignore_ascii_case("chunked") {
                return Err(HttpError::AmbiguousFraming);
            }
            read_chunked(reader, limits)?
        }
        (None, Some(len)) => {
            if len.is_empty() || !len.bytes().all(|b| b.is_ascii_digit()) || len.len() > 12 {
                return Err(HttpError::BadContentLength);
            }
            let len: usize = len.parse().map_err(|_| HttpError::BadContentLength)?;
            if len > limits.max_body {
                return Err(HttpError::BodyTooLarge);
            }
            let mut body = vec![0u8; len];
            reader
                .read_exact(&mut body)
                .map_err(|_| HttpError::Truncated)?;
            body
        }
        (None, None) => {
            if matches!(method, "POST" | "PUT" | "PATCH") {
                return Err(HttpError::LengthRequired);
            }
            Vec::new()
        }
    };

    let keep_alive = match header("connection").map(str::to_ascii_lowercase) {
        Some(c) if c == "close" => false,
        Some(c) if c == "keep-alive" => true,
        _ => http11,
    };

    Ok(Some(Request {
        method: method.to_string(),
        path,
        headers,
        body,
        keep_alive,
    }))
}

/// Decodes strict chunked framing: hex size lines (extensions after `;`
/// ignored), exact CRLF discipline, bounded trailers, total size capped.
fn read_chunked(reader: &mut impl BufRead, limits: &Limits) -> Result<Vec<u8>, HttpError> {
    let mut body: Vec<u8> = Vec::new();
    loop {
        let line = read_line(reader, limits.max_head_line)?.ok_or(HttpError::Truncated)?;
        let size_hex = line.split(|&b| b == b';').next().unwrap_or(&line);
        if size_hex.is_empty() || size_hex.len() > 8 || !size_hex.iter().all(u8::is_ascii_hexdigit)
        {
            return Err(HttpError::BadChunk);
        }
        let size = usize::from_str_radix(
            std::str::from_utf8(size_hex).expect("hex digits are ASCII"),
            16,
        )
        .map_err(|_| HttpError::BadChunk)?;
        if size == 0 {
            // Trailers: bounded count, discarded, terminated by an empty
            // line.
            for _ in 0..=limits.max_headers {
                let trailer =
                    read_line(reader, limits.max_head_line)?.ok_or(HttpError::Truncated)?;
                if trailer.is_empty() {
                    return Ok(body);
                }
            }
            return Err(HttpError::TooManyHeaders);
        }
        if body.len() + size > limits.max_body {
            return Err(HttpError::BodyTooLarge);
        }
        let start = body.len();
        body.resize(start + size, 0);
        reader
            .read_exact(&mut body[start..])
            .map_err(|_| HttpError::Truncated)?;
        let mut crlf = [0u8; 2];
        reader
            .read_exact(&mut crlf)
            .map_err(|_| HttpError::Truncated)?;
        if &crlf != b"\r\n" {
            return Err(HttpError::BadChunk);
        }
    }
}

/// A response: status, content type, extra headers and body. Serialized
/// deterministically — fixed header order, no `Date` — so loopback
/// transcripts can be golden-pinned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// The `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (e.g. `X-Redeval-Cache`, `Allow`), in order.
    pub extra_headers: Vec<(&'static str, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Appends an extra header (builder-style).
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.extra_headers.push((name, value.into()));
        self
    }

    /// The canonical reason phrase for the statuses this server emits.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            411 => "Length Required",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }

    /// Serializes the full message: status line, `Content-Type`,
    /// `Content-Length`, extras, `Connection`, blank line, body.
    pub fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            Response::reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str(if keep_alive {
            "Connection: keep-alive\r\n\r\n"
        } else {
            "Connection: close\r\n\r\n"
        });
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut io::BufReader::new(raw), &Limits::default())
    }

    #[test]
    fn parses_a_simple_post() {
        let req = parse(b"POST /v1/eval HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/eval");
        assert_eq!(req.body, b"hello");
        assert!(req.keep_alive);
        assert_eq!(req.header("HOST"), Some("x"));
    }

    #[test]
    fn strips_query_strings_and_honors_connection_close() {
        let req = parse(b"GET /healthz?probe=1 HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.path, "/healthz");
        assert!(!req.keep_alive);
        // HTTP/1.0 defaults to close, keep-alive must be explicit.
        let req = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive);
        let req = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.keep_alive);
    }

    #[test]
    fn decodes_strict_chunked_bodies() {
        let raw = b"POST /v1/eval HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                    4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n";
        let req = parse(raw).unwrap().unwrap();
        assert_eq!(req.body, b"Wikipedia");
        // Bad CRLF discipline after a chunk is an error, not a guess.
        let bad = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nWikiXX5\r\n";
        assert_eq!(parse(bad).unwrap_err(), HttpError::BadChunk);
        // Chunk sizes cap the body like Content-Length does.
        let huge = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nffffffff\r\n";
        assert_eq!(parse(huge).unwrap_err(), HttpError::BodyTooLarge);
    }

    #[test]
    fn rejects_malformed_wire_data_without_panicking() {
        let cases: [(&[u8], HttpError); 8] = [
            (b"ONE-TOKEN-ONLY\r\n\r\n", HttpError::BadRequestLine),
            (b"get / HTTP/1.1\r\n\r\n", HttpError::BadRequestLine),
            (b"GET / HTTP/9.9\r\n\r\n", HttpError::BadVersion),
            (b"GET / HTTP/1.1\r\nno colon\r\n\r\n", HttpError::BadHeader),
            (
                b"POST / HTTP/1.1\r\nContent-Length: twelve\r\n\r\n",
                HttpError::BadContentLength,
            ),
            (
                b"POST / HTTP/1.1\r\nContent-Length: 5\r\nTransfer-Encoding: chunked\r\n\r\n",
                HttpError::AmbiguousFraming,
            ),
            (b"POST / HTTP/1.1\r\n\r\n", HttpError::LengthRequired),
            (
                b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n",
                HttpError::BodyTooLarge,
            ),
        ];
        for (raw, want) in cases {
            assert_eq!(parse(raw).unwrap_err(), want, "input {raw:?}");
        }
        // Truncated body: the declared length never arrives.
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err(),
            HttpError::Truncated
        );
    }

    #[test]
    fn duplicate_framing_headers_are_rejected_not_guessed() {
        // Conflicting duplicate Content-Length is the classic smuggling
        // desync; equal duplicates are rejected too — no guessing.
        let conflicting =
            b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 500\r\n\r\nhello";
        assert_eq!(parse(conflicting).unwrap_err(), HttpError::BadContentLength);
        let equal = b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello";
        assert_eq!(parse(equal).unwrap_err(), HttpError::BadContentLength);
        let double_te = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\
                          Transfer-Encoding: chunked\r\n\r\n0\r\n\r\n";
        assert_eq!(parse(double_te).unwrap_err(), HttpError::AmbiguousFraming);
    }

    #[test]
    fn bounds_head_lines_and_header_counts() {
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(10_000));
        assert_eq!(parse(long.as_bytes()).unwrap_err(), HttpError::HeadTooLarge);
        let mut many = String::from("GET / HTTP/1.1\r\n");
        for i in 0..100 {
            many.push_str(&format!("h{i}: v\r\n"));
        }
        many.push_str("\r\n");
        assert_eq!(
            parse(many.as_bytes()).unwrap_err(),
            HttpError::TooManyHeaders
        );
    }

    #[test]
    fn clean_eof_is_none_not_an_error() {
        assert_eq!(parse(b"").unwrap(), None);
        // But a partial request line is truncation.
        assert_eq!(parse(b"GET / HT").unwrap_err(), HttpError::Truncated);
    }

    #[test]
    fn error_messages_never_echo_wire_bytes() {
        let junk = format!("GET /{} JUNK-{}\r\n\r\n", "a", "Z".repeat(500));
        let err = parse(junk.as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(!msg.contains("ZZZZ"), "echoed wire bytes: {msg}");
        assert!(msg.len() < 100);
    }

    #[test]
    fn response_serialization_is_deterministic() {
        let r = Response::json(200, "{}\n").with_header("X-Redeval-Cache", "hit");
        let bytes = r.to_bytes(true);
        assert_eq!(bytes, r.to_bytes(true));
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("X-Redeval-Cache: hit\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n\r\n{}\n"));
        assert!(!text.contains("Date:"), "Date would break transcript pins");
        let closed = String::from_utf8(r.to_bytes(false)).unwrap();
        assert!(closed.contains("Connection: close\r\n"));
    }
}
