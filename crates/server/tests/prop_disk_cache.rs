//! Property suite for the persistent cache tier: a disk round-trip —
//! store, drop every in-memory structure, reopen the directory, load —
//! returns the exact stored bytes, and any corruption of the stored
//! file degrades to a miss, never a panic and never wrong bytes.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use redeval_server::{sha256, DiskCache};

/// A unique scratch directory per case, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "redeval-prop-disk-{}-{tag}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// store → restart (fresh `DiskCache` over the same directory, so
    /// the in-memory LRU and index are gone) → load is byte-exact, for
    /// arbitrary payloads including empty and binary ones.
    #[test]
    fn round_trip_through_a_restart_is_byte_exact(
        payloads in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..512),
            1..6,
        ),
    ) {
        let scratch = Scratch::new("roundtrip");
        let keys: Vec<_> = payloads
            .iter()
            .enumerate()
            .map(|(i, _)| sha256(&[i as u8, 0xA5]))
            .collect();
        {
            let cache = DiskCache::open(&scratch.0, 1 << 20).unwrap();
            for (key, payload) in keys.iter().zip(&payloads) {
                prop_assert!(cache.store(key, payload));
            }
        }
        let reopened = DiskCache::open(&scratch.0, 1 << 20).unwrap();
        prop_assert_eq!(reopened.stats().entries, payloads.len());
        for (key, payload) in keys.iter().zip(&payloads) {
            let loaded = reopened.load(key);
            prop_assert_eq!(loaded.as_deref(), Some(payload.as_slice()));
        }
    }

    /// Flipping any single byte of the stored file — header or payload —
    /// or truncating it anywhere makes the load a miss (the entry is
    /// deleted), after which the key stores and loads cleanly again.
    #[test]
    fn any_single_byte_corruption_or_truncation_is_a_miss(
        payload in proptest::collection::vec(0u8..=255, 1..256),
        damage_at in 0usize..1024,
        truncate in 0u8..=1,
    ) {
        let truncate = truncate == 1;
        let scratch = Scratch::new("corrupt");
        let cache = DiskCache::open(&scratch.0, 1 << 20).unwrap();
        let key = sha256(b"corruption-target");
        prop_assert!(cache.store(&key, &payload));
        let path = fs::read_dir(&scratch.0)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "rdc"))
            .expect("one entry on disk");
        let data = fs::read(&path).unwrap();
        let at = damage_at % data.len();
        if truncate {
            fs::write(&path, &data[..at]).unwrap();
        } else {
            let mut mutated = data.clone();
            mutated[at] ^= 0x40;
            fs::write(&path, &mutated).unwrap();
        }
        let loaded = cache.load(&key);
        prop_assert_eq!(loaded, None);
        prop_assert!(!path.exists(), "damaged entry must be deleted");
        let stats = cache.stats();
        prop_assert_eq!(stats.corrupt, 1);
        // The tier still works for that key afterwards.
        prop_assert!(cache.store(&key, &payload));
        let reloaded = cache.load(&key);
        prop_assert_eq!(reloaded.as_deref(), Some(payload.as_slice()));
    }
}
