//! Shutdown semantics over real sockets: a stop *drains* requests the
//! server has started handling (bounded by the grace period) while
//! severing idle keep-alive peers immediately.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use redeval::output::Report;
use redeval::scenario::builtin;
use redeval_server::{Endpoints, Server, Service, ServiceConfig};

/// A service whose `/v1/sweep` sleeps `delay` before answering —
/// standing in for a slow grid evaluation.
fn slow_sweep_service(delay: Duration) -> Service {
    let endpoints = Endpoints {
        eval: Box::new(|doc| Ok(Report::new(format!("eval_{}", doc.name), "stub"))),
        sweep: Box::new(move |req| {
            std::thread::sleep(delay);
            let mut r = Report::new(format!("sweep_{}", req.doc.name), "slow stub sweep");
            r.keys([(
                "slept_ms",
                redeval::output::Value::from(delay.as_millis() as i64),
            )]);
            Ok(r)
        }),
        optimize: Box::new(|_| unreachable!()),
        equilibrium: Box::new(|_| unreachable!()),
        scenarios: Box::new(|| Report::new("scenario_list", "stub")),
        reports: Box::new(|| Report::new("list", "stub")),
    };
    Service::new(endpoints, ServiceConfig::default())
}

fn sweep_body() -> Vec<u8> {
    let doc = builtin::paper_case_study().to_json();
    format!("{{\"scenario\": {}}}", doc.trim_end()).into_bytes()
}

fn post_sweep(stream: &mut TcpStream, body: &[u8]) {
    let head = format!(
        "POST /v1/sweep HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    stream.flush().unwrap();
}

/// Reads one HTTP response to completion; `None` when the connection
/// dies before the full body arrives.
fn read_response(stream: &mut TcpStream) -> Option<(u16, Vec<u8>)> {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    let (head_end, content_length, status) = loop {
        let n = stream.read(&mut buf).ok()?;
        if n == 0 {
            return None;
        }
        raw.extend_from_slice(&buf[..n]);
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&raw[..pos]).ok()?;
            let status: u16 = head.split_whitespace().nth(1)?.parse().ok()?;
            let len: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))?
                .trim()
                .parse()
                .ok()?;
            break (pos + 4, len, status);
        }
    };
    while raw.len() < head_end + content_length {
        let n = stream.read(&mut buf).ok()?;
        if n == 0 {
            return None;
        }
        raw.extend_from_slice(&buf[..n]);
    }
    Some((status, raw[head_end..head_end + content_length].to_vec()))
}

#[test]
fn stop_during_a_slow_sweep_returns_a_complete_response() {
    let delay = Duration::from_millis(300);
    let server = Server::bind("127.0.0.1:0", slow_sweep_service(delay), 2)
        .unwrap()
        .grace(Duration::from_secs(10));
    let handle = server.spawn().unwrap();
    let addr = handle.addr();
    let client = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        post_sweep(&mut stream, &sweep_body());
        read_response(&mut stream)
    });
    // Let the request reach the handler, then stop mid-flight.
    std::thread::sleep(Duration::from_millis(100));
    handle.stop();
    let (status, body) = client
        .join()
        .unwrap()
        .expect("the in-flight sweep must be drained, not severed");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(
        text.contains("\"slept_ms\": 300"),
        "complete body expected, got: {text}"
    );
}

#[test]
fn stop_severs_idle_keepalive_connections_immediately() {
    let server = Server::bind("127.0.0.1:0", slow_sweep_service(Duration::ZERO), 2)
        .unwrap()
        .grace(Duration::from_secs(10));
    let handle = server.spawn().unwrap();
    let addr = handle.addr();
    // Complete one request so the connection is a registered idle
    // keep-alive peer, then leave it parked.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let first = read_response(&mut stream).expect("healthz answers");
    assert_eq!(first.0, 200);
    let started = Instant::now();
    handle.stop();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "stop must not wait out an idle peer's read timeout (took {:?})",
        started.elapsed()
    );
    // The idle connection was severed: the next read sees EOF or reset.
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut buf = [0u8; 16];
    match stream.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("severed connection produced {n} bytes"),
    }
}

#[test]
fn requests_outliving_the_grace_period_are_cut_off() {
    let delay = Duration::from_millis(600);
    let server = Server::bind("127.0.0.1:0", slow_sweep_service(delay), 2)
        .unwrap()
        .grace(Duration::from_millis(50));
    let handle = server.spawn().unwrap();
    let addr = handle.addr();
    let client = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        post_sweep(&mut stream, &sweep_body());
        read_response(&mut stream)
    });
    std::thread::sleep(Duration::from_millis(100));
    handle.stop();
    assert!(
        client.join().unwrap().is_none(),
        "a request past the grace period must be severed, not drained"
    );
}

#[test]
fn queued_connections_beyond_the_worker_pool_are_served() {
    // One worker, several concurrent clients: the excess queues and is
    // served in turn instead of being refused.
    let server = Server::bind(
        "127.0.0.1:0",
        slow_sweep_service(Duration::from_millis(20)),
        1,
    )
    .unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();
    let done = Arc::new(AtomicU64::new(0));
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                post_sweep(&mut stream, &sweep_body());
                let (status, _) = read_response(&mut stream).expect("queued client is served");
                assert_eq!(status, 200);
                done.fetch_add(1, Ordering::SeqCst);
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }
    assert_eq!(done.load(Ordering::SeqCst), 4);
    handle.stop();
}
