//! The upper-layer network availability model (the paper's Figure 4) and
//! the capacity-oriented availability reward (Table VI).

use redeval_markov::{BirthDeath, SolveError};
use redeval_srn::{PlaceId, Srn, SrnError};

use crate::aggregate::AggregatedRates;

/// One redundant tier: `count` identical servers whose patch behaviour is
/// the two-state abstraction [`AggregatedRates`].
#[derive(Debug, Clone, PartialEq)]
pub struct Tier {
    /// Tier name (e.g. `"web"`).
    pub name: String,
    /// Number of redundant servers (≥ 1).
    pub count: u32,
    /// Aggregated patch/recovery rates from the lower-layer model.
    pub rates: AggregatedRates,
}

impl Tier {
    /// Creates a tier.
    ///
    /// # Panics
    ///
    /// Panics when `count` is zero (a tier must have at least one server).
    pub fn new(name: impl Into<String>, count: u32, rates: AggregatedRates) -> Self {
        assert!(count >= 1, "a tier needs at least one server");
        Tier {
            name: name.into(),
            count,
            rates,
        }
    }
}

/// The composed network model: independent per-tier birth–death processes
/// (the paper's marking-dependent `λ_eq·#Psvcup` patch transitions), with
/// reward measures evaluated either in product form or through an explicit
/// SRN.
///
/// # Examples
///
/// ```
/// use redeval_avail::{AggregatedRates, NetworkModel, Tier};
///
/// # fn main() -> Result<(), redeval_markov::SolveError> {
/// let r = AggregatedRates { lambda_eq: 1.0 / 720.0, mu_eq: 1.5 };
/// let net = NetworkModel::new(vec![
///     Tier::new("dns", 1, r),
///     Tier::new("web", 2, r),
/// ]);
/// let coa = net.coa()?;
/// assert!(coa > 0.99 && coa < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    tiers: Vec<Tier>,
}

impl NetworkModel {
    /// Creates a network model from its tiers.
    ///
    /// # Panics
    ///
    /// Panics when `tiers` is empty.
    pub fn new(tiers: Vec<Tier>) -> Self {
        assert!(!tiers.is_empty(), "at least one tier required");
        NetworkModel { tiers }
    }

    /// The tiers.
    pub fn tiers(&self) -> &[Tier] {
        &self.tiers
    }

    /// Total number of servers across tiers.
    pub fn total_servers(&self) -> u32 {
        self.tiers.iter().map(|t| t.count).sum()
    }

    /// Steady-state distribution of the number of **down** servers in tier
    /// `i` (independent patch clocks → machine-repair birth–death).
    ///
    /// # Errors
    ///
    /// Propagates invalid-rate errors.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn tier_down_distribution(&self, i: usize) -> Result<Vec<f64>, SolveError> {
        let t = &self.tiers[i];
        BirthDeath::machine_repair(t.count as usize, t.rates.lambda_eq, t.rates.mu_eq)
            .steady_state()
    }

    /// Expected steady-state reward of an arbitrary function of the
    /// per-tier *up* counts, evaluated in product form (tiers are
    /// stochastically independent).
    ///
    /// # Errors
    ///
    /// Propagates solver errors from the per-tier chains.
    pub fn expected_reward<F>(&self, reward: F) -> Result<f64, SolveError>
    where
        F: Fn(&[u32]) -> f64,
    {
        let dists: Vec<Vec<f64>> = (0..self.tiers.len())
            .map(|i| self.tier_down_distribution(i))
            .collect::<Result<_, _>>()?;
        // Mixed-radix enumeration over (down_0, ..., down_k).
        let radices: Vec<usize> = self.tiers.iter().map(|t| t.count as usize + 1).collect();
        let mut idx = vec![0usize; radices.len()];
        let mut ups = vec![0u32; radices.len()];
        let mut total = 0.0;
        loop {
            let mut p = 1.0;
            for (i, &down) in idx.iter().enumerate() {
                p *= dists[i][down];
                ups[i] = self.tiers[i].count - down as u32;
            }
            if p > 0.0 {
                total += p * reward(&ups);
            }
            // Increment mixed-radix counter.
            let mut carry = true;
            for (i, r) in idx.iter_mut().zip(&radices) {
                if carry {
                    *i += 1;
                    if *i == *r {
                        *i = 0;
                    } else {
                        carry = false;
                    }
                }
            }
            if carry {
                break;
            }
        }
        Ok(total)
    }

    /// Joint states `Π (countᵢ + 1)` the mixed-radix enumeration of
    /// [`expected_reward`](Self::expected_reward) visits (saturating).
    fn joint_states(&self) -> u128 {
        self.tiers
            .iter()
            .fold(1u128, |acc, t| acc.saturating_mul(u128::from(t.count) + 1))
    }

    /// Above this joint-state count the separable reward measures (COA,
    /// availability, quorum COA, expected up servers) switch from exact
    /// enumeration to the algebraically identical factored form — the
    /// enumeration is exponential in the tier count and a fleet-scale
    /// network (hundreds of tiers) never finishes it. Small networks
    /// keep the enumeration path so pinned numbers stay bit-identical.
    const FACTORED_THRESHOLD: u128 = 1 << 20;

    /// Per-tier `(P(upᵢ ≥ qᵢ), E[upᵢ · 1{upᵢ ≥ qᵢ}])` for the factored
    /// forms.
    fn tier_moments(&self, quorum: &[u32]) -> Result<Vec<(f64, f64)>, SolveError> {
        (0..self.tiers.len())
            .map(|i| {
                let dist = self.tier_down_distribution(i)?;
                let count = self.tiers[i].count;
                let mut p = 0.0;
                let mut m = 0.0;
                for (down, &prob) in dist.iter().enumerate() {
                    let up = count - down as u32;
                    if up >= quorum[i] {
                        p += prob;
                        m += prob * f64::from(up);
                    }
                }
                Ok((p, m))
            })
            .collect()
    }

    /// Factored quorum COA. Tiers are independent, so
    /// `E[Σᵢ upᵢ · Πⱼ 1{upⱼ ≥ qⱼ}] = Σᵢ mᵢ · Πⱼ≠ᵢ pⱼ`; prefix/suffix
    /// products keep it `O(n)` without dividing by a possibly-zero `pᵢ`.
    fn quorum_coa_factored(&self, quorum: &[u32]) -> Result<f64, SolveError> {
        let moments = self.tier_moments(quorum)?;
        let n = moments.len();
        let mut prefix = vec![1.0; n + 1];
        for (i, &(p, _)) in moments.iter().enumerate() {
            prefix[i + 1] = prefix[i] * p;
        }
        let mut suffix = vec![1.0; n + 1];
        for i in (0..n).rev() {
            suffix[i] = suffix[i + 1] * moments[i].0;
        }
        let mut up_sum = 0.0;
        for (i, &(_, m)) in moments.iter().enumerate() {
            up_sum += prefix[i] * m * suffix[i + 1];
        }
        Ok(up_sum / f64::from(self.total_servers()))
    }

    /// The paper's capacity-oriented availability (Table VI, generalized):
    /// reward 0 when **any** tier has zero servers up (the service chain is
    /// broken), otherwise the fraction of running servers.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn coa(&self) -> Result<f64, SolveError> {
        if self.joint_states() > Self::FACTORED_THRESHOLD {
            return self.quorum_coa_factored(&vec![1; self.tiers.len()]);
        }
        let total = self.total_servers() as f64;
        self.expected_reward(|ups| {
            if ups.contains(&0) {
                0.0
            } else {
                ups.iter().map(|&u| u as f64).sum::<f64>() / total
            }
        })
    }

    /// Classical availability: probability that every tier has at least
    /// one server up.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn availability(&self) -> Result<f64, SolveError> {
        if self.joint_states() > Self::FACTORED_THRESHOLD {
            let quorum = vec![1; self.tiers.len()];
            let moments = self.tier_moments(&quorum)?;
            return Ok(moments.iter().map(|&(p, _)| p).product());
        }
        self.expected_reward(|ups| if ups.iter().all(|&u| u > 0) { 1.0 } else { 0.0 })
    }

    /// Quorum COA: like [`coa`](Self::coa) but tier `i` needs at least
    /// `quorum[i]` servers up to deliver service (k-out-of-n tiers, e.g.
    /// consensus clusters or capacity floors).
    ///
    /// With `quorum = [1, 1, …]` this equals [`coa`](Self::coa).
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    ///
    /// # Panics
    ///
    /// Panics when `quorum` and tiers differ in length or a quorum exceeds
    /// the tier size.
    pub fn coa_with_quorum(&self, quorum: &[u32]) -> Result<f64, SolveError> {
        assert_eq!(quorum.len(), self.tiers.len(), "one quorum per tier");
        for (q, t) in quorum.iter().zip(&self.tiers) {
            assert!(
                *q >= 1 && *q <= t.count,
                "quorum {q} invalid for tier of {}",
                t.count
            );
        }
        if self.joint_states() > Self::FACTORED_THRESHOLD {
            return self.quorum_coa_factored(quorum);
        }
        let total = self.total_servers() as f64;
        let quorum = quorum.to_vec();
        self.expected_reward(move |ups| {
            if ups.iter().zip(&quorum).any(|(&u, &q)| u < q) {
                0.0
            } else {
                ups.iter().map(|&u| u as f64).sum::<f64>() / total
            }
        })
    }

    /// Expected number of running servers.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn expected_up_servers(&self) -> Result<f64, SolveError> {
        if self.joint_states() > Self::FACTORED_THRESHOLD {
            // No indicator: `E[Σᵢ upᵢ]` is the sum of per-tier means.
            let quorum = vec![0; self.tiers.len()];
            let moments = self.tier_moments(&quorum)?;
            return Ok(moments.iter().map(|&(_, m)| m).sum());
        }
        self.expected_reward(|ups| ups.iter().map(|&u| u as f64).sum())
    }

    /// Builds the explicit Figure-4 SRN: per tier, a `P<t>up`/`P<t>pd`
    /// place pair with marking-dependent patch rate `λ_eq·#up` and recovery
    /// `µ_eq·#down`.
    ///
    /// Returns the net plus the per-tier *up* places for reward functions.
    pub fn to_srn(&self) -> (Srn, Vec<PlaceId>) {
        let mut net = Srn::new("network");
        let mut up_places = Vec::with_capacity(self.tiers.len());
        for t in &self.tiers {
            let up = net.add_place(format!("P{}up", t.name), t.count);
            let down = net.add_place(format!("P{}pd", t.name), 0);
            let lambda = t.rates.lambda_eq;
            let mu = t.rates.mu_eq;
            let patch = net.add_timed_fn(format!("T{}d", t.name), move |m| {
                lambda * m.tokens(up) as f64
            });
            net.add_move(patch, up, down).expect("valid ids");
            let recover = net.add_timed_fn(format!("T{}up", t.name), move |m| {
                mu * m.tokens(down) as f64
            });
            net.add_move(recover, down, up).expect("valid ids");
            up_places.push(up);
        }
        (net, up_places)
    }

    /// Interval (time-averaged) COA over `[0, horizon_hours]`, starting
    /// from the fully-up state: `(1/t)∫₀ᵗ E[reward(s)] ds` by
    /// uniformization on the composed SRN.
    ///
    /// Unlike the steady-state [`coa`](Self::coa), this answers "how much
    /// capacity do I get over the *next month*", which is higher than the
    /// long-run value while the first patch cycles have not yet hit.
    ///
    /// # Errors
    ///
    /// Propagates SRN/CTMC errors; `horizon_hours` must be positive.
    pub fn interval_coa(&self, horizon_hours: f64) -> Result<f64, SrnError> {
        let (net, ups) = self.to_srn();
        let space = net.state_space()?;
        let markings = space.tangible_markings().to_vec();
        let counts: Vec<u32> = self.tiers.iter().map(|t| t.count).collect();
        let total: u32 = counts.iter().sum();
        let reward_of = |idx: usize| -> f64 {
            let m = &markings[idx];
            let mut sum = 0u32;
            for &p in &ups {
                let u = m.tokens(p);
                if u == 0 {
                    return 0.0;
                }
                sum += u;
            }
            f64::from(sum) / f64::from(total)
        };
        let initial = space
            .initial_distribution()
            .first()
            .map(|&(i, _)| i)
            .expect("nonempty state space");
        space
            .ctmc()
            .interval_reward(initial, horizon_hours, reward_of)
            .map_err(redeval_srn::SrnError::from)
    }

    /// COA computed through the explicit SRN — an independent cross-check
    /// of [`coa`](Self::coa).
    ///
    /// # Errors
    ///
    /// Propagates SRN errors.
    pub fn coa_via_srn(&self) -> Result<f64, SrnError> {
        let (net, ups) = self.to_srn();
        let solved = net.solve()?;
        let counts: Vec<u32> = self.tiers.iter().map(|t| t.count).collect();
        let total: u32 = counts.iter().sum();
        Ok(solved.expected(|m| {
            let up_counts: Vec<u32> = ups.iter().map(|&p| m.tokens(p)).collect();
            if up_counts.contains(&0) {
                0.0
            } else {
                up_counts.iter().map(|&u| u as f64).sum::<f64>() / total as f64
            }
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates(mttr_hours: f64) -> AggregatedRates {
        AggregatedRates {
            lambda_eq: 1.0 / 720.0,
            mu_eq: 1.0 / mttr_hours,
        }
    }

    /// The paper's case-study network (Table V rates).
    fn case_study() -> NetworkModel {
        NetworkModel::new(vec![
            Tier::new(
                "dns",
                1,
                AggregatedRates {
                    lambda_eq: 1.0 / 720.0,
                    mu_eq: 1.49992,
                },
            ),
            Tier::new(
                "web",
                2,
                AggregatedRates {
                    lambda_eq: 1.0 / 720.0,
                    mu_eq: 1.71420,
                },
            ),
            Tier::new(
                "app",
                2,
                AggregatedRates {
                    lambda_eq: 1.0 / 720.0,
                    mu_eq: 0.99995,
                },
            ),
            Tier::new(
                "db",
                1,
                AggregatedRates {
                    lambda_eq: 1.0 / 720.0,
                    mu_eq: 1.09085,
                },
            ),
        ])
    }

    #[test]
    fn paper_coa_0_99707() {
        let coa = case_study().coa().unwrap();
        assert!((coa - 0.99707).abs() < 5e-5, "COA {coa} vs paper 0.99707");
    }

    #[test]
    fn product_form_matches_srn() {
        let net = case_study();
        let a = net.coa().unwrap();
        let b = net.coa_via_srn().unwrap();
        assert!((a - b).abs() < 1e-10, "{a} vs {b}");
    }

    #[test]
    fn single_tier_single_server() {
        let net = NetworkModel::new(vec![Tier::new("only", 1, rates(1.0))]);
        let coa = net.coa().unwrap();
        // Availability of a 2-state chain: µ/(λ+µ) with µ = 1, λ = 1/720.
        let expect = 1.0 / (1.0 + 1.0 / 720.0);
        assert!((coa - expect).abs() < 1e-12);
        assert_eq!(net.total_servers(), 1);
    }

    #[test]
    fn redundancy_increases_coa_of_bottleneck() {
        let base = NetworkModel::new(vec![
            Tier::new("a", 1, rates(1.0)),
            Tier::new("b", 1, rates(0.5)),
        ]);
        let redundant = NetworkModel::new(vec![
            Tier::new("a", 2, rates(1.0)),
            Tier::new("b", 1, rates(0.5)),
        ]);
        assert!(redundant.coa().unwrap() > base.coa().unwrap());
    }

    #[test]
    fn redundancy_on_slowest_tier_helps_most() {
        // The paper's observation: duplicating the tier with the longest
        // MTTR yields the highest COA.
        let slow = rates(2.0);
        let fast = rates(0.5);
        let dup_slow =
            NetworkModel::new(vec![Tier::new("slow", 2, slow), Tier::new("fast", 1, fast)]);
        let dup_fast =
            NetworkModel::new(vec![Tier::new("slow", 1, slow), Tier::new("fast", 2, fast)]);
        assert!(dup_slow.coa().unwrap() > dup_fast.coa().unwrap());
    }

    #[test]
    fn interval_coa_decreases_to_steady_state() {
        let net = case_study();
        let steady = net.coa().unwrap();
        // The transient relaxes within ~MTTR (≈1 h), far faster than the
        // 720-h patch interval: very short windows still see extra
        // capacity, and the interval value decreases towards steady state.
        let tiny = net.interval_coa(0.05).unwrap();
        let short = net.interval_coa(1.0).unwrap();
        let month = net.interval_coa(720.0).unwrap();
        let long = net.interval_coa(100_000.0).unwrap();
        assert!(tiny > 0.9999, "{tiny}");
        assert!(tiny >= short && short >= month && month >= long);
        assert!(short > steady);
        assert!((long - steady).abs() < 1e-4, "{long} vs {steady}");
    }

    #[test]
    fn availability_exceeds_coa() {
        // COA penalizes partial capacity; plain availability does not.
        let net = case_study();
        let coa = net.coa().unwrap();
        let avail = net.availability().unwrap();
        assert!(avail >= coa);
    }

    #[test]
    fn expected_up_servers_close_to_total() {
        let net = case_study();
        let e = net.expected_up_servers().unwrap();
        assert!(e > 5.98 && e < 6.0);
    }

    #[test]
    fn quorum_one_equals_plain_coa() {
        let net = case_study();
        let coa = net.coa().unwrap();
        let q1 = net.coa_with_quorum(&[1, 1, 1, 1]).unwrap();
        assert!((coa - q1).abs() < 1e-12);
    }

    #[test]
    fn stricter_quorum_lowers_coa() {
        let net = case_study();
        let loose = net.coa_with_quorum(&[1, 1, 1, 1]).unwrap();
        let strict = net.coa_with_quorum(&[1, 2, 2, 1]).unwrap();
        assert!(strict < loose);
        // Needing both web servers up makes any web patch an outage.
        assert!(strict < 0.997);
    }

    #[test]
    #[should_panic(expected = "quorum")]
    fn quorum_larger_than_tier_panics() {
        let _ = case_study().coa_with_quorum(&[2, 1, 1, 1]);
    }

    #[test]
    fn tier_distribution_sums_to_one() {
        let net = case_study();
        for i in 0..net.tiers().len() {
            let d = net.tier_down_distribution(i).unwrap();
            assert_eq!(d.len(), net.tiers()[i].count as usize + 1);
            assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn table_vi_reward_values_exercised() {
        // With 1+2+2+1 servers the reward takes exactly the paper's values
        // {1, 5/6, 4/6, 0} on the states it lists.
        let net = case_study();
        let total = net.total_servers() as f64;
        assert_eq!(total, 6.0);
        let reward = |ups: &[u32]| {
            if ups.contains(&0) {
                0.0
            } else {
                ups.iter().map(|&u| u as f64).sum::<f64>() / total
            }
        };
        assert_eq!(reward(&[1, 2, 2, 1]), 1.0);
        assert!((reward(&[1, 1, 2, 1]) - 5.0 / 6.0).abs() < 1e-15);
        assert!((reward(&[1, 2, 1, 1]) - 5.0 / 6.0).abs() < 1e-15);
        assert!((reward(&[1, 1, 1, 1]) - 4.0 / 6.0).abs() < 1e-15);
        assert_eq!(reward(&[0, 2, 2, 1]), 0.0);
        assert_eq!(reward(&[1, 0, 2, 1]), 0.0);
    }

    #[test]
    fn factored_forms_match_enumeration() {
        // The factored fast path must agree with the exact mixed-radix
        // enumeration on networks small enough to run both.
        let net = case_study();
        let quorum = [1, 2, 1, 1];
        assert!(
            (net.quorum_coa_factored(&[1, 1, 1, 1]).unwrap() - net.coa().unwrap()).abs() < 1e-12
        );
        assert!(
            (net.quorum_coa_factored(&quorum).unwrap() - net.coa_with_quorum(&quorum).unwrap())
                .abs()
                < 1e-12
        );
        let avail_factored: f64 = net
            .tier_moments(&[1, 1, 1, 1])
            .unwrap()
            .iter()
            .map(|&(p, _)| p)
            .product();
        assert!((avail_factored - net.availability().unwrap()).abs() < 1e-12);
        let up_factored: f64 = net
            .tier_moments(&[0, 0, 0, 0])
            .unwrap()
            .iter()
            .map(|&(_, m)| m)
            .sum();
        assert!((up_factored - net.expected_up_servers().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn fleet_scale_network_solves_in_product_form() {
        // 150 tiers would be 2^150+ joint states under enumeration; the
        // factored path must make this instant and sane.
        let tiers: Vec<Tier> = (0..150)
            .map(|i| {
                Tier::new(
                    format!("t{i}"),
                    1 + (i % 3) as u32,
                    rates(1.0 + i as f64 * 0.01),
                )
            })
            .collect();
        let net = NetworkModel::new(tiers);
        let coa = net.coa().unwrap();
        let avail = net.availability().unwrap();
        assert!(coa > 0.0 && coa < 1.0, "{coa}");
        assert!(avail >= coa && avail < 1.0, "{avail}");
        let up = net.expected_up_servers().unwrap();
        assert!(up > 0.99 * f64::from(net.total_servers()) && up < f64::from(net.total_servers()));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_count_tier_panics() {
        let _ = Tier::new("x", 0, rates(1.0));
    }

    #[test]
    #[should_panic(expected = "at least one tier")]
    fn empty_network_panics() {
        let _ = NetworkModel::new(vec![]);
    }
}
