//! Server rate parameters (the paper's Table IV inputs).

use std::fmt;

/// A mean duration, convertible to an exponential rate per hour.
///
/// All availability models in this workspace use **hours** as the time
/// unit, like the paper's Table IV/V.
///
/// # Examples
///
/// ```
/// use redeval_avail::Durations;
///
/// assert_eq!(Durations::minutes(30.0).as_hours(), 0.5);
/// assert_eq!(Durations::hours(2.0).rate_per_hour(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Durations {
    hours: f64,
}

impl Durations {
    /// A mean duration in hours.
    ///
    /// # Panics
    ///
    /// Panics for non-finite or non-positive values.
    pub fn hours(h: f64) -> Self {
        assert!(
            h.is_finite() && h > 0.0,
            "duration must be positive, got {h}"
        );
        Durations { hours: h }
    }

    /// A mean duration in minutes.
    ///
    /// # Panics
    ///
    /// Panics for non-finite or non-positive values.
    pub fn minutes(m: f64) -> Self {
        Durations::hours(m / 60.0)
    }

    /// A mean duration in days.
    ///
    /// # Panics
    ///
    /// Panics for non-finite or non-positive values.
    pub fn days(d: f64) -> Self {
        Durations::hours(d * 24.0)
    }

    /// The mean in hours.
    pub fn as_hours(self) -> f64 {
        self.hours
    }

    /// The exponential rate `1/mean` per hour.
    pub fn rate_per_hour(self) -> f64 {
        1.0 / self.hours
    }
}

impl fmt::Display for Durations {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hours < 1.0 {
            write!(f, "{:.1} min", self.hours * 60.0)
        } else {
            write!(f, "{:.4} h", self.hours)
        }
    }
}

/// Complete rate parameterization of one server (the paper's Table IV).
///
/// Build with [`ServerParams::builder`]. All durations are means of
/// exponential distributions, matching the paper's SRN assumptions.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerParams {
    /// Service name (diagnostics and table output).
    pub name: String,
    /// Mean time between hardware failures (1/λ_hw).
    pub hw_mtbf: Durations,
    /// Mean hardware repair time (1/µ_hw).
    pub hw_repair: Durations,
    /// Mean time between OS failures (1/λ_os).
    pub os_mtbf: Durations,
    /// Mean OS repair time (1/µ_os).
    pub os_repair: Durations,
    /// Mean OS patch duration (1/α_os).
    pub os_patch: Durations,
    /// Mean OS reboot after patch (1/β_os).
    pub os_reboot_patch: Durations,
    /// Mean OS reboot after failure (1/δ_os).
    pub os_reboot_failure: Durations,
    /// Mean time between service failures (1/λ_svc).
    pub svc_mtbf: Durations,
    /// Mean service repair time (1/µ_svc).
    pub svc_repair: Durations,
    /// Mean application patch duration (1/α_svc).
    pub svc_patch: Durations,
    /// Mean service reboot after patch (1/β_svc).
    pub svc_reboot_patch: Durations,
    /// Mean service reboot after failure (1/δ_svc).
    pub svc_reboot_failure: Durations,
    /// Mean patch interval (1/τ_p, e.g. 720 h for monthly patching).
    pub patch_interval: Durations,
}

impl ServerParams {
    /// Starts a builder with the given service name.
    pub fn builder(name: impl Into<String>) -> ServerParamsBuilder {
        ServerParamsBuilder::new(name)
    }

    /// The full expected patch-cycle downtime: application patch + OS patch
    /// + OS reboot + service reboot (the paper's per-service MTTR).
    pub fn patch_cycle(&self) -> Durations {
        Durations::hours(
            self.svc_patch.as_hours()
                + self.os_patch.as_hours()
                + self.os_reboot_patch.as_hours()
                + self.svc_reboot_patch.as_hours(),
        )
    }
}

/// Builder for [`ServerParams`].
///
/// Every field has a sensible enterprise-grade default (the paper's
/// Table IV values where given); override what differs.
#[derive(Debug, Clone)]
pub struct ServerParamsBuilder {
    params: ServerParams,
}

impl ServerParamsBuilder {
    /// Creates a builder primed with the paper's DNS-server defaults.
    pub fn new(name: impl Into<String>) -> Self {
        ServerParamsBuilder {
            params: ServerParams {
                name: name.into(),
                hw_mtbf: Durations::hours(87_600.0),
                hw_repair: Durations::hours(1.0),
                os_mtbf: Durations::hours(1440.0),
                os_repair: Durations::hours(1.0),
                os_patch: Durations::minutes(20.0),
                os_reboot_patch: Durations::minutes(10.0),
                os_reboot_failure: Durations::minutes(10.0),
                svc_mtbf: Durations::hours(336.0),
                svc_repair: Durations::minutes(30.0),
                svc_patch: Durations::minutes(5.0),
                svc_reboot_patch: Durations::minutes(5.0),
                svc_reboot_failure: Durations::minutes(5.0),
                patch_interval: Durations::hours(720.0),
            },
        }
    }

    /// Sets hardware MTBF and repair time.
    pub fn hardware(mut self, mtbf: Durations, repair: Durations) -> Self {
        self.params.hw_mtbf = mtbf;
        self.params.hw_repair = repair;
        self
    }

    /// Sets OS MTBF and repair time.
    pub fn os_failure(mut self, mtbf: Durations, repair: Durations) -> Self {
        self.params.os_mtbf = mtbf;
        self.params.os_repair = repair;
        self
    }

    /// Sets OS patch duration and reboot-after-patch duration.
    pub fn os_patch(mut self, patch: Durations, reboot: Durations) -> Self {
        self.params.os_patch = patch;
        self.params.os_reboot_patch = reboot;
        self
    }

    /// Sets the OS reboot-after-failure duration.
    pub fn os_reboot_after_failure(mut self, reboot: Durations) -> Self {
        self.params.os_reboot_failure = reboot;
        self
    }

    /// Sets service MTBF and repair time.
    pub fn service_failure(mut self, mtbf: Durations, repair: Durations) -> Self {
        self.params.svc_mtbf = mtbf;
        self.params.svc_repair = repair;
        self
    }

    /// Sets application patch duration and service reboot-after-patch.
    pub fn service_patch(mut self, patch: Durations, reboot: Durations) -> Self {
        self.params.svc_patch = patch;
        self.params.svc_reboot_patch = reboot;
        self
    }

    /// Sets the service reboot-after-failure duration.
    pub fn service_reboot_after_failure(mut self, reboot: Durations) -> Self {
        self.params.svc_reboot_failure = reboot;
        self
    }

    /// Sets the patch interval (1/τ_p).
    pub fn patch_interval(mut self, interval: Durations) -> Self {
        self.params.patch_interval = interval;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> ServerParams {
        self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_conversions() {
        assert_eq!(Durations::minutes(90.0).as_hours(), 1.5);
        assert_eq!(Durations::days(2.0).as_hours(), 48.0);
        assert!((Durations::minutes(5.0).rate_per_hour() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Durations::minutes(30.0).to_string(), "30.0 min");
        assert_eq!(Durations::hours(720.0).to_string(), "720.0000 h");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_duration_panics() {
        let _ = Durations::hours(0.0);
    }

    #[test]
    fn dns_patch_cycle_is_40_minutes() {
        let p = ServerParams::builder("dns").build();
        assert!((p.patch_cycle().as_hours() - 40.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn builder_overrides() {
        let p = ServerParams::builder("web")
            .service_patch(Durations::minutes(10.0), Durations::minutes(5.0))
            .os_patch(Durations::minutes(10.0), Durations::minutes(10.0))
            .build();
        assert_eq!(p.name, "web");
        assert!((p.patch_cycle().as_hours() - 35.0 / 60.0).abs() < 1e-12);
    }
}
