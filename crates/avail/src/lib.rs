//! Availability models for servers under security patching.
//!
//! This crate builds the paper's hierarchical availability model:
//!
//! * [`ServerModel`] — the lower-layer SRN of one server (hardware, OS,
//!   service and patch-clock sub-models of the paper's Figure 5, with all
//!   guard functions of Table III), solved exactly through the
//!   [`redeval_srn`] engine;
//! * [`ServerAnalysis`] — steady-state quantities of one server and the
//!   aggregation of the whole patch cycle into a two-state abstraction
//!   (patch rate λ_eq = τ_p and recovery rate µ_eq = β_svc·p_prrb/p_pd,
//!   the paper's Equations (1) and (2));
//! * [`NetworkModel`] — the upper-layer model (Figure 4): one
//!   machine-repair birth–death process per redundant tier, evaluated in
//!   product form *and* as a composed SRN, with the capacity-oriented
//!   availability (COA) reward of Table VI;
//! * [`mmc`] — M/M/c queueing formulas for the paper's user-oriented
//!   performance extension (Section V).
//!
//! # Examples
//!
//! ```
//! use redeval_avail::{Durations, ServerParams};
//!
//! # fn main() -> Result<(), redeval_srn::SrnError> {
//! // The paper's DNS server (Table IV).
//! let params = ServerParams::builder("dns")
//!     .hardware(Durations::hours(87_600.0), Durations::hours(1.0))
//!     .os_failure(Durations::hours(1440.0), Durations::hours(1.0))
//!     .os_patch(Durations::minutes(20.0), Durations::minutes(10.0))
//!     .os_reboot_after_failure(Durations::minutes(10.0))
//!     .service_failure(Durations::hours(336.0), Durations::minutes(30.0))
//!     .service_patch(Durations::minutes(5.0), Durations::minutes(5.0))
//!     .service_reboot_after_failure(Durations::minutes(5.0))
//!     .patch_interval(Durations::hours(720.0))
//!     .build();
//! let analysis = params.analyze()?;
//! // Table V: µ_eq ≈ 1.49992/h for the DNS server.
//! assert!((analysis.rates().mu_eq - 1.5).abs() < 0.01);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
mod composite;
pub mod mmc;
mod network;
mod params;
mod server;

pub use aggregate::{AggregatedRates, ServerAnalysis};
pub use composite::CompositeNetwork;
pub use network::{NetworkModel, Tier};
pub use params::{Durations, ServerParams, ServerParamsBuilder};
pub use server::{PatchScenario, ServerModel, ServerPlaces};

#[cfg(test)]
mod send_sync_audit {
    //! The batch execution layer caches `ServerAnalysis` values behind
    //! `Arc` and solves tiers on worker threads; every public type must
    //! stay `Send + Sync`.
    use super::*;

    #[test]
    fn availability_types_are_send_sync() {
        fn ok<T: Send + Sync>() {}
        ok::<ServerParams>();
        ok::<ServerModel>();
        ok::<ServerAnalysis>();
        ok::<AggregatedRates>();
        ok::<NetworkModel>();
        ok::<Tier>();
        ok::<CompositeNetwork>();
    }
}
