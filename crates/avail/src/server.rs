//! The lower-layer SRN of one server (the paper's Figure 5).
//!
//! Four sub-models share one net:
//!
//! * **hardware** — `Phwup ⇄ Phwd` via `Thwd`/`Thwup`;
//! * **OS** — up, down-due-to-hardware, failed, ready-to-patch and patched
//!   places with the Table III guards;
//! * **service** — the same structure plus a ready-to-reboot place
//!   (`Psvcrrb`) entered when the OS patch completes;
//! * **patch clock** — `Pclock → Ppolicy → Ptrigger → Pclock`, firing once
//!   per patch interval and resetting when the OS patch completes.
//!
//! The paper's failure-freeze assumptions ("hardware will not fail during
//! the patch period", "no software failures during the patch period",
//! "OS/applications will not fail when ready to patch") are realized as
//! additional guards on the three failure transitions.

use redeval_srn::{Marking, PlaceId, Srn, TransId};

use crate::params::ServerParams;

/// Which steps the monthly patch round performs (the paper's Section V
/// "SRN models" extension: not every patch touches both layers or needs a
/// reboot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PatchScenario {
    /// The paper's default: application patch → OS patch → OS reboot →
    /// service reboot.
    #[default]
    Full,
    /// Only application vulnerabilities to patch: application patch →
    /// service reboot (no OS steps).
    ServiceOnly,
    /// Only OS vulnerabilities to patch: the service stops, the OS is
    /// patched and rebooted, the service reboots (no application patch).
    OsOnly,
    /// Both patches applied but neither layer needs a reboot.
    NoReboot,
}

impl PatchScenario {
    /// The expected patch-cycle downtime under this scenario.
    pub fn cycle_hours(self, params: &ServerParams) -> f64 {
        let a_svc = params.svc_patch.as_hours();
        let a_os = params.os_patch.as_hours();
        let b_os = params.os_reboot_patch.as_hours();
        let b_svc = params.svc_reboot_patch.as_hours();
        match self {
            PatchScenario::Full => a_svc + a_os + b_os + b_svc,
            PatchScenario::ServiceOnly => a_svc + b_svc,
            PatchScenario::OsOnly => a_os + b_os + b_svc,
            PatchScenario::NoReboot => a_svc + a_os,
        }
    }
}

/// The named places of a server net, for use in reward and guard
/// predicates.
#[derive(Debug, Clone, Copy)]
pub struct ServerPlaces {
    /// Hardware up.
    pub hw_up: PlaceId,
    /// Hardware down.
    pub hw_down: PlaceId,
    /// OS up.
    pub os_up: PlaceId,
    /// OS down due to hardware failure.
    pub os_down: PlaceId,
    /// OS failed (software).
    pub os_failed: PlaceId,
    /// OS ready to patch.
    pub os_ready_patch: PlaceId,
    /// OS patched (awaiting reboot).
    pub os_patched: PlaceId,
    /// Service up.
    pub svc_up: PlaceId,
    /// Service down due to hardware/OS failure.
    pub svc_down: PlaceId,
    /// Service failed (software).
    pub svc_failed: PlaceId,
    /// Service ready to patch.
    pub svc_ready_patch: PlaceId,
    /// Service patched (application patch finished).
    pub svc_patched: PlaceId,
    /// Service ready to reboot (OS patch finished).
    pub svc_ready_reboot: PlaceId,
    /// Patch clock armed.
    pub clock: PlaceId,
    /// Patch clock fired, waiting for the service to be up.
    pub policy: PlaceId,
    /// Patch trigger raised.
    pub trigger: PlaceId,
}

impl ServerPlaces {
    /// Whether the marking is anywhere in the patch sequence
    /// (the paper's "patch period").
    pub fn patch_in_progress(&self, m: &Marking) -> bool {
        m.tokens(self.svc_ready_patch) == 1
            || m.tokens(self.svc_patched) == 1
            || m.tokens(self.svc_ready_reboot) == 1
            || m.tokens(self.os_ready_patch) == 1
            || m.tokens(self.os_patched) == 1
    }

    /// Whether the service is up in the marking.
    pub fn service_up(&self, m: &Marking) -> bool {
        m.tokens(self.svc_up) == 1
    }

    /// Whether the service is down *because of patching*
    /// (the paper's `p_svc_pd` states: ready-to-patch, patched,
    /// ready-to-reboot).
    pub fn down_due_to_patch(&self, m: &Marking) -> bool {
        m.tokens(self.svc_ready_patch) == 1
            || m.tokens(self.svc_patched) == 1
            || m.tokens(self.svc_ready_reboot) == 1
    }

    /// Whether the marking is the exit state of the patch cycle: service
    /// ready to reboot with hardware and OS back up (the paper's
    /// `p_svc_prrb`).
    pub fn ready_to_reboot(&self, m: &Marking) -> bool {
        m.tokens(self.svc_ready_reboot) == 1
            && m.tokens(self.hw_up) == 1
            && m.tokens(self.os_up) == 1
    }
}

/// The named transitions of a server net.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)] // names mirror the paper's Figure 5 one-to-one
pub struct ServerTransitions {
    pub t_hw_down: TransId,
    pub t_hw_up: TransId,
    pub t_os_down: TransId,
    pub t_os_down_reboot: TransId,
    pub t_os_fail: TransId,
    pub t_os_fail_up: TransId,
    pub t_os_patch_trigger: TransId,
    pub t_os_patch: TransId,
    pub t_os_rp_down: TransId,
    pub t_os_p_down: TransId,
    pub t_os_patch_reboot: TransId,
    pub t_svc_down: TransId,
    pub t_svc_down_reboot: TransId,
    pub t_svc_fail: TransId,
    pub t_svc_fail_up: TransId,
    pub t_svc_patch_trigger: TransId,
    pub t_svc_patch: TransId,
    pub t_svc_rp_down: TransId,
    pub t_svc_ready_reboot: TransId,
    pub t_svc_rrb_down: TransId,
    pub t_svc_patch_reboot: TransId,
    pub t_interval: TransId,
    pub t_policy: TransId,
    pub t_reset: TransId,
}

/// The SRN of one server, built from [`ServerParams`].
///
/// # Examples
///
/// ```
/// use redeval_avail::{ServerModel, ServerParams};
///
/// # fn main() -> Result<(), redeval_srn::SrnError> {
/// let model = ServerModel::build(&ServerParams::builder("dns").build());
/// let solved = model.net().solve()?;
/// let p = model.places();
/// let availability = solved.probability(|m| p.service_up(m));
/// assert!(availability > 0.99);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ServerModel {
    net: Srn,
    places: ServerPlaces,
    transitions: ServerTransitions,
    params: ServerParams,
    scenario: PatchScenario,
}

impl ServerModel {
    /// Builds the Figure-5 net for one server (the paper's full
    /// application-patch → OS-patch → reboot scenario).
    pub fn build(params: &ServerParams) -> Self {
        Self::build_scenario(params, PatchScenario::Full)
    }

    /// Builds the server net for a partial patch scenario
    /// (the paper's Section V extension).
    pub fn build_scenario(params: &ServerParams, scenario: PatchScenario) -> Self {
        let mut net = Srn::new(format!("server:{}", params.name));

        // -------- places (names match the paper) --------
        let hw_up = net.add_place("Phwup", 1);
        let hw_down = net.add_place("Phwd", 0);
        let os_up = net.add_place("Posup", 1);
        let os_down = net.add_place("Posd", 0);
        let os_failed = net.add_place("Posfd", 0);
        let os_ready_patch = net.add_place("Posrp", 0);
        let os_patched = net.add_place("Posp", 0);
        let svc_up = net.add_place("Psvcup", 1);
        let svc_down = net.add_place("Psvcd", 0);
        let svc_failed = net.add_place("Psvcfd", 0);
        let svc_ready_patch = net.add_place("Psvcrp", 0);
        let svc_patched = net.add_place("Psvcp", 0);
        let svc_ready_reboot = net.add_place("Psvcrrb", 0);
        let clock = net.add_place("Pclock", 1);
        let policy = net.add_place("Ppolicy", 0);
        let trigger = net.add_place("Ptrigger", 0);

        let places = ServerPlaces {
            hw_up,
            hw_down,
            os_up,
            os_down,
            os_failed,
            os_ready_patch,
            os_patched,
            svc_up,
            svc_down,
            svc_failed,
            svc_ready_patch,
            svc_patched,
            svc_ready_reboot,
            clock,
            policy,
            trigger,
        };

        let transitions = add_server_transitions_scenario(&mut net, params, &places, "", scenario);

        ServerModel {
            net,
            places,
            transitions,
            params: params.clone(),
            scenario,
        }
    }

    /// The patch scenario the net was built for.
    pub fn scenario(&self) -> PatchScenario {
        self.scenario
    }

    /// The underlying net.
    pub fn net(&self) -> &Srn {
        &self.net
    }

    /// The place handles.
    pub fn places(&self) -> &ServerPlaces {
        &self.places
    }

    /// The transition handles.
    pub fn transitions(&self) -> &ServerTransitions {
        &self.transitions
    }

    /// The parameters the model was built from.
    pub fn params(&self) -> &ServerParams {
        &self.params
    }
}

/// Adds the Figure-5 transitions (hardware, OS, service, patch clock) for
/// one server against already-created places. `prefix` namespaces the
/// transition names so several servers can share one net (see
/// [`crate::CompositeNetwork`]).
pub(crate) fn add_server_transitions(
    net: &mut Srn,
    params: &ServerParams,
    places: &ServerPlaces,
    prefix: &str,
) -> ServerTransitions {
    add_server_transitions_scenario(net, params, places, prefix, PatchScenario::Full)
}

/// Scenario-aware variant of [`add_server_transitions`].
pub(crate) fn add_server_transitions_scenario(
    net: &mut Srn,
    params: &ServerParams,
    places: &ServerPlaces,
    prefix: &str,
    scenario: PatchScenario,
) -> ServerTransitions {
    let ServerPlaces {
        hw_up,
        hw_down,
        os_up,
        os_down,
        os_failed,
        os_ready_patch,
        os_patched,
        svc_up,
        svc_down,
        svc_failed,
        svc_ready_patch,
        svc_patched,
        svc_ready_reboot,
        clock,
        policy,
        trigger,
    } = *places;
    // Failure-freeze guard: the paper assumes no hardware/OS/service
    // failures while any patch step is in progress.
    let freeze = *places;
    let not_patching = move |m: &Marking| !freeze.patch_in_progress(m);

    // -------- hardware sub-model (Fig. 5a) --------
    let t_hw_down = net.add_timed(format!("{prefix}Thwd"), params.hw_mtbf.rate_per_hour());
    net.add_move(t_hw_down, hw_up, hw_down).expect("valid ids");
    net.set_guard(t_hw_down, not_patching).expect("valid id");
    let t_hw_up = net.add_timed(format!("{prefix}Thwup"), params.hw_repair.rate_per_hour());
    net.add_move(t_hw_up, hw_down, hw_up).expect("valid ids");

    // -------- OS sub-model (Fig. 5b) --------
    // gosd: hardware failure propagates immediately.
    let t_os_down = net.add_immediate(format!("{prefix}Tosd"));
    net.add_move(t_os_down, os_up, os_down).expect("valid ids");
    net.set_guard(t_os_down, move |m| m.tokens(hw_down) == 1)
        .expect("valid id");
    // gosdrb: reboot after hardware repair.
    let t_os_down_reboot = net.add_timed(
        format!("{prefix}Tosdrb"),
        params.os_reboot_failure.rate_per_hour(),
    );
    net.add_move(t_os_down_reboot, os_down, os_up)
        .expect("valid ids");
    net.set_guard(t_os_down_reboot, move |m| m.tokens(hw_up) == 1)
        .expect("valid id");
    // OS software failure (frozen during patch).
    let t_os_fail = net.add_timed(format!("{prefix}Tosfd"), params.os_mtbf.rate_per_hour());
    net.add_move(t_os_fail, os_up, os_failed)
        .expect("valid ids");
    net.set_guard(t_os_fail, not_patching).expect("valid id");
    // gosfup: repair needs hardware up.
    let t_os_fail_up = net.add_timed(format!("{prefix}Tosfup"), params.os_repair.rate_per_hour());
    net.add_move(t_os_fail_up, os_failed, os_up)
        .expect("valid ids");
    net.set_guard(t_os_fail_up, move |m| m.tokens(hw_up) == 1)
        .expect("valid id");
    // gosptrig: OS patch starts when the application patch finished.
    // In the ServiceOnly scenario there is no OS patch: the guard is
    // constantly false and the OS patch places stay unreachable.
    let t_os_patch_trigger = net.add_immediate(format!("{prefix}Tosptrig"));
    net.add_move(t_os_patch_trigger, os_up, os_ready_patch)
        .expect("valid ids");
    if scenario == PatchScenario::ServiceOnly {
        net.set_guard(t_os_patch_trigger, |_| false)
            .expect("valid id");
    } else {
        net.set_guard(t_os_patch_trigger, move |m| m.tokens(svc_patched) == 1)
            .expect("valid id");
    }
    // gosp: patching needs hardware up.
    let t_os_patch = net.add_timed(format!("{prefix}Tosp"), params.os_patch.rate_per_hour());
    net.add_move(t_os_patch, os_ready_patch, os_patched)
        .expect("valid ids");
    net.set_guard(t_os_patch, move |m| m.tokens(hw_up) == 1)
        .expect("valid id");
    // gosrpd / gospd: hardware failure while patching (kept for
    // structural fidelity with Table III; unreachable under the
    // freeze assumption).
    let t_os_rp_down = net.add_immediate(format!("{prefix}Tosrpd"));
    net.add_move(t_os_rp_down, os_ready_patch, os_down)
        .expect("valid ids");
    net.set_guard(t_os_rp_down, move |m| m.tokens(hw_down) == 1)
        .expect("valid id");
    let t_os_p_down = net.add_immediate(format!("{prefix}Tospd"));
    net.add_move(t_os_p_down, os_patched, os_down)
        .expect("valid ids");
    net.set_guard(t_os_p_down, move |m| m.tokens(hw_down) == 1)
        .expect("valid id");
    // gosprb: reboot after patch needs hardware up. In the NoReboot
    // scenario the "reboot" is instantaneous (lowest immediate
    // priority so Tsvcrrb/Treset observe #Posp == 1 first).
    let t_os_patch_reboot = if scenario == PatchScenario::NoReboot {
        net.add_immediate_weighted(format!("{prefix}Tosprb"), 1.0, 0)
    } else {
        net.add_timed(
            format!("{prefix}Tosprb"),
            params.os_reboot_patch.rate_per_hour(),
        )
    };
    net.add_move(t_os_patch_reboot, os_patched, os_up)
        .expect("valid ids");
    net.set_guard(t_os_patch_reboot, move |m| m.tokens(hw_up) == 1)
        .expect("valid id");

    // -------- service sub-model (Fig. 5c) --------
    // gsvcd: hardware or OS failure propagates immediately.
    let hw_or_os_down = move |m: &Marking| m.tokens(hw_down) == 1 || m.tokens(os_failed) == 1;
    let hw_and_os_up = move |m: &Marking| m.tokens(hw_up) == 1 && m.tokens(os_up) == 1;
    let t_svc_down = net.add_immediate(format!("{prefix}Tsvcd"));
    net.add_move(t_svc_down, svc_up, svc_down)
        .expect("valid ids");
    net.set_guard(t_svc_down, hw_or_os_down).expect("valid id");
    // gsvcdrb: reboot after failure once hardware and OS are up.
    let t_svc_down_reboot = net.add_timed(
        format!("{prefix}Tsvcdrb"),
        params.svc_reboot_failure.rate_per_hour(),
    );
    net.add_move(t_svc_down_reboot, svc_down, svc_up)
        .expect("valid ids");
    net.set_guard(t_svc_down_reboot, hw_and_os_up)
        .expect("valid id");
    // Service software failure (frozen during patch).
    let t_svc_fail = net.add_timed(format!("{prefix}Tsvcfd"), params.svc_mtbf.rate_per_hour());
    net.add_move(t_svc_fail, svc_up, svc_failed)
        .expect("valid ids");
    net.set_guard(t_svc_fail, not_patching).expect("valid id");
    // gsvcfup.
    let t_svc_fail_up = net.add_timed(
        format!("{prefix}Tsvcfup"),
        params.svc_repair.rate_per_hour(),
    );
    net.add_move(t_svc_fail_up, svc_failed, svc_up)
        .expect("valid ids");
    net.set_guard(t_svc_fail_up, hw_and_os_up)
        .expect("valid id");
    // gsvcptrig: the clock trigger starts the application patch.
    let t_svc_patch_trigger = net.add_immediate(format!("{prefix}Tsvcptrig"));
    net.add_move(t_svc_patch_trigger, svc_up, svc_ready_patch)
        .expect("valid ids");
    net.set_guard(t_svc_patch_trigger, move |m| m.tokens(trigger) == 1)
        .expect("valid id");
    // gsvcp. In the OsOnly scenario there is no application patch:
    // the step completes instantaneously.
    let t_svc_patch = if scenario == PatchScenario::OsOnly {
        net.add_immediate(format!("{prefix}Tsvcp"))
    } else {
        net.add_timed(format!("{prefix}Tsvcp"), params.svc_patch.rate_per_hour())
    };
    net.add_move(t_svc_patch, svc_ready_patch, svc_patched)
        .expect("valid ids");
    net.set_guard(t_svc_patch, hw_and_os_up).expect("valid id");
    // gsvcrpd: hardware/OS failure while ready to patch (structural).
    let t_svc_rp_down = net.add_immediate(format!("{prefix}Tsvcrpd"));
    net.add_move(t_svc_rp_down, svc_ready_patch, svc_down)
        .expect("valid ids");
    net.set_guard(t_svc_rp_down, hw_or_os_down)
        .expect("valid id");
    // gsvcrrb: OS patch completion readies the service reboot.
    // (ServiceOnly skips the OS patch, so the reboot is ready as soon
    // as the application patch finishes.) Priority 2 so the patched
    // state is observed before Treset/Tosprb consume it.
    let t_svc_ready_reboot = net.add_immediate_weighted(format!("{prefix}Tsvcrrb"), 1.0, 2);
    net.add_move(t_svc_ready_reboot, svc_patched, svc_ready_reboot)
        .expect("valid ids");
    if scenario == PatchScenario::ServiceOnly {
        net.set_guard(t_svc_ready_reboot, |_| true)
            .expect("valid id");
    } else {
        net.set_guard(t_svc_ready_reboot, move |m| m.tokens(os_patched) == 1)
            .expect("valid id");
    }
    // gsvcrrbd (structural).
    let t_svc_rrb_down = net.add_immediate(format!("{prefix}Tsvcrrbd"));
    net.add_move(t_svc_rrb_down, svc_ready_reboot, svc_down)
        .expect("valid ids");
    net.set_guard(t_svc_rrb_down, hw_or_os_down)
        .expect("valid id");
    // gsvcprb: service reboot after the OS reboot finished
    // (instantaneous in the NoReboot scenario).
    let t_svc_patch_reboot = if scenario == PatchScenario::NoReboot {
        net.add_immediate_weighted(format!("{prefix}Tsvcprb"), 1.0, 0)
    } else {
        net.add_timed(
            format!("{prefix}Tsvcprb"),
            params.svc_reboot_patch.rate_per_hour(),
        )
    };
    net.add_move(t_svc_patch_reboot, svc_ready_reboot, svc_up)
        .expect("valid ids");
    net.set_guard(t_svc_patch_reboot, hw_and_os_up)
        .expect("valid id");

    // -------- patch clock (Fig. 5d) --------
    // ginterval: the clock only advances while no patch is in progress.
    let t_interval = net.add_timed(
        format!("{prefix}Tinterval"),
        params.patch_interval.rate_per_hour(),
    );
    net.add_move(t_interval, clock, policy).expect("valid ids");
    net.set_guard(t_interval, move |m| {
        m.tokens(svc_up) == 1 || m.tokens(svc_down) == 1 || m.tokens(svc_failed) == 1
    })
    .expect("valid id");
    // gpolicy: patch only starts when the service is up.
    let t_policy = net.add_immediate(format!("{prefix}Tpolicy"));
    net.add_move(t_policy, policy, trigger).expect("valid ids");
    net.set_guard(t_policy, move |m| m.tokens(svc_up) == 1)
        .expect("valid id");
    // greset: the clock re-arms when the OS patch completes (or, in
    // the ServiceOnly scenario, when the service patch does).
    let t_reset = net.add_immediate_weighted(format!("{prefix}Treset"), 1.0, 1);
    net.add_move(t_reset, trigger, clock).expect("valid ids");
    if scenario == PatchScenario::ServiceOnly {
        net.set_guard(t_reset, move |m| m.tokens(svc_ready_reboot) == 1)
            .expect("valid id");
    } else {
        net.set_guard(t_reset, move |m| m.tokens(os_patched) == 1)
            .expect("valid id");
    }

    ServerTransitions {
        t_hw_down,
        t_hw_up,
        t_os_down,
        t_os_down_reboot,
        t_os_fail,
        t_os_fail_up,
        t_os_patch_trigger,
        t_os_patch,
        t_os_rp_down,
        t_os_p_down,
        t_os_patch_reboot,
        t_svc_down,
        t_svc_down_reboot,
        t_svc_fail,
        t_svc_fail_up,
        t_svc_patch_trigger,
        t_svc_patch,
        t_svc_rp_down,
        t_svc_ready_reboot,
        t_svc_rrb_down,
        t_svc_patch_reboot,
        t_interval,
        t_policy,
        t_reset,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Durations;

    fn dns() -> ServerModel {
        ServerModel::build(&ServerParams::builder("dns").build())
    }

    #[test]
    fn structure_matches_paper() {
        let m = dns();
        assert_eq!(m.net().place_count(), 16);
        assert_eq!(m.net().transition_count(), 24);
        // All Table III guard-bearing transitions exist by name.
        for name in [
            "Tosd",
            "Tosdrb",
            "Tosfup",
            "Tosptrig",
            "Tosp",
            "Tosrpd",
            "Tospd",
            "Tosprb",
            "Tsvcd",
            "Tsvcdrb",
            "Tsvcfup",
            "Tsvcptrig",
            "Tsvcp",
            "Tsvcrpd",
            "Tsvcrrb",
            "Tsvcrrbd",
            "Tsvcprb",
            "Tinterval",
            "Tpolicy",
            "Treset",
        ] {
            assert!(m.net().find_transition(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn state_space_is_small_and_live() {
        let m = dns();
        let ss = m.net().state_space().unwrap();
        // The freeze assumptions keep the space compact.
        assert!(ss.len() < 64, "{} states", ss.len());
        assert!(ss.vanishing_count() > 0);
    }

    #[test]
    fn patch_sequence_is_reachable() {
        let m = dns();
        let ss = m.net().state_space().unwrap();
        let p = *m.places();
        let has = |pred: &dyn Fn(&Marking) -> bool| ss.tangible_markings().iter().any(pred);
        assert!(has(&|mk| mk.tokens(p.svc_ready_patch) == 1));
        assert!(has(
            &|mk| mk.tokens(p.svc_patched) == 1 && mk.tokens(p.os_ready_patch) == 1
        ));
        assert!(has(
            &|mk| mk.tokens(p.svc_ready_reboot) == 1 && mk.tokens(p.os_patched) == 1
        ));
        assert!(has(
            &|mk| mk.tokens(p.svc_ready_reboot) == 1 && mk.tokens(p.os_up) == 1
        ));
    }

    #[test]
    fn no_failures_during_patch_states() {
        let m = dns();
        let ss = m.net().state_space().unwrap();
        let p = *m.places();
        // In every patch-in-progress marking, hardware is up and the OS is
        // never in a failed state.
        for mk in ss.tangible_markings() {
            if p.patch_in_progress(mk) {
                assert_eq!(mk.tokens(p.hw_up), 1, "hw failed during patch: {mk}");
                assert_eq!(mk.tokens(p.os_failed), 0, "os failed during patch: {mk}");
                assert_eq!(mk.tokens(p.svc_failed), 0, "svc failed during patch: {mk}");
            }
        }
    }

    #[test]
    fn invariants_one_token_per_submodel() {
        let m = dns();
        let ss = m.net().state_space().unwrap();
        let p = *m.places();
        for mk in ss.tangible_markings() {
            assert_eq!(mk.tokens(p.hw_up) + mk.tokens(p.hw_down), 1);
            assert_eq!(
                mk.tokens(p.os_up)
                    + mk.tokens(p.os_down)
                    + mk.tokens(p.os_failed)
                    + mk.tokens(p.os_ready_patch)
                    + mk.tokens(p.os_patched),
                1
            );
            assert_eq!(
                mk.tokens(p.svc_up)
                    + mk.tokens(p.svc_down)
                    + mk.tokens(p.svc_failed)
                    + mk.tokens(p.svc_ready_patch)
                    + mk.tokens(p.svc_patched)
                    + mk.tokens(p.svc_ready_reboot),
                1
            );
            assert_eq!(
                mk.tokens(p.clock) + mk.tokens(p.policy) + mk.tokens(p.trigger),
                1
            );
        }
    }

    #[test]
    fn availability_is_high_but_below_one() {
        let m = dns();
        let solved = m.net().solve().unwrap();
        let p = *m.places();
        let a = solved.probability(|mk| p.service_up(mk));
        assert!(a > 0.99 && a < 1.0, "availability {a}");
    }

    #[test]
    fn four_submodel_invariants_found_structurally() {
        // The Farkas analysis proves the paper's four one-token sub-models
        // (hardware, OS, service, clock) without exploring any marking.
        let m = dns();
        let invs = m.net().place_invariants(100_000).expect("small net");
        assert_eq!(invs.len(), 4, "{invs:?}");
        assert_eq!(m.net().covered_by_invariants(100_000), Some(true));
        // Every invariant is 0/1-weighted and holds token count 1.
        let m0 = m.net().initial_marking();
        for inv in &invs {
            assert!(inv.iter().all(|&w| w <= 1));
            assert_eq!(redeval_srn::Srn::invariant_value(inv, &m0), 1);
        }
        // And each invariant stays at 1 on every reachable marking.
        let ss = m.net().state_space().unwrap();
        for inv in &invs {
            for mk in ss.tangible_markings() {
                assert_eq!(redeval_srn::Srn::invariant_value(inv, mk), 1);
            }
        }
    }

    #[test]
    fn scenario_nets_remain_invariant_covered() {
        for scenario in [
            PatchScenario::Full,
            PatchScenario::ServiceOnly,
            PatchScenario::OsOnly,
            PatchScenario::NoReboot,
        ] {
            let m = ServerModel::build_scenario(&ServerParams::builder("dns").build(), scenario);
            assert_eq!(
                m.net().covered_by_invariants(100_000),
                Some(true),
                "{scenario:?}"
            );
        }
    }

    #[test]
    fn faster_patches_increase_availability() {
        let slow = ServerModel::build(
            &ServerParams::builder("slow")
                .service_patch(Durations::minutes(60.0), Durations::minutes(5.0))
                .build(),
        );
        let fast = ServerModel::build(
            &ServerParams::builder("fast")
                .service_patch(Durations::minutes(1.0), Durations::minutes(5.0))
                .build(),
        );
        let pa = |m: &ServerModel| {
            let solved = m.net().solve().unwrap();
            let p = *m.places();
            solved.probability(move |mk| p.service_up(mk))
        };
        assert!(pa(&fast) > pa(&slow));
    }
}
