//! Steady-state analysis of one server and the paper's two-state
//! aggregation (Equations (1) and (2)).

use redeval_srn::SrnError;

use crate::params::ServerParams;
use crate::server::{PatchScenario, ServerModel};

/// The aggregated two-state abstraction of a server's patch behaviour:
/// the server leaves the *up* state at `lambda_eq` (the patch arriving)
/// and returns at `mu_eq` (the patch cycle completing).
///
/// The paper's Table V lists these rates for all four service types.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregatedRates {
    /// Patch rate λ_eq = τ_p (Equation (1)), per hour.
    pub lambda_eq: f64,
    /// Recovery rate µ_eq = β_svc · p_prrb / p_pd (Equation (2)), per hour.
    pub mu_eq: f64,
}

impl AggregatedRates {
    /// Mean time to patch, `1/λ_eq` (hours).
    pub fn mttp(&self) -> f64 {
        1.0 / self.lambda_eq
    }

    /// Mean time to recovery, `1/µ_eq` (hours).
    pub fn mttr(&self) -> f64 {
        1.0 / self.mu_eq
    }

    /// Steady-state probability of being down due to patching in the
    /// two-state abstraction: `λ/(λ+µ)`.
    pub fn down_probability(&self) -> f64 {
        self.lambda_eq / (self.lambda_eq + self.mu_eq)
    }
}

/// Exact steady-state quantities of one server's lower-layer SRN.
///
/// Produced by [`ServerParams::analyze`] /
/// [`ServerAnalysis::of`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServerAnalysis {
    name: String,
    availability: f64,
    p_patch_down: f64,
    p_ready_reboot: f64,
    p_failed: f64,
    rates: AggregatedRates,
    tangible_states: usize,
    solve_stats: redeval_markov::SolveStats,
}

impl ServerAnalysis {
    /// Solves the lower-layer SRN of `params` (full patch scenario) and
    /// aggregates it.
    ///
    /// # Errors
    ///
    /// Propagates SRN construction/solve errors.
    pub fn of(params: &ServerParams) -> Result<ServerAnalysis, SrnError> {
        Self::of_scenario(params, PatchScenario::Full)
    }

    /// Solves and aggregates a server under a partial patch scenario.
    ///
    /// For the paper's [`PatchScenario::Full`] the recovery rate is
    /// Equation (2), `β_svc · p_prrb / p_pd`. For the other scenarios the
    /// exit transition differs (or is immediate), so the equivalent
    /// **flow-balance** form is used: µ_eq = (probability flow leaving the
    /// patch-down macro-state) / p_pd — which coincides with Equation (2)
    /// in the full scenario (verified by tests).
    ///
    /// # Errors
    ///
    /// Propagates SRN construction/solve errors.
    pub fn of_scenario(
        params: &ServerParams,
        scenario: PatchScenario,
    ) -> Result<ServerAnalysis, SrnError> {
        let model = ServerModel::build_scenario(params, scenario);
        let places = *model.places();
        let space = model.net().state_space()?;
        let tangible_states = space.len();

        // Flow out of the patch-down macro-state, computed from the CTMC
        // before consuming the state space.
        let markings = space.tangible_markings().to_vec();
        let transitions: Vec<(usize, usize, f64)> = space
            .ctmc()
            .transitions()
            .iter()
            .map(|t| (t.from, t.to, t.rate))
            .collect();
        let solved = space.solve()?;
        let solve_stats = solved.solve_stats();
        let pi = solved.steady_state();
        let in_pd: Vec<bool> = markings
            .iter()
            .map(|m| places.down_due_to_patch(m))
            .collect();
        let exit_flow: f64 = transitions
            .iter()
            .filter(|&&(from, to, _)| in_pd[from] && !in_pd[to])
            .map(|&(from, _, rate)| pi[from] * rate)
            .sum();

        let availability = solved.probability(|m| places.service_up(m));
        // p_svc_pd: down due to patch (ready-to-patch, patched,
        // ready-to-reboot).
        let p_patch_down = solved.probability(|m| places.down_due_to_patch(m));
        // p_svc_prrb: the exit state of the paper's full patch cycle.
        let p_ready_reboot = solved.probability(|m| places.ready_to_reboot(m));
        let p_failed = solved
            .probability(|m| m.tokens(places.svc_failed) == 1 || m.tokens(places.svc_down) == 1);

        // Equation (1): the patch process is dominated by the clock.
        let lambda_eq = params.patch_interval.rate_per_hour();
        // Equation (2) / its flow-balance generalization.
        let mu_eq = if p_patch_down > 0.0 {
            exit_flow / p_patch_down
        } else {
            f64::INFINITY
        };

        Ok(ServerAnalysis {
            name: params.name.clone(),
            availability,
            p_patch_down,
            p_ready_reboot,
            p_failed,
            rates: AggregatedRates { lambda_eq, mu_eq },
            tangible_states,
            solve_stats,
        })
    }

    /// The service name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The same solved analysis relabelled with a different service
    /// name: every steady-state quantity is copied unchanged, only the
    /// label differs. This is what lets a solve cache reuse one SRN
    /// solution across tiers whose parameters are identical but whose
    /// names are not — the numbers cannot depend on the name, the
    /// report rows must carry the right one.
    pub fn renamed(&self, name: impl Into<String>) -> ServerAnalysis {
        ServerAnalysis {
            name: name.into(),
            ..self.clone()
        }
    }

    /// Steady-state probability that the service is up.
    pub fn availability(&self) -> f64 {
        self.availability
    }

    /// `p_svc_pd` — probability of being down due to patching.
    pub fn p_patch_down(&self) -> f64 {
        self.p_patch_down
    }

    /// `p_svc_prrb` — probability of the patch-cycle exit state.
    pub fn p_ready_reboot(&self) -> f64 {
        self.p_ready_reboot
    }

    /// Probability of being down due to failures (not patching).
    pub fn p_failed(&self) -> f64 {
        self.p_failed
    }

    /// The aggregated rates (Equations (1), (2)).
    pub fn rates(&self) -> AggregatedRates {
        self.rates
    }

    /// Size of the tangible state space that was solved.
    pub fn tangible_states(&self) -> usize {
        self.tangible_states
    }

    /// Convergence statistics of the CTMC solve behind this analysis
    /// (method, iterations, final residual) — the success-path numbers
    /// that used to exist only inside the solver's convergence error.
    pub fn solve_stats(&self) -> redeval_markov::SolveStats {
        self.solve_stats
    }
}

impl ServerParams {
    /// Convenience: builds, solves and aggregates this server's SRN.
    ///
    /// # Errors
    ///
    /// Propagates SRN construction/solve errors.
    pub fn analyze(&self) -> Result<ServerAnalysis, SrnError> {
        ServerAnalysis::of(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Durations;

    /// The paper's four servers (patch-duration parameters chosen per
    /// DESIGN.md so that patch cycles match Table V MTTRs).
    pub fn paper_servers() -> [ServerParams; 4] {
        [
            ServerParams::builder("dns").build(),
            ServerParams::builder("web")
                .service_patch(Durations::minutes(10.0), Durations::minutes(5.0))
                .os_patch(Durations::minutes(10.0), Durations::minutes(10.0))
                .build(),
            ServerParams::builder("app")
                .service_patch(Durations::minutes(15.0), Durations::minutes(5.0))
                .os_patch(Durations::minutes(30.0), Durations::minutes(10.0))
                .build(),
            ServerParams::builder("db")
                .service_patch(Durations::minutes(10.0), Durations::minutes(5.0))
                .os_patch(Durations::minutes(30.0), Durations::minutes(10.0))
                .build(),
        ]
    }

    #[test]
    fn lambda_eq_is_tau_p_for_all_servers() {
        for p in paper_servers() {
            let a = p.analyze().unwrap();
            assert!(
                (a.rates().lambda_eq - 1.0 / 720.0).abs() < 1e-15,
                "{}",
                p.name
            );
            assert!((a.rates().mttp() - 720.0).abs() < 1e-9);
        }
    }

    #[test]
    fn table_v_recovery_rates_reproduced() {
        // Paper Table V: µ_eq per service.
        let expected = [
            ("dns", 1.49992),
            ("web", 1.71420),
            ("app", 0.99995),
            ("db", 1.09085),
        ];
        for (params, (name, mu)) in paper_servers().iter().zip(expected) {
            let a = params.analyze().unwrap();
            assert_eq!(a.name(), name);
            let rel = (a.rates().mu_eq - mu).abs() / mu;
            assert!(rel < 1e-3, "{name}: µ_eq {} vs paper {mu}", a.rates().mu_eq);
        }
    }

    #[test]
    fn table_v_mttr_reproduced() {
        let expected = [
            ("dns", 0.6667),
            ("web", 0.5834),
            ("app", 1.0001),
            ("db", 0.9167),
        ];
        for (params, (name, mttr)) in paper_servers().iter().zip(expected) {
            let a = params.analyze().unwrap();
            let rel = (a.rates().mttr() - mttr).abs() / mttr;
            assert!(
                rel < 1e-3,
                "{name}: MTTR {} vs paper {mttr}",
                a.rates().mttr()
            );
        }
    }

    #[test]
    fn dns_probabilities_match_paper_example() {
        // Paper Section III-D2: p_dns_prrb ≈ 0.00011563,
        // p_dns_pd ≈ 0.00092506.
        let a = paper_servers()[0].analyze().unwrap();
        assert!(
            (a.p_ready_reboot() - 0.00011563).abs() < 2e-6,
            "p_prrb = {}",
            a.p_ready_reboot()
        );
        assert!(
            (a.p_patch_down() - 0.00092506).abs() < 2e-5,
            "p_pd = {}",
            a.p_patch_down()
        );
    }

    #[test]
    fn solve_stats_are_exposed_and_deterministic() {
        let params = ServerParams::builder("dns").build();
        let a = params.analyze().unwrap();
        let s = a.solve_stats();
        assert_eq!(s.states, a.tangible_states());
        assert!(s.residual.is_finite() && s.residual >= 0.0);
        assert_eq!(s, params.analyze().unwrap().solve_stats());
        // Relabelling copies the stats unchanged.
        assert_eq!(a.renamed("other").solve_stats(), s);
    }

    #[test]
    fn probability_mass_accounted() {
        let a = paper_servers()[2].analyze().unwrap();
        let total = a.availability() + a.p_patch_down() + a.p_failed();
        assert!((total - 1.0).abs() < 1e-9, "mass {total}");
    }

    #[test]
    fn longer_patches_mean_lower_mu_eq() {
        let quick = ServerParams::builder("q")
            .os_patch(Durations::minutes(5.0), Durations::minutes(5.0))
            .build()
            .analyze()
            .unwrap();
        let slow = ServerParams::builder("s")
            .os_patch(Durations::minutes(120.0), Durations::minutes(5.0))
            .build()
            .analyze()
            .unwrap();
        assert!(quick.rates().mu_eq > slow.rates().mu_eq);
    }

    #[test]
    fn flow_balance_equals_equation_2_in_full_scenario() {
        // µ_eq computed by flow balance must equal the paper's explicit
        // Equation (2) form in the full scenario.
        for p in paper_servers() {
            let a = p.analyze().unwrap();
            let eq2 = p.svc_reboot_patch.rate_per_hour() * a.p_ready_reboot() / a.p_patch_down();
            let rel = (a.rates().mu_eq - eq2).abs() / eq2;
            assert!(
                rel < 1e-9,
                "{}: flow {} vs eq2 {}",
                a.name(),
                a.rates().mu_eq,
                eq2
            );
        }
    }

    #[test]
    fn partial_scenarios_match_their_cycles() {
        let params = ServerParams::builder("dns").build();
        for scenario in [
            PatchScenario::Full,
            PatchScenario::ServiceOnly,
            PatchScenario::OsOnly,
            PatchScenario::NoReboot,
        ] {
            let a = ServerAnalysis::of_scenario(&params, scenario).unwrap();
            let cycle = scenario.cycle_hours(&params);
            let rel = (a.rates().mttr() - cycle).abs() / cycle;
            assert!(
                rel < 0.02,
                "{scenario:?}: MTTR {} vs cycle {cycle}",
                a.rates().mttr()
            );
        }
    }

    #[test]
    fn scenario_ordering_service_only_is_fastest() {
        let params = ServerParams::builder("dns").build();
        let mttr = |s| {
            ServerAnalysis::of_scenario(&params, s)
                .unwrap()
                .rates()
                .mttr()
        };
        // DNS durations: svc 5, os 20, βos 10, βsvc 5 (minutes).
        let service_only = mttr(PatchScenario::ServiceOnly); // 10 min
        let no_reboot = mttr(PatchScenario::NoReboot); // 25 min
        let os_only = mttr(PatchScenario::OsOnly); // 35 min
        let full = mttr(PatchScenario::Full); // 40 min
        assert!(service_only < no_reboot);
        assert!(no_reboot < os_only);
        assert!(os_only < full);
    }

    #[test]
    fn scenario_availability_ordering() {
        // Shorter patch cycles give strictly higher availability.
        let params = ServerParams::builder("dns").build();
        let avail = |s| {
            ServerAnalysis::of_scenario(&params, s)
                .unwrap()
                .availability()
        };
        assert!(avail(PatchScenario::ServiceOnly) > avail(PatchScenario::Full));
        assert!(avail(PatchScenario::NoReboot) > avail(PatchScenario::Full));
    }

    #[test]
    fn two_state_down_probability_close_to_exact() {
        // The aggregation should reproduce the patch-downtime fraction.
        for p in paper_servers() {
            let a = p.analyze().unwrap();
            let approx = a.rates().down_probability();
            let exact = a.p_patch_down();
            let rel = (approx - exact).abs() / exact;
            assert!(rel < 0.02, "{}: {approx} vs {exact}", a.name());
        }
    }
}
