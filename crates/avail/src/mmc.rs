//! M/M/c queueing formulas for the paper's *user-oriented performance*
//! extension (Section V).
//!
//! The reproduced paper notes that redundancy designs should eventually be
//! judged under client load too and proposes queueing models as future
//! work; this module provides the standard Erlang-C machinery so the
//! workspace can report mean response/waiting times per design (see the
//! `perf` bench binary).

use std::error::Error;
use std::fmt;

/// Error returned for unstable or malformed queue parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueueError {
    /// Arrival rate, service rate or server count was non-positive/NaN.
    InvalidParameter,
    /// Offered load ≥ capacity: the queue grows without bound.
    Unstable {
        /// Utilization `λ/(cµ)` (≥ 1).
        utilization: f64,
    },
}

impl fmt::Display for QueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueError::InvalidParameter => write!(f, "queue parameters must be positive"),
            QueueError::Unstable { utilization } => {
                write!(f, "queue is unstable (utilization {utilization:.3})")
            }
        }
    }
}

impl Error for QueueError {}

/// An M/M/c queue: Poisson arrivals at rate `λ`, `c` identical exponential
/// servers at rate `µ` each, infinite buffer.
///
/// # Examples
///
/// ```
/// use redeval_avail::mmc::Mmc;
///
/// # fn main() -> Result<(), redeval_avail::mmc::QueueError> {
/// let q = Mmc::new(3.0, 2.0, 2)?; // ρ = 0.75
/// assert!((q.utilization() - 0.75).abs() < 1e-12);
/// assert!(q.mean_response_time() > 1.0 / 2.0); // waiting adds latency
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mmc {
    arrival_rate: f64,
    service_rate: f64,
    servers: u32,
}

impl Mmc {
    /// Creates a queue after validating stability.
    ///
    /// # Errors
    ///
    /// * [`QueueError::InvalidParameter`] for non-positive inputs;
    /// * [`QueueError::Unstable`] when `λ ≥ c·µ`.
    pub fn new(arrival_rate: f64, service_rate: f64, servers: u32) -> Result<Self, QueueError> {
        if !(arrival_rate.is_finite()
            && arrival_rate > 0.0
            && service_rate.is_finite()
            && service_rate > 0.0)
            || servers == 0
        {
            return Err(QueueError::InvalidParameter);
        }
        let rho = arrival_rate / (servers as f64 * service_rate);
        if rho >= 1.0 {
            return Err(QueueError::Unstable { utilization: rho });
        }
        Ok(Mmc {
            arrival_rate,
            service_rate,
            servers,
        })
    }

    /// Per-server utilization `ρ = λ/(cµ)`.
    pub fn utilization(&self) -> f64 {
        self.arrival_rate / (self.servers as f64 * self.service_rate)
    }

    /// Offered load `a = λ/µ` (in Erlangs).
    pub fn offered_load(&self) -> f64 {
        self.arrival_rate / self.service_rate
    }

    /// The Erlang-C probability that an arriving job must wait.
    pub fn probability_of_waiting(&self) -> f64 {
        let a = self.offered_load();
        let c = self.servers as usize;
        let rho = self.utilization();
        // Σ_{k<c} a^k/k!  computed incrementally.
        let mut term = 1.0;
        let mut sum = 0.0;
        for k in 0..c {
            if k > 0 {
                term *= a / k as f64;
            }
            sum += term;
        }
        // a^c / c!
        let tail = term * a / c as f64;
        let tail = tail / (1.0 - rho);
        tail / (sum + tail)
    }

    /// Mean number of jobs waiting in the queue (`Lq`).
    pub fn mean_queue_length(&self) -> f64 {
        self.probability_of_waiting() * self.utilization() / (1.0 - self.utilization())
    }

    /// Mean time spent waiting before service (`Wq`).
    pub fn mean_waiting_time(&self) -> f64 {
        self.mean_queue_length() / self.arrival_rate
    }

    /// Mean response time (`W = Wq + 1/µ`).
    pub fn mean_response_time(&self) -> f64 {
        self.mean_waiting_time() + 1.0 / self.service_rate
    }

    /// Mean number of jobs in the system (`L = λW`, Little's law).
    pub fn mean_jobs_in_system(&self) -> f64 {
        self.arrival_rate * self.mean_response_time()
    }
}

/// Mean response time of a tier whose server count fluctuates: weights the
/// per-count M/M/c response time by the probability of each up-count.
///
/// Jobs arriving while **zero** servers are up are counted via
/// `penalty_when_down` (e.g. a timeout); pass `None` to skip those states
/// (conditional response time).
///
/// # Errors
///
/// Returns an error when any reachable up-count makes the queue unstable
/// or parameters are invalid.
pub fn availability_weighted_response_time(
    arrival_rate: f64,
    service_rate: f64,
    up_distribution: &[(u32, f64)],
    penalty_when_down: Option<f64>,
) -> Result<f64, QueueError> {
    let mut num = 0.0;
    let mut den = 0.0;
    for &(up, p) in up_distribution {
        if p == 0.0 {
            continue;
        }
        if up == 0 {
            if let Some(penalty) = penalty_when_down {
                num += p * penalty;
                den += p;
            }
            continue;
        }
        let q = Mmc::new(arrival_rate, service_rate, up)?;
        num += p * q.mean_response_time();
        den += p;
    }
    if den == 0.0 {
        return Err(QueueError::InvalidParameter);
    }
    Ok(num / den)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_closed_form() {
        // M/M/1: W = 1/(µ-λ).
        let q = Mmc::new(0.5, 1.0, 1).unwrap();
        assert!((q.mean_response_time() - 2.0).abs() < 1e-12);
        assert!((q.probability_of_waiting() - 0.5).abs() < 1e-12);
        assert!((q.mean_jobs_in_system() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn erlang_c_known_value() {
        // a = 2 Erlang, c = 3: C(3,2) = 4/9 ≈ 0.4444.
        let q = Mmc::new(2.0, 1.0, 3).unwrap();
        assert!((q.probability_of_waiting() - 4.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn more_servers_reduce_waiting() {
        let q2 = Mmc::new(1.5, 1.0, 2).unwrap();
        let q3 = Mmc::new(1.5, 1.0, 3).unwrap();
        assert!(q3.mean_waiting_time() < q2.mean_waiting_time());
        assert!(q3.mean_response_time() < q2.mean_response_time());
    }

    #[test]
    fn unstable_queue_rejected() {
        assert!(matches!(
            Mmc::new(2.0, 1.0, 2),
            Err(QueueError::Unstable { .. })
        ));
        assert!(matches!(
            Mmc::new(3.0, 1.0, 2),
            Err(QueueError::Unstable { .. })
        ));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert_eq!(Mmc::new(0.0, 1.0, 1), Err(QueueError::InvalidParameter));
        assert_eq!(Mmc::new(1.0, -1.0, 2), Err(QueueError::InvalidParameter));
        assert_eq!(Mmc::new(1.0, 1.0, 0), Err(QueueError::InvalidParameter));
        assert_eq!(
            Mmc::new(f64::NAN, 1.0, 1),
            Err(QueueError::InvalidParameter)
        );
    }

    #[test]
    fn weighted_response_time_interpolates() {
        // Tier with 2 servers 90% of the time, 1 server 10%.
        let w = availability_weighted_response_time(0.5, 1.0, &[(2, 0.9), (1, 0.1)], None).unwrap();
        let w2 = Mmc::new(0.5, 1.0, 2).unwrap().mean_response_time();
        let w1 = Mmc::new(0.5, 1.0, 1).unwrap().mean_response_time();
        assert!((w - (0.9 * w2 + 0.1 * w1)).abs() < 1e-12);
        assert!(w2 < w && w < w1);
    }

    #[test]
    fn down_penalty_applies() {
        let with =
            availability_weighted_response_time(0.5, 1.0, &[(1, 0.99), (0, 0.01)], Some(30.0))
                .unwrap();
        let without =
            availability_weighted_response_time(0.5, 1.0, &[(1, 0.99), (0, 0.01)], None).unwrap();
        assert!(with > without);
    }

    #[test]
    fn little_law_consistency() {
        let q = Mmc::new(2.5, 1.2, 4).unwrap();
        let l = q.mean_queue_length() + q.offered_load();
        assert!((q.mean_jobs_in_system() - l).abs() < 1e-12);
    }
}
