//! Exact multi-server composition: every server's **full** lower-layer
//! net in one SRN.
//!
//! The paper's hierarchical method replaces each server by a two-state
//! abstraction (Equations (1),(2)) before composing the network — an
//! approximation. This module builds the *unreduced* composition so the
//! approximation error can be measured: analytically for small networks
//! (the state space is the product of ~25-state server spaces) and by
//! simulation for larger ones (the `aggregation_error` bench binary).

use redeval_srn::{Marking, Srn};

use crate::params::ServerParams;
use crate::server::{PatchScenario, ServerModel, ServerPlaces};

/// A network of complete server models sharing one SRN.
#[derive(Debug)]
pub struct CompositeNetwork {
    net: Srn,
    /// Per server: its tier index and its place handles.
    servers: Vec<(usize, ServerPlaces)>,
    /// Tier server counts.
    counts: Vec<u32>,
}

impl CompositeNetwork {
    /// Builds one full Figure-5 sub-net per server: tier `i` contributes
    /// `counts[i]` independent copies of `params[i]`'s server model.
    ///
    /// # Panics
    ///
    /// Panics when `params` and `counts` differ in length or a count is
    /// zero.
    pub fn build(params: &[ServerParams], counts: &[u32]) -> Self {
        assert_eq!(params.len(), counts.len(), "one count per tier");
        assert!(counts.iter().all(|&c| c > 0), "tiers need servers");
        let mut net = Srn::new("composite-network");
        let mut servers = Vec::new();
        for (tier, (p, &count)) in params.iter().zip(counts).enumerate() {
            for copy in 1..=count {
                let places = append_server(&mut net, p, &format!("{}{}", p.name, copy));
                servers.push((tier, places));
            }
        }
        CompositeNetwork {
            net,
            servers,
            counts: counts.to_vec(),
        }
    }

    /// The composed net.
    pub fn net(&self) -> &Srn {
        &self.net
    }

    /// Per-server `(tier, places)` handles.
    pub fn servers(&self) -> &[(usize, ServerPlaces)] {
        &self.servers
    }

    /// Total number of servers.
    pub fn total_servers(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// The Table-VI COA reward evaluated on a marking of the composite
    /// net: 0 when some tier has no service up, else the running fraction.
    pub fn coa_reward(&self, m: &Marking) -> f64 {
        let mut up_per_tier = vec![0u32; self.counts.len()];
        for (tier, places) in &self.servers {
            if places.service_up(m) {
                up_per_tier[*tier] += 1;
            }
        }
        if up_per_tier.contains(&0) {
            return 0.0;
        }
        f64::from(up_per_tier.iter().sum::<u32>()) / f64::from(self.total_servers())
    }

    /// Solves the composite net exactly and returns the COA.
    ///
    /// State spaces multiply (~25 states per server), so this is feasible
    /// for a handful of servers; prefer simulation beyond that.
    ///
    /// # Errors
    ///
    /// Propagates SRN errors (including state-space overflow).
    pub fn coa_exact(&self) -> Result<f64, redeval_srn::SrnError> {
        let solved = self.net.solve()?;
        Ok(solved.expected(|m| self.coa_reward(m)))
    }
}

/// Appends one server sub-net (all 16 places, 24 transitions, prefixed
/// names) to `net` and returns its place handles.
fn append_server(net: &mut Srn, params: &ServerParams, prefix: &str) -> ServerPlaces {
    // Build a standalone model to copy the structure from. Rates and
    // guards are reconstructed against the appended places.
    let template = ServerModel::build_scenario(params, PatchScenario::Full);
    let offset = net.place_count();
    // Re-add places with prefixed names.
    for pid in template.net().place_ids() {
        let name = format!("{prefix}:{}", template.net().place_name(pid));
        let tokens = template.net().initial_marking().tokens(pid);
        net.add_place(name, tokens);
    }
    let shift = |p: redeval_srn::PlaceId| redeval_srn::PlaceId::from_index(p.index() + offset);
    let tp = *template.places();
    let places = ServerPlaces {
        hw_up: shift(tp.hw_up),
        hw_down: shift(tp.hw_down),
        os_up: shift(tp.os_up),
        os_down: shift(tp.os_down),
        os_failed: shift(tp.os_failed),
        os_ready_patch: shift(tp.os_ready_patch),
        os_patched: shift(tp.os_patched),
        svc_up: shift(tp.svc_up),
        svc_down: shift(tp.svc_down),
        svc_failed: shift(tp.svc_failed),
        svc_ready_patch: shift(tp.svc_ready_patch),
        svc_patched: shift(tp.svc_patched),
        svc_ready_reboot: shift(tp.svc_ready_reboot),
        clock: shift(tp.clock),
        policy: shift(tp.policy),
        trigger: shift(tp.trigger),
    };
    crate::server::add_server_transitions(net, params, &places, &format!("{prefix}:"));
    places
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::ServerAnalysis;
    use crate::network::{NetworkModel, Tier};
    use crate::params::Durations;

    /// A sped-up server so failure/patch events are not vanishingly rare
    /// (tightens simulation/solver comparisons).
    fn fast_server(name: &str) -> ServerParams {
        ServerParams::builder(name)
            .patch_interval(Durations::hours(72.0))
            .service_patch(Durations::minutes(30.0), Durations::minutes(15.0))
            .os_patch(Durations::minutes(60.0), Durations::minutes(30.0))
            .build()
    }

    #[test]
    fn single_server_composite_matches_server_model() {
        let p = fast_server("a");
        let composite = CompositeNetwork::build(std::slice::from_ref(&p), &[1]);
        let exact = composite.coa_exact().unwrap();
        // One server: COA == availability of the lone service.
        let a = ServerAnalysis::of(&p).unwrap();
        assert!(
            (exact - a.availability()).abs() < 1e-9,
            "{exact} vs {}",
            a.availability()
        );
    }

    #[test]
    fn two_server_composite_close_to_aggregated_model() {
        // The hierarchical (aggregated) model is an approximation; for
        // two independent servers the error should be small but the
        // *exact* value is the composite's.
        let p = fast_server("a");
        let composite = CompositeNetwork::build(&[p.clone(), p.clone()], &[1, 1]);
        let exact = composite.coa_exact().unwrap();

        let a = ServerAnalysis::of(&p).unwrap();
        let aggregated = NetworkModel::new(vec![
            Tier::new("a", 1, a.rates()),
            Tier::new("b", 1, a.rates()),
        ])
        .coa()
        .unwrap();
        // The paper's upper layer deliberately models *patch* downtime
        // only ("we only consider the states and transitions caused by
        // patch"), so the aggregated COA overestimates the exact value by
        // roughly the per-server failure downtime (~0.2–0.5 % for these
        // sped-up parameters).
        let err = aggregated - exact;
        assert!(
            err > 1e-4,
            "aggregation should overestimate: {exact} vs {aggregated}"
        );
        assert!(err < 1e-2, "exact {exact} vs aggregated {aggregated}");
    }

    #[test]
    fn composite_state_space_is_product_sized() {
        let p = fast_server("a");
        let single = ServerModel::build(&p).net().state_space().unwrap().len();
        let composite = CompositeNetwork::build(&[p], &[2]);
        let double = composite.net().state_space().unwrap().len();
        assert_eq!(double, single * single);
    }

    #[test]
    fn coa_reward_zeroes_on_empty_tier() {
        let p = fast_server("a");
        let composite = CompositeNetwork::build(&[p.clone(), p], &[1, 2]);
        let m0 = composite.net().initial_marking();
        assert_eq!(composite.coa_reward(&m0), 1.0);
        assert_eq!(composite.total_servers(), 3);
    }

    #[test]
    #[should_panic(expected = "one count per tier")]
    fn mismatched_counts_panic() {
        let p = fast_server("a");
        let _ = CompositeNetwork::build(&[p], &[1, 2]);
    }
}
