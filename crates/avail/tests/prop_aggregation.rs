//! Property-based tests for the availability models.

use proptest::prelude::*;
use redeval_avail::{AggregatedRates, Durations, NetworkModel, ServerParams, Tier};

fn minutes() -> impl Strategy<Value = Durations> {
    (1.0f64..90.0).prop_map(Durations::minutes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any patch-duration mix, the aggregated MTTR approximates the
    /// patch-cycle length (failures only perturb it slightly), and the
    /// aggregated two-state abstraction reproduces the exact patch-downtime
    /// probability.
    #[test]
    fn aggregation_matches_cycle(
        svc_patch in minutes(),
        os_patch in minutes(),
        svc_reboot in minutes(),
        os_reboot in minutes(),
    ) {
        let params = ServerParams::builder("x")
            .service_patch(svc_patch, svc_reboot)
            .os_patch(os_patch, os_reboot)
            .build();
        let a = params.analyze().unwrap();
        let cycle = params.patch_cycle().as_hours();
        let mttr = a.rates().mttr();
        let rel = (mttr - cycle).abs() / cycle;
        prop_assert!(rel < 0.02, "cycle {cycle} vs mttr {mttr}");
        // Two-state abstraction vs exact patch-downtime probability.
        let approx = a.rates().down_probability();
        let exact = a.p_patch_down();
        prop_assert!((approx - exact).abs() / exact < 0.05);
        // λ_eq is always the clock rate.
        prop_assert!((a.rates().lambda_eq - params.patch_interval.rate_per_hour()).abs() < 1e-12);
    }

    /// Probability mass of the server chain is fully accounted for.
    #[test]
    fn server_mass_conserved(svc_patch in minutes(), os_patch in minutes()) {
        let params = ServerParams::builder("x")
            .service_patch(svc_patch, Durations::minutes(5.0))
            .os_patch(os_patch, Durations::minutes(10.0))
            .build();
        let a = params.analyze().unwrap();
        let total = a.availability() + a.p_patch_down() + a.p_failed();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(a.availability() > 0.9);
    }

    /// The paper's redundancy claim, stated precisely: duplicating a
    /// *single-server* tier raises COA (it removes a zero-capacity state),
    /// and plain availability is monotone under adding a server to any
    /// tier. (COA itself is NOT monotone for already-redundant tiers: the
    /// extra server dilutes the capacity fraction — a fact this suite
    /// originally discovered via proptest.)
    #[test]
    fn coa_rises_when_duplicating_single_server_tier(
        counts in prop::collection::vec(1u32..4, 1..4),
        mttrs in prop::collection::vec(0.2f64..3.0, 1..4),
        bump in 0usize..4,
    ) {
        let k = counts.len().min(mttrs.len());
        let tiers: Vec<Tier> = (0..k)
            .map(|i| Tier::new(
                format!("t{i}"),
                counts[i],
                AggregatedRates { lambda_eq: 1.0 / 720.0, mu_eq: 1.0 / mttrs[i] },
            ))
            .collect();
        let base = NetworkModel::new(tiers.clone());
        let mut bumped = tiers;
        let b = bump % k;
        bumped[b] = Tier::new(
            bumped[b].name.clone(),
            bumped[b].count + 1,
            bumped[b].rates,
        );
        let was_single = base.tiers()[b].count == 1;
        let more = NetworkModel::new(bumped);
        if was_single {
            prop_assert!(more.coa().unwrap() >= base.coa().unwrap() - 1e-12);
        }
        prop_assert!(more.availability().unwrap() >= base.availability().unwrap() - 1e-12);
    }

    /// Product form equals the composed-SRN solution on random networks.
    #[test]
    fn product_form_equals_srn(
        counts in prop::collection::vec(1u32..4, 1..4),
        mttrs in prop::collection::vec(0.2f64..3.0, 1..4),
    ) {
        let k = counts.len().min(mttrs.len());
        let tiers: Vec<Tier> = (0..k)
            .map(|i| Tier::new(
                format!("t{i}"),
                counts[i],
                AggregatedRates { lambda_eq: 1.0 / 720.0, mu_eq: 1.0 / mttrs[i] },
            ))
            .collect();
        let model = NetworkModel::new(tiers);
        let a = model.coa().unwrap();
        let b = model.coa_via_srn().unwrap();
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    /// COA ≤ availability ≤ 1 and expected-up ≤ total.
    #[test]
    fn measure_orderings(
        counts in prop::collection::vec(1u32..5, 1..5),
        mttrs in prop::collection::vec(0.2f64..3.0, 1..5),
    ) {
        let k = counts.len().min(mttrs.len());
        let tiers: Vec<Tier> = (0..k)
            .map(|i| Tier::new(
                format!("t{i}"),
                counts[i],
                AggregatedRates { lambda_eq: 1.0 / 720.0, mu_eq: 1.0 / mttrs[i] },
            ))
            .collect();
        let model = NetworkModel::new(tiers);
        let coa = model.coa().unwrap();
        let avail = model.availability().unwrap();
        prop_assert!(coa <= avail + 1e-12);
        prop_assert!(avail <= 1.0 + 1e-12);
        prop_assert!(model.expected_up_servers().unwrap() <= model.total_servers() as f64 + 1e-9);
    }
}
