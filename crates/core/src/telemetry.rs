//! Zero-dependency telemetry: deterministic counters plus optional
//! wall-clock spans.
//!
//! The subsystem keeps two strictly separated kinds of signal:
//!
//! * **Deterministic counters** — monotone `u64` sums (solver
//!   iterations, cache hits/solves/relabels, boxes pruned, masks
//!   skipped, pool batches/jobs) plus one order-independent `f64`
//!   maximum (the worst solver residual). Every counter is a function
//!   of the *work done*, never of the schedule: the batch layer
//!   single-flights cache solves and partitions fixed grids, so the
//!   same request produces byte-identical counter snapshots at any
//!   thread count. That is what lets tests assert them and goldens pin
//!   them.
//! * **Wall-clock spans** — hierarchical timed regions recorded only in
//!   profiling mode. Timings are machine- and run-dependent by nature,
//!   so they are *never* part of canonical report bytes; they surface
//!   through the `--profile` Chrome-trace file and its stderr summary.
//!
//! The default handle is a no-op ([`Telemetry::noop`]): one `Option`
//! check per call site, no allocation, no locks — the uninstrumented
//! hot path costs nothing. [`Telemetry::counters`] enables counters
//! only (relaxed atomics); [`Telemetry::profiler`] additionally records
//! spans.
//!
//! # Examples
//!
//! ```
//! use redeval::telemetry::{Counter, Telemetry};
//!
//! let tel = Telemetry::counters();
//! tel.add(Counter::CacheHits, 2);
//! let snap = tel.snapshot();
//! assert_eq!(snap.get(Counter::CacheHits), 2);
//! assert!(snap.to_json().contains("\"cache_hits\":2"));
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use redeval_markov::SolveStats;

/// The deterministic counters tracked by [`Telemetry`].
///
/// Each is a monotone sum over completed work items; see the
/// [module docs](self) for the determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// CTMC steady-state solves performed (cache misses, not hits).
    SolverSolves,
    /// Total iterations/sweeps across all solves (0 per direct solve).
    SolverIterations,
    /// Total tangible states across all solved chains.
    SolverStates,
    /// Analysis-cache requests served from a cached solve.
    CacheHits,
    /// Analysis-cache misses that performed a solve.
    CacheSolves,
    /// Cache hits that only swapped the tier label (subset of hits).
    CacheRelabels,
    /// Scenario groups (cells) evaluated by the batch executor.
    CellsEvaluated,
    /// Design evaluations produced (one per scenario).
    DesignsEvaluated,
    /// HARM attack-model constructions.
    HarmBuilds,
    /// Batches submitted to the execution layer.
    PoolBatches,
    /// Jobs (cells) dispatched across all batches.
    PoolJobs,
    /// Optimizer boxes taken off the work list.
    BoxesExplored,
    /// Optimizer boxes discharged by bound reasoning alone.
    BoxesPruned,
    /// Attacker best-response entry masks evaluated exactly.
    MasksEvaluated,
    /// Attacker masks skipped by the union-bound prune.
    MasksPruned,
    /// Attacker–defender best-response rounds run.
    EquilibriumRounds,
}

/// Counter names in declaration order — the stable key order of every
/// snapshot serialization.
const COUNTER_NAMES: [&str; COUNTER_COUNT] = [
    "solver_solves",
    "solver_iterations",
    "solver_states",
    "cache_hits",
    "cache_solves",
    "cache_relabels",
    "cells_evaluated",
    "designs_evaluated",
    "harm_builds",
    "pool_batches",
    "pool_jobs",
    "boxes_explored",
    "boxes_pruned",
    "masks_evaluated",
    "masks_pruned",
    "equilibrium_rounds",
];

/// Number of counters (the length of [`Counter`]'s variant list).
const COUNTER_COUNT: usize = 16;

/// An immutable copy of every deterministic counter at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSnapshot {
    values: [u64; COUNTER_COUNT],
    /// The largest final residual `‖πQ‖∞` over all solves (`0.0` when
    /// nothing was solved). A maximum is order-independent, so this
    /// stays deterministic where an `f64` sum would not.
    pub solver_residual_max: f64,
}

impl CounterSnapshot {
    /// An all-zero snapshot (what a no-op handle reports).
    pub fn zero() -> Self {
        CounterSnapshot {
            values: [0; COUNTER_COUNT],
            solver_residual_max: 0.0,
        }
    }

    /// The value of one counter.
    pub fn get(&self, counter: Counter) -> u64 {
        self.values[counter as usize]
    }

    /// `(name, value)` pairs in the stable declaration order.
    pub fn entries(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        COUNTER_NAMES
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// Cache hit rate over all cache requests, in `[0, 1]` (`0` when the
    /// cache was never consulted).
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.get(Counter::CacheHits);
        let total = hits + self.get(Counter::CacheSolves);
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Fraction of explored optimizer boxes discharged by bounds alone
    /// (`0` when the optimizer never ran).
    pub fn prune_ratio(&self) -> f64 {
        let pruned = self.get(Counter::BoxesPruned);
        let explored = self.get(Counter::BoxesExplored);
        if explored == 0 {
            0.0
        } else {
            pruned as f64 / explored as f64
        }
    }

    /// The snapshot as one JSON object with keys in declaration order —
    /// byte-identical for identical counter values, which is what the
    /// trace-file contract pins across thread counts.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (name, value) in self.entries() {
            let _ = write!(out, "\"{name}\":{value},");
        }
        let _ = write!(
            out,
            "\"solver_residual_max\":{:?}",
            self.solver_residual_max
        );
        out.push('}');
        out
    }
}

/// One completed wall-clock span (profiling mode only).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The span label.
    pub name: String,
    /// Ordinal of the recording thread (first-seen order).
    pub tid: u64,
    /// Start offset from the handle's creation, in nanoseconds.
    pub start_ns: u64,
    /// End offset from the handle's creation, in nanoseconds.
    pub end_ns: u64,
}

/// Span storage: an epoch for relative timestamps, the completed spans
/// and the thread-ordinal registry.
struct SpanLog {
    epoch: Instant,
    records: Mutex<Vec<SpanRecord>>,
    tids: Mutex<HashMap<std::thread::ThreadId, u64>>,
}

impl SpanLog {
    fn new() -> Self {
        SpanLog {
            epoch: Instant::now(),
            records: Mutex::new(Vec::new()),
            tids: Mutex::new(HashMap::new()),
        }
    }

    fn tid(&self) -> u64 {
        let mut tids = self.tids.lock().expect("telemetry tid lock");
        let next = tids.len() as u64;
        *tids.entry(std::thread::current().id()).or_insert(next)
    }
}

struct Inner {
    counters: [AtomicU64; COUNTER_COUNT],
    /// Bits of the max residual; residuals are non-negative, so IEEE
    /// order equals integer order of the bit patterns and `fetch_max`
    /// implements an atomic `f64` maximum.
    residual_bits: AtomicU64,
    spans: Option<SpanLog>,
}

impl Inner {
    fn new(spans: bool) -> Self {
        Inner {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            residual_bits: AtomicU64::new(0),
            spans: spans.then(SpanLog::new),
        }
    }
}

/// A cheaply cloneable telemetry handle; see the [module docs](self).
///
/// All clones share one underlying sink, so counters recorded anywhere
/// in a pipeline aggregate into one snapshot. The [`Default`] handle is
/// a no-op.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Telemetry(noop)"),
            Some(i) if i.spans.is_some() => write!(f, "Telemetry(profiler)"),
            Some(_) => write!(f, "Telemetry(counters)"),
        }
    }
}

impl Telemetry {
    /// The disabled handle: every call is a no-op.
    pub fn noop() -> Self {
        Telemetry { inner: None }
    }

    /// A handle recording deterministic counters only.
    pub fn counters() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner::new(false))),
        }
    }

    /// A handle recording counters *and* wall-clock spans.
    pub fn profiler() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner::new(true))),
        }
    }

    /// Whether this handle records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether this handle records wall-clock spans.
    pub fn is_profiling(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.spans.is_some())
    }

    /// Adds `n` to `counter` (no-op when disabled).
    pub fn add(&self, counter: Counter, n: u64) {
        if let Some(inner) = &self.inner {
            inner.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records one completed CTMC solve: solve count, iteration and
    /// state totals, and the residual maximum.
    pub fn record_solve(&self, stats: &SolveStats) {
        if let Some(inner) = &self.inner {
            inner.counters[Counter::SolverSolves as usize].fetch_add(1, Ordering::Relaxed);
            inner.counters[Counter::SolverIterations as usize]
                .fetch_add(stats.iterations as u64, Ordering::Relaxed);
            inner.counters[Counter::SolverStates as usize]
                .fetch_add(stats.states as u64, Ordering::Relaxed);
            inner
                .residual_bits
                .fetch_max(stats.residual.max(0.0).to_bits(), Ordering::Relaxed);
        }
    }

    /// Opens a wall-clock span; the returned guard records it when
    /// dropped. A no-op unless [`is_profiling`](Telemetry::is_profiling).
    pub fn span(&self, name: impl Into<String>) -> Span {
        let active = self
            .inner
            .as_ref()
            .filter(|i| i.spans.is_some())
            .map(|i| (Arc::clone(i), name.into(), Instant::now()));
        Span { active }
    }

    /// A copy of every counter at this instant.
    pub fn snapshot(&self) -> CounterSnapshot {
        match &self.inner {
            None => CounterSnapshot::zero(),
            Some(inner) => CounterSnapshot {
                values: std::array::from_fn(|i| inner.counters[i].load(Ordering::Relaxed)),
                solver_residual_max: f64::from_bits(inner.residual_bits.load(Ordering::Relaxed)),
            },
        }
    }

    /// The completed spans recorded so far (empty unless profiling).
    pub fn spans(&self) -> Vec<SpanRecord> {
        match self.inner.as_ref().and_then(|i| i.spans.as_ref()) {
            None => Vec::new(),
            Some(log) => log.records.lock().expect("telemetry span lock").clone(),
        }
    }

    /// The profile as Chrome trace format JSON (`chrome://tracing`,
    /// Perfetto): complete `"X"` duration events plus a top-level
    /// `"counters"` object. The counters object is byte-identical across
    /// thread counts; the events are wall-clock and are not.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut spans = self.spans();
        spans.sort_by_key(|s| (s.tid, s.start_ns, std::cmp::Reverse(s.end_ns)));
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
                escape_json(&s.name),
                s.tid,
                s.start_ns as f64 / 1000.0,
                (s.end_ns - s.start_ns) as f64 / 1000.0,
            );
        }
        out.push_str("],\"counters\":");
        out.push_str(&self.snapshot().to_json());
        out.push('}');
        out
    }

    /// A human-readable summary: the counter rollup plus (when
    /// profiling) the span tree with per-name call counts and total
    /// wall-clock time. Intended for stderr, never for canonical report
    /// bytes.
    pub fn text_summary(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::from("telemetry counters (deterministic):\n");
        let width = COUNTER_NAMES.iter().map(|n| n.len()).max().unwrap_or(0);
        for (name, value) in snap.entries() {
            let _ = writeln!(out, "  {name:<width$}  {value}");
        }
        let _ = writeln!(
            out,
            "  {:<width$}  {:?}",
            "solver_residual_max", snap.solver_residual_max
        );
        let spans = self.spans();
        if !spans.is_empty() {
            out.push_str("span tree (wall clock; merged by name, threads flattened):\n");
            out.push_str(&span_tree(&spans));
        }
        out
    }
}

/// RAII guard for one wall-clock span; recording happens on drop.
#[must_use = "a span measures the region until the guard drops"]
pub struct Span {
    active: Option<(Arc<Inner>, String, Instant)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((inner, name, start)) = self.active.take() {
            let log = inner.spans.as_ref().expect("span implies span log");
            let end = Instant::now();
            let start_ns = start.saturating_duration_since(log.epoch).as_nanos() as u64;
            let end_ns = end.saturating_duration_since(log.epoch).as_nanos() as u64;
            let tid = log.tid();
            log.records
                .lock()
                .expect("telemetry span lock")
                .push(SpanRecord {
                    name,
                    tid,
                    start_ns,
                    end_ns,
                });
        }
    }
}

/// Aggregated node of the rendered span tree.
#[derive(Default)]
struct TreeNode {
    calls: u64,
    total_ns: u64,
    children: Vec<(String, TreeNode)>,
}

impl TreeNode {
    fn child(&mut self, name: &str) -> &mut TreeNode {
        if let Some(i) = self.children.iter().position(|(n, _)| n == name) {
            return &mut self.children[i].1;
        }
        self.children.push((name.to_string(), TreeNode::default()));
        let last = self.children.len() - 1;
        &mut self.children[last].1
    }

    fn render(&self, depth: usize, out: &mut String) {
        for (name, node) in &self.children {
            let _ = writeln!(
                out,
                "  {:indent$}- {name}: {} call{}, {:.3} ms",
                "",
                node.calls,
                if node.calls == 1 { "" } else { "s" },
                node.total_ns as f64 / 1e6,
                indent = depth * 2,
            );
            node.render(depth + 1, out);
        }
    }
}

/// Reconstructs per-thread nesting by interval containment and merges
/// same-named siblings. Cross-thread parentage is not tracked: spans
/// opened on a worker thread root at that thread's top level.
fn span_tree(spans: &[SpanRecord]) -> String {
    let mut sorted: Vec<&SpanRecord> = spans.iter().collect();
    sorted.sort_by_key(|s| (s.tid, s.start_ns, std::cmp::Reverse(s.end_ns)));
    let mut root = TreeNode::default();
    // Stack of (tid, end_ns, path) — path is the name chain to the node.
    let mut stack: Vec<(u64, u64, Vec<String>)> = Vec::new();
    for s in sorted {
        while let Some((tid, end, _)) = stack.last() {
            if *tid != s.tid || *end < s.end_ns {
                stack.pop();
            } else {
                break;
            }
        }
        let mut path: Vec<String> = stack.last().map(|(_, _, p)| p.clone()).unwrap_or_default();
        path.push(s.name.clone());
        let mut node = &mut root;
        for name in &path {
            node = node.child(name);
        }
        node.calls += 1;
        node.total_ns += s.end_ns - s.start_ns;
        stack.push((s.tid, s.end_ns, path));
    }
    let mut out = String::new();
    root.render(0, &mut out);
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_records_nothing_and_is_default() {
        let tel = Telemetry::default();
        assert!(!tel.is_enabled());
        assert!(!tel.is_profiling());
        tel.add(Counter::CacheHits, 5);
        let _span = tel.span("ignored");
        drop(_span);
        assert_eq!(tel.snapshot(), CounterSnapshot::zero());
        assert!(tel.spans().is_empty());
    }

    #[test]
    fn counters_accumulate_across_clones() {
        let tel = Telemetry::counters();
        let clone = tel.clone();
        tel.add(Counter::BoxesPruned, 2);
        clone.add(Counter::BoxesPruned, 3);
        assert_eq!(tel.snapshot().get(Counter::BoxesPruned), 5);
        assert!(!tel.is_profiling(), "counters mode records no spans");
        let _ = tel.span("not recorded");
        assert!(tel.spans().is_empty());
    }

    #[test]
    fn record_solve_sums_and_maxes() {
        use redeval_markov::{SolveStats, SteadyStateMethod};
        let tel = Telemetry::counters();
        tel.record_solve(&SolveStats {
            method: SteadyStateMethod::Gth,
            iterations: 0,
            residual: 1e-14,
            states: 10,
        });
        tel.record_solve(&SolveStats {
            method: SteadyStateMethod::GaussSeidel,
            iterations: 42,
            residual: 3e-15,
            states: 7,
        });
        let snap = tel.snapshot();
        assert_eq!(snap.get(Counter::SolverSolves), 2);
        assert_eq!(snap.get(Counter::SolverIterations), 42);
        assert_eq!(snap.get(Counter::SolverStates), 17);
        assert_eq!(snap.solver_residual_max, 1e-14);
    }

    #[test]
    fn snapshot_json_has_stable_key_order() {
        let tel = Telemetry::counters();
        tel.add(Counter::CacheHits, 1);
        let json = tel.snapshot().to_json();
        assert!(json.starts_with("{\"solver_solves\":0,"));
        assert!(json.ends_with("\"solver_residual_max\":0.0}"));
        let hits = json.find("\"cache_hits\":1").expect("hits present");
        let solves = json.find("\"cache_solves\":0").expect("solves present");
        assert!(hits < solves, "declaration order preserved");
        // Identical counters serialize byte-identically.
        assert_eq!(json, tel.snapshot().to_json());
    }

    #[test]
    fn profiler_records_nested_spans() {
        let tel = Telemetry::profiler();
        {
            let _outer = tel.span("outer");
            let _inner = tel.span("inner");
        }
        let spans = tel.spans();
        assert_eq!(spans.len(), 2);
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        assert!(outer.start_ns <= inner.start_ns && inner.end_ns <= outer.end_ns);
        let tree = tel.text_summary();
        let outer_at = tree.find("- outer:").expect("outer in tree");
        let inner_at = tree.find("- inner:").expect("inner in tree");
        assert!(outer_at < inner_at, "inner nests under outer");
    }

    #[test]
    fn chrome_trace_is_json_shaped_and_carries_counters() {
        let tel = Telemetry::profiler();
        tel.add(Counter::PoolJobs, 3);
        {
            let _s = tel.span("solve \"q\"");
        }
        let json = tel.chrome_trace_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("solve \\\"q\\\""), "names are escaped");
        assert!(json.contains("\"counters\":{\"solver_solves\":0,"));
        assert!(json.contains("\"pool_jobs\":3"));
        assert!(json.ends_with("}"));
    }

    #[test]
    fn derived_rates_guard_division_by_zero() {
        let snap = CounterSnapshot::zero();
        assert_eq!(snap.cache_hit_rate(), 0.0);
        assert_eq!(snap.prune_ratio(), 0.0);
        let tel = Telemetry::counters();
        tel.add(Counter::CacheHits, 3);
        tel.add(Counter::CacheSolves, 1);
        tel.add(Counter::BoxesExplored, 8);
        tel.add(Counter::BoxesPruned, 2);
        let snap = tel.snapshot();
        assert_eq!(snap.cache_hit_rate(), 0.75);
        assert_eq!(snap.prune_ratio(), 0.25);
    }

    #[test]
    fn handles_are_send_sync() {
        fn ok<T: Send + Sync>() {}
        ok::<Telemetry>();
        ok::<CounterSnapshot>();
    }
}
