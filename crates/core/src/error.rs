use std::error::Error;
use std::fmt;

use redeval_markov::SolveError;
use redeval_srn::SrnError;

use crate::scenario::ScenarioError;

/// A structural defect in a [`NetworkSpec`](crate::NetworkSpec), reported
/// by the validating constructor
/// [`NetworkSpec::try_new`](crate::NetworkSpec::try_new).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecIssue {
    /// The specification has no tiers at all.
    EmptyTiers,
    /// A tier-level edge references a tier index that does not exist.
    EdgeOutOfRange {
        /// Source tier index of the offending edge.
        from: usize,
        /// Destination tier index of the offending edge.
        to: usize,
        /// Number of tiers in the specification.
        tiers: usize,
    },
    /// A tier-level edge connects a tier to itself (the attack graph
    /// forbids self edges, so this must fail at validation, not as a
    /// panic inside HARM construction).
    SelfEdge {
        /// The offending tier index.
        tier: usize,
    },
    /// No tier is marked as an attacker entry point.
    NoEntryTier,
    /// No tier is marked as the attack target.
    NoTargetTier,
    /// More entry tiers than the attacker-strategy enumeration of
    /// [`equilibrium`](crate::equilibrium) can cover (its candidate space
    /// is every non-empty entry-tier subset, `2^entries − 1` masks).
    TooManyEntryTiers {
        /// Entry tiers in the specification.
        entries: usize,
        /// The enumeration limit
        /// ([`MAX_ENTRY_TIERS`](crate::equilibrium::MAX_ENTRY_TIERS)).
        max: usize,
    },
}

impl fmt::Display for SpecIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecIssue::EmptyTiers => write!(f, "at least one tier required"),
            SpecIssue::EdgeOutOfRange { from, to, tiers } => {
                write!(f, "edge out of range: ({from}, {to}) with {tiers} tiers")
            }
            SpecIssue::SelfEdge { tier } => {
                write!(f, "self edge on tier {tier} is not allowed")
            }
            SpecIssue::NoEntryTier => write!(f, "no entry tier"),
            SpecIssue::NoTargetTier => write!(f, "no target tier"),
            SpecIssue::TooManyEntryTiers { entries, max } => write!(
                f,
                "{entries} entry tiers exceed the equilibrium attacker-strategy \
                 limit of {max}"
            ),
        }
    }
}

/// Errors surfaced by the evaluation pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// An availability SRN failed to build or solve.
    Srn(SrnError),
    /// A Markov-chain solve failed.
    Solve(SolveError),
    /// A design supplied the wrong number of tier counts.
    CountMismatch {
        /// Tiers in the base specification.
        expected: usize,
        /// Counts supplied.
        got: usize,
    },
    /// A design asked for zero servers in some tier.
    ZeroServers {
        /// The offending tier name.
        tier: String,
    },
    /// A network specification is structurally invalid (see [`SpecIssue`]).
    InvalidSpec(SpecIssue),
    /// A scenario document failed to parse or validate (see
    /// [`ScenarioError`]).
    Scenario(ScenarioError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Srn(e) => write!(f, "availability model failed: {e}"),
            EvalError::Solve(e) => write!(f, "markov solve failed: {e}"),
            EvalError::CountMismatch { expected, got } => {
                write!(
                    f,
                    "design has {got} tier counts, specification has {expected} tiers"
                )
            }
            EvalError::ZeroServers { tier } => {
                write!(f, "tier `{tier}` needs at least one server")
            }
            EvalError::InvalidSpec(issue) => write!(f, "invalid specification: {issue}"),
            EvalError::Scenario(e) => write!(f, "invalid scenario: {e}"),
        }
    }
}

impl Error for EvalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EvalError::Srn(e) => Some(e),
            EvalError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SrnError> for EvalError {
    fn from(e: SrnError) -> Self {
        EvalError::Srn(e)
    }
}

impl From<SolveError> for EvalError {
    fn from(e: SolveError) -> Self {
        EvalError::Solve(e)
    }
}

impl From<SpecIssue> for EvalError {
    fn from(issue: SpecIssue) -> Self {
        EvalError::InvalidSpec(issue)
    }
}

impl From<ScenarioError> for EvalError {
    fn from(e: ScenarioError) -> Self {
        EvalError::Scenario(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sources() {
        let e = EvalError::from(SolveError::Reducible);
        assert!(e.source().is_some());
        let e = EvalError::from(SrnError::VanishingLoop);
        assert!(e.to_string().contains("availability model"));
    }

    #[test]
    fn is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<EvalError>();
    }

    #[test]
    fn spec_issue_messages_match_the_legacy_panics() {
        // `NetworkSpec::new` panics with these Display strings, so the
        // wording is part of the (tested) public behaviour.
        assert_eq!(
            SpecIssue::EmptyTiers.to_string(),
            "at least one tier required"
        );
        assert_eq!(SpecIssue::NoEntryTier.to_string(), "no entry tier");
        assert_eq!(SpecIssue::NoTargetTier.to_string(), "no target tier");
        assert!(SpecIssue::EdgeOutOfRange {
            from: 2,
            to: 5,
            tiers: 3
        }
        .to_string()
        .contains("edge out of range"));
        let e = EvalError::from(SpecIssue::NoTargetTier);
        assert!(e.to_string().contains("invalid specification"));
    }
}
