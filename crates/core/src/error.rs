use std::error::Error;
use std::fmt;

use redeval_markov::SolveError;
use redeval_srn::SrnError;

/// Errors surfaced by the evaluation pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// An availability SRN failed to build or solve.
    Srn(SrnError),
    /// A Markov-chain solve failed.
    Solve(SolveError),
    /// A design supplied the wrong number of tier counts.
    CountMismatch {
        /// Tiers in the base specification.
        expected: usize,
        /// Counts supplied.
        got: usize,
    },
    /// A design asked for zero servers in some tier.
    ZeroServers {
        /// The offending tier name.
        tier: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Srn(e) => write!(f, "availability model failed: {e}"),
            EvalError::Solve(e) => write!(f, "markov solve failed: {e}"),
            EvalError::CountMismatch { expected, got } => {
                write!(
                    f,
                    "design has {got} tier counts, specification has {expected} tiers"
                )
            }
            EvalError::ZeroServers { tier } => {
                write!(f, "tier `{tier}` needs at least one server")
            }
        }
    }
}

impl Error for EvalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EvalError::Srn(e) => Some(e),
            EvalError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SrnError> for EvalError {
    fn from(e: SrnError) -> Self {
        EvalError::Srn(e)
    }
}

impl From<SolveError> for EvalError {
    fn from(e: SolveError) -> Self {
        EvalError::Solve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sources() {
        let e = EvalError::from(SolveError::Reducible);
        assert!(e.source().is_some());
        let e = EvalError::from(SrnError::VanishingLoop);
        assert!(e.to_string().contains("availability model"));
    }

    #[test]
    fn is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<EvalError>();
    }
}
