//! `redeval` — security and capacity-oriented-availability evaluation of
//! server-redundancy designs under security patching.
//!
//! This crate is the top of the workspace reproducing *“Evaluating Security
//! and Availability of Multiple Redundancy Designs when Applying Security
//! Patches”* (Ge, Kim & Kim, DSN 2017). It wires the substrates together
//! into the paper's three-phase approach:
//!
//! 1. **Inputs** ([`NetworkSpec`]/[`TierSpec`]): network topology,
//!    per-tier vulnerability trees (Table I), failure/recovery/patch rates
//!    (Table IV) and the patch policy;
//! 2. **Model construction**: a two-layer HARM per design
//!    ([`NetworkSpec::build_harm`]) and the hierarchical SRN availability
//!    model ([`Evaluator`] aggregates each tier's lower-layer SRN via the
//!    paper's Equations (1),(2) and composes the upper layer);
//! 3. **Evaluation**: security metrics before/after patch, COA
//!    ([`DesignEvaluation`]), the decision functions of Equations (3),(4)
//!    ([`decision`]), and chart data for the paper's Figures 6 and 7
//!    ([`charts`]). Sweeps over designs × patch policies × schedule
//!    parameters run on the batch execution layer ([`exec`]) — a scoped
//!    worker pool with a shared cache of the per-tier SRN solves. All
//!    tabular results flow through the deterministic structured-output
//!    model ([`output`]), whose canonical JSON is what the golden-corpus
//!    regression tests pin.
//!
//! The complete case study of the paper lives in [`case_study`].
//!
//! # Examples
//!
//! Evaluate the paper's five redundancy designs and pick the ones meeting
//! an administrator's bounds:
//!
//! ```
//! use redeval::case_study;
//! use redeval::decision::ScatterBounds;
//!
//! # fn main() -> Result<(), redeval::EvalError> {
//! let evaluator = case_study::evaluator()?;
//! let designs = case_study::five_designs();
//! let evals: Vec<_> = designs
//!     .iter()
//!     .map(|d| evaluator.evaluate(&d.name, &d.counts))
//!     .collect::<Result<_, _>>()?;
//!
//! // Region 1 of the paper: φ = 0.2, ψ = 0.9962.
//! let bounds = ScatterBounds { max_asp: 0.2, min_coa: 0.9962 };
//! let chosen: Vec<&str> = evals
//!     .iter()
//!     .filter(|e| bounds.satisfied(e))
//!     .map(|e| e.name.as_str())
//!     .collect();
//! assert_eq!(chosen, ["1 DNS + 1 WEB + 2 APP + 1 DB",
//!                     "1 DNS + 1 WEB + 1 APP + 2 DB"]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case_study;
pub mod charts;
pub mod cost;
pub mod decision;
pub mod equilibrium;
mod error;
mod evaluation;
pub mod exec;
pub mod optimize;
pub mod output;
pub mod report;
pub mod scenario;
pub mod sensitivity;
mod spec;
pub mod telemetry;

pub use equilibrium::{EquilibriumAnalyzer, EquilibriumOutcome};
pub use error::{EvalError, SpecIssue};
pub use evaluation::{DesignEvaluation, Evaluator, ParsePolicyError, PatchPolicy};
pub use exec::{AnalysisCache, Experiment, Pool, Scenario, Sweep};
pub use optimize::{OptimizeOutcome, Optimizer};
pub use scenario::{ScenarioDoc, ScenarioError};
pub use spec::{Design, NetworkSpec, TierSpec};
pub use telemetry::{Counter, CounterSnapshot, Telemetry};

// Re-export the substrate vocabulary users need at this level.
pub use redeval_avail::{AggregatedRates, Durations, NetworkModel, ServerParams, Tier};
pub use redeval_harm::{
    AspStrategy, AttackGraph, AttackTree, Harm, MetricsConfig, OrCombine, SecurityMetrics,
    Vulnerability,
};
