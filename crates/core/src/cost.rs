//! Operational-cost extension (the paper's Section V "other metrics").
//!
//! The paper proposes comparing redundancy designs economically: the gain
//! of high availability versus the cost of redundant servers, and the loss
//! from successful attacks versus the cost of patching. This module
//! implements that trade-off as a simple expected-monthly-cost model so
//! the `cost` bench binary can rank designs.

use crate::evaluation::DesignEvaluation;

/// Monetary parameters of the cost model (currency-agnostic units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed cost of operating one server for a month (hardware,
    /// licensing, energy).
    pub server_month: f64,
    /// Revenue lost per hour of *lost capacity* (weighted by 1 − COA).
    pub downtime_hour: f64,
    /// Expected loss of one successful compromise of the target data.
    pub breach: f64,
    /// Hours in the accounting period (the paper's monthly cycle: 720).
    pub period_hours: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            server_month: 500.0,
            downtime_hour: 1000.0,
            breach: 100_000.0,
            period_hours: 720.0,
        }
    }
}

/// Cost breakdown of one design for one period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// Server operating cost.
    pub servers: f64,
    /// Expected capacity-loss cost `(1 − COA) · hours · rate`.
    pub downtime: f64,
    /// Expected breach cost `ASP_after · breach` (one campaign per
    /// period).
    pub breach: f64,
}

impl CostBreakdown {
    /// Total expected cost.
    pub fn total(&self) -> f64 {
        self.servers + self.downtime + self.breach
    }
}

impl CostModel {
    /// Expected monthly cost of a design.
    pub fn evaluate(&self, e: &DesignEvaluation) -> CostBreakdown {
        CostBreakdown {
            servers: e.total_servers() as f64 * self.server_month,
            downtime: (1.0 - e.coa) * self.period_hours * self.downtime_hour,
            breach: e.after.attack_success_probability * self.breach,
        }
    }

    /// The design with minimal total cost, with its breakdown.
    pub fn cheapest<'a>(
        &self,
        evals: &'a [DesignEvaluation],
    ) -> Option<(&'a DesignEvaluation, CostBreakdown)> {
        evals.iter().map(|e| (e, self.evaluate(e))).min_by(|a, b| {
            a.1.total()
                .partial_cmp(&b.1.total())
                .expect("costs are finite")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redeval_harm::SecurityMetrics;

    fn eval(servers: u32, asp: f64, coa: f64) -> DesignEvaluation {
        let m = SecurityMetrics {
            attack_impact: 42.2,
            attack_success_probability: asp,
            exploitable_vulnerabilities: 9,
            attack_paths: 2,
            entry_points: 1,
            shortest_path_length: Some(3),
            mean_path_length: 3.0,
            risk: 4.0,
        };
        DesignEvaluation {
            name: format!("{servers} servers"),
            counts: vec![servers],
            before: m.clone(),
            after: m,
            coa,
            availability: coa,
            expected_up: servers as f64,
        }
    }

    #[test]
    fn breakdown_components() {
        let model = CostModel {
            server_month: 100.0,
            downtime_hour: 10.0,
            breach: 1000.0,
            period_hours: 720.0,
        };
        let b = model.evaluate(&eval(4, 0.1, 0.999));
        assert_eq!(b.servers, 400.0);
        assert!((b.downtime - 0.001 * 720.0 * 10.0).abs() < 1e-9);
        assert!((b.breach - 100.0).abs() < 1e-12);
        assert!((b.total() - (400.0 + 7.2 + 100.0)).abs() < 1e-9);
    }

    #[test]
    fn cheapest_balances_terms() {
        let model = CostModel {
            server_month: 500.0,
            downtime_hour: 100_000.0,
            breach: 0.0,
            period_hours: 720.0,
        };
        // With very expensive downtime, the higher-COA design wins even
        // with an extra server.
        let evals = vec![eval(4, 0.1, 0.9956), eval(5, 0.15, 0.9964)];
        let (best, _) = model.cheapest(&evals).unwrap();
        assert_eq!(best.total_servers(), 5);

        // With cheap downtime, fewer servers win.
        let model2 = CostModel {
            downtime_hour: 1.0,
            ..model
        };
        let (best2, _) = model2.cheapest(&evals).unwrap();
        assert_eq!(best2.total_servers(), 4);
    }

    #[test]
    fn empty_list_has_no_cheapest() {
        assert!(CostModel::default().cheapest(&[]).is_none());
    }
}
